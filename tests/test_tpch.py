"""Tests for the TPC-H-style generator."""

from __future__ import annotations

import pytest

from repro.db.predicate import InPredicate
from repro.errors import BenchmarkError
from repro.tpch.generator import (
    SELECTIVITY_LABELS,
    SELECTIVITY_VALUES,
    TPCHGenerator,
    selectivity_label,
)
from repro.tpch.tables import CUSTOMERS_SCHEMA, ORDERS_SCHEMA


@pytest.fixture(scope="module")
def generated():
    generator = TPCHGenerator(scale_factor=0.004)
    return generator.customers(), generator.orders()


class TestRowCounts:
    def test_tpch_scaling(self, generated):
        customers, orders = generated
        assert len(customers) == round(150_000 * 0.004)
        assert len(orders) == round(1_500_000 * 0.004)

    def test_tiny_scale_factor_never_empty(self):
        generator = TPCHGenerator(scale_factor=1e-9)
        assert generator.num_customers == 1
        assert generator.num_orders == 1

    def test_invalid_scale_factor(self):
        with pytest.raises(BenchmarkError):
            TPCHGenerator(scale_factor=0)


class TestSchemas:
    def test_schemas_used(self, generated):
        customers, orders = generated
        assert customers.schema is CUSTOMERS_SCHEMA
        assert orders.schema is ORDERS_SCHEMA

    def test_paper_attribute_counts(self):
        # 8 TPC-H attributes + selectivity; 9 + selectivity.
        assert len(CUSTOMERS_SCHEMA) == 9
        assert len(ORDERS_SCHEMA) == 10


class TestJoinStructure:
    def test_custkeys_unique_in_customers(self, generated):
        customers, _ = generated
        keys = customers.column_values("custkey")
        assert len(set(keys)) == len(keys)

    def test_orders_reference_existing_customers(self, generated):
        customers, orders = generated
        valid = set(customers.column_values("custkey"))
        assert set(orders.column_values("custkey")) <= valid


class TestSelectivityColumn:
    def test_label_mapping(self):
        assert selectivity_label(1 / 100) == "1/100"
        assert selectivity_label(1 / 12.5) == "1/12.5"
        with pytest.raises(BenchmarkError):
            selectivity_label(0.5)

    @pytest.mark.parametrize("value,label", zip(SELECTIVITY_VALUES, SELECTIVITY_LABELS))
    def test_assigned_fractions(self, generated, value, label):
        customers, orders = generated
        for table in (customers, orders):
            count = len(table.filter(InPredicate("selectivity", [label])))
            assert count == round(value * len(table))

    def test_filler_rows_exist(self, generated):
        customers, _ = generated
        fillers = [
            v for v in customers.column_values("selectivity") if v == "-"
        ]
        # 1 - (0.08 + 0.04 + 0.02 + 0.01) = 0.85 of rows are unassigned.
        assert len(fillers) == len(customers) - sum(
            round(v * len(customers)) for v in SELECTIVITY_VALUES
        )


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = TPCHGenerator(0.001, seed=9).customers()
        b = TPCHGenerator(0.001, seed=9).customers()
        assert a.rows() == b.rows()

    def test_different_seed_different_data(self):
        a = TPCHGenerator(0.001, seed=9).customers()
        b = TPCHGenerator(0.001, seed=10).customers()
        assert a.rows() != b.rows()

    def test_value_plausibility(self, generated):
        customers, orders = generated
        row = customers[0]
        assert row[1].startswith("Customer#")
        assert 0 <= row[3] < 25
        assert isinstance(row[5], float)
        order = orders[0]
        assert order[2] in ("O", "F", "P")
        assert order[4].count("-") == 2  # date format
