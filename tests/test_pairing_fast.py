"""Tests for the optimized pairing against the reference implementation."""

from __future__ import annotations

import random

import pytest

from repro.crypto.curve import G1Point, G2Point, untwist
from repro.crypto.field import Fp12
from repro.crypto.pairing import (
    final_exponentiation,
    miller_loop,
    multi_pairing,
    pairing,
)
from repro.crypto.numtheory import naf_digits
from repro.crypto.pairing_fast import (
    _pow_by_x,
    _twist_frobenius,
    final_exponentiation_fast,
    miller_loop_fast,
    multi_pairing_fast,
    pairing_fast,
)
from repro.crypto.params import BN_X, CURVE_ORDER

_rng = random.Random(2718)


class TestAgreementWithReference:
    def test_generator_pairing(self):
        g1, g2 = G1Point.generator(), G2Point.generator()
        assert pairing_fast(g1, g2) == pairing(g1, g2)

    def test_random_points(self):
        for _ in range(3):
            a = _rng.randrange(2, 10**9)
            b = _rng.randrange(2, 10**9)
            p = G1Point.generator() * a
            q = G2Point.generator() * b
            assert pairing_fast(p, q) == pairing(p, q)

    def test_multi_pairing_agreement(self):
        pairs = [
            (G1Point.generator() * a, G2Point.generator() * b)
            for a, b in [(3, 4), (5, 6), (7, 8)]
        ]
        assert multi_pairing_fast(pairs) == multi_pairing(pairs)

    def test_final_exponentiation_agreement(self):
        """Both hard parts compute the same map on Miller outputs."""
        f = miller_loop(G2Point.generator() * 9, G1Point.generator() * 4)
        assert final_exponentiation_fast(f) == final_exponentiation(f)

    def test_miller_values_equal_after_fe(self):
        """Raw Miller values may differ by subfield factors; the final
        exponentiation must reconcile them."""
        q = G2Point.generator() * 13
        p = G1Point.generator() * 17
        naive = miller_loop(q, p)
        fast = miller_loop_fast(q, p)
        assert final_exponentiation(naive) == final_exponentiation(fast)


class TestFastPairingProperties:
    def test_bilinearity(self):
        e = pairing_fast(G1Point.generator(), G2Point.generator())
        lhs = pairing_fast(G1Point.generator() * 6, G2Point.generator() * 7)
        assert lhs == e.pow(42)

    def test_non_degenerate(self):
        assert not pairing_fast(G1Point.generator(), G2Point.generator()).is_one()

    def test_order(self):
        e = pairing_fast(G1Point.generator(), G2Point.generator())
        assert e.pow(CURVE_ORDER).is_one()

    def test_infinity(self):
        assert pairing_fast(G1Point.infinity(), G2Point.generator()).is_one()
        assert pairing_fast(G1Point.generator(), G2Point.infinity()).is_one()

    def test_multi_pairing_empty(self):
        assert multi_pairing_fast([]).is_one()


class TestTwistFrobenius:
    def test_commutes_with_untwist(self):
        """psi(pi_twist(Q)) == Frobenius(psi(Q)) — the map's defining property."""
        q = G2Point.generator() * 5
        fx, fy = _twist_frobenius((q.x, q.y))
        ux, uy = untwist(q)
        assert untwist(G2Point(fx, fy, check=False)) == (
            ux.frobenius(), uy.frobenius()
        )

    def test_frobenius_image_on_twist(self):
        """pi(Q) stays on the twist curve (and in the subgroup)."""
        q = G2Point.generator() * 3
        fx, fy = _twist_frobenius((q.x, q.y))
        image = G2Point(fx, fy)  # constructor checks the curve equation
        assert image.is_in_subgroup()

    def test_order_twelve(self):
        q = G2Point.generator()
        point = (q.x, q.y)
        for _ in range(12):
            point = _twist_frobenius(point)
        assert point == (q.x, q.y)


class TestSparseMultiplication:
    def test_mul_by_line_matches_generic(self):
        """The sparse path equals building the line element and multiplying."""
        from repro.crypto.field import XI, Fp2, Fp6

        f = Fp12(
            Fp6(Fp2(3, 1), Fp2(4, 1), Fp2(5, 9)),
            Fp6(Fp2(2, 6), Fp2(5, 3), Fp2(5, 8)),
        )
        a, b, c = 12345, Fp2(67, 89), Fp2(10, 11)
        line = Fp12(Fp6(Fp2(a), Fp2.zero(), Fp2.zero()),
                    Fp6(b, c, Fp2.zero()))
        assert f.mul_by_line(a, b, c) == f * line

    def test_mul_by_vertical_matches_generic(self):
        from repro.crypto.field import Fp2, Fp6

        f = Fp12(
            Fp6(Fp2(1, 2), Fp2(3, 4), Fp2(5, 6)),
            Fp6(Fp2(7, 8), Fp2(9, 10), Fp2(11, 12)),
        )
        a, b = 999, Fp2(13, 14)
        vertical = Fp12(Fp6(Fp2(a), b, Fp2.zero()), Fp6.zero())
        assert f.mul_by_vertical(a, b) == f * vertical


class TestNAFPowByX:
    """The cyclotomic NAF ladder inside the final exponentiation."""

    def test_bn_x_naf_weight_pinned(self):
        # x = 4965661367192848881 has binary weight 28; its NAF weight
        # is 24.  The ladder multiplies once per nonzero digit, so this
        # pin IS the op-count regression test for _pow_by_x.
        digits = naf_digits(BN_X)
        assert sum(d << i for i, d in enumerate(digits)) == BN_X
        assert sum(1 for d in digits if d) == 24
        assert bin(BN_X).count("1") == 28

    def test_pow_by_x_matches_generic_pow_on_cyclotomic_input(self):
        # _pow_by_x uses conjugation as inversion, which is only valid
        # in the cyclotomic subgroup — so feed it what production feeds
        # it: the output of the easy part.
        p = G1Point.generator() * _rng.randrange(1, CURVE_ORDER)
        q = G2Point.generator() * _rng.randrange(1, CURVE_ORDER)
        f = miller_loop_fast(q, p)
        t = f.conjugate() * f.inverse()
        t = t.frobenius().frobenius() * t
        assert _pow_by_x(t) == t.pow(BN_X)

    def test_pairing_byte_identity_with_reference(self):
        # The NAF ladders (curve scalar_mul + _pow_by_x) must not move
        # a single byte of the pairing output vs the reference path.
        for _ in range(3):
            p = G1Point.generator() * _rng.randrange(1, CURVE_ORDER)
            q = G2Point.generator() * _rng.randrange(1, CURVE_ORDER)
            assert (
                pairing_fast(p, q).to_bytes()
                == pairing(p, q).to_bytes()
            )
