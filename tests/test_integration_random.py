"""Randomized integration tests: encrypted execution == plaintext execution.

Hypothesis generates random table contents and random queries; the full
client/server pipeline must agree with the plaintext database on every
one of them.  This is the strongest single correctness statement in the
suite: it exercises encoding, IPE, hash matching, pre-filtering and
payload decryption together.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.client import SecureJoinClient
from repro.core.server import SecureJoinServer
from repro.db.database import Database
from repro.db.query import JoinQuery
from repro.db.schema import Schema
from repro.db.table import Table

_JOIN_VALUES = st.integers(min_value=0, max_value=4)
_CATEGORIES = st.sampled_from(["red", "green", "blue"])

_rows_left = st.lists(
    st.tuples(_JOIN_VALUES, _CATEGORIES), min_size=1, max_size=12
)
_rows_right = st.lists(
    st.tuples(_JOIN_VALUES, _CATEGORIES, st.integers(0, 9)),
    min_size=1, max_size=12,
)
_selection = st.one_of(
    st.none(),
    st.lists(_CATEGORIES, min_size=1, max_size=2, unique=True),
)


def _run_both(left_rows, right_rows, left_sel, right_sel, prefilter, seed):
    left = Table("L", Schema.of(("k", "int"), ("c", "str")),
                 [(k, c) for k, c in left_rows])
    right = Table("R", Schema.of(("k", "int"), ("c", "str"), ("n", "int")),
                  [(k, c, n) for k, c, n in right_rows])
    client = SecureJoinClient.for_tables(
        [(left, "k"), (right, "k")],
        in_clause_limit=2,
        rng=random.Random(seed),
        enable_prefilter=prefilter,
    )
    server = SecureJoinServer(client.params)
    server.store(client.encrypt_table(left, "k"))
    server.store(client.encrypt_table(right, "k"))
    query = JoinQuery.build(
        "L", "R", on=("k", "k"),
        where_left={"c": left_sel} if left_sel else None,
        where_right={"c": right_sel} if right_sel else None,
    )
    encrypted = client.decrypt_result(
        server.execute_join(client.create_query(query))
    )
    db = Database()
    db.add_table(left)
    db.add_table(right)
    truth = db.execute(query)
    return encrypted, truth


class TestRandomWorkloads:
    @given(
        left_rows=_rows_left,
        right_rows=_rows_right,
        left_sel=_selection,
        right_sel=_selection,
        prefilter=st.booleans(),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    @settings(max_examples=40, deadline=None)
    def test_encrypted_equals_plaintext(
        self, left_rows, right_rows, left_sel, right_sel, prefilter, seed
    ):
        encrypted, truth = _run_both(
            left_rows, right_rows, left_sel, right_sel, prefilter, seed
        )
        assert sorted(encrypted.table.rows()) == sorted(truth.table.rows())

    @given(
        left_rows=_rows_left,
        right_rows=_rows_right,
        seed=st.integers(min_value=0, max_value=2**20),
    )
    @settings(max_examples=15, deadline=None)
    def test_hash_and_nested_agree(self, left_rows, right_rows, seed):
        left = Table("L", Schema.of(("k", "int"), ("c", "str")),
                     [(k, c) for k, c in left_rows])
        right = Table("R", Schema.of(("k", "int"), ("c", "str"), ("n", "int")),
                      [(k, c, n) for k, c, n in right_rows])
        client = SecureJoinClient.for_tables(
            [(left, "k"), (right, "k")], in_clause_limit=2,
            rng=random.Random(seed),
        )
        server = SecureJoinServer(client.params)
        server.store(client.encrypt_table(left, "k"))
        server.store(client.encrypt_table(right, "k"))
        query = JoinQuery.build("L", "R", on=("k", "k"))
        hash_result = server.execute_join(
            client.create_query(query), algorithm="hash"
        )
        nested_result = server.execute_join(
            client.create_query(query), algorithm="nested"
        )
        assert sorted(hash_result.index_pairs) == sorted(nested_result.index_pairs)


class TestSelfJoin:
    """Arbitrary equi-joins include self-joins — schemes like Pang-Ding
    explicitly exclude them; Secure Join supports them natively."""

    def test_self_join_matches_plaintext(self):
        people = Table(
            "People",
            Schema.of(("city", "str"), ("name", "str"), ("kind", "str")),
            [
                ("oslo", "ann", "buyer"),
                ("oslo", "bob", "seller"),
                ("bern", "cal", "buyer"),
                ("oslo", "dee", "seller"),
                ("bern", "eli", "seller"),
            ],
        )
        client = SecureJoinClient.for_tables(
            [(people, "city")], in_clause_limit=2, rng=random.Random(21)
        )
        server = SecureJoinServer(client.params)
        server.store(client.encrypt_table(people, "city"))
        query = JoinQuery.build(
            "People", "People", on=("city", "city"),
            where_left={"kind": ["buyer"]},
            where_right={"kind": ["seller"]},
        )
        result = server.execute_join(client.create_query(query))
        decrypted = client.decrypt_result(result)

        db = Database()
        db.add_table(people)
        truth = db.execute(query)
        assert sorted(decrypted.table.rows()) == sorted(truth.table.rows())
        # ann-bob, ann-dee in oslo; cal-eli in bern.
        assert len(decrypted.table) == 3

    def test_self_join_uses_one_stored_table(self):
        numbers = Table("N", Schema.of(("v", "int"), ("tag", "str")),
                        [(1, "a"), (1, "b"), (2, "c")])
        client = SecureJoinClient.for_tables(
            [(numbers, "v")], in_clause_limit=1, rng=random.Random(22)
        )
        server = SecureJoinServer(client.params)
        server.store(client.encrypt_table(numbers, "v"))
        query = JoinQuery.build("N", "N", on=("v", "v"))
        result = server.execute_join(client.create_query(query))
        # Full self-join on v: rows (0,0), (0,1), (1,0), (1,1), (2,2).
        assert sorted(result.index_pairs) == [
            (0, 0), (0, 1), (1, 0), (1, 1), (2, 2),
        ]
