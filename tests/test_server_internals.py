"""Focused tests for server internals: tag index, candidates, observations."""

from __future__ import annotations

import random

import pytest

from repro.core.client import SecureJoinClient
from repro.core.server import SecureJoinServer
from repro.db.query import JoinQuery
from repro.db.schema import Schema
from repro.db.table import Table
from repro.errors import QueryError
from repro.store.tables import (
    decode_encrypted_table,
    encode_encrypted_table,
)


def _setup(seed=41):
    left = Table("L", Schema.of(("k", "int"), ("c", "str"), ("d", "str")),
                 [(1, "x", "p"), (2, "y", "p"), (1, "x", "q"), (3, "z", "q")])
    right = Table("R", Schema.of(("k", "int"), ("e", "str")),
                  [(1, "m"), (2, "n"), (3, "o")])
    client = SecureJoinClient.for_tables(
        [(left, "k"), (right, "k")],
        in_clause_limit=2,
        rng=random.Random(seed),
        enable_prefilter=True,
    )
    server = SecureJoinServer(client.params)
    server.store(client.encrypt_table(left, "k"))
    server.store(client.encrypt_table(right, "k"))
    return client, server


class TestTagIndex:
    def test_multi_column_prefilter_intersects(self):
        client, server = _setup()
        query = JoinQuery.build(
            "L", "R", on=("k", "k"),
            where_left={"c": ["x"], "d": ["q"]},
        )
        result = server.execute_join(client.create_query(query))
        # Only L row 2 matches (x AND q); it joins R row 0 on k=1.
        assert result.stats.candidates_left == 1
        assert result.index_pairs == [(2, 0)]

    def test_empty_intersection_short_circuits(self):
        client, server = _setup()
        query = JoinQuery.build(
            "L", "R", on=("k", "k"),
            where_left={"c": ["y"], "d": ["q"]},  # y rows are all d=p
        )
        result = server.execute_join(client.create_query(query))
        assert result.stats.candidates_left == 0
        assert result.stats.decryptions == len(
            server.table("R").ciphertexts
        )  # only the right side is decrypted
        assert result.index_pairs == []

    def test_no_matching_tag_value(self):
        client, server = _setup()
        query = JoinQuery.build(
            "L", "R", on=("k", "k"),
            where_left={"c": ["never-seen"]},
        )
        result = server.execute_join(client.create_query(query))
        assert result.stats.candidates_left == 0

    def test_index_rebuilt_after_reload(self):
        """A server restarted from serialized tables rebuilds its index."""
        client, server = _setup()
        backend = client.scheme.backend
        fresh = SecureJoinServer(client.params)
        for name in ("L", "R"):
            blob = encode_encrypted_table(server.table(name), backend)
            fresh.store(decode_encrypted_table(blob, backend))
        query = JoinQuery.build("L", "R", on=("k", "k"),
                                where_left={"c": ["x"]})
        original = server.execute_join(client.create_query(query))
        reloaded = fresh.execute_join(client.create_query(query))
        assert sorted(original.index_pairs) == sorted(reloaded.index_pairs)
        assert original.stats.candidates_left == reloaded.stats.candidates_left


class TestObservationsWithPrefilter:
    def test_only_candidates_observed(self):
        """The adversary view contains exactly the decrypted rows."""
        client, server = _setup()
        query = JoinQuery.build("L", "R", on=("k", "k"),
                                where_left={"c": ["x"]})
        server.execute_join(client.create_query(query))
        observation = server.observations[-1]
        left_refs = [ref for ref in observation.handles if ref[0] == "L"]
        assert sorted(left_refs) == [("L", 0), ("L", 2)]

    def test_matching_handles_within_query(self):
        """Rows 0 and 2 share join value 1 and both pass the filter."""
        client, server = _setup()
        query = JoinQuery.build("L", "R", on=("k", "k"),
                                where_left={"c": ["x"]})
        server.execute_join(client.create_query(query))
        handles = server.observations[-1].handles
        assert handles[("L", 0)] == handles[("L", 2)]
        assert handles[("L", 0)] == handles[("R", 0)]
        assert handles[("L", 0)] != handles[("R", 1)]


class TestPrefilterMismatches:
    def test_query_tokens_without_table_tags(self):
        """Pre-filter tokens against a table without tags must fail loudly."""
        left = Table("L", Schema.of(("k", "int"), ("c", "str")), [(1, "x")])
        right = Table("R", Schema.of(("k", "int"), ("d", "str")), [(1, "y")])
        tagging_client = SecureJoinClient.for_tables(
            [(left, "k"), (right, "k")],
            in_clause_limit=1,
            rng=random.Random(1),
            enable_prefilter=True,
        )
        plain_client = SecureJoinClient.for_tables(
            [(left, "k"), (right, "k")],
            in_clause_limit=1,
            rng=random.Random(1),
            enable_prefilter=False,
        )
        server = SecureJoinServer(tagging_client.params)
        # The tagging client knows the tables (so it can build queries)...
        tagging_client.encrypt_table(left, "k")
        tagging_client.encrypt_table(right, "k")
        # ...but the server stores tag-less encryptions of them.
        server.store(plain_client.encrypt_table(left, "k"))
        server.store(plain_client.encrypt_table(right, "k"))
        query = JoinQuery.build("L", "R", on=("k", "k"),
                                where_left={"c": ["x"]})
        encrypted_query = tagging_client.create_query(query)
        with pytest.raises(QueryError):
            server.execute_join(encrypted_query)

    def test_restricted_prefilter_columns(self):
        """Only listed columns get tags; filtering on others still works
        (via polynomial selection), just without candidate pruning."""
        left = Table("L", Schema.of(("k", "int"), ("c", "str"), ("d", "str")),
                     [(1, "x", "p"), (2, "y", "q")])
        right = Table("R", Schema.of(("k", "int"), ("e", "str")),
                      [(1, "m"), (2, "n")])
        client = SecureJoinClient.for_tables(
            [(left, "k"), (right, "k")],
            in_clause_limit=1,
            rng=random.Random(2),
            enable_prefilter=True,
            prefilter_columns=("c",),
        )
        server = SecureJoinServer(client.params)
        server.store(client.encrypt_table(left, "k"))
        server.store(client.encrypt_table(right, "k"))
        # Selection on the untagged column d: no tags exist, so no
        # pre-filter tokens are sent for it; the polynomial still gates.
        query = JoinQuery.build("L", "R", on=("k", "k"),
                                where_left={"d": ["p"]})
        result = server.execute_join(client.create_query(query))
        assert result.index_pairs == [(0, 0)]


class TestMatcherComparisonAccounting:
    """Regression pin for the PR 1 `comparisons` accounting fix.

    The hash matcher charges exactly one hash-key comparison per probe
    plus one equality confirmation per emitted bucket entry:
    ``comparisons == probes + matches`` — O(n + m + output), never a
    function of the n*m product.  The nested matcher stays exactly n*m.
    """

    def _run(self, left_rows, right_rows, algorithm):
        left = Table("L", Schema.of(("k", "int"), ("c", "str")),
                     [(k, f"l{i}") for i, k in enumerate(left_rows)])
        right = Table("R", Schema.of(("k", "int"), ("e", "str")),
                      [(k, f"r{i}") for i, k in enumerate(right_rows)])
        client = SecureJoinClient.for_tables(
            [(left, "k"), (right, "k")], in_clause_limit=1,
            rng=random.Random(5),
        )
        server = SecureJoinServer(client.params)
        server.store(client.encrypt_table(left, "k"))
        server.store(client.encrypt_table(right, "k"))
        query = client.create_query(JoinQuery.build("L", "R", on=("k", "k")))
        return server.execute_join(query, algorithm=algorithm).stats

    def test_hash_comparisons_formula(self):
        """comparisons == probes + matches, with probes == |right side|."""
        left_rows = [1, 1, 2, 3, 7]
        right_rows = [1, 2, 2, 5, 7, 7]
        stats = self._run(left_rows, right_rows, "hash")
        assert stats.probes == len(right_rows)
        assert stats.matches == 2 + 1 + 1 + 2  # k=1 twice, k=2, k=7 twice...
        assert stats.comparisons == stats.probes + stats.matches

    def test_hash_comparisons_zero_matches_stays_linear(self):
        """Disjoint keys: exactly one comparison per probe, none more."""
        stats = self._run([1, 2, 3, 4], [5, 6, 7], "hash")
        assert stats.matches == 0
        assert stats.comparisons == stats.probes == 3

    def test_hash_linear_nested_quadratic_growth(self):
        """Doubling both sides doubles hash comparisons but quadruples
        nested ones — the regression this class pins."""
        small_hash = self._run([1, 2, 3, 4], [5, 6, 7, 8], "hash")
        large_hash = self._run([1, 2, 3, 4] * 2, [5, 6, 7, 8] * 2, "hash")
        assert large_hash.comparisons == 2 * small_hash.comparisons

        small_nested = self._run([1, 2, 3, 4], [5, 6, 7, 8], "nested")
        large_nested = self._run(
            [1, 2, 3, 4] * 2, [5, 6, 7, 8] * 2, "nested"
        )
        assert small_nested.comparisons == 4 * 4
        assert large_nested.comparisons == 8 * 8

    def test_hash_never_worse_than_nested(self):
        left_rows = [i % 3 for i in range(12)]
        right_rows = [i % 3 for i in range(9)]
        hash_stats = self._run(left_rows, right_rows, "hash")
        nested_stats = self._run(left_rows, right_rows, "nested")
        assert hash_stats.matches == nested_stats.matches
        assert hash_stats.comparisons <= nested_stats.comparisons
        assert nested_stats.comparisons == 12 * 9
