"""Stress and lifecycle tests for the persistent execution service.

The contract under test: :class:`~repro.core.service.ExecutionService`
is lazy (no process before the first pooled side), persistent (many
queries reuse one pool — ``pool_generation`` never moves), crash
resilient (a SIGKILLed worker is respawned and its chunks recomputed),
clean (idempotent ``close``, context-manager support, and flat
process/FD counts across dozens of queries), and — since the streaming
pipeline PR — a fair multi-query admission scheduler: concurrent
queries (and both sides of one query) interleave chunk scheduling on
one warm pool with isolated per-side contexts.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import signal
import threading
import time

import pytest

from repro.core.client import SecureJoinClient
from repro.core.engine import BatchedEngine, ParallelEngine
from repro.core.server import SecureJoinServer
from repro.core.service import ExecutionService
from repro.db.query import JoinQuery
from repro.db.schema import Schema
from repro.db.table import Table
from repro.errors import QueryError


def _alive_children() -> int:
    return len(multiprocessing.active_children())


def _open_fds() -> int:
    return len(os.listdir("/proc/self/fd")) if os.path.isdir(
        "/proc/self/fd"
    ) else -1


def _fixture(rows: int = 40, seed: int = 9):
    left = Table(
        "L", Schema.of(("k", "int"), ("a", "str")),
        [(i % 7, f"a{i}") for i in range(rows)],
    )
    right = Table(
        "R", Schema.of(("k", "int"), ("b", "str")),
        [(i % 7, f"b{i}") for i in range(rows // 2)],
    )
    client = SecureJoinClient.for_tables(
        [(left, "k"), (right, "k")], in_clause_limit=1,
        rng=random.Random(seed),
    )
    server = SecureJoinServer(client.params, workers=2)
    server.store(client.encrypt_table(left, "k"))
    server.store(client.encrypt_table(right, "k"))
    return client, server


def _parallel(batch_size: int = 4) -> ParallelEngine:
    return ParallelEngine(workers=2, batch_size=batch_size)


class TestServiceExecution:
    def test_run_side_matches_batched_engine(self):
        """Pooled handles are byte-identical to the inline batched path."""
        client, server = _fixture()
        query = client.create_query(JoinQuery.build("L", "R", on=("k", "k")))
        with server:
            pooled = server.execute_join(query, engine=_parallel())
            inline = server.execute_join(query, engine=BatchedEngine(4))
            assert pooled.index_pairs == inline.index_pairs
            assert pooled.left_payloads == inline.left_payloads
            # Same token => identical handle bytes observed per row.
            assert (
                server.observations[-2].handles
                == server.observations[-1].handles
            )
            assert (
                pooled.stats.final_exponentiations
                == inline.stats.final_exponentiations
            )

    def test_lazy_start(self):
        """Constructing servers and services forks nothing."""
        client, server = _fixture()
        assert not server.execution_service.started
        assert server.execution_service.generation == 0
        # A small query stays inline: still no pool.
        query = client.create_query(JoinQuery.build("L", "R", on=("k", "k")))
        result = server.execute_join(query, engine=_parallel(batch_size=1000))
        assert result.stats.pool_generation == 0
        assert not server.execution_service.started
        server.close()

    def test_zero_copy_fallback_matches_shared_memory(self):
        """With SHM disabled the bytes-per-chunk fallback is identical."""
        client, server = _fixture()
        query = client.create_query(JoinQuery.build("L", "R", on=("k", "k")))
        with server:
            shm = server.execute_join(query, engine=_parallel())
        no_shm_service = ExecutionService(workers=2, use_shared_memory=False)
        engine = ParallelEngine(workers=2, batch_size=4, service=no_shm_service)
        with no_shm_service:
            fallback = server.execute_join(query, engine=engine)
        assert fallback.index_pairs == shm.index_pairs
        assert (
            server.observations[-2].handles == server.observations[-1].handles
        )

    def test_max_workers_caps_engine_narrower_than_pool(self):
        service = ExecutionService(workers=3)
        client, server = _fixture()
        engine = ParallelEngine(workers=2, batch_size=4, service=service)
        query = client.create_query(JoinQuery.build("L", "R", on=("k", "k")))
        with service:
            result = server.execute_join(query, engine=engine)
            assert len(service.worker_pids()) == 3
            assert result.stats.workers <= 2

    def test_invalid_configuration(self):
        with pytest.raises(QueryError):
            ExecutionService(workers=0)
        service = ExecutionService(workers=1)
        with pytest.raises(QueryError):
            service.run_side(None, [], [], batch_size=0)


class TestPoolReuse:
    def test_sequential_queries_reuse_one_pool(self):
        """The headline fix over PR 1: no pool re-creation per query."""
        client, server = _fixture()
        engine = _parallel()
        query = JoinQuery.build("L", "R", on=("k", "k"))
        with server:
            generations = []
            pids = set()
            for _ in range(8):
                encrypted = client.create_query(query)
                result = server.execute_join(encrypted, engine=engine)
                generations.append(result.stats.pool_generation)
                pids.update(server.execution_service.worker_pids())
            assert generations == [1] * 8
            assert server.execution_service.worker_restarts == 0
            # The same two processes served every query.
            assert len(pids) == 2

    def test_no_process_or_fd_leak_across_50_queries(self):
        client, server = _fixture()
        engine = _parallel()
        query = JoinQuery.build("L", "R", on=("k", "k"))
        with server:
            # Warm up: spawn the pool, then measure.
            server.execute_join(client.create_query(query), engine=engine)
            children_before = _alive_children()
            fds_before = _open_fds()
            for _ in range(50):
                server.execute_join(client.create_query(query), engine=engine)
            assert _alive_children() == children_before
            assert _open_fds() == fds_before
            assert server.execution_service.generation == 1
        assert server.execution_service.worker_pids() == []

    def test_engine_cached_by_name_shares_pool(self):
        """String overrides resolve to one cached engine, one warm pool."""
        client, server = _fixture()
        query = JoinQuery.build("L", "R", on=("k", "k"))
        with server:
            first = server.execute_join(
                client.create_query(query), engine="parallel"
            )
            second = server.execute_join(
                client.create_query(query), engine="parallel"
            )
            # Small rows may run inline; force pool use via row count.
            assert first.stats.engine == second.stats.engine == "parallel"
            assert (
                server.execution_service.generation
                == max(first.stats.pool_generation, 1)
            )


class TestCrashResilience:
    def test_pool_survives_idle_worker_kill(self):
        client, server = _fixture()
        engine = _parallel()
        query = JoinQuery.build("L", "R", on=("k", "k"))
        with server:
            baseline = server.execute_join(
                client.create_query(query), engine=engine
            )
            victim = server.execution_service.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            time.sleep(0.1)
            shared = client.create_query(query)
            expected = server.execute_join(shared, engine=BatchedEngine(4))
            recovered = server.execute_join(shared, engine=engine)
            assert recovered.index_pairs == expected.index_pairs
            assert recovered.index_pairs == baseline.index_pairs
            assert server.execution_service.worker_restarts >= 1
            # Same pool generation: respawn, not re-creation.
            assert recovered.stats.pool_generation == 1

    def test_pool_survives_mid_query_worker_kill(self):
        client, server = _fixture(rows=120)
        engine = ParallelEngine(workers=2, batch_size=2)
        query = client.create_query(JoinQuery.build("L", "R", on=("k", "k")))
        with server:
            expected = server.execute_join(query, engine=BatchedEngine(4))
            service = server.execution_service

            def killer():
                deadline = time.time() + 2.0
                while time.time() < deadline:
                    pids = service.worker_pids()
                    if pids:
                        try:
                            os.kill(pids[0], signal.SIGKILL)
                        except ProcessLookupError:
                            pass
                        return
                    time.sleep(0.005)

            thread = threading.Thread(target=killer)
            thread.start()
            recovered = server.execute_join(query, engine=engine)
            thread.join()
            assert recovered.index_pairs == expected.index_pairs
            assert (
                server.observations[-2].handles
                == server.observations[-1].handles
            )


class TestConcurrentAdmission:
    """Multi-query admission: interleaving, isolation, crash recovery."""

    def test_concurrent_queries_interleave_on_one_pool(self):
        """N threads, one server, one warm pool: every query correct,
        no per-query pool respawn, sides demonstrably co-admitted."""
        client, server = _fixture(rows=120)
        engine = ParallelEngine(workers=2, batch_size=4)
        query = JoinQuery.build("L", "R", on=("k", "k"))
        with server:
            reference = server.execute_join(
                client.create_query(query), engine=BatchedEngine(4)
            )
            encrypted = [client.create_query(query) for _ in range(12)]
            results = [None] * len(encrypted)
            errors = []

            def run(slot):
                try:
                    results[slot] = server.execute_join(
                        encrypted[slot], engine=engine
                    )
                except Exception as exc:  # pragma: no cover - must not happen
                    errors.append(exc)

            threads = [
                threading.Thread(target=run, args=(slot,))
                for slot in range(len(encrypted))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            assert errors == []
            for result in results:
                assert result is not None
                assert result.index_pairs == reference.index_pairs
                assert result.left_payloads == reference.left_payloads
                assert result.stats.pool_generation == 1
            service = server.execution_service
            assert service.generation == 1
            assert service.worker_restarts == 0
            # The whole point: sides of different queries overlapped.
            assert service.peak_concurrent_sides >= 2
            assert max(r.stats.concurrent_sides for r in results) >= 2

    def test_concurrent_queries_with_mid_query_crash(self):
        """A worker SIGKILLed while several queries are in flight: every
        query still completes correctly on the same pool generation."""
        client, server = _fixture(rows=160)
        engine = ParallelEngine(workers=2, batch_size=2)
        query = JoinQuery.build("L", "R", on=("k", "k"))
        with server:
            shared = client.create_query(query)
            reference = server.execute_join(shared, engine=BatchedEngine(4))
            service = server.execution_service
            results = []
            errors = []
            lock = threading.Lock()

            def run():
                try:
                    result = server.execute_join(shared, engine=engine)
                    with lock:
                        results.append(result)
                except Exception as exc:  # pragma: no cover
                    with lock:
                        errors.append(exc)

            def killer():
                deadline = time.time() + 2.0
                while time.time() < deadline:
                    pids = service.worker_pids()
                    if pids:
                        try:
                            os.kill(pids[0], signal.SIGKILL)
                        except ProcessLookupError:  # pragma: no cover
                            pass
                        return
                    time.sleep(0.005)

            threads = [threading.Thread(target=run) for _ in range(3)]
            threads.append(threading.Thread(target=killer))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            assert errors == []
            assert len(results) == 3
            for result in results:
                assert result.index_pairs == reference.index_pairs
            # Respawn, not pool re-creation.
            assert service.generation == 1
            assert all(r.stats.pool_generation == 1 for r in results)

    def test_no_leaks_across_concurrent_batches(self):
        """Repeated waves of concurrent queries leave no extra
        processes, FDs, or admitted sides behind."""
        client, server = _fixture(rows=60)
        engine = ParallelEngine(workers=2, batch_size=4)
        query = JoinQuery.build("L", "R", on=("k", "k"))
        with server:
            # Warm up: spawn the pool, then measure.
            server.execute_join(client.create_query(query), engine=engine)
            children_before = _alive_children()
            fds_before = _open_fds()
            for _ in range(5):
                threads = [
                    threading.Thread(
                        target=server.execute_join,
                        args=(client.create_query(query),),
                        kwargs={"engine": engine},
                    )
                    for _ in range(4)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
            assert _alive_children() == children_before
            assert _open_fds() == fds_before
            assert server.execution_service.active_sides == 0
            assert server.execution_service.generation == 1

    def test_backend_switch_refused_while_sides_active(self):
        """Per-query isolation: an admitted side pins the pool backend."""
        client, server = _fixture(rows=80)
        engine = ParallelEngine(workers=2, batch_size=4)
        query = client.create_query(JoinQuery.build("L", "R", on=("k", "k")))
        with server:
            stream = server.stream_join(query, engine=engine)
            # Start the join (admits sides) but do not finish it.
            try:
                next(stream)
            except StopIteration:  # pragma: no cover - tiny join
                pytest.skip("join finished in one pull")
            service = server.execution_service
            assert service.active_sides > 0

            class _OtherBackend:
                name = "other"
                order = 97

            with pytest.raises(QueryError):
                service.ensure_started(_OtherBackend())
            stream.close()
            assert service.active_sides == 0


class TestLifecycle:
    def test_close_is_idempotent(self):
        client, server = _fixture()
        engine = _parallel()
        server.execute_join(
            client.create_query(JoinQuery.build("L", "R", on=("k", "k"))),
            engine=engine,
        )
        assert server.execution_service.started
        server.close()
        assert not server.execution_service.started
        server.close()  # second close: no error, no effect
        server.close()

    def test_close_without_start_is_fine(self):
        service = ExecutionService(workers=2)
        service.close()
        service.close()
        assert not service.started

    def test_context_manager_closes_pool(self):
        client, server = _fixture()
        with server as managed:
            managed.execute_join(
                client.create_query(JoinQuery.build("L", "R", on=("k", "k"))),
                engine=_parallel(),
            )
            assert managed.execution_service.started
        assert not server.execution_service.started

    def test_reuse_after_close_bumps_generation(self):
        """A closed service transparently restarts; the generation proves
        it was a restart rather than silent reuse."""
        client, server = _fixture()
        engine = _parallel()
        query = JoinQuery.build("L", "R", on=("k", "k"))
        with server:
            first = server.execute_join(client.create_query(query), engine=engine)
            assert first.stats.pool_generation == 1
        second = server.execute_join(client.create_query(query), engine=engine)
        assert second.stats.pool_generation == 2
        assert second.index_pairs == first.index_pairs
        server.close()
