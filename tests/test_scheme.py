"""Tests for the five Secure Join algorithms, including Claim 5.1's cases.

The eight cases of the security proof (same/different query, equal/
unequal join values, selection satisfied or not) reduce to: handles
match iff all three conditions hold; every other combination matches
only with negligible probability, which these tests sample.
"""

from __future__ import annotations

import random

import pytest

from repro.core.scheme import SecureJoinParams, SecureJoinScheme
from repro.crypto.backend import FastBackend
from repro.errors import SchemeError


@pytest.fixture
def scheme():
    params = SecureJoinParams(num_attributes=2, in_clause_limit=3)
    return SecureJoinScheme(params, FastBackend(), random.Random(42))


@pytest.fixture
def msk(scheme):
    return scheme.setup()


def _handles(scheme, msk, *, key, selection_a, selection_b, row_a, row_b):
    """Decrypt two rows under (possibly different) tokens; return handles."""
    token_a = scheme.token(msk, selection_a, key[0])
    token_b = scheme.token(msk, selection_b, key[1])
    ct_a = scheme.encrypt_row(msk, row_a[0], row_a[1])
    ct_b = scheme.encrypt_row(msk, row_b[0], row_b[1])
    return scheme.decrypt(token_a, ct_a), scheme.decrypt(token_b, ct_b)


class TestClaim51:
    """The eight cases of the proof of Theorem 5.2."""

    def test_case1_same_query_same_join_selected_matches(self, scheme, msk):
        k = scheme.new_query_key()
        d_a, d_b = _handles(
            scheme, msk, key=(k, k),
            selection_a={0: ["red"]}, selection_b={0: ["blue"]},
            row_a=(7, ["red", "x"]), row_b=(7, ["blue", "y"]),
        )
        assert scheme.match(d_a, d_b)

    def test_case2_same_query_same_join_unselected_no_match(self, scheme, msk):
        k = scheme.new_query_key()
        d_a, d_b = _handles(
            scheme, msk, key=(k, k),
            selection_a={0: ["red"]}, selection_b={0: ["blue"]},
            row_a=(7, ["NOT-red", "x"]), row_b=(7, ["blue", "y"]),
        )
        assert not scheme.match(d_a, d_b)

    def test_case3_same_query_different_join_selected_no_match(self, scheme, msk):
        k = scheme.new_query_key()
        d_a, d_b = _handles(
            scheme, msk, key=(k, k),
            selection_a={0: ["red"]}, selection_b={0: ["blue"]},
            row_a=(7, ["red", "x"]), row_b=(8, ["blue", "y"]),
        )
        assert not scheme.match(d_a, d_b)

    def test_case4_same_query_different_join_unselected_no_match(self, scheme, msk):
        k = scheme.new_query_key()
        d_a, d_b = _handles(
            scheme, msk, key=(k, k),
            selection_a={0: ["red"]}, selection_b={0: ["blue"]},
            row_a=(7, ["zzz", "x"]), row_b=(8, ["blue", "y"]),
        )
        assert not scheme.match(d_a, d_b)

    def test_case5_different_query_same_join_selected_no_match(self, scheme, msk):
        k1, k2 = scheme.new_query_key(), scheme.new_query_key()
        d_a, d_b = _handles(
            scheme, msk, key=(k1, k2),
            selection_a={0: ["red"]}, selection_b={0: ["blue"]},
            row_a=(7, ["red", "x"]), row_b=(7, ["blue", "y"]),
        )
        assert not scheme.match(d_a, d_b)

    def test_case6_different_query_same_join_unselected_no_match(self, scheme, msk):
        k1, k2 = scheme.new_query_key(), scheme.new_query_key()
        d_a, d_b = _handles(
            scheme, msk, key=(k1, k2),
            selection_a={0: ["red"]}, selection_b={0: ["blue"]},
            row_a=(7, ["zzz", "x"]), row_b=(7, ["blue", "y"]),
        )
        assert not scheme.match(d_a, d_b)

    def test_case7_different_query_different_join_selected_no_match(self, scheme, msk):
        k1, k2 = scheme.new_query_key(), scheme.new_query_key()
        d_a, d_b = _handles(
            scheme, msk, key=(k1, k2),
            selection_a={0: ["red"]}, selection_b={0: ["blue"]},
            row_a=(7, ["red", "x"]), row_b=(8, ["blue", "y"]),
        )
        assert not scheme.match(d_a, d_b)

    def test_case8_different_query_different_join_unselected_no_match(self, scheme, msk):
        k1, k2 = scheme.new_query_key(), scheme.new_query_key()
        d_a, d_b = _handles(
            scheme, msk, key=(k1, k2),
            selection_a={0: ["red"]}, selection_b={0: ["blue"]},
            row_a=(7, ["u", "x"]), row_b=(8, ["v", "y"]),
        )
        assert not scheme.match(d_a, d_b)

    def test_negative_cases_sampled(self, scheme, msk):
        """Repeat the no-match cases with fresh randomness (probabilistic)."""
        for trial in range(10):
            k1, k2 = scheme.new_query_key(), scheme.new_query_key()
            d_a, d_b = _handles(
                scheme, msk, key=(k1, k2),
                selection_a={0: [f"s{trial}"]}, selection_b={0: [f"s{trial}"]},
                row_a=(trial, [f"s{trial}", "x"]), row_b=(trial, [f"s{trial}", "y"]),
            )
            assert not scheme.match(d_a, d_b)


class TestSchemeMechanics:
    def test_in_clause_membership(self, scheme, msk):
        """Any of the t IN values selects the row."""
        k = scheme.new_query_key()
        token = scheme.token(msk, {0: ["a", "b", "c"]}, k)
        reference = scheme.decrypt(
            token, scheme.encrypt_row(msk, 1, ["a", "pad"])
        )
        for value in ("b", "c"):
            handle = scheme.decrypt(
                token, scheme.encrypt_row(msk, 1, [value, "pad"])
            )
            assert scheme.match(reference, handle)
        miss = scheme.decrypt(token, scheme.encrypt_row(msk, 1, ["d", "pad"]))
        assert not scheme.match(reference, miss)

    def test_selection_on_second_attribute(self, scheme, msk):
        k = scheme.new_query_key()
        token = scheme.token(msk, {1: ["wanted"]}, k)
        hit = scheme.decrypt(token, scheme.encrypt_row(msk, 5, ["x", "wanted"]))
        miss = scheme.decrypt(token, scheme.encrypt_row(msk, 5, ["x", "other"]))
        other = scheme.decrypt(token, scheme.encrypt_row(msk, 5, ["y", "wanted"]))
        assert scheme.match(hit, other)
        assert not scheme.match(hit, miss)

    def test_conjunctive_selection(self, scheme, msk):
        """Both IN clauses must hold (AND semantics)."""
        k = scheme.new_query_key()
        token = scheme.token(msk, {0: ["a"], 1: ["b"]}, k)
        both = scheme.decrypt(token, scheme.encrypt_row(msk, 9, ["a", "b"]))
        both2 = scheme.decrypt(token, scheme.encrypt_row(msk, 9, ["a", "b"]))
        only_first = scheme.decrypt(token, scheme.encrypt_row(msk, 9, ["a", "z"]))
        assert scheme.match(both, both2)
        assert not scheme.match(both, only_first)

    def test_non_pk_fk_join_many_to_many(self, scheme, msk):
        """Duplicate join values on both sides all produce equal handles."""
        k = scheme.new_query_key()
        token = scheme.token(msk, {}, k)
        handles = [
            scheme.decrypt(token, scheme.encrypt_row(msk, 3, [f"r{i}", "y"]))
            for i in range(4)
        ]
        assert all(scheme.match(handles[0], h) for h in handles[1:])

    def test_query_key_nonzero(self, scheme):
        keys = {scheme.new_query_key() for _ in range(50)}
        assert 0 not in keys
        assert len(keys) == 50

    def test_dimension_checks(self, scheme, msk):
        other = SecureJoinScheme(
            SecureJoinParams(num_attributes=3, in_clause_limit=3),
            FastBackend(), random.Random(1),
        )
        other_msk = other.setup()
        token = other.token(other_msk, {}, 5)
        ct = scheme.encrypt_row(msk, 1, ["a", "b"])
        with pytest.raises(SchemeError):
            scheme.decrypt(token, ct)

    def test_msk_params_mismatch(self, scheme):
        other = SecureJoinScheme(
            SecureJoinParams(num_attributes=3, in_clause_limit=3),
            FastBackend(), random.Random(1),
        )
        other_msk = other.setup()
        with pytest.raises(SchemeError):
            scheme.encrypt_row(other_msk, 1, ["a", "b"])

    def test_handles_from_same_row_same_token_are_stable(self, scheme, msk):
        k = scheme.new_query_key()
        token = scheme.token(msk, {}, k)
        ct = scheme.encrypt_row(msk, 1, ["a", "b"])
        assert scheme.decrypt(token, ct) == scheme.decrypt(token, ct)


@pytest.mark.bn254
class TestSchemeOnRealPairing:
    """The same core behaviours on the real BN254 backend."""

    def test_match_and_no_match(self, bn254_backend):
        params = SecureJoinParams(1, 1, "bn254")
        scheme = SecureJoinScheme(params, bn254_backend, random.Random(7))
        msk = scheme.setup()
        k = scheme.new_query_key()
        token = scheme.token(msk, {0: ["yes"]}, k)
        d1 = scheme.decrypt(token, scheme.encrypt_row(msk, 1, ["yes"]))
        d2 = scheme.decrypt(token, scheme.encrypt_row(msk, 1, ["yes"]))
        d3 = scheme.decrypt(token, scheme.encrypt_row(msk, 2, ["yes"]))
        d4 = scheme.decrypt(token, scheme.encrypt_row(msk, 1, ["no"]))
        assert scheme.match(d1, d2)
        assert not scheme.match(d1, d3)
        assert not scheme.match(d1, d4)

    def test_fresh_keys_unlinkable(self, bn254_backend):
        params = SecureJoinParams(1, 1, "bn254")
        scheme = SecureJoinScheme(params, bn254_backend, random.Random(8))
        msk = scheme.setup()
        token1 = scheme.token(msk, {}, scheme.new_query_key())
        token2 = scheme.token(msk, {}, scheme.new_query_key())
        ct = scheme.encrypt_row(msk, 1, ["a"])
        assert not scheme.match(scheme.decrypt(token1, ct), scheme.decrypt(token2, ct))
