"""Unit and property tests for matrices over Z_q."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.matrix import ZqMatrix, inner_product
from repro.crypto.params import CURVE_ORDER
from repro.errors import MatrixError

Q_SMALL = 97


def _random_matrix(n, q, seed=0):
    return ZqMatrix.random(n, q, random.Random(seed))


class TestConstruction:
    def test_rejects_ragged(self):
        with pytest.raises(MatrixError):
            ZqMatrix([[1, 2], [3]], Q_SMALL)

    def test_rejects_empty(self):
        with pytest.raises(MatrixError):
            ZqMatrix([], Q_SMALL)

    def test_rejects_tiny_modulus(self):
        with pytest.raises(MatrixError):
            ZqMatrix([[1]], 1)

    def test_reduces_entries(self):
        m = ZqMatrix([[Q_SMALL + 3, -1]], Q_SMALL)
        assert m.row(0) == (3, Q_SMALL - 1)

    def test_identity(self):
        eye = ZqMatrix.identity(3, Q_SMALL)
        assert eye.det() == 1
        assert eye.inverse() == eye


class TestDeterminantAndInverse:
    def test_known_det(self):
        m = ZqMatrix([[1, 2], [3, 4]], Q_SMALL)
        assert m.det() == (1 * 4 - 2 * 3) % Q_SMALL

    def test_singular(self):
        m = ZqMatrix([[1, 2], [2, 4]], Q_SMALL)
        assert m.det() == 0
        with pytest.raises(MatrixError):
            m.inverse()

    def test_inverse_round_trip(self):
        rng = random.Random(3)
        m = ZqMatrix.random_invertible(4, Q_SMALL, rng)
        assert m * m.inverse() == ZqMatrix.identity(4, Q_SMALL)
        assert m.inverse() * m == ZqMatrix.identity(4, Q_SMALL)

    def test_det_multiplicative(self):
        rng = random.Random(4)
        a = ZqMatrix.random(3, Q_SMALL, rng)
        b = ZqMatrix.random(3, Q_SMALL, rng)
        assert (a * b).det() == a.det() * b.det() % Q_SMALL

    def test_large_modulus(self):
        rng = random.Random(5)
        m = ZqMatrix.random_invertible(5, CURVE_ORDER, rng)
        assert m * m.inverse() == ZqMatrix.identity(5, CURVE_ORDER)

    @given(st.integers(min_value=2, max_value=5), st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=20, deadline=None)
    def test_det_of_transpose(self, n, seed):
        m = _random_matrix(n, Q_SMALL, seed)
        assert m.det() == m.transpose().det()


class TestDual:
    """The identity that makes the IPE correct: B (B*)^T = det(B) I."""

    def test_dual_identity_small(self):
        rng = random.Random(6)
        b = ZqMatrix.random_invertible(4, Q_SMALL, rng)
        b_star = b.dual()
        product = b * b_star.transpose()
        expected = ZqMatrix.identity(4, Q_SMALL).scale(b.det())
        assert product == expected

    def test_dual_identity_curve_order(self):
        rng = random.Random(7)
        b = ZqMatrix.random_invertible(6, CURVE_ORDER, rng)
        product = b * b.dual().transpose()
        assert product == ZqMatrix.identity(6, CURVE_ORDER).scale(b.det())

    def test_dual_of_singular_raises(self):
        m = ZqMatrix([[1, 1], [1, 1]], Q_SMALL)
        with pytest.raises(MatrixError):
            m.dual()

    def test_vectors_through_dual(self):
        """<vB, wB*> == det(B) <v, w> — the decryption identity."""
        q = CURVE_ORDER
        rng = random.Random(8)
        n = 5
        b = ZqMatrix.random_invertible(n, q, rng)
        b_star = b.dual()
        v = [rng.randrange(q) for _ in range(n)]
        w = [rng.randrange(q) for _ in range(n)]
        lhs = inner_product(b.vec_mat(v), b_star.vec_mat(w), q)
        rhs = b.det() * inner_product(v, w, q) % q
        assert lhs == rhs


class TestProducts:
    def test_vec_mat_matches_mat_mul(self):
        m = ZqMatrix([[1, 2, 3], [4, 5, 6], [7, 8, 9]], Q_SMALL)
        v = [2, 0, 5]
        expected = (ZqMatrix([v], Q_SMALL) * m).row(0)
        assert tuple(m.vec_mat(v)) == expected

    def test_mat_vec(self):
        m = ZqMatrix([[1, 2], [3, 4]], Q_SMALL)
        assert m.mat_vec([1, 1]) == [3, 7]

    def test_shape_mismatch(self):
        m = ZqMatrix([[1, 2], [3, 4]], Q_SMALL)
        with pytest.raises(MatrixError):
            m.vec_mat([1, 2, 3])
        with pytest.raises(MatrixError):
            m.mat_vec([1])
        with pytest.raises(MatrixError):
            _ = m * ZqMatrix([[1, 2, 3]], Q_SMALL)

    def test_modulus_mismatch(self):
        a = ZqMatrix([[1]], 5)
        b = ZqMatrix([[1]], 7)
        with pytest.raises(MatrixError):
            _ = a * b

    def test_inner_product_length_mismatch(self):
        with pytest.raises(MatrixError):
            inner_product([1], [1, 2], Q_SMALL)

    def test_inner_product_value(self):
        assert inner_product([1, 2, 3], [4, 5, 6], 100) == 32


class TestRandomInvertible:
    def test_always_invertible(self):
        rng = random.Random(10)
        for _ in range(5):
            m = ZqMatrix.random_invertible(3, Q_SMALL, rng)
            assert m.det() != 0

    def test_deterministic_given_seed(self):
        a = ZqMatrix.random(3, Q_SMALL, random.Random(11))
        b = ZqMatrix.random(3, Q_SMALL, random.Random(11))
        assert a == b
