"""Unit and property tests for the BN254 field tower."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.field import XI, Fp2, Fp6, Fp12, P
from repro.errors import FieldError

_rng = random.Random(42)


def _random_fp2(rng=_rng) -> Fp2:
    return Fp2(rng.randrange(P), rng.randrange(P))


def _random_fp6(rng=_rng) -> Fp6:
    return Fp6(_random_fp2(rng), _random_fp2(rng), _random_fp2(rng))


def _random_fp12(rng=_rng) -> Fp12:
    return Fp12(_random_fp6(rng), _random_fp6(rng))


fp2_elements = st.builds(
    Fp2, st.integers(min_value=0, max_value=P - 1),
    st.integers(min_value=0, max_value=P - 1),
)


class TestFp2:
    def test_u_squared_is_minus_one(self):
        u = Fp2(0, 1)
        assert u * u == Fp2(-1)

    def test_add_sub_round_trip(self):
        a, b = _random_fp2(), _random_fp2()
        assert (a + b) - b == a

    def test_mul_commutative(self):
        a, b = _random_fp2(), _random_fp2()
        assert a * b == b * a

    def test_mul_one(self):
        a = _random_fp2()
        assert a * Fp2.one() == a

    def test_square_matches_mul(self):
        a = _random_fp2()
        assert a.square() == a * a

    def test_inverse(self):
        a = _random_fp2()
        assert a * a.inverse() == Fp2.one()

    def test_inverse_zero_raises(self):
        with pytest.raises(FieldError):
            Fp2.zero().inverse()

    def test_mul_by_xi_matches_mul(self):
        a = _random_fp2()
        assert a.mul_by_xi() == a * XI

    def test_conjugate_is_frobenius(self):
        a = _random_fp2()
        assert a.conjugate() == a.pow(P)

    def test_pow_negative(self):
        a = _random_fp2()
        assert a.pow(-1) == a.inverse()

    @given(fp2_elements, fp2_elements, fp2_elements)
    @settings(max_examples=25, deadline=None)
    def test_distributive(self, a, b, c):
        assert a * (b + c) == a * b + a * c

    def test_fermat_little(self):
        # a^(p^2) == a in Fp2.
        a = _random_fp2()
        assert a.pow(P * P) == a


class TestFp6:
    def test_v_cubed_is_xi(self):
        v = Fp6(Fp2.zero(), Fp2.one(), Fp2.zero())
        v3 = v * v * v
        assert v3 == Fp6(XI, Fp2.zero(), Fp2.zero())

    def test_mul_by_v_matches(self):
        a = _random_fp6()
        v = Fp6(Fp2.zero(), Fp2.one(), Fp2.zero())
        assert a.mul_by_v() == a * v

    def test_inverse(self):
        a = _random_fp6()
        assert a * a.inverse() == Fp6.one()

    def test_mul_associative(self):
        a, b, c = _random_fp6(), _random_fp6(), _random_fp6()
        assert (a * b) * c == a * (b * c)

    def test_frobenius_is_p_power(self):
        # Verify on a few random elements that frobenius(a) == a^p by
        # checking multiplicativity + agreement on Fp2-embedded elements.
        a, b = _random_fp6(), _random_fp6()
        assert (a * b).frobenius() == a.frobenius() * b.frobenius()
        c = Fp2(12345, 678)
        embedded = Fp6(c, Fp2.zero(), Fp2.zero())
        assert embedded.frobenius() == Fp6(c.conjugate(), Fp2.zero(), Fp2.zero())

    def test_frobenius_order_six(self):
        a = _random_fp6()
        result = a
        for _ in range(6):
            result = result.frobenius()
        assert result == a


class TestFp12:
    def test_w_squared_is_v(self):
        w = Fp12(Fp6.zero(), Fp6.one())
        v = Fp12(Fp6(Fp2.zero(), Fp2.one(), Fp2.zero()), Fp6.zero())
        assert w * w == v

    def test_w_sixth_is_xi(self):
        w = Fp12(Fp6.zero(), Fp6.one())
        w6 = w.pow(6)
        assert w6 == Fp12(Fp6(XI, Fp2.zero(), Fp2.zero()), Fp6.zero())

    def test_inverse(self):
        a = _random_fp12()
        assert a * a.inverse() == Fp12.one()

    def test_square_matches_mul(self):
        a = _random_fp12()
        assert a.square() == a * a

    def test_conjugate_is_p6_power(self):
        a = _random_fp12()
        frob6 = a
        for _ in range(6):
            frob6 = frob6.frobenius()
        assert a.conjugate() == frob6

    def test_frobenius_multiplicative(self):
        a, b = _random_fp12(), _random_fp12()
        assert (a * b).frobenius() == a.frobenius() * b.frobenius()

    def test_frobenius_order_twelve(self):
        a = _random_fp12()
        result = a
        for _ in range(12):
            result = result.frobenius()
        assert result == a

    def test_frobenius_agrees_with_pow_on_base(self):
        a = Fp12.from_int(987654321)
        assert a.frobenius() == a  # base-field elements are fixed by Frobenius

    def test_pow_addition_law(self):
        a = _random_fp12()
        assert a.pow(13) * a.pow(29) == a.pow(42)

    def test_pow_zero(self):
        a = _random_fp12()
        assert a.pow(0) == Fp12.one()

    def test_to_bytes_round_trip_equality(self):
        a = _random_fp12()
        b = Fp12(a.b0, a.b1)
        assert a.to_bytes() == b.to_bytes()
        assert len(a.to_bytes()) == 384

    def test_hashable(self):
        a = _random_fp12()
        b = Fp12(a.b0, a.b1)
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_frobenius_is_actual_p_power(self):
        """The definitive check: frobenius(a) == a^p for a random element."""
        a = _random_fp12()
        assert a.frobenius() == a.pow(P)
