"""Unit tests for repro.db.table and predicates."""

from __future__ import annotations

import pytest

from repro.db.predicate import (
    AndPredicate,
    EqPredicate,
    InPredicate,
    NotPredicate,
    OrPredicate,
    TruePredicate,
)
from repro.db.schema import Schema
from repro.db.table import Table
from repro.errors import SchemaError


@pytest.fixture
def people() -> Table:
    schema = Schema.of(("id", "int"), ("name", "str"), ("age", "int"))
    return Table("people", schema, [
        (1, "ann", 30),
        (2, "bob", 25),
        (3, "cal", 30),
        (4, "dee", 40),
    ])


class TestTable:
    def test_len_and_iter(self, people):
        assert len(people) == 4
        assert list(people)[0] == (1, "ann", 30)

    def test_getitem(self, people):
        assert people[2] == (3, "cal", 30)

    def test_insert_validates(self, people):
        with pytest.raises(SchemaError):
            people.insert((5, "eve"))
        with pytest.raises(SchemaError):
            people.insert(("x", "eve", 20))

    def test_from_dicts(self):
        schema = Schema.of(("a", "int"), ("b", "str"))
        table = Table.from_dicts("t", schema, [{"a": 1, "b": "x"}, {"a": 2}])
        assert table[0] == (1, "x")
        assert table[1] == (2, None)

    def test_from_dicts_unknown_column(self):
        schema = Schema.of(("a", "int"))
        with pytest.raises(SchemaError):
            Table.from_dicts("t", schema, [{"z": 1}])

    def test_column_values(self, people):
        assert people.column_values("age") == [30, 25, 30, 40]

    def test_filter(self, people):
        adults = people.filter(EqPredicate("age", 30))
        assert len(adults) == 2
        assert all(row[2] == 30 for row in adults)

    def test_matching_indices(self, people):
        assert people.matching_indices(EqPredicate("age", 30)) == [0, 2]
        assert people.matching_indices(None) == [0, 1, 2, 3]

    def test_project(self, people):
        names = people.project(["name"])
        assert names.schema.names() == ("name",)
        assert names[1] == ("bob",)

    def test_rename_shares_rows(self, people):
        other = people.rename("other")
        assert other.name == "other"
        assert len(other) == len(people)

    def test_pretty_contains_header_and_rows(self, people):
        text = people.pretty(limit=2)
        assert "name" in text
        assert "ann" in text
        assert "more rows" in text

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Table("", Schema.of("a"))


class TestPredicates:
    def test_true(self, people):
        assert TruePredicate().evaluate(people[0], people.schema)

    def test_eq(self, people):
        pred = EqPredicate("name", "bob")
        assert pred.evaluate(people[1], people.schema)
        assert not pred.evaluate(people[0], people.schema)

    def test_in(self, people):
        pred = InPredicate("age", [25, 40])
        assert [pred.evaluate(r, people.schema) for r in people] == [
            False, True, False, True,
        ]

    def test_and_or_not(self, people):
        young = InPredicate("age", [25])
        named_ann = EqPredicate("name", "ann")
        assert not AndPredicate(young, named_ann).evaluate(people[0], people.schema)
        assert OrPredicate(young, named_ann).evaluate(people[0], people.schema)
        assert NotPredicate(young).evaluate(people[0], people.schema)

    def test_operator_sugar(self, people):
        pred = EqPredicate("age", 30) & ~EqPredicate("name", "cal")
        assert pred.evaluate(people[0], people.schema)
        assert not pred.evaluate(people[2], people.schema)
        either = EqPredicate("name", "bob") | EqPredicate("name", "dee")
        assert either.evaluate(people[1], people.schema)

    def test_referenced_columns(self):
        pred = AndPredicate(EqPredicate("a", 1), InPredicate("b", [2]))
        assert pred.referenced_columns() == frozenset({"a", "b"})
