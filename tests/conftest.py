"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.crypto.backend import BN254Backend, FastBackend


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG so failures are reproducible."""
    return random.Random(20220310)


@pytest.fixture
def fast_backend() -> FastBackend:
    return FastBackend()


@pytest.fixture(scope="session")
def bn254_backend() -> BN254Backend:
    """Session-scoped so the fixed-base tables are built once."""
    return BN254Backend()
