"""Unit tests for repro.db.schema."""

from __future__ import annotations

import pytest

from repro.db.schema import Column, Schema
from repro.errors import SchemaError


class TestColumn:
    def test_valid_types(self):
        for column_type in ("int", "str", "float", "bool"):
            Column("c", column_type)

    def test_unknown_type_rejected(self):
        with pytest.raises(SchemaError):
            Column("c", "blob")

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("")

    def test_accepts_none_as_null(self):
        assert Column("c", "int").accepts(None)

    def test_int_column(self):
        column = Column("c", "int")
        assert column.accepts(5)
        assert not column.accepts("5")
        assert not column.accepts(True)  # bool is not an int cell

    def test_float_column_accepts_int(self):
        assert Column("c", "float").accepts(3)
        assert Column("c", "float").accepts(3.5)

    def test_bool_column(self):
        assert Column("c", "bool").accepts(True)
        assert not Column("c", "bool").accepts(1)


class TestSchema:
    def test_of_builder(self):
        schema = Schema.of(("a", "int"), "b")
        assert schema.names() == ("a", "b")
        assert schema.column("b").type == "str"

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of("a", "a")

    def test_index_of(self):
        schema = Schema.of("a", "b", "c")
        assert schema.index_of("b") == 1
        with pytest.raises(SchemaError):
            schema.index_of("z")

    def test_contains(self):
        schema = Schema.of("a")
        assert "a" in schema
        assert "b" not in schema

    def test_validate_row_arity(self):
        schema = Schema.of(("a", "int"), ("b", "str"))
        schema.validate_row((1, "x"))
        with pytest.raises(SchemaError):
            schema.validate_row((1,))

    def test_validate_row_types(self):
        schema = Schema.of(("a", "int"),)
        with pytest.raises(SchemaError):
            schema.validate_row(("not-an-int",))

    def test_concat_with_prefixes(self):
        left = Schema.of("id", "name")
        right = Schema.of("id", "value")
        joined = left.concat(right, "L.", "R.")
        assert joined.names() == ("L.id", "L.name", "R.id", "R.value")

    def test_concat_collision_without_prefix_rejected(self):
        left = Schema.of("id")
        right = Schema.of("id")
        with pytest.raises(SchemaError):
            left.concat(right)

    def test_len(self):
        assert len(Schema.of("a", "b")) == 2
