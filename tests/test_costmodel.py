"""Tests for the join cost model and paper-shape extrapolation."""

from __future__ import annotations

import pytest

from repro.bench import experiments
from repro.bench.costmodel import (
    CostModel,
    PAPER_FIGURE3_POINTS,
    expected_decryptions,
    fit_join_cost,
    implied_paper_unit_cost,
    paper_shape_errors,
    predict_with_unit_cost,
)
from repro.bench.harness import BenchmarkRecord
from repro.errors import BenchmarkError


class TestExpectedDecryptions:
    def test_sf_001_s_100(self):
        # 1500 customers + 15000 orders, 1% each -> 15 + 150.
        assert expected_decryptions(0.01, 1 / 100) == 165

    def test_scales_linearly(self):
        assert expected_decryptions(0.1, 1 / 100) == pytest.approx(
            10 * expected_decryptions(0.01, 1 / 100), rel=0.01
        )


class TestFit:
    def test_recovers_synthetic_coefficients(self):
        model_true = (2e-6, 5e-7, 1e-3)
        records = []
        for decryptions, matches in [(100, 5), (500, 40), (1000, 90),
                                     (2000, 200), (4000, 350)]:
            seconds = (
                model_true[0] * decryptions
                + model_true[1] * matches
                + model_true[2]
            )
            records.append(BenchmarkRecord(
                {"d": decryptions}, seconds,
                extra={"decryptions": decryptions, "matches": matches},
            ))
        model = fit_join_cost(records)
        assert model.per_decryption == pytest.approx(model_true[0], rel=1e-6)
        assert model.per_match == pytest.approx(model_true[1], rel=1e-6)
        assert model.fixed == pytest.approx(model_true[2], rel=1e-6)
        assert model.predict(3000, 250) == pytest.approx(
            model_true[0] * 3000 + model_true[1] * 250 + model_true[2]
        )

    def test_too_few_points(self):
        with pytest.raises(BenchmarkError):
            fit_join_cost([])

    def test_fit_from_real_measurements(self):
        """Fit on actual figure3 runs; prediction must track reality.

        The measured joins are sub-millisecond at these scale factors,
        so a single GC pause or scheduler stall mid-sample (common late
        in a full-suite session with all the benchmark workloads on the
        heap) can dominate one record and flip the near-collinear fit's
        coefficients.  That is measurement noise, not a modeling
        failure: average over repeats and allow a clean-measurement
        retry before declaring the fit wrong.  Deterministic coverage
        of the fit math itself (no retries, exact coefficients) lives
        in ``test_recovers_synthetic_coefficients``.
        """
        last_error = None
        for _ in range(3):
            result = experiments.figure3(
                scale_factors=(0.002, 0.004), repeats=3
            )
            model = fit_join_cost(result.records)
            try:
                assert model.per_decryption > 0
                for record in result.records:
                    predicted = model.predict(
                        record.extra["decryptions"], record.extra["matches"]
                    )
                    assert predicted == pytest.approx(
                        record.seconds_mean, rel=1.0
                    )
                return
            except AssertionError as error:
                last_error = error
        raise last_error


class TestPaperShape:
    def test_single_unit_cost_explains_figure3(self):
        """One per-decryption constant reproduces all four reported
        corner points of Figure 3 to within 5% — the 'shape holds'
        claim of EXPERIMENTS.md, quantified."""
        errors = paper_shape_errors()
        assert all(error < 0.05 for error in errors.values()), errors

    def test_implied_unit_cost_matches_figure2(self):
        """The per-decryption cost implied by Figure 3 equals Figure 2's
        reported single-row decryption time (21.2 ms at t=1): the
        paper's two experiments are mutually consistent, and our
        analytic model captures both with one constant."""
        cost = implied_paper_unit_cost()
        assert cost == pytest.approx(0.0212, rel=0.05)

    def test_prediction_monotone_in_both_axes(self):
        cost = implied_paper_unit_cost()
        assert predict_with_unit_cost(cost, 0.1, 1 / 100) > (
            predict_with_unit_cost(cost, 0.01, 1 / 100)
        )
        assert predict_with_unit_cost(cost, 0.01, 1 / 12.5) > (
            predict_with_unit_cost(cost, 0.01, 1 / 100)
        )

    def test_paper_points_present(self):
        assert len(PAPER_FIGURE3_POINTS) == 4


class TestEngineCostModel:
    """The planner's per-engine runtime estimates and decision rule."""

    def _model(self, **overrides):
        from repro.bench.costmodel import FAST_ENGINE_COSTS
        from dataclasses import replace

        return replace(FAST_ENGINE_COSTS, **overrides)

    def test_default_models_per_backend(self):
        from repro.bench.costmodel import (
            BN254_ENGINE_COSTS,
            FAST_ENGINE_COSTS,
            default_engine_cost_model,
        )

        assert default_engine_cost_model("fast") is FAST_ENGINE_COSTS
        assert default_engine_cost_model("bn254") is BN254_ENGINE_COSTS
        # Unknown backends fall back to the fast-backend shape.
        assert default_engine_cost_model("???") is FAST_ENGINE_COSTS

    def test_serial_never_cheaper_than_batched(self):
        """Structural: same Miller loops, strictly more final
        exponentiations, and batch overhead <= one final exponentiation."""
        from repro.bench.costmodel import estimate_engine_costs

        model = self._model()
        for rows in (0, 1, 2, 7, 64, 1000, 131072):
            for dimension in (2, 5, 21, 88):
                est = estimate_engine_costs(
                    model, rows=rows, dimension=dimension,
                    workers=4, batch_size=64,
                )
                assert est["serial"] >= est["batched"]

    def test_parallel_wins_when_compute_dominates(self):
        from repro.bench.costmodel import BN254_ENGINE_COSTS, choose_engine

        chosen, estimates = choose_engine(
            BN254_ENGINE_COSTS, rows=64, dimension=21,
            workers=4, batch_size=64, pool_warm=False,
        )
        assert chosen == "parallel"
        assert estimates["parallel"] < estimates["batched"]

    def test_transport_dominates_on_fast_backend(self):
        """Exponent-group pairings are so cheap that IPC always loses:
        auto must stick to batched at any realistic size."""
        from repro.bench.costmodel import choose_engine

        model = self._model()
        for rows in (10, 1000, 100000):
            chosen, _ = choose_engine(
                model, rows=rows, dimension=21, workers=8,
                batch_size=64, pool_warm=True,
            )
            assert chosen == "batched"

    def test_single_worker_never_parallel(self):
        from repro.bench.costmodel import BN254_ENGINE_COSTS, choose_engine

        chosen, _ = choose_engine(
            BN254_ENGINE_COSTS, rows=512, dimension=21,
            workers=1, batch_size=64, pool_warm=True,
        )
        assert chosen == "batched"

    def test_switch_margin_protects_the_default(self):
        """A candidate barely under batched must NOT displace it."""
        from repro.bench.costmodel import choose_engine

        # Make parallel ~20% cheaper than batched: inside the 25% margin.
        model = self._model(
            element_transport=0.0, chunk_overhead=0.0, pool_spawn=0.0,
            miller_loop=1e-6, final_exponentiation=1e-9,
            row_overhead=2e-5, switch_margin=1.25,
        )
        chosen, estimates = choose_engine(
            model, rows=1000, dimension=10, workers=2,
            batch_size=64, pool_warm=True,
        )
        assert estimates["parallel"] < estimates["batched"]
        assert chosen == "batched"
        # Widen the gap beyond the margin: parallel may take over.
        model = self._model(
            element_transport=0.0, chunk_overhead=0.0, pool_spawn=0.0,
            miller_loop=1e-6, final_exponentiation=1e-9,
            row_overhead=0.0, switch_margin=1.25,
        )
        chosen, _ = choose_engine(
            model, rows=1000, dimension=10, workers=4,
            batch_size=64, pool_warm=True,
        )
        assert chosen == "parallel"

    def test_zero_rows_tie_goes_to_batched(self):
        """An empty side costs 0.0 under every engine; the tie must go
        to the default, never to serial via dict ordering."""
        from repro.bench.costmodel import choose_engine

        chosen, estimates = choose_engine(
            self._model(), rows=0, dimension=5, workers=4, batch_size=64
        )
        assert chosen == "batched"
        assert estimates["serial"] == estimates["batched"] == 0.0
        # A cold pool still charges its spawn cost, even for zero rows.
        assert estimates["parallel"] > 0.0

    def test_cold_pool_charges_spawn_cost(self):
        from repro.bench.costmodel import estimate_engine_costs

        model = self._model()
        cold = estimate_engine_costs(
            model, rows=100, dimension=5, workers=4, batch_size=64,
            pool_warm=False,
        )
        warm = estimate_engine_costs(
            model, rows=100, dimension=5, workers=4, batch_size=64,
            pool_warm=True,
        )
        assert cold["parallel"] == pytest.approx(
            warm["parallel"] + 4 * model.pool_spawn
        )
        assert cold["batched"] == warm["batched"]

    def test_allowlist_restricts_choice(self):
        from repro.bench.costmodel import BN254_ENGINE_COSTS, choose_engine
        from repro.errors import BenchmarkError

        chosen, _ = choose_engine(
            BN254_ENGINE_COSTS, rows=64, dimension=21, workers=4,
            batch_size=64, allowed=("serial", "batched"),
        )
        assert chosen == "batched"
        chosen, _ = choose_engine(
            BN254_ENGINE_COSTS, rows=64, dimension=21, workers=4,
            batch_size=64, allowed=("serial",),
        )
        assert chosen == "serial"
        with pytest.raises(BenchmarkError):
            choose_engine(
                BN254_ENGINE_COSTS, rows=64, dimension=21, workers=4,
                batch_size=64, allowed=(),
            )

    def test_invalid_inputs(self):
        from repro.bench.costmodel import estimate_engine_costs
        from repro.errors import BenchmarkError

        with pytest.raises(BenchmarkError):
            estimate_engine_costs(
                self._model(), rows=-1, dimension=5, workers=2, batch_size=8
            )
        with pytest.raises(BenchmarkError):
            estimate_engine_costs(
                self._model(), rows=5, dimension=0, workers=2, batch_size=8
            )


class TestCalibration:
    def test_calibrate_on_fast_backend(self):
        from repro.bench.costmodel import calibrate_engine_cost_model
        from repro.crypto.backend import FastBackend

        model = calibrate_engine_cost_model(
            FastBackend(), dimension=6, rows=16, repeats=2
        )
        assert model.backend == "fast"
        assert model.miller_loop > 0
        assert model.final_exponentiation > 0
        # Calibrated timings must preserve the structural ordering.
        from repro.bench.costmodel import estimate_engine_costs

        est = estimate_engine_costs(
            model, rows=256, dimension=6, workers=2, batch_size=64
        )
        assert est["batched"] <= est["serial"]

    def test_calibrate_rejects_degenerate_shapes(self):
        from repro.bench.costmodel import calibrate_engine_cost_model
        from repro.crypto.backend import FastBackend
        from repro.errors import BenchmarkError

        with pytest.raises(BenchmarkError):
            calibrate_engine_cost_model(FastBackend(), dimension=1)
        with pytest.raises(BenchmarkError):
            calibrate_engine_cost_model(FastBackend(), rows=0)


class TestOnlineCalibrator:
    """The planner's feedback loop: observed runtimes correct estimates."""

    def test_corrections_start_neutral(self):
        from repro.bench.costmodel import OnlineCalibrator

        calibrator = OnlineCalibrator(min_samples=2)
        assert calibrator.correction("batched") == 1.0
        assert calibrator.corrections() == {}
        calibrator.observe("batched", predicted_seconds=1.0,
                           actual_seconds=3.0)
        # One sample is below min_samples: still neutral.
        assert calibrator.correction("batched") == 1.0

    def test_converges_to_observed_ratio(self):
        from repro.bench.costmodel import OnlineCalibrator

        calibrator = OnlineCalibrator(alpha=0.5, min_samples=2)
        for _ in range(8):
            calibrator.observe("batched", 1.0, 3.0)
        assert calibrator.correction("batched") == pytest.approx(3.0, rel=0.01)
        assert calibrator.observations("batched") == 8
        assert "batched" in calibrator.corrections()

    def test_clamped_and_ignores_degenerate_observations(self):
        from repro.bench.costmodel import OnlineCalibrator

        calibrator = OnlineCalibrator(min_samples=1, clamp=(0.5, 2.0))
        calibrator.observe("serial", 1.0, 100.0)
        assert calibrator.correction("serial") == 2.0
        calibrator.observe("parallel", 0.0, 1.0)   # no prediction: skipped
        calibrator.observe("parallel", 1.0, 0.0)   # no runtime: skipped
        assert calibrator.observations("parallel") == 0

    def test_invalid_configuration(self):
        from repro.bench.costmodel import OnlineCalibrator
        from repro.errors import BenchmarkError

        with pytest.raises(BenchmarkError):
            OnlineCalibrator(alpha=0.0)
        with pytest.raises(BenchmarkError):
            OnlineCalibrator(min_samples=0)

    def test_corrections_change_the_planner_choice(self):
        """A model that overrates the pool is corrected away from it."""
        from repro.bench.costmodel import BN254_ENGINE_COSTS, choose_engine

        # The BN254 model picks parallel here...
        chosen, _ = choose_engine(
            BN254_ENGINE_COSTS, rows=64, dimension=21,
            workers=4, batch_size=64, pool_warm=True,
        )
        assert chosen == "parallel"
        # ...but observations saying parallel runs 100x the estimate
        # (transport-bound hardware) push the planner back to batched.
        corrected, estimates = choose_engine(
            BN254_ENGINE_COSTS, rows=64, dimension=21,
            workers=4, batch_size=64, pool_warm=True,
            corrections={"parallel": 100.0},
        )
        assert corrected == "batched"
        assert estimates["parallel"] > estimates["batched"]

    def test_calibrate_from_stats_rebuilds_corrections(self):
        """Recorded planner dicts (ServerStats.planner) re-seed the
        calibrator after a restart."""
        from repro.bench.costmodel import calibrate_from_stats

        records = [
            {"chosen": "batched", "estimates": {"batched": 1.0},
             "actual_seconds": 2.0},
            {"chosen": "batched", "estimates": {"batched": 1.0},
             "actual_seconds": 2.0},
            {"stage": "match", "chosen": "hash"},       # no actual: skipped
            "not-a-dict",                               # tolerated
        ]
        calibrator = calibrate_from_stats(records)
        assert calibrator.correction("batched") == pytest.approx(2.0)

    def test_auto_engine_records_and_learns(self):
        """End to end: the auto engine's planner records carry observed
        seconds, and after a handful of queries its corrections warm up."""
        import random

        from repro.core.client import SecureJoinClient
        from repro.core.engine import AutoEngine
        from repro.core.server import SecureJoinServer
        from repro.db.query import JoinQuery
        from repro.db.schema import Schema
        from repro.db.table import Table

        left = Table("L", Schema.of(("k", "int"), ("a", "str")),
                     [(i % 5, f"a{i}") for i in range(30)])
        right = Table("R", Schema.of(("k", "int"), ("b", "str")),
                      [(i % 5, f"b{i}") for i in range(20)])
        client = SecureJoinClient.for_tables(
            [(left, "k"), (right, "k")], in_clause_limit=1,
            rng=random.Random(3),
        )
        server = SecureJoinServer(client.params)
        server.store(client.encrypt_table(left, "k"))
        server.store(client.encrypt_table(right, "k"))
        engine = AutoEngine(batch_size=8)
        assert engine.calibrator is not None
        query = JoinQuery.build("L", "R", on=("k", "k"))
        for _ in range(3):
            result = server.execute_join(
                client.create_query(query), engine=engine
            )
        for side in result.stats.planner:
            assert side["actual_seconds"] > 0.0
            assert side["chosen"] in side["estimates"]
        # Two sides per query, three queries: past min_samples for the
        # (always chosen, on the fast backend) batched engine.
        assert engine.calibrator.observations("batched") >= 2
        assert "batched" in engine.calibrator.corrections()
        # Later planner records expose the corrections they ran under.
        assert "corrections" in result.stats.planner[-1]
        server.close()


class TestMatcherCostModel:
    """Pricing the SJ.Match stage: hash vs nested."""

    def _model(self):
        from repro.bench.costmodel import FAST_ENGINE_COSTS

        return FAST_ENGINE_COSTS

    def test_hash_wins_at_scale(self):
        from repro.bench.costmodel import choose_matcher

        chosen, estimates = choose_matcher(
            self._model(), build_rows=1000, probe_rows=1000
        )
        assert chosen == "hash"
        assert estimates["hash"] < estimates["nested"]

    def test_nested_wins_on_tiny_sides(self):
        from repro.bench.costmodel import choose_matcher

        chosen, estimates = choose_matcher(
            self._model(), build_rows=1, probe_rows=2
        )
        assert chosen == "nested"
        assert estimates["nested"] < estimates["hash"]

    def test_quadratic_term_dominates(self):
        from repro.bench.costmodel import estimate_matcher_costs

        model = self._model()
        small = estimate_matcher_costs(model, 100, 100)
        large = estimate_matcher_costs(model, 200, 200)
        assert large["nested"] == pytest.approx(4 * small["nested"])
        assert large["hash"] == pytest.approx(2 * small["hash"])

    def test_expected_matches_charge_both(self):
        from repro.bench.costmodel import estimate_matcher_costs

        model = self._model()
        without = estimate_matcher_costs(model, 50, 50, expected_matches=0)
        with_matches = estimate_matcher_costs(
            model, 50, 50, expected_matches=10
        )
        emit = 10 * model.pair_emit
        assert with_matches["hash"] == pytest.approx(without["hash"] + emit)
        assert with_matches["nested"] == pytest.approx(
            without["nested"] + emit
        )

    def test_invalid_inputs(self):
        from repro.bench.costmodel import estimate_matcher_costs
        from repro.errors import BenchmarkError

        with pytest.raises(BenchmarkError):
            estimate_matcher_costs(self._model(), -1, 5)
        with pytest.raises(BenchmarkError):
            estimate_matcher_costs(self._model(), 5, 5, expected_matches=-1)

    def test_inline_fallback_does_not_poison_parallel_correction(self):
        """A side priced as pooled but executed on the parallel engine's
        inline fallback must not feed the calibrator: the observation
        would charge the pooled estimate with single-threaded reality."""
        import random
        from dataclasses import replace

        from repro.bench.costmodel import FAST_ENGINE_COSTS
        from repro.core.client import SecureJoinClient
        from repro.core.engine import AutoEngine
        from repro.core.server import SecureJoinServer
        from repro.db.query import JoinQuery
        from repro.db.schema import Schema
        from repro.db.table import Table

        # Compute-dominated model: parallel wins by the margin even at
        # tiny sizes -- which the parallel engine then runs inline.
        model = replace(
            FAST_ENGINE_COSTS,
            miller_loop=1.0, final_exponentiation=1.0,
            element_transport=0.0, chunk_overhead=0.0, pool_spawn=0.0,
        )
        left = Table("L", Schema.of(("k", "int"), ("a", "str")),
                     [(i % 3, f"a{i}") for i in range(6)])
        right = Table("R", Schema.of(("k", "int"), ("b", "str")),
                      [(i % 3, f"b{i}") for i in range(4)])
        client = SecureJoinClient.for_tables(
            [(left, "k"), (right, "k")], in_clause_limit=1,
            rng=random.Random(7),
        )
        server = SecureJoinServer(client.params, workers=2)
        server.store(client.encrypt_table(left, "k"))
        server.store(client.encrypt_table(right, "k"))
        engine = AutoEngine(cost_model=model, workers=2, batch_size=64)
        query = JoinQuery.build("L", "R", on=("k", "k"))
        for _ in range(3):
            result = server.execute_join(
                client.create_query(query), engine=engine
            )
        # The planner chose parallel, the engine ran inline...
        assert result.stats.engine_selected == "parallel"
        assert result.stats.pool_generation == 0
        # ...and the calibrator recorded nothing for it.
        assert engine.calibrator.observations("parallel") == 0
        server.close()
