"""Tests for the join cost model and paper-shape extrapolation."""

from __future__ import annotations

import pytest

from repro.bench import experiments
from repro.bench.costmodel import (
    CostModel,
    PAPER_FIGURE3_POINTS,
    expected_decryptions,
    fit_join_cost,
    implied_paper_unit_cost,
    paper_shape_errors,
    predict_with_unit_cost,
)
from repro.bench.harness import BenchmarkRecord
from repro.errors import BenchmarkError


class TestExpectedDecryptions:
    def test_sf_001_s_100(self):
        # 1500 customers + 15000 orders, 1% each -> 15 + 150.
        assert expected_decryptions(0.01, 1 / 100) == 165

    def test_scales_linearly(self):
        assert expected_decryptions(0.1, 1 / 100) == pytest.approx(
            10 * expected_decryptions(0.01, 1 / 100), rel=0.01
        )


class TestFit:
    def test_recovers_synthetic_coefficients(self):
        model_true = (2e-6, 5e-7, 1e-3)
        records = []
        for decryptions, matches in [(100, 5), (500, 40), (1000, 90),
                                     (2000, 200), (4000, 350)]:
            seconds = (
                model_true[0] * decryptions
                + model_true[1] * matches
                + model_true[2]
            )
            records.append(BenchmarkRecord(
                {"d": decryptions}, seconds,
                extra={"decryptions": decryptions, "matches": matches},
            ))
        model = fit_join_cost(records)
        assert model.per_decryption == pytest.approx(model_true[0], rel=1e-6)
        assert model.per_match == pytest.approx(model_true[1], rel=1e-6)
        assert model.fixed == pytest.approx(model_true[2], rel=1e-6)
        assert model.predict(3000, 250) == pytest.approx(
            model_true[0] * 3000 + model_true[1] * 250 + model_true[2]
        )

    def test_too_few_points(self):
        with pytest.raises(BenchmarkError):
            fit_join_cost([])

    def test_fit_from_real_measurements(self):
        """Fit on actual figure3 runs; prediction must track reality."""
        result = experiments.figure3(
            scale_factors=(0.002, 0.004), repeats=1
        )
        model = fit_join_cost(result.records)
        assert model.per_decryption > 0
        for record in result.records:
            predicted = model.predict(
                record.extra["decryptions"], record.extra["matches"]
            )
            assert predicted == pytest.approx(record.seconds_mean, rel=1.0)


class TestPaperShape:
    def test_single_unit_cost_explains_figure3(self):
        """One per-decryption constant reproduces all four reported
        corner points of Figure 3 to within 5% — the 'shape holds'
        claim of EXPERIMENTS.md, quantified."""
        errors = paper_shape_errors()
        assert all(error < 0.05 for error in errors.values()), errors

    def test_implied_unit_cost_matches_figure2(self):
        """The per-decryption cost implied by Figure 3 equals Figure 2's
        reported single-row decryption time (21.2 ms at t=1): the
        paper's two experiments are mutually consistent, and our
        analytic model captures both with one constant."""
        cost = implied_paper_unit_cost()
        assert cost == pytest.approx(0.0212, rel=0.05)

    def test_prediction_monotone_in_both_axes(self):
        cost = implied_paper_unit_cost()
        assert predict_with_unit_cost(cost, 0.1, 1 / 100) > (
            predict_with_unit_cost(cost, 0.01, 1 / 100)
        )
        assert predict_with_unit_cost(cost, 0.01, 1 / 12.5) > (
            predict_with_unit_cost(cost, 0.01, 1 / 100)
        )

    def test_paper_points_present(self):
        assert len(PAPER_FIGURE3_POINTS) == 4
