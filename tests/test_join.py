"""Tests for plaintext joins and the Database executor."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.database import Database
from repro.db.join import hash_join, nested_loop_join
from repro.db.predicate import InPredicate
from repro.db.query import JoinQuery
from repro.db.schema import Schema
from repro.db.table import Table
from repro.errors import QueryError


def _tables():
    left = Table("L", Schema.of(("k", "int"), ("x", "str")), [
        (1, "a"), (2, "b"), (2, "c"), (3, "d"),
    ])
    right = Table("R", Schema.of(("id", "int"), ("k", "int"), ("y", "str")), [
        (10, 2, "p"), (11, 3, "q"), (12, 5, "r"), (13, 2, "s"),
    ])
    return left, right


class TestHashJoin:
    def test_basic(self):
        left, right = _tables()
        result = hash_join(left, right, "k", "k")
        assert result.stats.output_rows == 5  # k=2 gives 2x2, k=3 gives 1
        assert sorted(result.index_pairs) == [
            (1, 0), (1, 3), (2, 0), (2, 3), (3, 1),
        ]

    def test_schema_prefixing_on_collision(self):
        left, right = _tables()
        result = hash_join(left, right, "k", "k")
        assert "L.k" in result.table.schema.names()
        assert "R.k" in result.table.schema.names()

    def test_with_predicates(self):
        left, right = _tables()
        result = hash_join(
            left, right, "k", "k",
            InPredicate("x", ["b"]), InPredicate("y", ["p", "s"]),
        )
        assert sorted(result.index_pairs) == [(1, 0), (1, 3)]

    def test_empty_result(self):
        left, right = _tables()
        result = hash_join(
            left, right, "k", "k", InPredicate("x", ["nope"]), None
        )
        assert result.index_pairs == []
        assert len(result.table) == 0

    def test_duplicate_keys_cross_product(self):
        left = Table("L", Schema.of(("k", "int")), [(1,), (1,)])
        right = Table("R", Schema.of(("j", "int")), [(1,), (1,), (1,)])
        result = hash_join(left, right, "k", "j")
        assert result.stats.output_rows == 6


class TestNestedLoopJoin:
    def test_matches_hash_join(self):
        left, right = _tables()
        hash_result = hash_join(left, right, "k", "k")
        nested_result = nested_loop_join(left, right, "k", "k")
        assert sorted(hash_result.index_pairs) == sorted(nested_result.index_pairs)
        assert sorted(hash_result.table.rows()) == sorted(nested_result.table.rows())

    def test_quadratic_comparisons(self):
        left, right = _tables()
        nested = nested_loop_join(left, right, "k", "k")
        assert nested.stats.comparisons == len(left) * len(right)
        hashed = hash_join(left, right, "k", "k")
        # Hash join only "compares" on actual bucket hits.
        assert hashed.stats.comparisons < nested.stats.comparisons

    @given(
        st.lists(st.integers(min_value=0, max_value=5), min_size=0, max_size=15),
        st.lists(st.integers(min_value=0, max_value=5), min_size=0, max_size=15),
    )
    @settings(max_examples=30, deadline=None)
    def test_equivalence_property(self, left_keys, right_keys):
        left = Table("L", Schema.of(("k", "int")), [(k,) for k in left_keys])
        right = Table("R", Schema.of(("j", "int")), [(k,) for k in right_keys])
        if not left_keys or not right_keys:
            return
        hash_pairs = sorted(hash_join(left, right, "k", "j").index_pairs)
        nested_pairs = sorted(nested_loop_join(left, right, "k", "j").index_pairs)
        assert hash_pairs == nested_pairs


class TestDatabase:
    def test_execute_matches_direct_join(self):
        left, right = _tables()
        db = Database()
        db.add_table(left)
        db.add_table(right)
        query = JoinQuery.build("L", "R", on=("k", "k"),
                                where_left={"x": ["b", "d"]})
        result = db.execute(query)
        assert sorted(result.index_pairs) == [(1, 0), (1, 3), (3, 1)]

    def test_nested_algorithm(self):
        left, right = _tables()
        db = Database()
        db.add_table(left)
        db.add_table(right)
        query = JoinQuery.build("L", "R", on=("k", "k"))
        assert sorted(db.execute(query, "nested").index_pairs) == sorted(
            db.execute(query, "hash").index_pairs
        )

    def test_unknown_table(self):
        db = Database()
        with pytest.raises(QueryError):
            db.execute(JoinQuery.build("A", "B", on=("x", "y")))

    def test_duplicate_table_rejected(self):
        db = Database()
        left, _ = _tables()
        db.add_table(left)
        with pytest.raises(QueryError):
            db.add_table(left)

    def test_unknown_join_column(self):
        left, right = _tables()
        db = Database()
        db.add_table(left)
        db.add_table(right)
        with pytest.raises(QueryError):
            db.execute(JoinQuery.build("L", "R", on=("nope", "k")))

    def test_unknown_algorithm(self):
        left, right = _tables()
        db = Database()
        db.add_table(left)
        db.add_table(right)
        with pytest.raises(QueryError):
            db.execute(JoinQuery.build("L", "R", on=("k", "k")), "sort-merge")

    def test_selection_on_join_column_rejected(self):
        left, right = _tables()
        db = Database()
        db.add_table(left)
        db.add_table(right)
        query = JoinQuery.build("L", "R", on=("k", "k"), where_left={"k": [1]})
        with pytest.raises(QueryError):
            db.execute(query)
