"""Tests for the restricted SQL parser."""

from __future__ import annotations

import pytest

from repro.db.schema import Schema
from repro.db.sql import parse_join_query
from repro.errors import QueryError

TEAMS = Schema.of(("key", "int"), ("name", "str"))
EMPLOYEES = Schema.of(
    ("record", "int"), ("employee", "str"), ("role", "str"), ("team", "int")
)


class TestParser:
    def test_paper_query(self):
        query = parse_join_query(
            "SELECT * FROM Employees JOIN Teams ON Team = Key "
            "WHERE Name = 'Web Application' AND Role = 'Tester'",
            left_schema=Schema.of(
                ("Record", "int"), ("Employee", "str"),
                ("Role", "str"), ("Team", "int"),
            ),
            right_schema=Schema.of(("Key", "int"), ("Name", "str")),
        )
        assert query.left_table == "Employees"
        assert query.right_table == "Teams"
        assert query.left_join_column == "Team"
        assert query.right_join_column == "Key"
        assert query.left_selection.as_dict() == {"Role": ("Tester",)}
        assert query.right_selection.as_dict() == {"Name": ("Web Application",)}

    def test_in_clause(self):
        query = parse_join_query(
            "SELECT * FROM A JOIN B ON A.x = B.y "
            "WHERE A.c IN (1, 2, 3) AND B.d IN ('p')"
        )
        assert query.left_selection.as_dict() == {"c": (1, 2, 3)}
        assert query.right_selection.as_dict() == {"d": ("p",)}

    def test_qualified_on_reversed(self):
        query = parse_join_query("SELECT * FROM A JOIN B ON B.y = A.x")
        assert query.left_join_column == "x"
        assert query.right_join_column == "y"

    def test_no_where(self):
        query = parse_join_query("SELECT * FROM A JOIN B ON A.x = B.y")
        assert query.left_selection.is_empty
        assert query.right_selection.is_empty

    def test_numeric_literals(self):
        query = parse_join_query(
            "SELECT * FROM A JOIN B ON A.x = B.y WHERE A.c IN (1, 2.5, -3)"
        )
        assert query.left_selection.as_dict() == {"c": (1, 2.5, -3)}

    def test_double_quoted_strings(self):
        query = parse_join_query(
            'SELECT * FROM A JOIN B ON A.x = B.y WHERE A.c = "hi there"'
        )
        assert query.left_selection.as_dict() == {"c": ("hi there",)}

    def test_case_insensitive_keywords(self):
        query = parse_join_query(
            "select * from A join B on A.x = B.y where A.c in (1)"
        )
        assert query.left_selection.as_dict() == {"c": (1,)}

    def test_roundtrip_via_str(self):
        query = parse_join_query(
            "SELECT * FROM A JOIN B ON A.x = B.y WHERE A.c IN (1, 2)"
        )
        reparsed = parse_join_query(str(query).replace("A.", "A.").replace("B.", "B."),
                                    left_schema=Schema.of(("x", "int"), ("c", "int")),
                                    right_schema=Schema.of(("y", "int")))
        assert reparsed.left_selection.as_dict() == {"c": (1, 2)}


class TestParserErrors:
    def test_garbage(self):
        with pytest.raises(QueryError):
            parse_join_query("DROP TABLE students")

    def test_missing_on(self):
        with pytest.raises(QueryError):
            parse_join_query("SELECT * FROM A JOIN B WHERE A.x = 1")

    def test_unqualified_without_schema(self):
        with pytest.raises(QueryError):
            parse_join_query("SELECT * FROM A JOIN B ON x = y")

    def test_ambiguous_column(self):
        schema = Schema.of(("x", "int"),)
        with pytest.raises(QueryError):
            parse_join_query(
                "SELECT * FROM A JOIN B ON x = x",
                left_schema=schema, right_schema=schema,
            )

    def test_unknown_qualifier(self):
        with pytest.raises(QueryError):
            parse_join_query("SELECT * FROM A JOIN B ON C.x = B.y")

    def test_on_same_side(self):
        with pytest.raises(QueryError):
            parse_join_query("SELECT * FROM A JOIN B ON A.x = A.y")

    def test_duplicate_where_column(self):
        with pytest.raises(QueryError):
            parse_join_query(
                "SELECT * FROM A JOIN B ON A.x = B.y "
                "WHERE A.c IN (1) AND A.c IN (2)"
            )

    def test_unterminated_string(self):
        with pytest.raises(QueryError):
            parse_join_query("SELECT * FROM A JOIN B ON A.x = B.y WHERE A.c = 'oops")

    def test_trailing_tokens(self):
        with pytest.raises(QueryError):
            parse_join_query(
                "SELECT * FROM A JOIN B ON A.x = B.y WHERE A.c = 1 ORDER"
            )

    def test_empty_in_clause(self):
        with pytest.raises(QueryError):
            parse_join_query(
                "SELECT * FROM A JOIN B ON A.x = B.y WHERE A.c IN ()"
            )
