"""Integration tests: the ``python -m repro.net`` server as a subprocess.

Drives the real deployment shape — a separate server process, real
sockets, encrypted tables loaded from disk — and the operational
contract: concurrent remote joins against one process, graceful SIGTERM
drain (in-flight streams finish, exit code 0), and no orphaned worker
processes or leaked listening sockets afterwards.
"""

from __future__ import annotations

import json
import os
import random
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core.client import SecureJoinClient
from repro.core.server import SecureJoinServer
from repro.db.query import JoinQuery
from repro.db.schema import Schema
from repro.db.table import Table
from repro.net import RemoteJoinClient
from repro.store.tables import save_encrypted_table

_REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = _REPO_ROOT / "src"


def _dataset(tmp_path, n_rows=40, seed=23):
    """Encrypt two joinable tables to disk; return (client, paths)."""
    keys = [i % 7 for i in range(n_rows)]
    left = Table("L", Schema.of(("k", "int"), ("a", "str")),
                 [(k, f"a{i}") for i, k in enumerate(keys)])
    right = Table("R", Schema.of(("k", "int"), ("b", "str")),
                  [(k, f"b{i}") for i, k in enumerate(keys)])
    client = SecureJoinClient.for_tables(
        [(left, "k"), (right, "k")],
        in_clause_limit=1,
        rng=random.Random(seed),
    )
    backend = client.scheme.backend
    paths = []
    for table, column in ((left, "k"), (right, "k")):
        encrypted = client.encrypt_table(table, column)
        path = tmp_path / f"{table.name}.rprot"
        save_encrypted_table(encrypted, path, backend)
        paths.append(path)
    return client, paths


def _params_json(client) -> str:
    params = client.params
    return json.dumps({
        "num_attributes": params.num_attributes,
        "in_clause_limit": params.in_clause_limit,
        "backend_name": params.backend_name,
    })


def _launch(tmp_path, client, paths, *extra):
    """Start ``python -m repro.net``; return (process, host, port)."""
    port_file = tmp_path / "service.port"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_SRC)
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.net",
            "--params", _params_json(client),
            "--table", str(paths[0]),
            "--table", str(paths[1]),
            "--port", "0",
            "--port-file", str(port_file),
            *extra,
        ],
        env=env,
        cwd=_REPO_ROOT,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if process.poll() is not None:
            _, err = process.communicate(timeout=5)
            raise AssertionError(
                f"server died at startup (rc={process.returncode}): "
                f"{err.decode(errors='replace')}"
            )
        if port_file.exists():
            text = port_file.read_text().strip()
            if text:
                host, port = text.rsplit(":", 1)
                return process, host, int(port)
        time.sleep(0.05)
    process.kill()
    raise AssertionError("server never published its port")


def _finish(process, timeout=30) -> int:
    """Wait for exit, collecting output; kill on overrun."""
    try:
        process.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:
        process.kill()
        process.communicate(timeout=5)
        raise AssertionError("server did not exit in time")
    return process.returncode


def _reference(client, paths):
    from repro.store.tables import load_encrypted_table

    server = SecureJoinServer(client.params)
    backend = client.scheme.backend
    for path in paths:
        server.store(load_encrypted_table(path, backend))
    query = client.create_query(JoinQuery.build("L", "R", on=("k", "k")))
    result = server.execute_join(query)
    server.close()
    return result


def _query(client):
    return client.create_query(JoinQuery.build("L", "R", on=("k", "k")))


def _python_pids() -> set[int]:
    """PIDs of every live python process (orphan detection baseline)."""
    out = subprocess.run(
        ["ps", "-eo", "pid=,comm="], capture_output=True, text=True,
        check=True,
    ).stdout
    pids = set()
    for line in out.splitlines():
        pid, _, comm = line.strip().partition(" ")
        if "python" in comm:
            pids.add(int(pid))
    return pids


class TestServerProcess:
    def test_concurrent_remote_joins_and_graceful_exit(self, tmp_path):
        client, paths = _dataset(tmp_path)
        reference = _reference(client, paths)
        baseline_pids = _python_pids()
        process, host, port = _launch(
            tmp_path, client, paths, "--engine", "serial",
        )
        try:
            results = {}
            errors = []

            def run(name):
                try:
                    with RemoteJoinClient(
                        host, port, client.scheme.backend
                    ) as rc:
                        results[name] = rc.execute_join(_query(client))
                except Exception as error:  # noqa: BLE001 - collected
                    errors.append((name, error))

            threads = [
                threading.Thread(target=run, args=(i,)) for i in range(3)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not errors
            assert len(results) == 3
            for result in results.values():
                assert result.index_pairs == reference.index_pairs
                assert result.left_payloads == reference.left_payloads
        finally:
            process.send_signal(signal.SIGTERM)
            returncode = _finish(process)
        assert returncode == 0
        # The listener is gone...
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=1)
        # ...and no orphaned python processes survived the server.
        leftover = _python_pids() - baseline_pids
        assert process.pid not in leftover
        assert not leftover, f"orphaned processes: {leftover}"

    def test_sigterm_mid_stream_drains_gracefully(self, tmp_path):
        client, paths = _dataset(tmp_path, n_rows=60)
        reference = _reference(client, paths)
        process, host, port = _launch(
            tmp_path, client, paths, "--engine", "serial",
            "--drain-timeout", "60",
        )
        rc = RemoteJoinClient(
            host, port, client.scheme.backend, max_buffered_batches=1
        )
        try:
            stream = rc.stream_join(_query(client))
            batches = [next(stream)]  # the stream is live
            # SIGTERM lands while the stream is in flight: drain must
            # let it run to completion, not cut it.
            process.send_signal(signal.SIGTERM)
            time.sleep(0.1)
            while True:
                try:
                    batches.append(next(stream))
                except StopIteration as stop:
                    result = stop.value
                    break
            assert result.index_pairs == reference.index_pairs
            assert result.left_payloads == reference.left_payloads
            assert sum(len(b.index_pairs) for b in batches) == len(
                reference.index_pairs
            )
        finally:
            rc.close()
            returncode = _finish(process)
        assert returncode == 0

    def test_worker_pool_shuts_down_with_the_server(self, tmp_path):
        client, paths = _dataset(tmp_path, n_rows=80)
        baseline_pids = _python_pids()
        process, host, port = _launch(
            tmp_path, client, paths,
            "--engine", "parallel", "--workers", "2",
        )
        try:
            with RemoteJoinClient(host, port, client.scheme.backend) as rc:
                result = rc.execute_join(_query(client))
                assert result.index_pairs
        finally:
            process.send_signal(signal.SIGTERM)
            returncode = _finish(process, timeout=60)
        assert returncode == 0
        # Pool workers (separate python processes) went down with it.
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            leftover = _python_pids() - baseline_pids
            if not leftover:
                break
            time.sleep(0.1)
        assert not leftover, f"orphaned pool workers: {leftover}"

    def test_bad_params_fail_fast(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(_SRC)
        process = subprocess.run(
            [
                sys.executable, "-m", "repro.net",
                "--params", "not json",
            ],
            env=env,
            cwd=_REPO_ROOT,
            capture_output=True,
            timeout=60,
        )
        assert process.returncode == 2
        assert b"bad --params" in process.stderr
