"""Prepared-row pairing: precomputation equivalence, accounting, storage.

The tentpole invariant: a prepared row replays line coefficients that
depend only on the stored G2 ciphertext, so every prepared entry point
must produce *byte-identical* results to the raw fast path (which in
turn matches the reference pairing).  The satellites pin the op-counter
contract (``gt_generator_power`` pays exactly one pairing per backend
lifetime; fast and BN254 report the same counts for the same calls),
thread-safe fixed-base initialization, and the v2 store format.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.crypto.backend import (
    BN254Backend,
    FastBackend,
    FastPrepared,
    PreparedRow,
    _FixedBaseTable,
)
from repro.crypto.curve import G1Point, G2Point
from repro.crypto.pairing import multi_pairing
from repro.crypto.pairing_fast import (
    PREPARED_COEFF_COUNT,
    PREPARED_ELEMENT_SIZE,
    G2Prepared,
    miller_loop_fast,
    miller_loop_prepared,
    multi_pairing_fast,
    multi_pairing_prepared,
    pairing_fast,
    pairing_prepared,
)

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is an optional dev dep
    HAVE_HYPOTHESIS = False

_rng = random.Random(31337)


@pytest.mark.bn254
class TestPreparedPairing:
    """G2Prepared replay must equal the raw fast Miller loop exactly."""

    def test_miller_loop_replay_identical(self):
        p = G1Point.generator() * 7
        q = G2Point.generator() * 11
        prepared = G2Prepared.from_point(q)
        assert len(prepared.coeffs) == PREPARED_COEFF_COUNT
        assert miller_loop_prepared(prepared, p) == miller_loop_fast(q, p)

    def test_pairing_replay_identical(self):
        p = G1Point.generator() * 5
        q = G2Point.generator() * 9
        prepared = G2Prepared.from_point(q)
        assert pairing_prepared(p, prepared) == pairing_fast(p, q)

    def test_multi_pairing_prepared_matches_reference(self):
        pairs = []
        for _ in range(3):
            a = _rng.randrange(2, 10**9)
            b = _rng.randrange(2, 10**9)
            pairs.append((G1Point.generator() * a, G2Point.generator() * b))
        prepared_pairs = [
            (p, G2Prepared.from_point(q)) for p, q in pairs
        ]
        fused = multi_pairing_prepared(prepared_pairs)
        assert fused == multi_pairing_fast(pairs)
        assert fused == multi_pairing(pairs)
        assert fused.to_bytes() == multi_pairing(pairs).to_bytes()

    def test_infinity_pairs_are_skipped(self):
        live = (G1Point.generator() * 3, G2Point.generator() * 4)
        prepared_live = (live[0], G2Prepared.from_point(live[1]))
        with_infinity = [
            (G1Point.infinity(), G2Prepared.from_point(G2Point.generator())),
            prepared_live,
            (live[0], G2Prepared.from_point(G2Point.infinity())),
        ]
        assert multi_pairing_prepared(with_infinity) == multi_pairing([live])

    def test_serialization_round_trip(self):
        prepared = G2Prepared.from_point(G2Point.generator() * 13)
        blob = prepared.to_bytes()
        assert len(blob) == PREPARED_ELEMENT_SIZE
        clone = G2Prepared.from_bytes(blob)
        assert clone.to_bytes() == blob
        p = G1Point.generator() * 2
        assert miller_loop_prepared(clone, p) == miller_loop_prepared(
            prepared, p
        )

    def test_infinity_serialization_round_trip(self):
        prepared = G2Prepared.from_point(G2Point.infinity())
        assert prepared.is_infinity()
        clone = G2Prepared.from_bytes(prepared.to_bytes())
        assert clone.is_infinity()

    @pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
    @settings(max_examples=5, deadline=None)
    @given(
        scalars=st.lists(
            st.tuples(st.integers(1, 2**60), st.integers(1, 2**60)),
            min_size=1,
            max_size=3,
        )
    )
    def test_property_prepared_equals_fast_equals_reference(self, scalars):
        pairs = [
            (G1Point.generator() * a, G2Point.generator() * b)
            for a, b in scalars
        ]
        prepared_pairs = [
            (p, G2Prepared.from_point(q)) for p, q in pairs
        ]
        reference = multi_pairing(pairs)
        assert multi_pairing_fast(pairs) == reference
        assert multi_pairing_prepared(prepared_pairs) == reference


class TestPreparedRowContainer:
    def test_iterates_prepared_elements(self):
        backend = FastBackend()
        row = backend.prepare_row(backend.g2_powers([3, 5, 7]))
        assert isinstance(row, PreparedRow)
        assert len(row) == 3
        assert all(isinstance(e, FastPrepared) for e in row)
        assert row.elements == tuple(backend.g2_powers([3, 5, 7]))

    def test_rejects_length_mismatch(self):
        with pytest.raises(Exception):
            PreparedRow((1, 2), (FastPrepared(1),))


class TestOpAccounting:
    """All pairing entry points must touch ``ops`` consistently."""

    def test_gt_generator_power_pays_one_pairing_total_fast(self):
        backend = FastBackend()
        backend.gt_generator_power(3)
        assert backend.ops.miller_loops == 1
        assert backend.ops.final_exponentiations == 1
        assert backend.ops.gt_exponentiations == 1
        for exponent in (5, 7, 11):
            backend.gt_generator_power(exponent)
        # The base pairing is cached: only GT exponentiations accrue.
        assert backend.ops.miller_loops == 1
        assert backend.ops.final_exponentiations == 1
        assert backend.ops.gt_exponentiations == 4

    @pytest.mark.bn254
    def test_gt_generator_power_pays_one_pairing_total_bn254(self):
        backend = BN254Backend()
        backend.gt_generator_power(3)
        assert backend.ops.miller_loops == 1
        assert backend.ops.final_exponentiations == 1
        assert backend.ops.gt_exponentiations == 1
        backend.gt_generator_power(5)
        backend.gt_pow(backend.gt_generator_power(2), 6)
        assert backend.ops.miller_loops == 1
        assert backend.ops.final_exponentiations == 1
        assert backend.ops.gt_exponentiations == 4

    @pytest.mark.bn254
    def test_same_counts_for_same_calls(self):
        """The fast backend models BN254's op counts exactly —
        including the prepared/raw split (DESIGN contract §4)."""

        def drive(backend):
            token = backend.g1_powers([1, 2, 3])
            raw_rows = [
                backend.g2_powers([4, 5, 6]),
                backend.g2_powers([7, 0, 9]),
            ]
            backend.pair_vectors_batch(token, raw_rows)
            prepared = [backend.prepare_row(row) for row in raw_rows]
            backend.pair_vectors_batch(token, prepared)
            backend.pair_vectors(
                token, [prepared[0][0], raw_rows[0][1], prepared[0][2]]
            )
            backend.gt_generator_power(5)
            backend.gt_generator_power(6)
            backend.gt_pow(backend.gt_identity(), 3)
            return backend.ops.snapshot()

        assert drive(FastBackend()) == drive(BN254Backend())

    def test_prepared_results_identical_fast(self):
        backend = FastBackend()
        token = backend.g1_powers([2, 3, 4])
        rows = [backend.g2_powers([r, r + 1, r + 2]) for r in range(1, 6)]
        raw = backend.pair_vectors_batch(token, rows)
        prepared = backend.pair_vectors_batch(
            token, [backend.prepare_row(row) for row in rows]
        )
        assert [gt.to_bytes() for gt in raw] == [
            gt.to_bytes() for gt in prepared
        ]
        assert backend.ops.miller_loops == backend.ops.prepared_miller_loops

    @pytest.mark.bn254
    def test_prepared_results_identical_bn254(self):
        backend = BN254Backend()
        token = backend.g1_powers([2, 3])
        rows = [backend.g2_powers([4, 5]), backend.g2_powers([6, 7])]
        raw = backend.pair_vectors_batch(token, rows)
        prepared = backend.pair_vectors_batch(
            token, [backend.prepare_row(row) for row in rows]
        )
        assert [gt.to_bytes() for gt in raw] == [
            gt.to_bytes() for gt in prepared
        ]
        assert backend.ops.prepared_miller_loops == 4
        assert backend.ops.preparations == 4

    @pytest.mark.bn254
    def test_mixed_raw_and_prepared_vector(self):
        backend = BN254Backend()
        token = backend.g1_powers([2, 3, 4])
        row = backend.g2_powers([5, 6, 7])
        prepared = backend.prepare_row(row)
        mixed = [prepared[0], row[1], prepared[2]]
        raw_gt = backend.pair_vectors(token, row)
        mixed_gt = backend.pair_vectors(token, mixed)
        assert raw_gt.to_bytes() == mixed_gt.to_bytes()


class TestPreparedCodec:
    def test_fast_round_trip(self):
        backend = FastBackend()
        row = backend.prepare_row(backend.g2_powers([9, 10]))
        for element in row:
            blob = backend.encode_prepared(element)
            assert len(blob) == backend.prepared_element_size
            clone = backend.decode_prepared(blob)
            assert clone.value == element.value

    @pytest.mark.bn254
    def test_bn254_round_trip_byte_identity(self):
        backend = BN254Backend()
        row = backend.prepare_row(backend.g2_powers([9, 10]))
        token = backend.g1_powers([2, 3])
        direct = backend.pair_vectors(token, row)
        decoded = PreparedRow(
            row.elements,
            tuple(
                backend.decode_prepared(backend.encode_prepared(e))
                for e in row
            ),
        )
        replayed = backend.pair_vectors(token, decoded)
        assert direct.to_bytes() == replayed.to_bytes()


class TestThreadSafeFixedBase:
    @pytest.mark.bn254
    def test_concurrent_g1_init_builds_once(self, monkeypatch):
        builds = []
        original_init = _FixedBaseTable.__init__

        def counting_init(self, base, order):
            builds.append(threading.get_ident())
            original_init(self, base, order)

        monkeypatch.setattr(_FixedBaseTable, "__init__", counting_init)
        backend = BN254Backend()
        barrier = threading.Barrier(4)
        results = []

        def race():
            barrier.wait()
            results.append(backend.g1_power(7))

        threads = [threading.Thread(target=race) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # One G1 table build despite four racing threads, and every
        # thread saw the same point.
        assert len(builds) == 1
        assert all(point == results[0] for point in results)

    @pytest.mark.bn254
    def test_pickle_drops_gt_cache_and_rebuilds_lock(self):
        import pickle

        backend = BN254Backend()
        backend.gt_generator_power(3)
        assert backend._gt_base is not None
        blob = pickle.dumps(backend)
        assert len(blob) < 4096
        clone = pickle.loads(blob)
        assert clone._gt_base is None
        # The recreated lock must actually work.
        assert clone.g1_power(5) == backend.g1_power(5)
        assert clone.gt_generator_power(3) == backend.gt_generator_power(3)


class TestWindowedFixedBase:
    @pytest.mark.bn254
    def test_windowed_table_matches_scalar_mult(self, bn254_backend):
        generator = G1Point.generator()
        for exponent in (1, 2, 15, 16, 255, 257, 2**64 + 12345):
            assert bn254_backend.g1_power(exponent) == generator * exponent


class TestEnginePreparedEquivalence:
    """All engines yield identical handles on raw and prepared rows."""

    def _fixture(self):
        backend = FastBackend()
        token = backend.g1_powers(range(2, 8))
        rows = [
            backend.g2_powers(range(r, r + 6)) for r in range(1, 41)
        ]
        prepared = [backend.prepare_row(row) for row in rows]
        return backend, token, rows, prepared

    @pytest.mark.parametrize("name", ["serial", "batched", "auto"])
    def test_inline_engines(self, name):
        from repro.core.engine import get_engine

        backend, token, rows, prepared = self._fixture()
        raw_handles, raw_report = get_engine(name).decrypt_handles(
            backend, token, rows
        )
        warm_handles, warm_report = get_engine(name).decrypt_handles(
            backend, token, prepared
        )
        assert raw_handles == warm_handles
        assert raw_report.prepared_miller_loops == 0
        assert warm_report.miller_loops == 0
        assert warm_report.prepared_miller_loops == raw_report.miller_loops

    def test_parallel_engine_pooled(self):
        from repro.core.engine import ParallelEngine
        from repro.core.service import ExecutionService

        backend, token, rows, prepared = self._fixture()
        with ExecutionService(workers=2) as service:
            engine = ParallelEngine(
                workers=2, batch_size=4, service=service
            )
            raw_handles, raw_report = engine.decrypt_handles(
                backend, token, rows
            )
            warm_handles, warm_report = engine.decrypt_handles(
                backend, token, prepared
            )
            again_handles, again_report = engine.decrypt_handles(
                backend, token, prepared
            )
        assert raw_handles == warm_handles == again_handles
        assert warm_report.miller_loops == 0
        assert warm_report.prepared_miller_loops == raw_report.miller_loops
        # First prepared pass rebuilds coefficients worker-side; the
        # repeat run reuses the digest-keyed caches (a chunk may still
        # land on the other worker once, so "no more than" is the
        # contract, converging to zero as the pool warms).
        assert warm_report.preparations > 0
        assert again_report.preparations <= warm_report.preparations

    def test_auto_planner_records_prepared(self):
        from repro.core.engine import AutoEngine

        backend, token, rows, prepared = self._fixture()
        engine = AutoEngine(candidates=("serial", "batched"))
        _, report = engine.decrypt_handles(backend, token, prepared)
        assert report.planner["prepared_rows"] is True
        assert report.planner["prepared_miller_loops"] > 0
        _, raw_report = engine.decrypt_handles(backend, token, rows)
        assert raw_report.planner["prepared_rows"] is False


class TestServerPreparedTables:
    def _setup(self):
        from repro.core.client import SecureJoinClient
        from repro.core.server import SecureJoinServer
        from repro.db.schema import Schema
        from repro.db.table import Table

        teams = Table(
            "Teams", Schema.of(("key", "int"), ("name", "str")),
            [(1, "Web"), (2, "DB")],
        )
        emps = Table(
            "Emps", Schema.of(("record", "int"), ("team", "int")),
            [(1, 1), (2, 1), (3, 2), (4, 2)],
        )
        client = SecureJoinClient.for_tables(
            [(teams, "key"), (emps, "team")],
            in_clause_limit=3,
            rng=random.Random(7),
        )
        server = SecureJoinServer(client.params)
        server.store(client.encrypt_table(teams, "key"))
        server.store(client.encrypt_table(emps, "team"))
        return client, server

    def test_prepare_table_switches_queries_to_replay(self):
        from repro.db.query import JoinQuery

        client, server = self._setup()
        query = JoinQuery.build("Teams", "Emps", on=("key", "team"))
        with server:
            cold = server.execute_join(client.create_query(query))
            assert cold.stats.prepared_miller_loops == 0
            assert server.prepare_table("Teams") == 2
            assert server.prepare_table("Emps") == 4
            # Idempotent: nothing new to prepare.
            assert server.prepare_table("Teams") == 0
            warm = server.execute_join(client.create_query(query))
        assert sorted(warm.index_pairs) == sorted(cold.index_pairs)
        assert warm.stats.miller_loops == 0
        assert warm.stats.prepared_miller_loops == cold.stats.miller_loops

    def test_insert_into_prepared_table_stays_warm(self):
        from repro.db.query import JoinQuery
        from repro.db.table import Table
        from repro.db.schema import Schema

        client, server = self._setup()
        query = JoinQuery.build("Teams", "Emps", on=("key", "team"))
        with server:
            server.prepare_table("Teams")
            server.prepare_table("Emps")
            extra = Table(
                "Emps", Schema.of(("record", "int"), ("team", "int")),
                [(5, 1)],
            )
            encrypted = client.encrypt_table(extra, "team")
            server.insert_row(
                "Emps", encrypted.ciphertexts[0], encrypted.payloads[0]
            )
            table = server.table("Emps")
            assert len(table.prepared_rows) == len(table.ciphertexts)
            result = server.execute_join(client.create_query(query))
        # The inserted row participates and the whole side stays on
        # the replay path.
        assert (0, 4) in result.index_pairs
        assert result.stats.miller_loops == 0
        assert result.stats.prepared_miller_loops > 0


class TestStoredPreparedTables:
    def _encrypted_table(self, backend_name="fast"):
        from repro.core.client import SecureJoinClient
        from repro.db.schema import Schema
        from repro.db.table import Table

        table = Table(
            "T", Schema.of(("key", "int"), ("name", "str")),
            [(1, "a"), (2, "b"), (3, "c")],
        )
        client = SecureJoinClient.for_tables(
            [(table, "key")], in_clause_limit=3, rng=random.Random(3),
        )
        return client.encrypt_table(table, "key"), client.scheme.backend

    def test_round_trip_preserves_prepared_rows(self):
        from repro.store.tables import (
            decode_encrypted_table,
            encode_encrypted_table,
            prepare_encrypted_table,
        )

        table, backend = self._encrypted_table()
        assert prepare_encrypted_table(table, backend) == 3
        assert prepare_encrypted_table(table, backend) == 0
        blob = encode_encrypted_table(table, backend)
        loaded = decode_encrypted_table(blob, backend)
        assert loaded.prepared_rows is not None
        assert len(loaded.prepared_rows) == 3
        # Byte-identical replay through the decoded precomputation.
        dimension = len(table.ciphertexts[0])
        token = backend.g1_powers(range(2, dimension + 2))
        for original, decoded in zip(table.prepared_rows, loaded.prepared_rows):
            assert backend.pair_vectors(token, original).to_bytes() == \
                backend.pair_vectors(token, decoded).to_bytes()
        # Encoding the decoded table reproduces the bytes exactly.
        assert encode_encrypted_table(loaded, backend) == blob

    def test_unprepared_round_trip_unchanged(self):
        from repro.store.tables import (
            decode_encrypted_table,
            encode_encrypted_table,
        )

        table, backend = self._encrypted_table()
        loaded = decode_encrypted_table(
            encode_encrypted_table(table, backend), backend
        )
        assert loaded.prepared_rows is None

    def test_v1_files_still_load(self):
        from repro.store import tables as tables_module
        from repro.store.tables import (
            decode_encrypted_table,
            encode_encrypted_table,
        )

        table, backend = self._encrypted_table()
        blob = bytearray(encode_encrypted_table(table, backend))
        # Rewrite the version byte to 1: a pre-prepared-rows file.
        version_offset = len(tables_module._MAGIC)
        assert blob[version_offset] == tables_module._VERSION
        blob[version_offset] = 1
        loaded = decode_encrypted_table(bytes(blob), backend)
        assert loaded.prepared_rows is None
        assert len(loaded.ciphertexts) == 3

    def test_save_with_prepare_flag(self, tmp_path):
        from repro.store.tables import (
            load_encrypted_table,
            save_encrypted_table,
        )

        table, backend = self._encrypted_table()
        path = tmp_path / "table.rpro"
        save_encrypted_table(table, path, backend, prepare=True)
        loaded = load_encrypted_table(path, backend)
        assert loaded.prepared_rows is not None
        assert len(loaded.prepared_rows) == 3

    @pytest.mark.bn254
    def test_bn254_prepared_store_replay_byte_identity(self):
        from repro.store.tables import (
            decode_encrypted_table,
            encode_encrypted_table,
            prepare_encrypted_table,
        )

        backend = BN254Backend()
        from repro.core.scheme import SJRowCiphertext
        from repro.core.client import EncryptedTable
        from repro.db.schema import Schema

        ciphertexts = [
            SJRowCiphertext(tuple(backend.g2_powers([r + 1, r + 2])))
            for r in range(2)
        ]
        table = EncryptedTable(
            name="T",
            schema=Schema.of(("key", "int")),
            join_column="key",
            attribute_columns=(),
            ciphertexts=ciphertexts,
            payloads=[b"p0", b"p1"],
        )
        prepare_encrypted_table(table, backend)
        loaded = decode_encrypted_table(
            encode_encrypted_table(table, backend), backend
        )
        token = backend.g1_powers([3, 4])
        for row_index in range(2):
            raw = backend.pair_vectors(
                token, ciphertexts[row_index].elements
            )
            replayed = backend.pair_vectors(
                token, loaded.prepared_rows[row_index]
            )
            assert raw.to_bytes() == replayed.to_bytes()


class TestCostModelPrepared:
    def test_prepared_pricing_lowers_bn254_estimates(self):
        from repro.bench.costmodel import (
            BN254_ENGINE_COSTS,
            estimate_engine_costs,
        )

        kwargs = dict(rows=64, dimension=8, workers=4, batch_size=16)
        cold = estimate_engine_costs(BN254_ENGINE_COSTS, **kwargs)
        warm = estimate_engine_costs(
            BN254_ENGINE_COSTS, prepared=True, **kwargs
        )
        for engine in ("serial", "batched", "parallel"):
            assert warm[engine] < cold[engine]

    def test_choose_engine_accepts_prepared(self):
        from repro.bench.costmodel import (
            FAST_ENGINE_COSTS,
            choose_engine,
        )

        choice, estimates = choose_engine(
            FAST_ENGINE_COSTS, rows=32, dimension=4, workers=2,
            batch_size=16, prepared=True,
        )
        assert choice in ("serial", "batched", "parallel")
        assert set(estimates) == {"serial", "batched", "parallel"}

    def test_calibration_learns_prepared_constant(self):
        from repro.bench.costmodel import calibrate_engine_cost_model

        model = calibrate_engine_cost_model(
            FastBackend(), dimension=4, rows=8, repeats=1
        )
        assert model.prepared_miller_loop is not None
        assert model.prepared_miller_loop > 0
