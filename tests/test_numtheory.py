"""Unit tests for repro.crypto.numtheory."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto import numtheory as nt
from repro.crypto.params import CURVE_ORDER, FIELD_MODULUS
from repro.errors import FieldError


class TestEgcd:
    def test_bezout_identity(self):
        g, x, y = nt.egcd(240, 46)
        assert g == 2
        assert 240 * x + 46 * y == g

    def test_coprime(self):
        g, x, y = nt.egcd(17, 31)
        assert g == 1
        assert 17 * x + 31 * y == 1

    @given(st.integers(min_value=1, max_value=10**12),
           st.integers(min_value=1, max_value=10**12))
    def test_bezout_property(self, a, b):
        g, x, y = nt.egcd(a, b)
        assert a * x + b * y == g
        assert a % g == 0 and b % g == 0


class TestModInverse:
    def test_small(self):
        assert nt.mod_inverse(3, 7) == 5

    def test_round_trip_large(self):
        a = 123456789123456789
        inv = nt.mod_inverse(a, CURVE_ORDER)
        assert a * inv % CURVE_ORDER == 1

    def test_zero_raises(self):
        with pytest.raises(FieldError):
            nt.mod_inverse(0, 7)

    def test_non_invertible_raises(self):
        with pytest.raises(FieldError):
            nt.mod_inverse(6, 9)

    @given(st.integers(min_value=1, max_value=CURVE_ORDER - 1))
    def test_inverse_property(self, a):
        assert a * nt.mod_inverse(a, CURVE_ORDER) % CURVE_ORDER == 1


class TestPrimality:
    def test_known_primes(self):
        for p in (2, 3, 5, 7, 97, 2**61 - 1, FIELD_MODULUS, CURVE_ORDER):
            assert nt.is_probable_prime(p), p

    def test_known_composites(self):
        for n in (0, 1, 4, 9, 561, 2**61 + 1, FIELD_MODULUS - 1):
            assert not nt.is_probable_prime(n), n

    def test_carmichael_numbers(self):
        # Fermat pseudoprimes that Miller-Rabin must reject.
        for n in (561, 1105, 1729, 2465, 2821, 6601, 8911):
            assert not nt.is_probable_prime(n), n


class TestLegendreAndSqrt:
    def test_legendre_values(self):
        p = 23
        residues = {pow(x, 2, p) for x in range(1, p)}
        for a in range(1, p):
            expected = 1 if a in residues else -1
            assert nt.legendre_symbol(a, p) == expected

    def test_sqrt_3_mod_4(self):
        p = 23  # 23 % 4 == 3
        r = nt.tonelli_shanks(2, p)
        assert r * r % p == 2

    def test_sqrt_1_mod_4(self):
        p = 13  # 13 % 4 == 1
        r = nt.tonelli_shanks(4, p)
        assert r * r % p == 4

    def test_sqrt_non_residue_raises(self):
        with pytest.raises(FieldError):
            nt.tonelli_shanks(5, 23)

    def test_sqrt_zero(self):
        assert nt.tonelli_shanks(0, 23) == 0

    @given(st.integers(min_value=1, max_value=FIELD_MODULUS - 1))
    def test_sqrt_of_square(self, x):
        a = x * x % FIELD_MODULUS
        r = nt.tonelli_shanks(a, FIELD_MODULUS)
        assert r * r % FIELD_MODULUS == a


class TestCrt:
    def test_pair(self):
        x, m = nt.crt_pair(2, 3, 3, 5)
        assert m == 15
        assert x % 3 == 2 and x % 5 == 3

    def test_non_coprime_raises(self):
        with pytest.raises(FieldError):
            nt.crt_pair(1, 4, 3, 6)


class TestSampling:
    def test_random_zq_range(self):
        rng = random.Random(1)
        values = [nt.random_zq(97, rng) for _ in range(500)]
        assert all(0 <= v < 97 for v in values)
        assert len(set(values)) > 50

    def test_random_nonzero(self):
        rng = random.Random(2)
        values = [nt.random_zq_nonzero(5, rng) for _ in range(200)]
        assert all(1 <= v < 5 for v in values)
