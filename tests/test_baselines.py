"""Tests for the baseline schemes: correctness and leakage behaviour."""

from __future__ import annotations

import random

import pytest

from repro.baselines import (
    CryptDBScheme,
    DeterministicScheme,
    HahnScheme,
    SecureJoinAdapter,
)
from repro.baselines.api import make_pair
from repro.bench.experiments import example_queries, example_tables
from repro.db.database import Database
from repro.db.query import JoinQuery
from repro.db.schema import Schema
from repro.db.table import Table
from repro.errors import QueryError


def _ground_truth(tables, query):
    db = Database()
    for table, _ in tables:
        db.add_table(table)
    return db.execute(query)


@pytest.fixture
def tables():
    return example_tables()


@pytest.fixture
def queries():
    return example_queries()


class TestPairHelpers:
    def test_make_pair_unordered(self):
        assert make_pair(("A", 1), ("B", 2)) == make_pair(("B", 2), ("A", 1))

    def test_self_pair_rejected(self):
        with pytest.raises(ValueError):
            make_pair(("A", 1), ("A", 1))


@pytest.mark.parametrize("scheme_factory", [
    DeterministicScheme,
    CryptDBScheme,
    HahnScheme,
    lambda: SecureJoinAdapter(rng=random.Random(11)),
])
class TestAnswerCorrectness:
    """Every scheme must return the true join answer."""

    def test_both_queries(self, scheme_factory, tables, queries):
        scheme = scheme_factory()
        scheme.upload(tables)
        for query in queries:
            answer = scheme.run_query(query)
            truth = _ground_truth(tables, query)
            assert sorted(answer.index_pairs) == sorted(truth.index_pairs)
            assert sorted(answer.rows) == sorted(truth.table.rows())

    def test_unuploaded_table_rejected(self, scheme_factory, tables):
        scheme = scheme_factory()
        scheme.upload(tables)
        bad = JoinQuery.build("Ghost", "Employees", on=("key", "team"))
        with pytest.raises(QueryError):
            scheme.run_query(bad)


class TestDeterministicLeakage:
    def test_everything_revealed_at_upload(self, tables):
        scheme = DeterministicScheme()
        scheme.upload(tables)
        assert len(scheme.revealed_pairs()) == 6

    def test_queries_add_nothing(self, tables, queries):
        scheme = DeterministicScheme()
        scheme.upload(tables)
        before = scheme.revealed_pairs()
        scheme.run_query(queries[0])
        assert scheme.revealed_pairs() == before


class TestCryptDBLeakage:
    def test_nothing_at_upload(self, tables):
        scheme = CryptDBScheme()
        scheme.upload(tables)
        assert scheme.revealed_pairs() == set()

    def test_first_join_reveals_whole_columns(self, tables, queries):
        scheme = CryptDBScheme()
        scheme.upload(tables)
        scheme.run_query(queries[0])
        assert len(scheme.revealed_pairs()) == 6

    def test_peeling_is_permanent_and_idempotent(self, tables, queries):
        scheme = CryptDBScheme()
        scheme.upload(tables)
        scheme.run_query(queries[0])
        scheme.run_query(queries[1])
        assert len(scheme.revealed_pairs()) == 6


class TestHahnLeakage:
    def test_nothing_at_upload(self, tables):
        scheme = HahnScheme()
        scheme.upload(tables)
        assert scheme.revealed_pairs() == set()

    def test_minimal_after_first_query(self, tables, queries):
        scheme = HahnScheme()
        scheme.upload(tables)
        scheme.run_query(queries[0])
        pairs = scheme.revealed_pairs()
        assert pairs == {make_pair(("Teams", 0), ("Employees", 1))}

    def test_super_additive_after_second_query(self, tables, queries):
        scheme = HahnScheme()
        scheme.upload(tables)
        scheme.run_query(queries[0])
        scheme.run_query(queries[1])
        # All rows are now unwrapped; all 6 true pairs are comparable.
        assert len(scheme.revealed_pairs()) == 6

    def test_nested_loop_cost(self, tables, queries):
        scheme = HahnScheme()
        scheme.upload(tables)
        scheme.run_query(queries[0])
        assert scheme.comparisons == 1 * 2  # 1 team x 2 testers

    def test_pk_fk_restriction_enforced(self):
        left = Table("L", Schema.of(("k", "int")), [(1,), (1,)])
        right = Table("R", Schema.of(("k", "int")), [(1,)])
        scheme = HahnScheme()
        scheme.upload([(left, "k"), (right, "k")])
        with pytest.raises(QueryError):
            scheme.run_query(JoinQuery.build("L", "R", on=("k", "k")))


class TestSecureJoinLeakage:
    def test_minimal_at_every_step(self, tables, queries):
        scheme = SecureJoinAdapter(rng=random.Random(12))
        scheme.upload(tables)
        assert scheme.revealed_pairs() == set()
        scheme.run_query(queries[0])
        assert scheme.revealed_pairs() == {
            make_pair(("Teams", 0), ("Employees", 1))
        }
        scheme.run_query(queries[1])
        assert scheme.revealed_pairs() == {
            make_pair(("Teams", 0), ("Employees", 1)),
            make_pair(("Teams", 1), ("Employees", 2)),
        }

    def test_repeating_a_query_adds_nothing(self, tables, queries):
        scheme = SecureJoinAdapter(rng=random.Random(13))
        scheme.upload(tables)
        scheme.run_query(queries[0])
        first = scheme.revealed_pairs()
        scheme.run_query(queries[0])
        assert scheme.revealed_pairs() == first

    def test_transitive_closure_inference(self):
        """Two queries sharing a row let the adversary chain equalities."""
        left = Table("L", Schema.of(("k", "int"), ("tag", "str")),
                     [(7, "a")])
        right = Table("R", Schema.of(("k", "int"), ("tag", "str")),
                      [(7, "x"), (7, "y")])
        scheme = SecureJoinAdapter(rng=random.Random(14))
        scheme.upload([(left, "k"), (right, "k")])
        q1 = JoinQuery.build("L", "R", on=("k", "k"),
                             where_right={"tag": ["x"]})
        q2 = JoinQuery.build("L", "R", on=("k", "k"),
                             where_right={"tag": ["y"]})
        scheme.run_query(q1)
        scheme.run_query(q2)
        pairs = scheme.revealed_pairs()
        # Direct: (L0,R0) from q1, (L0,R1) from q2; closure adds (R0,R1).
        assert make_pair(("R", 0), ("R", 1)) in pairs
        assert len(pairs) == 3
