"""Tests for the multi-way join planner and pipelined chain executor.

The contract under test: an n-way chain query decrypts each distinct
``(table, token)`` side exactly once (the per-query handle pool),
evaluates in the cost-model's chosen left-deep order, streams completed
chain tuples incrementally, and — however the work is ordered, pooled,
cached, sharded or shipped over the wire — the canonical result is
byte-identical to the plaintext :func:`~repro.db.join.chain_join`
ground truth.
"""

from __future__ import annotations

import copy
import random
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.costmodel import (
    choose_join_order,
    default_engine_cost_model,
    estimate_expected_matches,
    estimate_plan_costs,
)
from repro.core.client import SecureJoinClient
from repro.core.server import SecureJoinServer, ServerStats
from repro.db.join import chain_join
from repro.db.predicate import InPredicate
from repro.db.query import ChainQuery, JoinQuery
from repro.db.schema import Schema
from repro.db.table import Table
from repro.errors import BenchmarkError, QueryError, SchemeError
from repro.net.client import RemoteJoinClient
from repro.net.server import JoinServiceServer
from repro.net.shard import ShardServiceServer, coordinator_from_shard_map
from repro.plan import (
    MAX_CHAIN_TABLES,
    ChainExecutor,
    KeyedHandleStore,
    compile_plan,
    group_chain_sides,
)
from repro.series.cache import chain_series_key
from repro.shard.coordinator import LocalShard, ShardCoordinator
from repro.shard.partition import partition_table
from repro.store import wire
from repro.store.wire import ChainMatchBatch, ShardMapFrame

KEYS = tuple(range(4))


def _mk(name, n, rng, keys=KEYS):
    return Table(
        name,
        Schema.of(("k", "int"), ("v", "str")),
        [(rng.choice(keys), f"{name}.{i}") for i in range(n)],
    )


def _setup(sizes=(9, 12, 7), seed=17, enable_prefilter=False,
           **server_kwargs):
    """``len(sizes)`` tables T1..Tn over a shared key domain, one server."""
    rng = random.Random(seed)
    tables = [_mk(f"T{i + 1}", n, rng) for i, n in enumerate(sizes)]
    client = SecureJoinClient.for_tables(
        [(t, "k") for t in tables],
        in_clause_limit=1,
        rng=random.Random(seed + 1),
        enable_prefilter=enable_prefilter,
    )
    server = SecureJoinServer(client.params, **server_kwargs)
    for t in tables:
        server.store(client.encrypt_table(t, "k"))
    return client, server, tables


def _chain(client, names, where=None, **kwargs):
    return client.create_chain_query(
        ChainQuery.build([(n, "k") for n in names], where=where), **kwargs
    )


def _drain(generator):
    batches = []
    while True:
        try:
            batches.append(next(generator))
        except StopIteration as stop:
            return batches, stop.value


def _assert_matches_plaintext(client, result, tables, deleted=None):
    """The decrypted result must be byte-identical to chain_join truth.

    ``deleted`` maps table name -> tombstoned indices; chain tuples
    touching a deleted row are dropped from the plaintext reference
    (tombstones never renumber the surviving rows).
    """
    reference = chain_join([t for t in tables], ["k"] * len(tables))
    expected = reference.index_tuples
    if deleted:
        names = [t.name for t in tables]
        expected = [
            combo
            for combo in expected
            if all(
                row not in deleted.get(names[pos], ())
                for pos, row in enumerate(combo)
            )
        ]
    decrypted = client.decrypt_chain_result(result)
    assert decrypted.index_tuples == expected
    rows = [list(t) for t in tables]
    expected_rows = [
        tuple(
            value
            for pos, row in enumerate(combo)
            for value in rows[pos][row]
        )
        for combo in expected
    ]
    assert list(decrypted.table) == expected_rows


# -- planner ---------------------------------------------------------------


class TestPlanner:
    model = default_engine_cost_model("fast")

    def test_left_deep_orders_are_exhaustive(self):
        # A chain of n tables has 2^(n-1) contiguous left-deep orders.
        for n in (2, 3, 4, 5):
            costs = estimate_plan_costs(self.model, [10] * n)
            assert len(costs) == 2 ** (n - 1)
            for order in costs:
                lo = hi = order[0]
                for position in order[1:]:
                    assert position in (lo - 1, hi + 1)
                    lo, hi = min(lo, position), max(hi, position)

    def test_chosen_order_is_argmin_of_published_estimates(self):
        order, estimates = choose_join_order(
            self.model, [50, 5000, 40], [4, 4, 4]
        )
        assert set(order) == {0, 1, 2}
        assert set(estimates) == {
            ",".join(map(str, o))
            for o in ((0, 1, 2), (1, 0, 2), (1, 2, 0), (2, 1, 0))
        }
        key = ",".join(map(str, order))
        assert estimates[key] == min(estimates.values())

    def test_uniform_cardinalities_keep_chain_order(self):
        order, _ = choose_join_order(self.model, [30, 30, 30])
        assert order == (0, 1, 2)

    def test_expected_matches_containment(self):
        # |R|*|S| / max(V(R), V(S)), clamped and conservative.
        assert estimate_expected_matches(100, 100, 10, 20) == 500
        assert estimate_expected_matches(100, 100) == 100
        assert estimate_expected_matches(0, 100) == 0
        assert estimate_expected_matches(10, 10, 1000, 1) == 10
        with pytest.raises(BenchmarkError):
            estimate_expected_matches(-1, 5)

    def test_compile_plan_nodes_follow_order(self):
        plan = compile_plan(self.model, [50, 5000, 40], [4, 4, 4])
        assert len(plan.nodes) == 2
        build = {plan.order[0]}
        for node in plan.nodes:
            assert set(node.build) == build
            assert node.probe not in build
            build.add(node.probe)
        record = plan.record()
        assert record["stage"] == "plan"
        assert tuple(record["order"]) == plan.order

    def test_compile_plan_rejects_bad_arity(self):
        with pytest.raises(QueryError):
            compile_plan(self.model, [10])
        with pytest.raises(QueryError):
            compile_plan(self.model, [10] * (MAX_CHAIN_TABLES + 1))


# -- executor --------------------------------------------------------------


class TestChainExecutor:
    def test_rejects_non_contiguous_order(self):
        with pytest.raises(QueryError):
            ChainExecutor((0, 2, 1))
        with pytest.raises(QueryError):
            ChainExecutor((0,))
        with pytest.raises(QueryError):
            ChainExecutor((0, 0, 1))

    def test_feed_completes_tuples_incrementally(self):
        executor = ChainExecutor((0, 1, 2))
        assert executor.feed(0, [(0, b"a"), (1, b"b")]) == []
        assert executor.feed(1, [(5, b"a")]) == []
        # Completing the last position surfaces the full chain tuple.
        assert executor.feed(2, [(7, b"a")]) == [(0, 5, 7)]
        # Late increments extend existing partial matches.
        assert executor.feed(2, [(8, b"a")]) == [(0, 5, 8)]
        assert sorted(executor.finish()) == [(0, 5, 7), (0, 5, 8)]

    def test_retract_cascades_and_reinsert_restores(self):
        executor = ChainExecutor((1, 0, 2))
        executor.feed(0, [(0, b"x")])
        executor.feed(1, [(3, b"x")])
        assert executor.feed(2, [(9, b"x")]) == [(0, 3, 9)]
        # Withdrawing the middle row tears down every tuple through it.
        assert executor.retract(1, [3]) == [(0, 3, 9)]
        assert executor.finish() == []
        # Feeding it back completes the same tuple again.
        assert executor.feed(1, [(3, b"x")]) == [(0, 3, 9)]
        assert executor.finish() == [(0, 3, 9)]

    def test_finish_is_canonical_lexicographic(self):
        executor = ChainExecutor((2, 1, 0))
        executor.feed(2, [(1, b"k"), (0, b"k")])
        executor.feed(1, [(4, b"k")])
        executor.feed(0, [(2, b"k"), (1, b"k")])
        assert executor.finish() == [
            (1, 4, 0), (1, 4, 1), (2, 4, 0), (2, 4, 1),
        ]


# -- single-store chain execution ------------------------------------------


class TestChainExecution:
    def test_chain_matches_plaintext_reference(self):
        client, server, tables = _setup()
        with server:
            result = server.execute_chain(_chain(client, ["T1", "T2", "T3"]))
            assert result.tables == ("T1", "T2", "T3")
            assert result.stats.plan_nodes == 2
            assert result.stats.matcher == "hash"
            assert result.stats.decryptions == 9 + 12 + 7
            _assert_matches_plaintext(client, result, tables)

    def test_streamed_equals_materialized(self):
        client, server, tables = _setup(seed=23)
        with server:
            reference = server.execute_chain(
                _chain(client, ["T1", "T2", "T3"])
            )
            batches, final = _drain(
                server.stream_chain(_chain(client, ["T1", "T2", "T3"]))
            )
            streamed = sorted(
                combo for batch in batches for combo in batch.tuples
            )
            assert streamed == reference.tuples == final.tuples
            assert final.payloads == reference.payloads
            by_tuple = {
                combo: payload
                for batch in batches
                for combo, payload in zip(batch.tuples, batch.payloads)
            }
            assert [by_tuple[c] for c in final.tuples] == final.payloads

    def test_four_way_chain(self):
        client, server, tables = _setup(sizes=(6, 8, 5, 7), seed=31)
        with server:
            result = server.execute_chain(
                _chain(client, ["T1", "T2", "T3", "T4"])
            )
            assert result.stats.plan_nodes == 3
            _assert_matches_plaintext(client, result, tables)

    def test_chain_with_selections_matches_filtered_reference(self):
        client, server, tables = _setup(seed=37, enable_prefilter=True)
        with server:
            picked = tables[1][0][1]  # one live "v" value of T2
            result = server.execute_chain(
                _chain(
                    client,
                    ["T1", "T2", "T3"],
                    where=[None, {"v": [picked]}, None],
                )
            )
        reference = chain_join(
            tables,
            ["k"] * 3,
            [None, InPredicate("v", [picked]), None],
        )
        decrypted = client.decrypt_chain_result(result)
        assert decrypted.index_tuples == reference.index_tuples
        assert list(decrypted.table) == list(reference.table)

    def test_two_table_chain_agrees_with_join(self):
        client, server, tables = _setup(sizes=(9, 12), seed=41)
        with server:
            chain_result = server.execute_chain(_chain(client, ["T1", "T2"]))
            join_result = server.execute_join(
                client.create_query(
                    JoinQuery.build("T1", "T2", on=("k", "k"))
                )
            )
            # Canonical orders differ (chain: lexicographic; join:
            # right-major) but the match sets must be identical.
            assert set(chain_result.tuples) == {
                tuple(pair) for pair in join_result.index_pairs
            }

    def test_chain_arity_bounds(self):
        client, server, _ = _setup(sizes=(4, 4), seed=43)
        with server:
            with pytest.raises(QueryError):
                ChainQuery.build([("T1", "k")])
            too_long = [("T1", "k"), ("T2", "k")] * 5
            query = client.create_chain_query(ChainQuery.build(too_long))
            with pytest.raises(QueryError):
                server.execute_chain(query)


# -- the per-query handle pool ---------------------------------------------


class TestHandlePool:
    def test_shared_side_decrypted_exactly_once(self):
        client, server, tables = _setup(sizes=(9, 12), seed=47)
        with server:
            query = _chain(client, ["T1", "T2", "T1"])
            assert len(group_chain_sides(query, server.scheme.backend)) == 2
            result = server.execute_chain(query)
            assert result.stats.handle_pool_hits == 1
            assert result.stats.decryptions == 9 + 12
        expected = [
            (a, b, c)
            for a, b in chain_join(tables[:2], ["k", "k"]).index_tuples
            for c in range(9)
            if tables[0][c][0] == tables[0][a][0]
        ]
        assert result.tuples == sorted(expected)

    def test_exactly_once_op_counter(self):
        # The acceptance check: a 3-way chain sharing its outer table
        # performs *identical* pairing work to a plain two-way join of
        # the same two sides — the pool decrypts (table, token) sides,
        # not chain positions.
        client, server, _ = _setup(sizes=(9, 12), seed=53)
        ops = server.scheme.backend.ops
        with server:
            before_chain = ops.snapshot()
            server.execute_chain(_chain(client, ["T1", "T2", "T1"]))
            chain_delta = ops.since(before_chain)
            before_join = ops.snapshot()
            server.execute_join(
                client.create_query(
                    JoinQuery.build("T1", "T2", on=("k", "k"))
                )
            )
            join_delta = ops.since(before_join)
        assert chain_delta.snapshot() == join_delta.snapshot()
        assert (
            chain_delta.miller_loops + chain_delta.prepared_miller_loops > 0
        )


# -- the cross-series handle store -----------------------------------------


class TestKeyedHandleStore:
    def test_lookup_returns_a_copy(self):
        store = KeyedHandleStore()
        store.record("T", 0, b"d", [(0, b"h0"), (1, b"h1")])
        found = store.lookup("T", 0, b"d")
        found[0] = b"tampered"
        assert store.lookup("T", 0, b"d")[0] == b"h0"

    def test_keyed_by_table_epoch_and_digest(self):
        store = KeyedHandleStore()
        store.record("T", 0, b"d", [(0, b"h")])
        assert store.lookup("T", 1, b"d") == {}
        assert store.lookup("T", 0, b"e") == {}
        assert store.lookup("U", 0, b"d") == {}
        assert store.lookup("T", 0, b"d") == {0: b"h"}

    def test_budget_evicts_lru(self):
        # One entry is 256 overhead + 4 * (32 + 96) = 768 bytes, so an
        # 800-byte budget holds exactly one: recording the second must
        # evict the least-recently-used first.
        store = KeyedHandleStore(budget_bytes=800)
        store.record("T", 0, b"a", [(i, b"x" * 32) for i in range(4)])
        store.record("T", 0, b"b", [(i, b"y" * 32) for i in range(4)])
        assert store.lookup("T", 0, b"a") == {}
        assert len(store.lookup("T", 0, b"b")) == 4
        assert store.stats.evictions >= 1
        assert store.total_bytes <= 800

    def test_forget_rows_and_invalidate(self):
        store = KeyedHandleStore()
        store.record("T", 0, b"a", [(0, b"h0"), (1, b"h1")])
        store.record("U", 0, b"b", [(0, b"g0")])
        store.forget_rows("T", [0])
        assert store.lookup("T", 0, b"a") == {1: b"h1"}
        assert store.invalidate_table("T") == 1
        assert store.lookup("T", 0, b"a") == {}
        assert store.lookup("U", 0, b"b") == {0: b"g0"}

    def test_zero_budget_disables_retention(self):
        store = KeyedHandleStore(budget_bytes=0)
        store.record("T", 0, b"a", [(0, b"h")])
        assert len(store) == 0

    def test_cross_series_reuse_skips_sjdec(self):
        # Evict the series entry but keep the handle store: the same
        # encrypted chain re-runs with zero decryptions.
        client, server, tables = _setup(seed=59)
        with server:
            query = _chain(client, ["T1", "T2", "T3"])
            first = server.execute_chain(query)
            assert first.stats.decryptions == 9 + 12 + 7
            server.series_cache.clear()
            again = server.execute_chain(query)
            assert again.stats.series_cache_hits == 0
            assert again.stats.decryptions == 0
            assert again.stats.reused_handles == 9 + 12 + 7
            assert again.tuples == first.tuples
            assert again.payloads == first.payloads
            _assert_matches_plaintext(client, again, tables)


# -- chain series cache: replay, delta repair, contention ------------------


class TestChainSeries:
    def test_replay_and_delta_repair(self):
        client, server, tables = _setup(seed=61)
        with server:
            query = _chain(client, ["T1", "T2", "T3"])
            first = server.execute_chain(query)
            replay = server.execute_chain(query)
            assert replay.stats.series_cache_hits == 1
            assert replay.stats.decryptions == 0
            assert replay.tuples == first.tuples
            assert replay.payloads == first.payloads

            # Insert into the middle table: only the delta decrypts.
            new_row = (tables[1][0][0], "T2.new")
            ciphertext, payload, tags = client.encrypt_row_for(
                "T2", new_row
            )
            server.insert_row("T2", ciphertext, payload, tags)
            tables[1].insert(new_row)
            repaired = server.execute_chain(query)
            assert repaired.stats.series_cache_hits == 1
            assert repaired.stats.delta_rows == 1
            assert repaired.stats.decryptions == 1
            _assert_matches_plaintext(client, repaired, tables)

            # Delete from the outer table: retraction, no decryption.
            server.delete_rows("T1", [0])
            shrunk = server.execute_chain(query)
            assert shrunk.stats.series_cache_hits == 1
            assert shrunk.stats.decryptions == 0
            _assert_matches_plaintext(
                client, shrunk, tables, deleted={"T1": {0}}
            )

    def test_contended_entry_falls_through_to_miss(self):
        client, server, tables = _setup(seed=67, handle_store_bytes=0)
        with server:
            query = _chain(client, ["T1", "T2", "T3"])
            first = server.execute_chain(query)
            cache = server.series_cache
            key = chain_series_key(query, server.scheme.backend)
            entry = cache._entries[key]
            contention_before = cache.stats.lock_contention

            held = threading.Event()
            release = threading.Event()

            def hold_lock():
                with entry.lock:
                    held.set()
                    release.wait(timeout=30.0)

            holder = threading.Thread(target=hold_lock, daemon=True)
            holder.start()
            assert held.wait(timeout=10.0)
            try:
                # The entry is locked by another query: this run must
                # not block behind it — it recomputes from scratch.
                result = server.execute_chain(query)
            finally:
                release.set()
                holder.join(timeout=10.0)
            assert cache.stats.lock_contention == contention_before + 1
            assert result.stats.series_cache_hits == 0
            assert result.stats.decryptions == 9 + 12 + 7
            assert result.tuples == first.tuples
            assert result.payloads == first.payloads


# -- sharded chains --------------------------------------------------------


def _sharded(client, backend, encrypted, n_shards, workers=2):
    shards = [
        LocalShard(client.params, workers=workers, name=f"shard-{i}")
        for i in range(n_shards)
    ]
    for table in encrypted:
        for piece in partition_table(table, backend, n_shards):
            shards[piece.shard.shard_index].store(piece)
    return ShardCoordinator(shards)


class TestShardedChains:
    @pytest.mark.parametrize("n_shards", [1, 2])
    def test_scatter_gather_parity(self, n_shards):
        client, server, tables = _setup(seed=71)
        backend = server.scheme.backend
        encrypted = [copy.deepcopy(server.table(t.name)) for t in tables]
        with server:
            reference = server.execute_chain(
                _chain(client, ["T1", "T2", "T3"])
            )
        with _sharded(client, backend, encrypted, n_shards) as coordinator:
            result = coordinator.execute_chain(
                _chain(client, ["T1", "T2", "T3"])
            )
            assert result.tuples == reference.tuples
            assert result.payloads == reference.payloads
            assert result.stats.shards == n_shards
            assert result.stats.decryptions == 9 + 12 + 7
            batches, final = _drain(
                coordinator.stream_chain(_chain(client, ["T1", "T2", "T3"]))
            )
            streamed = sorted(
                combo for batch in batches for combo in batch.tuples
            )
            assert streamed == reference.tuples
            assert final.tuples == reference.tuples

    def test_sharded_handle_pool(self):
        client, server, tables = _setup(sizes=(9, 12), seed=73)
        backend = server.scheme.backend
        encrypted = [copy.deepcopy(server.table(t.name)) for t in tables]
        with server:
            reference = server.execute_chain(
                _chain(client, ["T1", "T2", "T1"])
            )
        with _sharded(client, backend, encrypted, 2) as coordinator:
            result = coordinator.execute_chain(
                _chain(client, ["T1", "T2", "T1"])
            )
            assert result.stats.handle_pool_hits == 1
            assert result.stats.decryptions == 9 + 12
            assert result.tuples == reference.tuples
            assert result.payloads == reference.payloads

    def test_remote_shards_reject_chains(self):
        client, server, tables = _setup(sizes=(6, 5), seed=79)
        backend = server.scheme.backend
        encrypted = [copy.deepcopy(server.table(t.name)) for t in tables]
        server.close()
        shards = [
            LocalShard(client.params, workers=2, name=f"s{i}")
            for i in range(2)
        ]
        seed = None
        for table in encrypted:
            for piece in partition_table(table, backend, 2):
                shards[piece.shard.shard_index].store(piece)
                seed = piece.shard.seed
        services = [ShardServiceServer(shard) for shard in shards]
        endpoints = [service.start() for service in services]
        frame = wire.decode_frame(
            wire.encode_shard_map(
                ShardMapFrame(
                    shard_count=2,
                    seed=seed,
                    tables=("T1", "T2"),
                    endpoints=tuple(endpoints),
                )
            )
        )
        try:
            with coordinator_from_shard_map(frame, backend) as coordinator:
                with pytest.raises(QueryError, match="chain"):
                    coordinator.execute_chain(_chain(client, ["T1", "T2"]))
        finally:
            for service in services:
                service.shutdown()

    def test_coordinator_from_shard_map_joins(self):
        client, server, tables = _setup(sizes=(8, 6), seed=83)
        backend = server.scheme.backend
        encrypted = [copy.deepcopy(server.table(t.name)) for t in tables]
        with server:
            reference = server.execute_join(
                client.create_query(
                    JoinQuery.build("T1", "T2", on=("k", "k"))
                )
            )
        shards = [
            LocalShard(client.params, workers=2, name=f"s{i}")
            for i in range(2)
        ]
        seed = None
        for table in encrypted:
            for piece in partition_table(table, backend, 2):
                shards[piece.shard.shard_index].store(piece)
                seed = piece.shard.seed
        services = [ShardServiceServer(shard) for shard in shards]
        endpoints = [service.start() for service in services]
        frame = wire.decode_frame(
            wire.encode_shard_map(
                ShardMapFrame(
                    shard_count=2,
                    seed=seed,
                    tables=("T1", "T2"),
                    endpoints=tuple(endpoints),
                )
            )
        )
        try:
            with coordinator_from_shard_map(frame, backend) as coordinator:
                assert [s.name for s in coordinator.shards] == [
                    f"shard-{i}@{host}:{port}"
                    for i, (host, port) in enumerate(endpoints)
                ]
                result = coordinator.execute_join(
                    client.create_query(
                        JoinQuery.build("T1", "T2", on=("k", "k"))
                    )
                )
                assert result.index_pairs == reference.index_pairs
                assert result.left_payloads == reference.left_payloads
                assert result.right_payloads == reference.right_payloads
        finally:
            for service in services:
                service.shutdown()


# -- wire v7: chain queries and frames -------------------------------------


class TestChainWire:
    def test_query_round_trip_preserves_results_and_pooling(self):
        client, server, _ = _setup(sizes=(9, 12), seed=89)
        backend = server.scheme.backend
        with server:
            query = _chain(
                client, ["T1", "T2", "T1"], priority=2, deadline=30.0
            )
            blob = wire.encode_chain_query(query, backend)
            assert wire.is_chain_query(blob)
            assert not wire.is_chain_query(
                wire.encode_join_query(
                    client.create_query(
                        JoinQuery.build("T1", "T2", on=("k", "k"))
                    ),
                    backend,
                )
            )
            decoded = wire.decode_chain_query(blob, backend)
            assert decoded.tables == query.tables
            assert decoded.query_id == query.query_id
            assert decoded.priority == 2 and decoded.deadline == 30.0
            reference = server.execute_chain(query)
            # Token bytes survive the round trip, so the decoded query
            # still dedups its shared side (and replays the series).
            server.series_cache.clear()
            server.handle_store.clear()
            result = server.execute_chain(decoded)
            assert result.stats.handle_pool_hits == 1
            assert result.tuples == reference.tuples
            assert result.payloads == reference.payloads

    def test_frame_round_trips(self):
        batch = ChainMatchBatch(
            tuples=[(1, 2, 3), (4, 5, 6)],
            payloads=[(b"a", b"b", b"c"), (b"d", b"e", b"f")],
        )
        frame = wire.decode_frame(wire.encode_chain_batch(batch))
        assert isinstance(frame, wire.ChainBatchFrame)
        assert frame.batch.tuples == batch.tuples
        assert frame.batch.payloads == batch.payloads

        client, server, _ = _setup(sizes=(5, 6), seed=97)
        with server:
            result = server.execute_chain(_chain(client, ["T1", "T2"]))
        final = wire.decode_frame(wire.encode_chain_final(result))
        assert isinstance(final, wire.ChainFinalFrame)
        assert final.tables == result.tables
        assert final.tuples == result.tuples
        assert final.stats.plan_nodes == result.stats.plan_nodes
        assert final.stats.handle_pool_hits == result.stats.handle_pool_hits

    def test_empty_batch_rejected_at_encode(self):
        with pytest.raises(SchemeError):
            wire.encode_chain_batch(ChainMatchBatch(tuples=[], payloads=[]))

    def test_reassembler_rejects_duplicates_and_drift(self):
        reassembler = wire.ChainReassembler()
        batch = ChainMatchBatch(
            tuples=[(0, 1)], payloads=[(b"a", b"b")]
        )
        reassembler.add_batch(batch)
        with pytest.raises(SchemeError, match="more than once"):
            reassembler.add_batch(batch)
        with pytest.raises(SchemeError, match="arities"):
            reassembler.add_batch(
                ChainMatchBatch(
                    tuples=[(0, 1, 2)], payloads=[(b"a", b"b", b"c")]
                )
            )

    def test_reassembler_cross_checks_final(self):
        reassembler = wire.ChainReassembler()
        reassembler.add_batch(
            ChainMatchBatch(tuples=[(0, 1)], payloads=[(b"a", b"b")])
        )
        with pytest.raises(SchemeError, match="claims"):
            reassembler.finish(
                wire.ChainFinalFrame(
                    tables=("L", "R"), tuples=[], stats=ServerStats()
                )
            )
        with pytest.raises(SchemeError, match="no chain batch"):
            reassembler.finish(
                wire.ChainFinalFrame(
                    tables=("L", "R"), tuples=[(7, 7)], stats=ServerStats()
                )
            )


class TestChainWireHostile:
    """Hostile chain payloads: only SchemeError may escape."""

    def _query_blob(self):
        client, server, _ = _setup(sizes=(4, 3), seed=101)
        backend = server.scheme.backend
        server.close()
        query = _chain(client, ["T1", "T2", "T1"])
        return wire.encode_chain_query(query, backend), backend

    def test_query_truncated_at_every_offset(self):
        blob, backend = self._query_blob()
        for cut in range(len(blob)):
            with pytest.raises(SchemeError):
                wire.decode_chain_query(blob[:cut], backend)

    def test_frames_truncated_at_every_offset(self):
        batch_blob = wire.encode_chain_batch(
            ChainMatchBatch(
                tuples=[(1, 2, 3)], payloads=[(b"aa", b"bb", b"cc")]
            )
        )
        client, server, _ = _setup(sizes=(4, 3), seed=103)
        with server:
            result = server.execute_chain(_chain(client, ["T1", "T2"]))
        final_blob = wire.encode_chain_final(result)
        for blob in (batch_blob, final_blob):
            for cut in range(len(blob)):
                try:
                    wire.decode_frame(blob[:cut])
                except SchemeError:
                    pass

    def _rewrite_frame_header(self, blob, **overrides):
        import json

        from repro.store.codec import Reader, Writer

        reader = Reader(blob)
        magic = reader.take(8)
        version = reader.u8()
        header = json.loads(reader.blob())
        body = blob[len(blob) - reader.remaining:]
        header.update(overrides)
        writer = Writer()
        writer.raw(magic).u8(version)
        writer.blob(json.dumps(header).encode("utf-8"))
        writer.raw(body)
        return writer.getvalue()

    def test_oversized_tuple_count_rejected_before_allocation(self):
        blob = wire.encode_chain_batch(
            ChainMatchBatch(tuples=[(1, 2)], payloads=[(b"a", b"b")])
        )
        hostile = self._rewrite_frame_header(blob, n_tuples=2**31)
        with pytest.raises(SchemeError, match="bad tuple count"):
            wire.decode_frame(hostile)

    @pytest.mark.parametrize("arity", [0, 1, -3, MAX_CHAIN_TABLES + 1, "x"])
    def test_bad_arity_rejected(self, arity):
        blob = wire.encode_chain_batch(
            ChainMatchBatch(tuples=[(1, 2)], payloads=[(b"a", b"b")])
        )
        with pytest.raises(SchemeError):
            wire.decode_frame(self._rewrite_frame_header(blob, arity=arity))

    def test_final_tables_must_match_arity(self):
        client, server, _ = _setup(sizes=(4, 3), seed=107)
        with server:
            result = server.execute_chain(_chain(client, ["T1", "T2"]))
        blob = wire.encode_chain_final(result)
        hostile = self._rewrite_frame_header(blob, tables=["T1", "T2", "T3"])
        with pytest.raises(SchemeError):
            wire.decode_frame(hostile)


# -- the remote chain path -------------------------------------------------


class TestRemoteChains:
    def test_remote_chain_end_to_end(self):
        client, server, tables = _setup(seed=109)
        backend = server.scheme.backend
        reference = server.execute_chain(_chain(client, ["T1", "T2", "T3"]))
        with JoinServiceServer(server) as service:
            host, port = service.address
            with RemoteJoinClient(host, port, backend) as remote:
                stream = remote.stream_chain(
                    _chain(client, ["T1", "T2", "T3"])
                )
                batches, result = _drain(stream)
                assert result.tuples == reference.tuples
                assert result.payloads == reference.payloads
                streamed = sorted(
                    combo for batch in batches for combo in batch.tuples
                )
                assert streamed == reference.tuples
                _assert_matches_plaintext(client, result, tables)
                # Two-way and chain queries interleave on one connection.
                join_result = remote.execute_join(
                    client.create_query(
                        JoinQuery.build("T1", "T2", on=("k", "k"))
                    )
                )
                assert join_result.index_pairs
                again = remote.execute_chain(
                    _chain(client, ["T1", "T2", "T3"])
                )
                assert again.tuples == reference.tuples

    def test_remote_chain_error_reported_in_band(self):
        client, server, _ = _setup(sizes=(4, 3), seed=113)
        backend = server.scheme.backend
        with JoinServiceServer(server) as service:
            host, port = service.address
            with RemoteJoinClient(host, port, backend) as remote:
                bogus = _chain(client, ["T1", "T2"])
                bogus = type(bogus)(
                    query_id=bogus.query_id,
                    tables=("T1", "Nope"),
                    tokens=bogus.tokens,
                    prefilters=bogus.prefilters,
                )
                with pytest.raises(QueryError):
                    remote.execute_chain(bogus)
                # The connection survives an error frame.
                ok = remote.execute_chain(_chain(client, ["T1", "T2"]))
                assert ok.tables == ("T1", "T2")


# -- property-based coverage ----------------------------------------------


@st.composite
def _chain_workload(draw):
    n_base = draw(st.integers(min_value=2, max_value=3))
    sizes = [
        draw(st.integers(min_value=2, max_value=6)) for _ in range(n_base)
    ]
    length = draw(st.integers(min_value=3, max_value=4))
    positions = [
        draw(st.integers(min_value=0, max_value=n_base - 1))
        for _ in range(length)
    ]
    seed = draw(st.integers(min_value=0, max_value=2**20))
    mutate_table = draw(st.integers(min_value=0, max_value=n_base - 1))
    insert_key = draw(st.integers(min_value=0, max_value=3))
    delete = draw(st.booleans())
    return sizes, positions, seed, mutate_table, insert_key, delete


class TestChainProperties:
    @settings(max_examples=8, deadline=None)
    @given(_chain_workload())
    def test_random_chains_with_mutations(self, workload):
        sizes, positions, seed, mutate_table, insert_key, delete = workload
        rng = random.Random(seed)
        base = [_mk(f"B{i}", n, rng) for i, n in enumerate(sizes)]
        client = SecureJoinClient.for_tables(
            [(t, "k") for t in base],
            in_clause_limit=1,
            rng=random.Random(seed + 1),
        )
        server = SecureJoinServer(client.params)
        for t in base:
            server.store(client.encrypt_table(t, "k"))
        names = [base[p].name for p in positions]
        chain_tables = [base[p] for p in positions]
        with server:
            query = _chain(client, names)
            first = server.execute_chain(query)
            _assert_matches_plaintext(client, first, chain_tables)

            # Mutate one base table, then repair the same series and
            # re-derive from scratch: all three views must agree.
            victim = base[mutate_table]
            new_row = (insert_key, f"{victim.name}.new")
            ciphertext, payload, tags = client.encrypt_row_for(
                victim.name, new_row
            )
            server.insert_row(victim.name, ciphertext, payload, tags)
            victim.insert(new_row)
            deleted: dict[str, set[int]] = {}
            if delete and sizes[mutate_table] > 1:
                server.delete_rows(victim.name, [0])
                deleted[victim.name] = {0}

            repaired = server.execute_chain(query)
            assert repaired.stats.series_cache_hits == 1
            _assert_matches_plaintext(
                client, repaired, chain_tables, deleted=deleted
            )
            fresh = server.execute_chain(_chain(client, names))
            assert fresh.tuples == repaired.tuples
            assert fresh.payloads == repaired.payloads

    @settings(max_examples=6, deadline=None)
    @given(
        sizes=st.lists(
            st.integers(min_value=2, max_value=6), min_size=2, max_size=3
        ),
        n_shards=st.integers(min_value=1, max_value=2),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    def test_sharded_chains_match_single_store(self, sizes, n_shards, seed):
        rng = random.Random(seed)
        base = [_mk(f"S{i}", n, rng) for i, n in enumerate(sizes)]
        client = SecureJoinClient.for_tables(
            [(t, "k") for t in base],
            in_clause_limit=1,
            rng=random.Random(seed + 1),
        )
        server = SecureJoinServer(client.params)
        encrypted = [client.encrypt_table(t, "k") for t in base]
        for table in encrypted:
            server.store(copy.deepcopy(table))
        names = [t.name for t in base] + [base[0].name]
        with server:
            reference = server.execute_chain(_chain(client, names))
        backend = client.scheme.backend
        with _sharded(client, backend, encrypted, n_shards) as coordinator:
            result = coordinator.execute_chain(_chain(client, names))
            assert result.tuples == reference.tuples
            assert result.payloads == reference.payloads
