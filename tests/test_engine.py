"""Execution engines: result equivalence, batching edge cases, accounting.

The contract under test: serial, batched and parallel engines return
*byte-identical* join results (index pairs, payloads and observed
handles) for every workload, while their ``ServerStats`` expose the
different pairing-work profiles — the batched path shares one final
exponentiation per row where the serial path pays one per vector
component.
"""

from __future__ import annotations

import random

import pytest

from repro.core.client import SecureJoinClient
from repro.core.engine import (
    AutoEngine,
    BatchedEngine,
    ParallelEngine,
    SerialEngine,
    _chunked,
    get_engine,
)
from repro.core.server import SecureJoinServer
from repro.db.query import JoinQuery
from repro.db.schema import Schema
from repro.db.table import Table
from repro.errors import QueryError

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is an optional dev dep
    HAVE_HYPOTHESIS = False

# Module-scoped engine instances so the parallel engine's persistent
# pool is spawned once and reused by every test (and every Hypothesis
# example) — which is itself part of the contract under test.
ENGINES = (
    SerialEngine(),
    BatchedEngine(batch_size=3),
    ParallelEngine(workers=2, batch_size=4),
    AutoEngine(batch_size=3),
)


def _build(left_keys, right_keys, seed=7, num_attributes=1, in_clause_limit=2):
    """Encrypted L/R tables with ``num_attributes`` non-join columns (m)
    and IN-clause bound ``in_clause_limit`` (t) — the scheme dimension
    grows with both, which is exactly what the m/t property grid varies."""
    attr_columns = [(f"a{j}", "str") for j in range(num_attributes)]
    left = Table(
        "L", Schema.of(("k", "int"), *attr_columns),
        [
            (k, *[f"a{j}.{i}" for j in range(num_attributes)])
            for i, k in enumerate(left_keys)
        ],
    )
    right = Table(
        "R", Schema.of(("k", "int"), *attr_columns),
        [
            (k, *[f"b{j}.{i}" for j in range(num_attributes)])
            for i, k in enumerate(right_keys)
        ],
    )
    client = SecureJoinClient.for_tables(
        [(left, "k"), (right, "k")], in_clause_limit=in_clause_limit,
        rng=random.Random(seed),
    )
    server = SecureJoinServer(client.params)
    server.store(client.encrypt_table(left, "k"))
    server.store(client.encrypt_table(right, "k"))
    return client, server


def _expected_pairs(left_keys, right_keys):
    """Right-major order, matching both matchers' output order."""
    return [
        (i, j)
        for j, rk in enumerate(right_keys)
        for i, lk in enumerate(left_keys)
        if lk == rk
    ]


def _run_engines(client, server, query):
    results = []
    for engine in ENGINES:
        encrypted = client.create_query(query)
        results.append(server.execute_join(encrypted, engine=engine))
    return results


def _assert_equivalent(results, server):
    base = results[0]
    observations = server.observations[-len(results):]
    for result, observation in zip(results[1:], observations[1:]):
        assert result.index_pairs == base.index_pairs
        assert result.left_payloads == base.left_payloads
        assert result.right_payloads == base.right_payloads
        assert result.stats.matches == base.stats.matches
        assert result.stats.decryptions == base.stats.decryptions
    # Handles differ across queries (fresh query keys) but each engine
    # must observe handles with the same equality pattern per query;
    # within one query the three runs used three different tokens, so we
    # only compare the join outputs above and the per-run handle counts.
    for observation, result in zip(observations, results):
        assert len(observation.handles) == result.stats.decryptions


class TestEquivalence:
    def test_seeded_random_workload(self):
        rng = random.Random(20260729)
        for trial in range(5):
            left_keys = [rng.randrange(6) for _ in range(rng.randrange(1, 14))]
            right_keys = [rng.randrange(6) for _ in range(rng.randrange(1, 14))]
            client, server = _build(left_keys, right_keys, seed=trial)
            query = JoinQuery.build("L", "R", on=("k", "k"))
            results = _run_engines(client, server, query)
            for result in results:
                assert result.index_pairs == _expected_pairs(
                    left_keys, right_keys
                )
            _assert_equivalent(results, server)

    def test_same_token_same_handles(self):
        """With one shared query, all engines observe identical bytes."""
        client, server = _build([1, 2, 2, 3], [2, 2, 3, 4, 1])
        encrypted = client.create_query(JoinQuery.build("L", "R", on=("k", "k")))
        handle_sets = []
        for engine in ENGINES:
            server.execute_join(encrypted, engine=engine)
            handle_sets.append(dict(server.observations[-1].handles))
        assert all(handles == handle_sets[0] for handles in handle_sets[1:])

    @pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
    @settings(max_examples=12, deadline=None)
    @given(
        left_keys=st.lists(st.integers(0, 4), min_size=0, max_size=10),
        right_keys=st.lists(st.integers(0, 4), min_size=0, max_size=10),
        seed=st.integers(0, 2**16),
    )
    def test_property_round_trip(self, left_keys, right_keys, seed):
        client, server = _build(left_keys, right_keys, seed=seed)
        query = JoinQuery.build("L", "R", on=("k", "k"))
        results = _run_engines(client, server, query)
        expected = _expected_pairs(left_keys, right_keys)
        for result in results:
            assert result.index_pairs == expected
            decrypted = client.decrypt_result(result)
            assert len(decrypted.table) == len(expected)
        _assert_equivalent(results, server)

    @pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
    @settings(max_examples=10, deadline=None)
    @given(
        num_attributes=st.integers(1, 3),
        in_clause_limit=st.integers(1, 3),
        left_size=st.integers(0, 12),
        right_size=st.integers(1, 12),
        key_space=st.integers(1, 5),
        seed=st.integers(0, 2**16),
    )
    def test_property_engines_identical_across_m_t_grid(
        self, num_attributes, in_clause_limit, left_size, right_size,
        key_space, seed,
    ):
        """All engines (incl. pooled and the planner) are byte-identical
        for random scheme dimensions (m, t) and candidate counts."""
        rng = random.Random(seed)
        left_keys = [rng.randrange(key_space) for _ in range(left_size)]
        right_keys = [rng.randrange(key_space) for _ in range(right_size)]
        client, server = _build(
            left_keys, right_keys, seed=seed,
            num_attributes=num_attributes, in_clause_limit=in_clause_limit,
        )
        shared = client.create_query(JoinQuery.build("L", "R", on=("k", "k")))
        expected = _expected_pairs(left_keys, right_keys)
        handle_sets = []
        for engine in ENGINES:
            result = server.execute_join(shared, engine=engine)
            assert result.index_pairs == expected
            handle_sets.append(dict(server.observations[-1].handles))
        # One shared token: every engine must observe the same bytes.
        assert all(handles == handle_sets[0] for handles in handle_sets[1:])

    def test_tpch_workload_equivalence(self):
        from repro.bench.workloads import build_encrypted_tpch, tpch_query

        workload = build_encrypted_tpch(0.002, in_clause_limit=1)
        encrypted = workload.client.create_query(tpch_query(1 / 12.5))
        results = [
            workload.server.execute_join(encrypted, engine=engine)
            for engine in ("serial", "batched", "parallel", "auto")
        ]
        assert results[0].stats.matches > 0
        for result in results[1:]:
            assert result.index_pairs == results[0].index_pairs
            assert result.left_payloads == results[0].left_payloads
            assert result.right_payloads == results[0].right_payloads


class TestChunking:
    def test_chunks_cover_in_order(self):
        items = list(range(10))
        chunks = _chunked(items, 3)
        assert [start for start, _ in chunks] == [0, 3, 6, 9]
        assert [x for _, chunk in chunks for x in chunk] == items

    def test_chunk_larger_than_side(self):
        assert _chunked([1, 2], 64) == [(0, [1, 2])]

    def test_chunk_of_one(self):
        assert _chunked([1, 2, 3], 1) == [(0, [1]), (1, [2]), (2, [3])]

    def test_empty_side(self):
        assert _chunked([], 4) == []
        client, server = _build([1, 2], [])
        query = JoinQuery.build("L", "R", on=("k", "k"))
        for engine in ENGINES:
            result = server.execute_join(
                client.create_query(query), engine=engine
            )
            assert result.index_pairs == []
            assert result.stats.candidates_right == 0

    def test_single_handle(self):
        client, server = _build([3], [3])
        query = JoinQuery.build("L", "R", on=("k", "k"))
        for engine in ENGINES:
            result = server.execute_join(
                client.create_query(query), engine=engine
            )
            assert result.index_pairs == [(0, 0)]

    def test_batch_exceeds_side_size(self):
        client, server = _build([1, 1, 2], [1, 2])
        query = JoinQuery.build("L", "R", on=("k", "k"))
        result = server.execute_join(
            client.create_query(query), engine=BatchedEngine(batch_size=100)
        )
        # One chunk per side.
        assert result.stats.batches == 2
        assert result.stats.max_batch_size == 3

    def test_invalid_configuration(self):
        with pytest.raises(QueryError):
            BatchedEngine(batch_size=0)
        with pytest.raises(QueryError):
            ParallelEngine(workers=0)
        with pytest.raises(QueryError):
            ParallelEngine(batch_size=0)
        with pytest.raises(QueryError):
            get_engine("warp-drive")


class TestAccounting:
    def test_batched_halves_final_exponentiations_on_64_handles(self):
        """The headline saving: one shared final exponentiation per row.

        A 64-row side decrypted serially costs one final exponentiation
        per *vector component* per row (the naive product of pairings);
        batched it costs one per row — at least 2x fewer for every
        scheme dimension >= 2 (the dimension is >= 5 by construction).
        """
        left_keys = [i % 8 for i in range(64)]
        right_keys = list(range(8))
        client, server = _build(left_keys, right_keys)
        encrypted = client.create_query(JoinQuery.build("L", "R", on=("k", "k")))

        serial = server.execute_join(encrypted, engine="serial")
        batched = server.execute_join(encrypted, engine="batched")

        assert serial.index_pairs == batched.index_pairs
        rows = serial.stats.decryptions
        assert rows == 64 + 8
        # Batched: exactly one shared final exponentiation per decrypted
        # row; serial: one per pairing, i.e. one per Miller loop.
        assert batched.stats.final_exponentiations == rows
        assert serial.stats.final_exponentiations == serial.stats.miller_loops
        assert serial.stats.miller_loops == batched.stats.miller_loops
        assert (
            serial.stats.final_exponentiations
            >= 2 * batched.stats.final_exponentiations
        )

    def test_stats_record_batches_and_workers(self):
        client, server = _build([i % 4 for i in range(20)], [0, 1, 2, 3])
        encrypted = client.create_query(JoinQuery.build("L", "R", on=("k", "k")))
        result = server.execute_join(
            encrypted, engine=ParallelEngine(workers=2, batch_size=5)
        )
        # Left side: 20 rows in 4 chunks through the pool (2 workers);
        # right side: 4 rows, inline fallback (1 chunk).
        assert result.stats.engine == "parallel"
        assert result.stats.workers == 2
        assert result.stats.batches == 5
        assert result.stats.max_batch_size == 5
        assert result.stats.final_exponentiations == 24

    def test_engine_hint_and_override_precedence(self):
        client, server = _build([1, 2], [2, 3])
        query = JoinQuery.build("L", "R", on=("k", "k"))

        hinted = client.create_query(query, engine="serial")
        assert hinted.engine_hint == "serial"
        assert server.execute_join(hinted).stats.engine == "serial"
        # An explicit engine argument beats the hint.
        assert (
            server.execute_join(hinted, engine="batched").stats.engine
            == "batched"
        )
        # Without hint or argument, the server default (batched) applies.
        plain = client.create_query(query)
        assert server.execute_join(plain).stats.engine == "batched"
        # A server built with an explicit default engine uses it.
        serial_server = SecureJoinServer(client.params, engine="serial")
        assert serial_server.engine.name == "serial"
        with pytest.raises(QueryError):
            client.create_query(query, engine="warp-drive")

    def test_parallel_hint_requires_server_opt_in(self):
        """Hints spend server resources, so "parallel" is allowlisted."""
        client, server = _build([1, 2], [2, 3])
        query = JoinQuery.build("L", "R", on=("k", "k"))
        hinted = client.create_query(query, engine="parallel")
        # Default allowlist ignores the hint: server default applies.
        assert server.execute_join(hinted).stats.engine == "batched"
        # An operator who opts in gets the hinted engine.
        open_server = SecureJoinServer(
            client.params, hint_engines=("serial", "batched", "parallel")
        )
        for table in ("L", "R"):
            open_server.store(server.table(table))
        assert open_server.execute_join(hinted).stats.engine == "parallel"

    def test_engine_source_recorded(self):
        client, server = _build([1, 2], [2, 3])
        query = JoinQuery.build("L", "R", on=("k", "k"))
        plain = client.create_query(query)
        assert server.execute_join(plain).stats.engine_source == "default"
        hinted = client.create_query(query, engine="serial")
        assert server.execute_join(hinted).stats.engine_source == "hint"
        overridden = server.execute_join(hinted, engine="batched")
        assert overridden.stats.engine_source == "override"
        assert overridden.stats.engine_selected == "batched"

    def test_wire_format_round_trips_engine_fields(self):
        from repro.store.wire import (
            decode_join_query,
            decode_join_result,
            encode_join_query,
            encode_join_result,
        )

        client, server = _build([1, 2, 2], [2, 2, 5])
        backend = client.scheme.backend
        encrypted = client.create_query(
            JoinQuery.build("L", "R", on=("k", "k")), engine="parallel"
        )
        decoded = decode_join_query(encode_join_query(encrypted, backend), backend)
        assert decoded.engine_hint == "parallel"

        result = server.execute_join(encrypted, engine="batched")
        round_tripped = decode_join_result(encode_join_result(result))
        assert round_tripped.stats == result.stats


class TestPlanner:
    """The ``auto`` engine: per-side cost-model engine selection."""

    def test_auto_records_planner_inputs_per_side(self):
        client, server = _build([i % 4 for i in range(20)], [0, 1, 2, 3])
        encrypted = client.create_query(JoinQuery.build("L", "R", on=("k", "k")))
        result = server.execute_join(encrypted, engine="auto")
        assert result.stats.engine == "auto"
        assert result.stats.planner is not None
        assert len(result.stats.planner) == 2  # one record per side
        left_side, right_side = result.stats.planner
        assert left_side["rows"] == 20
        assert right_side["rows"] == 4
        for side in result.stats.planner:
            assert side["dimension"] >= 2
            assert set(side["estimates"]) == {"serial", "batched", "parallel"}
            assert side["chosen"] in ("serial", "batched", "parallel")
            assert side["chosen"] == min(
                side["estimates"], key=side["estimates"].get
            ) or side["chosen"] == "batched"
        # engine_selected names what actually executed.
        assert result.stats.engine_selected in (
            "serial", "batched", "parallel",
            "batched+parallel", "parallel+batched",
        )

    def test_auto_never_picks_serial_with_default_models(self):
        """Serial can never beat batched (same Miller loops, strictly
        more final exponentiations), and the planner knows it."""
        for rows in ([3], [0] * 40):
            client, server = _build(rows, [0, 1])
            encrypted = client.create_query(
                JoinQuery.build("L", "R", on=("k", "k"))
            )
            result = server.execute_join(encrypted, engine="auto")
            for side in result.stats.planner:
                assert side["chosen"] != "serial"

    def test_auto_matches_batched_results_exactly(self):
        client, server = _build([1, 2, 2, 3] * 6, [2, 3, 4])
        encrypted = client.create_query(JoinQuery.build("L", "R", on=("k", "k")))
        auto = server.execute_join(encrypted, engine="auto")
        batched = server.execute_join(encrypted, engine="batched")
        assert auto.index_pairs == batched.index_pairs
        assert (
            server.observations[-2].handles == server.observations[-1].handles
        )

    def test_auto_honors_candidate_allowlist(self):
        client, server = _build([1, 2, 3], [2, 3])
        encrypted = client.create_query(JoinQuery.build("L", "R", on=("k", "k")))
        pinned = AutoEngine(candidates=("serial",))
        result = server.execute_join(encrypted, engine=pinned)
        assert result.stats.engine == "auto"
        assert result.stats.engine_selected == "serial"
        # Serial profile: one final exponentiation per Miller loop.
        assert (
            result.stats.final_exponentiations == result.stats.miller_loops
        )

    def test_auto_hint_requires_server_opt_in(self):
        """"auto" may choose the pool, so it is allowlisted like parallel."""
        client, server = _build([1, 2], [2, 3])
        query = JoinQuery.build("L", "R", on=("k", "k"))
        hinted = client.create_query(query, engine="auto")
        assert hinted.engine_hint == "auto"
        # Default allowlist: hint ignored, server default applies.
        assert server.execute_join(hinted).stats.engine == "batched"
        open_server = SecureJoinServer(
            client.params, hint_engines=("serial", "batched", "auto")
        )
        for table in ("L", "R"):
            open_server.store(server.table(table))
        assert open_server.execute_join(hinted).stats.engine == "auto"

    def test_auto_as_server_default(self):
        client, _ = _build([1, 2], [2, 3])
        auto_server = SecureJoinServer(client.params, engine="auto")
        assert auto_server.engine.name == "auto"

    def test_planner_prices_actual_pool_size(self):
        """The estimate must divide work by the pool the side really
        gets (engine cap ∧ service size), not the engine cap alone."""
        from repro.core.service import ExecutionService

        with ExecutionService(workers=2) as service:
            engine = AutoEngine(workers=8, service=service)
            client, server = _build([i % 3 for i in range(9)], [0, 1, 2])
            encrypted = client.create_query(
                JoinQuery.build("L", "R", on=("k", "k"))
            )
            result = server.execute_join(encrypted, engine=engine)
            for side in result.stats.planner:
                assert side["workers"] == 2

    def test_invalid_planner_configuration(self):
        with pytest.raises(QueryError):
            AutoEngine(candidates=("warp-drive",))
        with pytest.raises(QueryError):
            AutoEngine(candidates=())


@pytest.mark.bn254
class TestBN254CrossCheck:
    """The op counters model BN254: check them against the real backend."""

    def test_serial_and_batched_agree_on_real_pairings(self, bn254_backend):
        left = Table("L", Schema.of(("k", "int"), ("a", "str")), [(1, "x")])
        right = Table("R", Schema.of(("k", "int"), ("b", "str")),
                      [(1, "y"), (2, "z")])
        client = SecureJoinClient.for_tables(
            [(left, "k"), (right, "k")], in_clause_limit=1,
            backend=bn254_backend, rng=random.Random(11),
        )
        server = SecureJoinServer(client.params, backend=bn254_backend)
        server.store(client.encrypt_table(left, "k"))
        server.store(client.encrypt_table(right, "k"))
        encrypted = client.create_query(JoinQuery.build("L", "R", on=("k", "k")))

        serial = server.execute_join(encrypted, engine="serial")
        batched = server.execute_join(encrypted, engine="batched")

        assert serial.index_pairs == batched.index_pairs == [(0, 0)]
        assert dict(server.observations[-2].handles) == dict(
            server.observations[-1].handles
        )
        # Real counts: serial pays one final exponentiation per Miller
        # loop, batched one per row.
        assert serial.stats.final_exponentiations == serial.stats.miller_loops
        assert batched.stats.final_exponentiations == 3
        assert (
            serial.stats.final_exponentiations
            >= 2 * batched.stats.final_exponentiations
        )
