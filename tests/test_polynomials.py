"""Tests for the polynomial selection encoding (Section 4.1)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.polynomials import ZqPolynomial, power_vector
from repro.crypto.params import CURVE_ORDER
from repro.errors import SchemeError

Q = CURVE_ORDER


class TestFromRoots:
    def test_vanishes_on_all_roots(self):
        rng = random.Random(1)
        roots = [5, 17, 99]
        poly = ZqPolynomial.from_roots(roots, 5, Q, rng)
        for root in roots:
            assert poly.evaluate(root) == 0

    def test_degree_is_exact(self):
        rng = random.Random(2)
        poly = ZqPolynomial.from_roots([3], 4, Q, rng)
        assert poly.degree() == 4

    def test_nonzero_off_roots(self):
        rng = random.Random(3)
        poly = ZqPolynomial.from_roots([1, 2], 3, Q, rng)
        # Schwartz-Zippel: hitting another zero by chance is ~ t/q.
        for x in range(3, 50):
            assert poly.evaluate(x) != 0

    def test_too_many_roots_rejected(self):
        rng = random.Random(4)
        with pytest.raises(SchemeError):
            ZqPolynomial.from_roots([1, 2, 3], 2, Q, rng)

    def test_randomized_encodings_differ(self):
        """Same roots, two draws -> different polynomials (>= q candidates)."""
        rng = random.Random(5)
        a = ZqPolynomial.from_roots([7], 3, Q, rng)
        b = ZqPolynomial.from_roots([7], 3, Q, rng)
        assert a != b
        assert a.evaluate(7) == 0 and b.evaluate(7) == 0

    @given(st.lists(st.integers(min_value=0, max_value=Q - 1),
                    min_size=1, max_size=5, unique=True),
           st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=25, deadline=None)
    def test_roots_property(self, roots, seed):
        rng = random.Random(seed)
        poly = ZqPolynomial.from_roots(roots, len(roots) + 2, Q, rng)
        assert all(poly.evaluate(r) == 0 for r in roots)
        assert poly.degree() == len(roots) + 2


class TestBasics:
    def test_zero(self):
        zero = ZqPolynomial.zero(4, Q)
        assert zero.is_zero
        assert zero.degree() == -1
        assert zero.evaluate(12345) == 0

    def test_evaluate_horner(self):
        # 2 + 3x + x^2 at x = 5 -> 42.
        poly = ZqPolynomial([2, 3, 1], Q)
        assert poly.evaluate(5) == 42

    def test_modular_reduction(self):
        poly = ZqPolynomial([Q + 1, -1], Q)
        assert poly.coefficients == (1, Q - 1)

    def test_padded(self):
        poly = ZqPolynomial([1, 2], Q)
        assert poly.padded(4) == (1, 2, 0, 0)

    def test_padded_truncation_of_zeros_ok(self):
        poly = ZqPolynomial([1, 2, 0, 0], Q)
        assert poly.padded(2) == (1, 2)

    def test_padded_truncation_of_nonzero_rejected(self):
        poly = ZqPolynomial([1, 2, 3], Q)
        with pytest.raises(SchemeError):
            poly.padded(2)

    def test_equality_ignores_trailing_zeros(self):
        assert ZqPolynomial([1, 2], Q) == ZqPolynomial([1, 2, 0], Q)
        assert hash(ZqPolynomial([1, 2], Q)) == hash(ZqPolynomial([1, 2, 0], Q))

    def test_tiny_modulus_rejected(self):
        with pytest.raises(SchemeError):
            ZqPolynomial([1], 1)


class TestPowerVector:
    def test_values(self):
        assert power_vector(3, 4, 1000) == [1, 3, 9, 27, 81]

    def test_zero_value(self):
        assert power_vector(0, 3, Q) == [1, 0, 0, 0]

    def test_reduction(self):
        assert power_vector(Q + 2, 2, Q) == [1, 2, 4]

    def test_inner_product_is_evaluation(self):
        """<coefficients, powers> == P(x) — the core encoding identity."""
        rng = random.Random(6)
        poly = ZqPolynomial.from_roots([11, 22], 4, Q, rng)
        x = 12345
        powers = power_vector(x, 4, Q)
        ip = sum(c * p for c, p in zip(poly.padded(5), powers)) % Q
        assert ip == poly.evaluate(x)
