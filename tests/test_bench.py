"""Tests for the benchmark harness and experiment drivers (small configs)."""

from __future__ import annotations

import pytest

from repro.bench import experiments
from repro.bench.harness import (
    BenchmarkRecord,
    ExperimentResult,
    format_series_table,
    time_callable,
)
from repro.bench.workloads import build_encrypted_tpch, tpch_query
from repro.errors import QueryError


class TestHarness:
    def test_time_callable(self):
        mean, stdev = time_callable(lambda: sum(range(100)), repeats=3)
        assert mean > 0
        assert stdev >= 0

    def test_single_repeat_no_stdev(self):
        mean, stdev = time_callable(lambda: None, repeats=1)
        assert stdev == 0.0

    def test_record_millis(self):
        record = BenchmarkRecord({"x": 1}, 0.5)
        assert record.millis_mean == 500.0

    def test_result_filter(self):
        result = ExperimentResult("e")
        result.records.append(BenchmarkRecord({"a": 1, "b": 2}, 0.1))
        result.records.append(BenchmarkRecord({"a": 1, "b": 3}, 0.2))
        assert len(result.filter(a=1)) == 2
        assert len(result.filter(b=3)) == 1
        assert result.filter(b=9) == []

    def test_result_series(self):
        result = ExperimentResult("e")
        result.records.append(BenchmarkRecord({"x": 2, "g": "s"}, 0.2))
        result.records.append(BenchmarkRecord({"x": 1, "g": "s"}, 0.1))
        series = result.series("x", "g")
        assert series["s"] == [(1, 0.1), (2, 0.2)]

    def test_format_table(self):
        text = format_series_table(
            "title", [{"a": 1, "b": 2.5}], ["a", "b", "missing"]
        )
        assert "title" in text
        assert "2.5" in text
        assert "-" in text


class TestWorkloads:
    def test_build_and_cache(self):
        first = build_encrypted_tpch(0.001, in_clause_limit=1)
        second = build_encrypted_tpch(0.001, in_clause_limit=1)
        assert first is second  # cached
        assert first.num_customers == 150
        assert first.num_orders == 1500

    def test_no_cache_builds_fresh(self):
        first = build_encrypted_tpch(0.001, use_cache=False)
        second = build_encrypted_tpch(0.001, use_cache=False)
        assert first is not second

    def test_tpch_query_shape(self):
        query = tpch_query(1 / 100, in_clause_size=3)
        values = query.left_selection.as_dict()["selectivity"]
        assert values[0] == "1/100"
        assert len(values) == 3
        assert query.left_join_column == "custkey"

    def test_bad_selectivity(self):
        with pytest.raises(Exception):
            tpch_query(0.42)


class TestExperimentDrivers:
    def test_figure2_fast(self):
        result = experiments.figure2(
            t_values=(1, 2), backend_name="fast", repeats=1
        )
        operations = {r.params["operation"] for r in result.records}
        assert operations == {"token_generation", "encryption", "decryption"}
        assert len(result.records) == 6

    def test_figure3_tiny(self):
        result = experiments.figure3(
            scale_factors=(0.001,), selectivities=(1 / 100, 1 / 12.5),
            repeats=1,
        )
        assert len(result.records) == 2
        # Higher selectivity decrypts more rows.
        low = result.filter(selectivity=1 / 100)[0]
        high = result.filter(selectivity=1 / 12.5)[0]
        assert high.extra["decryptions"] > low.extra["decryptions"]

    def test_figure4_tiny(self):
        result = experiments.figure4(
            in_clause_sizes=(1, 2), selectivities=(1 / 100,),
            scale_factor=0.001, repeats=1,
        )
        assert len(result.records) == 2

    def test_comparison_tiny(self):
        result = experiments.comparison_with_hahn(
            scale_factors=(0.001,), repeats=1
        )
        hash_rec = result.filter(algorithm="hash")[0]
        nested_rec = result.filter(algorithm="nested")[0]
        assert nested_rec.extra["comparisons"] > hash_rec.extra["comparisons"]
        assert nested_rec.extra["matches"] == hash_rec.extra["matches"]

    def test_prefilter_ablation_tiny(self):
        result = experiments.prefilter_ablation(
            scale_factor=0.001, repeats=1
        )
        with_filter = result.filter(prefilter=True)[0]
        without = result.filter(prefilter=False)[0]
        assert without.extra["decryptions"] > with_filter.extra["decryptions"]
        assert without.extra["matches"] == with_filter.extra["matches"]

    def test_leakage_example_numbers(self):
        timeline = experiments.leakage_example()
        assert timeline.summary()["securejoin"] == [0, 1, 2]

    def test_minimum_rows_decrypted(self):
        info = experiments.minimum_rows_decrypted(0.001, 1 / 100)
        assert info["customers"] == 150
        assert info["selected_customers"] == round(150 / 100)
