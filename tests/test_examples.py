"""Smoke tests: every example script runs to completion.

The examples double as integration tests of the public API; each one
ends with internal assertions, so a zero exit status means the
behaviour it demonstrates actually held.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

_EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(_EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        proc = _run("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "matches plaintext ground truth" in proc.stdout

    def test_leakage_comparison(self):
        proc = _run("leakage_comparison.py")
        assert proc.returncode == 0, proc.stderr
        assert "securejoin" in proc.stdout
        assert "exactly the minimum" in proc.stdout

    def test_query_series(self):
        proc = _run("query_series.py")
        assert proc.returncode == 0, proc.stderr
        assert "handles that coincide across the queries: 0" in proc.stdout

    def test_sql_interface(self):
        proc = _run("sql_interface.py")
        assert proc.returncode == 0, proc.stderr
        assert "widgets" in proc.stdout

    def test_frequency_attack(self):
        proc = _run("frequency_attack.py")
        assert proc.returncode == 0, proc.stderr
        assert "Deterministic encryption" in proc.stdout

    def test_three_way_join(self):
        proc = _run("three_way_join.py")
        assert proc.returncode == 0, proc.stderr
        assert "matches plaintext composition" in proc.stdout

    def test_tpch_join_tiny(self):
        proc = _run("tpch_join.py", "0.001")
        assert proc.returncode == 0, proc.stderr
        assert "verified against plaintext execution" in proc.stdout
