"""Tests for the leakage analyzer: pair arithmetic and the Section 2.1 timeline."""

from __future__ import annotations

import random

import pytest

from repro.baselines import (
    CryptDBScheme,
    DeterministicScheme,
    HahnScheme,
    SecureJoinAdapter,
)
from repro.baselines.api import make_pair
from repro.bench.experiments import example_queries, example_tables
from repro.db.query import JoinQuery
from repro.db.schema import Schema
from repro.db.table import Table
from repro.leakage.analyzer import analyze_schemes, minimal_floor
from repro.leakage.pairs import (
    all_true_pairs,
    is_super_additive,
    minimal_query_leakage,
    transitive_closure,
)


class TestTruePairs:
    def test_example_has_six_pairs(self):
        assert len(all_true_pairs(example_tables())) == 6

    def test_within_table_pairs_counted(self):
        table = Table("T", Schema.of(("k", "int")), [(1,), (1,), (1,)])
        pairs = all_true_pairs([(table, "k")])
        assert len(pairs) == 3  # C(3,2)

    def test_no_equal_values_no_pairs(self):
        table = Table("T", Schema.of(("k", "int")), [(1,), (2,)])
        assert all_true_pairs([(table, "k")]) == set()


class TestMinimalQueryLeakage:
    def test_first_example_query(self):
        tables = example_tables()
        q1 = example_queries()[0]
        assert minimal_query_leakage(tables, q1) == {
            make_pair(("Teams", 0), ("Employees", 1))
        }

    def test_unfiltered_query_leaks_everything(self):
        tables = example_tables()
        query = JoinQuery.build("Teams", "Employees", on=("key", "team"))
        assert minimal_query_leakage(tables, query) == all_true_pairs(tables)

    def test_within_table_pairs_in_leakage(self):
        """Selected same-table rows with equal join values are leaked."""
        tables = example_tables()
        query = JoinQuery.build(
            "Teams", "Employees", on=("key", "team"),
            where_left={"name": ["No Match"]},
            where_right={"role": ["Tester", "Programmer"]},
        )
        pairs = minimal_query_leakage(tables, query)
        assert pairs == {
            make_pair(("Employees", 0), ("Employees", 1)),
            make_pair(("Employees", 2), ("Employees", 3)),
        }


class TestTransitiveClosure:
    def test_chains_are_closed(self):
        a, b, c = ("T", 1), ("T", 2), ("T", 3)
        closed = transitive_closure({make_pair(a, b), make_pair(b, c)})
        assert closed == {make_pair(a, b), make_pair(b, c), make_pair(a, c)}

    def test_disjoint_components_stay_disjoint(self):
        a, b, c, d = ("T", 1), ("T", 2), ("T", 3), ("T", 4)
        closed = transitive_closure({make_pair(a, b), make_pair(c, d)})
        assert len(closed) == 2

    def test_empty(self):
        assert transitive_closure(set()) == set()

    def test_idempotent(self):
        a, b, c = ("T", 1), ("T", 2), ("T", 3)
        once = transitive_closure({make_pair(a, b), make_pair(b, c)})
        assert transitive_closure(once) == once


class TestSuperAdditivity:
    def test_detects_excess(self):
        a, b, c, d = ("T", 1), ("T", 2), ("T", 3), ("T", 4)
        per_query = [{make_pair(a, b)}]
        assert is_super_additive({make_pair(a, b), make_pair(c, d)}, per_query)

    def test_closure_is_not_super_additive(self):
        a, b, c = ("T", 1), ("T", 2), ("T", 3)
        per_query = [{make_pair(a, b)}, {make_pair(b, c)}]
        revealed = transitive_closure({make_pair(a, b), make_pair(b, c)})
        assert not is_super_additive(revealed, per_query)


class TestSection21Timeline:
    """The paper's central comparison table, end to end."""

    @pytest.fixture(scope="class")
    def timeline(self):
        schemes = [
            DeterministicScheme(),
            CryptDBScheme(),
            HahnScheme(),
            SecureJoinAdapter(rng=random.Random(3)),
        ]
        return analyze_schemes(schemes, example_tables(), example_queries())

    def test_counts_match_paper(self, timeline):
        summary = timeline.summary()
        assert summary["deterministic"] == [6, 6, 6]
        assert summary["cryptdb"] == [0, 6, 6]
        assert summary["hahn"] == [0, 1, 6]
        assert summary["securejoin"] == [0, 1, 2]
        assert summary["minimum (closure of union)"] == [0, 1, 2]

    def test_only_securejoin_is_additive(self, timeline):
        floor = timeline.floor
        assert timeline.traces["deterministic"].is_super_additive(floor)
        assert timeline.traces["cryptdb"].is_super_additive(floor)
        assert timeline.traces["hahn"].is_super_additive(floor)
        assert not timeline.traces["securejoin"].is_super_additive(floor)

    def test_securejoin_achieves_exact_floor(self, timeline):
        assert timeline.traces["securejoin"].revealed == timeline.floor

    def test_all_schemes_answer_correctly(self, timeline):
        reference = timeline.traces["deterministic"].answers
        for name, trace in timeline.traces.items():
            for answer, ref in zip(trace.answers, reference):
                assert sorted(answer.index_pairs) == sorted(ref.index_pairs), name

    def test_format_table_mentions_all_schemes(self, timeline):
        text = timeline.format_table()
        for name in ("deterministic", "cryptdb", "hahn", "securejoin"):
            assert name in text


class TestMinimalFloor:
    def test_floor_monotone(self):
        floor = minimal_floor(example_tables(), example_queries())
        assert len(floor) == 3
        assert floor[0] <= floor[1] <= floor[2]
