"""Tests for the query-series cache and delta-maintained joins.

The contract under test: re-submitting the *same* encrypted query
replays the cached canonical result with zero pairing work; base-table
mutations are repaired by decrypting only the delta; and every cached
or delta-maintained answer is byte-identical to a from-scratch join on
a cache-less server holding the same tables.
"""

from __future__ import annotations

import copy
import json
import random
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.costmodel import (
    EngineCostModel,
    choose_delta_engine,
    default_engine_cost_model,
)
from repro.core.client import SecureJoinClient
from repro.core.server import SecureJoinServer
from repro.db.matcher import get_matcher
from repro.db.query import JoinQuery
from repro.db.schema import Schema
from repro.db.table import Table
from repro.errors import BenchmarkError
from repro.series.cache import SeriesCache, SeriesEntry, series_key
from repro.shard.coordinator import LocalShard, ShardCoordinator
from repro.shard.partition import partition_table
from repro.store import wire
from repro.store.wire import decode_join_result, encode_join_result

LEFT_ROWS = [(1, "a0"), (2, "a1"), (3, "a2"), (2, "a3")]
RIGHT_ROWS = [(2, "b0"), (3, "b1"), (4, "b2")]


def _setup(seed=41, series_cache_bytes=None, enable_prefilter=False,
           **server_kwargs):
    """Two small joined tables on one server; default cache budget."""
    left = Table("L", Schema.of(("k", "int"), ("a", "str")), LEFT_ROWS)
    right = Table("R", Schema.of(("k", "int"), ("b", "str")), RIGHT_ROWS)
    client = SecureJoinClient.for_tables(
        [(left, "k"), (right, "k")],
        in_clause_limit=2,
        rng=random.Random(seed),
        enable_prefilter=enable_prefilter,
    )
    if series_cache_bytes is not None:
        server_kwargs["series_cache_bytes"] = series_cache_bytes
    server = SecureJoinServer(client.params, **server_kwargs)
    server.store(client.encrypt_table(left, "k"))
    server.store(client.encrypt_table(right, "k"))
    return client, server


def _query(client, **kwargs):
    return client.create_query(
        JoinQuery.build("L", "R", on=("k", "k")), **kwargs
    )


def _mirror(client, server):
    """A cache-less server holding deep copies of ``server``'s tables."""
    mirror = SecureJoinServer(client.params, series_cache_bytes=0)
    for name in ("L", "R"):
        mirror.store(copy.deepcopy(server.table(name)))
    for name in ("L", "R"):
        doomed = server.tombstoned_rows(name)
        if doomed:
            mirror.delete_rows(name, sorted(doomed))
    return mirror


def _assert_identical(result, reference):
    assert result.index_pairs == reference.index_pairs
    assert result.left_payloads == reference.left_payloads
    assert result.right_payloads == reference.right_payloads
    assert result.stats.matches == reference.stats.matches


def _drain(generator):
    batches = []
    while True:
        try:
            batches.append(next(generator))
        except StopIteration as stop:
            return batches, stop.value


# -- the series key -------------------------------------------------------


class TestSeriesKey:
    def test_same_query_same_key(self):
        client, server = _setup()
        backend = server.scheme.backend
        query = _query(client)
        assert series_key(query, backend) == series_key(query, backend)
        server.close()

    def test_fresh_tokens_fresh_key(self):
        # create_query draws fresh randomness, so two submissions of the
        # same plaintext query are distinct series: the cache must not
        # (and cannot) conflate them.
        client, server = _setup()
        backend = server.scheme.backend
        assert series_key(_query(client), backend) != series_key(
            _query(client), backend
        )
        server.close()


# -- warm replay ----------------------------------------------------------


class TestWarmReplay:
    def test_replay_runs_zero_pairing_ops(self):
        client, server = _setup()
        ops = server.scheme.backend.ops
        query = _query(client)
        cold = server.execute_join(query)
        snapshot = ops.snapshot()
        warm = server.execute_join(query)
        since = ops.since(snapshot)
        assert since.miller_loops == 0
        assert since.prepared_miller_loops == 0
        assert since.final_exponentiations == 0
        assert warm.stats.decryptions == 0
        assert warm.stats.series_cache_hits == 1
        assert warm.stats.delta_rows == 0
        assert warm.stats.reused_handles == (
            cold.stats.candidates_left + cold.stats.candidates_right
        )
        assert warm.stats.engine == "series"
        _assert_identical(warm, cold)
        assert server.series_cache.stats.replays == 1
        server.close()

    def test_streamed_replay_matches_materialized(self):
        client, server = _setup()
        query = _query(client)
        cold = server.execute_join(query)
        batches, warm = _drain(server.stream_join(query))
        streamed = sorted(
            pair for batch in batches for pair in batch.index_pairs
        )
        assert streamed == sorted(cold.index_pairs)
        _assert_identical(warm, cold)
        server.close()

    def test_replay_is_byte_identical_to_scratch(self):
        client, server = _setup()
        query = _query(client)
        server.execute_join(query)
        warm = server.execute_join(query)
        scratch = _mirror(client, server)
        _assert_identical(warm, scratch.execute_join(query))
        scratch.close()
        server.close()

    def test_explicit_engine_override_bypasses_replay(self):
        # A concrete engine override is an instruction to *execute*
        # SJ.Dec that way (ablation runs depend on it), so it must not
        # be served from the cache.
        client, server = _setup()
        query = _query(client)
        cold = server.execute_join(query)
        rerun = server.execute_join(query, engine="serial")
        assert rerun.stats.series_cache_hits == 0
        assert rerun.stats.decryptions == cold.stats.decryptions
        _assert_identical(rerun, cold)
        server.close()

    def test_explicit_matcher_mismatch_bypasses_replay(self):
        client, server = _setup()
        query = _query(client)
        cold = server.execute_join(query, algorithm="hash")
        rerun = server.execute_join(query, algorithm="nested")
        assert rerun.stats.series_cache_hits == 0
        assert rerun.stats.matcher == "nested"
        _assert_identical(rerun, cold)
        server.close()

    def test_disabled_cache_never_hits(self):
        client, server = _setup(series_cache_bytes=0)
        assert server.series_cache is None
        query = _query(client)
        first = server.execute_join(query)
        second = server.execute_join(query)
        assert second.stats.series_cache_hits == 0
        assert second.stats.decryptions == first.stats.decryptions
        server.close()


# -- delta maintenance ----------------------------------------------------


class TestDeltaMaintenance:
    def test_insert_of_k_rows_decrypts_exactly_k_rows(self):
        client, server = _setup()
        ops = server.scheme.backend.ops
        query = _query(client)
        server.execute_join(query)
        inserted = [(2, "new0"), (5, "new1"), (3, "new2")]
        for row in inserted:
            server.insert_row("R", *client.encrypt_row_for("R", row))
        dimension = len(server.table("R").ciphertexts[0])
        snapshot = ops.snapshot()
        delta = server.execute_join(query)
        since = ops.since(snapshot)
        assert delta.stats.series_cache_hits == 1
        assert delta.stats.delta_rows == len(inserted)
        assert delta.stats.decryptions == len(inserted)
        # SJ.Dec costs one Miller loop per ciphertext element, so the
        # pairing counter pins the decryption count independently.
        assert (
            since.miller_loops + since.prepared_miller_loops
            == len(inserted) * dimension
        )
        scratch = _mirror(client, server)
        _assert_identical(delta, scratch.execute_join(query))
        scratch.close()
        server.close()

    def test_delete_refresh_decrypts_nothing(self):
        client, server = _setup()
        ops = server.scheme.backend.ops
        query = _query(client)
        cold = server.execute_join(query)
        server.delete_rows("R", [0])
        snapshot = ops.snapshot()
        refreshed = server.execute_join(query)
        since = ops.since(snapshot)
        assert since.miller_loops == 0
        assert since.prepared_miller_loops == 0
        assert refreshed.stats.series_cache_hits == 1
        assert refreshed.stats.delta_rows == 0
        assert refreshed.stats.decryptions == 0
        assert all(pair[1] != 0 for pair in refreshed.index_pairs)
        assert len(refreshed.index_pairs) < len(cold.index_pairs)
        scratch = _mirror(client, server)
        _assert_identical(refreshed, scratch.execute_join(query))
        scratch.close()
        server.close()

    def test_replay_after_delta_is_warm_again(self):
        client, server = _setup()
        query = _query(client)
        server.execute_join(query)
        server.insert_row("L", *client.encrypt_row_for("L", (4, "late")))
        server.execute_join(query)
        warm = server.execute_join(query)
        assert warm.stats.series_cache_hits == 1
        assert warm.stats.delta_rows == 0
        assert warm.stats.decryptions == 0
        server.close()

    def test_streamed_delta_yields_retained_pairs_first(self):
        client, server = _setup()
        query = _query(client)
        cold = server.execute_join(query)
        server.insert_row("R", *client.encrypt_row_for("R", (1, "fresh")))
        batches, result = _drain(server.stream_join(query))
        assert sorted(batches[0].index_pairs) == sorted(cold.index_pairs)
        streamed = sorted(
            pair for batch in batches for pair in batch.index_pairs
        )
        assert streamed == sorted(result.index_pairs)
        server.close()

    def test_delta_planner_prices_small_deltas_serial(self):
        model = default_engine_cost_model("fast")
        chosen, estimates = choose_delta_engine(
            model, rows=3, dimension=4, workers=4, pool_warm=True
        )
        assert chosen == "serial"
        assert set(estimates) == {"serial", "batched", "parallel"}


# -- invalidation ---------------------------------------------------------


class TestInvalidation:
    def test_restore_invalidates_the_series(self):
        client, server = _setup()
        query = _query(client)
        server.execute_join(query)
        left = Table("L", Schema.of(("k", "int"), ("a", "str")), LEFT_ROWS)
        server.store(client.encrypt_table(left, "k"))
        assert server.series_cache.stats.invalidations >= 1
        again = server.execute_join(query)
        assert again.stats.series_cache_hits == 0
        assert again.stats.decryptions > 0
        server.close()

    def test_version_counters_route_to_delta_not_replay(self):
        client, server = _setup()
        query = _query(client)
        server.execute_join(query)
        before = server.table_version("R")
        server.insert_row("R", *client.encrypt_row_for("R", (9, "v")))
        assert server.table_version("R") == before + 1
        delta = server.execute_join(query)
        assert delta.stats.series_cache_hits == 1
        assert delta.stats.delta_rows == 1
        server.close()


# -- eviction under a byte budget ----------------------------------------


class TestEviction:
    def test_budget_evicts_lru_and_stays_correct(self):
        client, server = _setup()
        entry_bytes = None
        query_a = _query(client)
        server.execute_join(query_a)
        cache = server.series_cache
        entry_bytes = next(iter(cache._entries.values())).byte_size
        # Shrink the budget to hold exactly one entry, then cache a
        # second series: the older one must be evicted.
        cache.budget_bytes = entry_bytes + entry_bytes // 2
        query_b = _query(client)
        server.execute_join(query_b)
        assert cache.stats.evictions >= 1
        assert len(cache._entries) == 1
        evicted_rerun = server.execute_join(query_a)
        assert evicted_rerun.stats.series_cache_hits == 0
        scratch = _mirror(client, server)
        _assert_identical(evicted_rerun, scratch.execute_join(query_a))
        scratch.close()
        server.close()

    def test_oversized_entry_is_not_cached(self):
        cache = SeriesCache(budget_bytes=8)
        entry = SeriesEntry(
            key=b"k" * 32, left_table="L", right_table="R",
            epochs=(1, 1), versions=(0, 0),
            matcher=get_matcher("hash"), matcher_name="hash",
        )
        assert not cache.store(entry)
        assert cache.lookup(b"k" * 32, (1, 1)) is None


# -- wire stats round-trip ------------------------------------------------


class TestWireStats:
    def test_series_counters_round_trip(self):
        client, server = _setup()
        query = _query(client)
        server.execute_join(query)
        server.insert_row("R", *client.encrypt_row_for("R", (2, "w")))
        delta = server.execute_join(query)
        assert delta.stats.delta_rows == 1
        decoded = decode_join_result(encode_join_result(delta))
        assert decoded.stats.series_cache_hits == 1
        assert decoded.stats.delta_rows == 1
        assert decoded.stats.reused_handles == delta.stats.reused_handles
        server.close()

    def test_v5_results_still_load_with_zero_series_counters(self):
        client, server = _setup()
        query = _query(client)
        blob = encode_join_result(server.execute_join(query))
        # Rewrite as a version-5 payload: drop the counters a v5 writer
        # did not have and stamp the older version byte.
        magic = blob[:8]
        (header_len,) = struct.unpack(">I", blob[9:13])
        header = json.loads(blob[13:13 + header_len])
        for key in ("series_cache_hits", "delta_rows", "reused_handles"):
            del header["stats"][key]
        raw = json.dumps(header, sort_keys=True).encode("utf-8")
        legacy = (
            magic + bytes([5]) + struct.pack(">I", len(raw)) + raw
            + blob[13 + header_len:]
        )
        decoded = decode_join_result(legacy)
        assert decoded.stats.series_cache_hits == 0
        assert decoded.stats.delta_rows == 0
        assert decoded.stats.reused_handles == 0
        server.close()

    def test_future_stats_keys_are_dropped(self):
        assert "series_cache_hits" in wire._STATS_FIELDS


# -- cost-model persistence ----------------------------------------------


class TestCostModelPersistence:
    def test_save_load_round_trip(self, tmp_path):
        model = default_engine_cost_model("fast")
        path = tmp_path / "model.json"
        model.save(path)
        assert EngineCostModel.load(path) == model

    def test_load_drops_unknown_keys(self, tmp_path):
        model = default_engine_cost_model("fast")
        path = tmp_path / "model.json"
        model.save(path)
        payload = json.loads(path.read_text())
        payload["model"]["from_the_future"] = 1.0
        path.write_text(json.dumps(payload))
        assert EngineCostModel.load(path) == model

    def test_load_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "model.json"
        path.write_text('{"format": "something-else", "model": {}}')
        with pytest.raises(BenchmarkError):
            EngineCostModel.load(path)
        path.write_text("not json at all")
        with pytest.raises(BenchmarkError):
            EngineCostModel.load(path)


# -- sharded series -------------------------------------------------------


def _sharded_setup(seed=43, n_shards=2, series_cache_bytes=None):
    left = Table("L", Schema.of(("k", "int"), ("a", "str")), LEFT_ROWS)
    right = Table("R", Schema.of(("k", "int"), ("b", "str")), RIGHT_ROWS)
    client = SecureJoinClient.for_tables(
        [(left, "k"), (right, "k")],
        in_clause_limit=2,
        rng=random.Random(seed),
    )
    backend_probe = SecureJoinServer(client.params)
    backend = backend_probe.scheme.backend
    tables = [
        client.encrypt_table(left, "k"), client.encrypt_table(right, "k")
    ]
    shards = [
        LocalShard(client.params, workers=2, name=f"shard-{i}")
        for i in range(n_shards)
    ]
    for table in tables:
        for piece in partition_table(table, backend, n_shards):
            shards[piece.shard.shard_index].store(piece)
    kwargs = {}
    if series_cache_bytes is not None:
        kwargs["series_cache_bytes"] = series_cache_bytes
    coordinator = ShardCoordinator(shards, **kwargs)
    backend_probe.close()
    return client, coordinator, shards


class TestShardedSeries:
    def test_coordinator_replay_runs_zero_pairing_ops(self):
        client, coordinator, shards = _sharded_setup()
        query = _query(client)
        cold = coordinator.execute_join(query)
        ops = shards[0].backend.ops
        snapshot = ops.snapshot()
        warm = coordinator.execute_join(query)
        since = ops.since(snapshot)
        assert since.miller_loops == 0
        assert since.prepared_miller_loops == 0
        assert warm.stats.series_cache_hits == 1
        assert warm.stats.decryptions == 0
        _assert_identical(warm, cold)
        for shard in shards:
            shard.close()

    def test_coordinator_delta_insert_decrypts_only_the_delta(self):
        client, coordinator, shards = _sharded_setup()
        query = _query(client)
        coordinator.execute_join(query)
        coordinator.insert_row("R", *client.encrypt_row_for("R", (2, "d")))
        delta = coordinator.execute_join(query)
        assert delta.stats.series_cache_hits == 1
        assert delta.stats.delta_rows == 1
        assert delta.stats.decryptions == 1
        # The new global row joins key 2 on both left rows with that key.
        fresh = _sharded_setup(seed=43)  # rebuild cold for comparison
        client2, cold_coord, cold_shards = fresh
        cold_coord.insert_row(
            "R", *client2.encrypt_row_for("R", (2, "d"))
        )
        cold = cold_coord.execute_join(_query(client2))
        assert sorted(delta.index_pairs) == sorted(cold.index_pairs)
        for shard in shards + cold_shards:
            shard.close()

    def test_coordinator_delete_tombstones_without_recompute(self):
        client, coordinator, shards = _sharded_setup()
        query = _query(client)
        cold = coordinator.execute_join(query)
        assert coordinator.delete_rows("R", [0]) == 1
        ops = shards[0].backend.ops
        snapshot = ops.snapshot()
        refreshed = coordinator.execute_join(query)
        since = ops.since(snapshot)
        assert since.miller_loops == 0
        assert refreshed.stats.series_cache_hits == 1
        assert refreshed.stats.delta_rows == 0
        assert all(pair[1] != 0 for pair in refreshed.index_pairs)
        assert len(refreshed.index_pairs) < len(cold.index_pairs)
        for shard in shards:
            shard.close()


# -- interleavings are byte-identical to from-scratch ---------------------


ENGINES = (None, "auto", "serial", "batched", "parallel")


class TestInterleavings:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_fixed_interleaving_every_engine(self, engine):
        client, server = _setup(workers=2)
        query = _query(client)
        steps = [
            ("query", None),
            ("insert", ("R", (2, "i0"))),
            ("query", None),
            ("delete", ("L", [1])),
            ("query", None),
            ("insert", ("L", (4, "i1"))),
            ("insert", ("R", (4, "i2"))),
            ("query", None),
            ("query", None),
        ]
        for action, payload in steps:
            if action == "insert":
                table, row = payload
                server.insert_row(
                    table, *client.encrypt_row_for(table, row)
                )
            elif action == "delete":
                table, rows = payload
                server.delete_rows(table, rows)
            else:
                result = server.execute_join(query, engine=engine)
                scratch = _mirror(client, server)
                reference = scratch.execute_join(query, engine=engine)
                _assert_identical(result, reference)
                scratch.close()
        server.close()

    @pytest.mark.parametrize("n_shards", (1, 2))
    def test_fixed_interleaving_sharded(self, n_shards):
        client, coordinator, shards = _sharded_setup(n_shards=n_shards)
        cacheless = _sharded_setup(
            n_shards=n_shards, series_cache_bytes=0
        )
        client2, cold_coord, cold_shards = cacheless
        assert cold_coord.series_cache is None
        query = _query(client)
        query2 = _query(client2)
        steps = [
            ("query", None),
            ("insert", ("R", (3, "s0"))),
            ("query", None),
            ("delete", ("R", [1])),
            ("query", None),
            ("query", None),
        ]
        for action, payload in steps:
            if action == "insert":
                table, row = payload
                coordinator.insert_row(
                    table, *client.encrypt_row_for(table, row)
                )
                cold_coord.insert_row(
                    table, *client2.encrypt_row_for(table, row)
                )
            elif action == "delete":
                table, rows = payload
                coordinator.delete_rows(table, rows)
                cold_coord.delete_rows(table, rows)
            else:
                cached = coordinator.execute_join(query)
                cold = cold_coord.execute_join(query2)
                assert sorted(cached.index_pairs) == sorted(
                    cold.index_pairs
                )
                assert cached.stats.matches == cold.stats.matches
        for shard in shards + cold_shards:
            shard.close()

    @given(
        engine=st.sampled_from(ENGINES),
        ops=st.lists(
            st.one_of(
                st.tuples(
                    st.just("insert"),
                    st.sampled_from(("L", "R")),
                    st.integers(min_value=1, max_value=5),
                ),
                st.tuples(
                    st.just("delete"),
                    st.sampled_from(("L", "R")),
                    st.integers(min_value=0, max_value=7),
                ),
                st.tuples(
                    st.just("query"), st.just(""), st.just(0)
                ),
            ),
            min_size=1,
            max_size=6,
        ),
    )
    @settings(max_examples=15, deadline=None)
    def test_property_any_interleaving_matches_scratch(self, engine, ops):
        client, server = _setup(workers=2)
        try:
            query = _query(client)
            counter = 0
            for action, table, value in ops:
                if action == "insert":
                    counter += 1
                    server.insert_row(
                        table,
                        *client.encrypt_row_for(
                            table, (value, f"h{counter}")
                        ),
                    )
                elif action == "delete":
                    live = [
                        i for i in range(len(server.table(table)))
                        if i not in server.tombstoned_rows(table)
                    ]
                    if live:
                        server.delete_rows(
                            table, [live[value % len(live)]]
                        )
                else:
                    result = server.execute_join(query, engine=engine)
                    scratch = _mirror(client, server)
                    reference = scratch.execute_join(query, engine=engine)
                    _assert_identical(result, reference)
                    scratch.close()
            batches, streamed = _drain(server.stream_join(query))
            union = sorted(
                pair for batch in batches for pair in batch.index_pairs
            )
            assert union == sorted(streamed.index_pairs)
            scratch = _mirror(client, server)
            _assert_identical(streamed, scratch.execute_join(query))
            scratch.close()
        finally:
            server.close()
