"""Tests for the SIM-security simulator (Definition 5.2 / Theorem 5.2).

The operational content of the security theorem: an adversary view built
by the simulator from the trace alone has exactly the same match
structure as the real scheme's view.  These tests compute both views on
concrete query series and compare them.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines.api import make_pair
from repro.bench.experiments import example_queries, example_tables
from repro.core.client import SecureJoinClient
from repro.core.server import SecureJoinServer
from repro.db.query import JoinQuery
from repro.db.schema import Schema
from repro.db.table import Table
from repro.leakage.pairs import minimal_query_leakage
from repro.leakage.simulator import TraceSimulator


def _real_views(tables, queries, seed=5, prefilter=True):
    """Run the real scheme; return the server's per-query views."""
    client = SecureJoinClient.for_tables(
        [(t, c) for t, c in tables],
        in_clause_limit=4,
        rng=random.Random(seed),
        enable_prefilter=prefilter,
    )
    server = SecureJoinServer(client.params)
    for table, join_column in tables:
        server.store(client.encrypt_table(table, join_column))
    for query in queries:
        server.execute_join(client.create_query(query))
    return server.observations


def _match_classes(handles: dict) -> set[frozenset]:
    groups: dict[bytes, list] = {}
    for ref, handle in handles.items():
        groups.setdefault(handle, []).append(ref)
    return {frozenset(refs) for refs in groups.values() if len(refs) >= 2}


class TestSimulatedView:
    def test_pairs_grouped(self):
        simulator = TraceSimulator(rng=random.Random(1))
        rows = [("A", 0), ("A", 1), ("B", 0)]
        pairs = {make_pair(("A", 0), ("B", 0))}
        view = simulator.simulate_query(1, rows, pairs)
        assert view.handles[("A", 0)] == view.handles[("B", 0)]
        assert view.handles[("A", 1)] != view.handles[("A", 0)]

    def test_fresh_handles_across_queries(self):
        simulator = TraceSimulator(rng=random.Random(2))
        rows = [("A", 0)]
        v1 = simulator.simulate_query(1, rows, set())
        v2 = simulator.simulate_query(2, rows, set())
        assert v1.handles[("A", 0)] != v2.handles[("A", 0)]

    def test_match_classes(self):
        simulator = TraceSimulator(rng=random.Random(3))
        rows = [("A", 0), ("A", 1), ("B", 0), ("B", 1)]
        pairs = {
            make_pair(("A", 0), ("B", 0)),
            make_pair(("B", 0), ("B", 1)),
        }
        view = simulator.simulate_query(1, rows, pairs)
        assert view.match_classes() == {
            frozenset({("A", 0), ("B", 0), ("B", 1)})
        }


class TestSimulationMatchesReality:
    """The core SIM-security check on concrete workloads."""

    @pytest.mark.parametrize("prefilter", [True, False])
    def test_example_workload(self, prefilter):
        tables = example_tables()
        queries = example_queries()
        observations = _real_views(tables, queries, prefilter=prefilter)
        simulator = TraceSimulator(rng=random.Random(7))
        for observation, query in zip(observations, queries):
            # The trace: which rows were decrypted and their equality pairs.
            decrypted = list(observation.handles.keys())
            sigma = minimal_query_leakage(tables, query)
            if prefilter:
                decrypted_set = set(decrypted)
                sigma = {
                    p for p in sigma if all(r in decrypted_set for r in p)
                }
            view = simulator.simulate_query(
                observation.query_id, decrypted, sigma
            )
            assert view.match_classes() == _match_classes(observation.handles)

    def test_many_to_many_workload(self):
        left = Table("L", Schema.of(("k", "int"), ("c", "str")),
                     [(1, "x"), (1, "y"), (2, "x"), (3, "y")])
        right = Table("R", Schema.of(("k", "int"), ("d", "str")),
                      [(1, "p"), (2, "p"), (2, "q"), (3, "q")])
        tables = [(left, "k"), (right, "k")]
        queries = [
            JoinQuery.build("L", "R", on=("k", "k"),
                            where_left={"c": ["x"]}),
            JoinQuery.build("L", "R", on=("k", "k"),
                            where_right={"d": ["q"]}),
            JoinQuery.build("L", "R", on=("k", "k")),
        ]
        observations = _real_views(tables, queries, prefilter=False)
        simulator = TraceSimulator(rng=random.Random(8))
        for observation, query in zip(observations, queries):
            decrypted = list(observation.handles.keys())
            sigma = minimal_query_leakage(tables, query)
            view = simulator.simulate_query(
                observation.query_id, decrypted, sigma
            )
            assert view.match_classes() == _match_classes(observation.handles)

    def test_simulate_series_length(self):
        simulator = TraceSimulator(rng=random.Random(9))
        views = simulator.simulate_series(
            [[("A", 0)], [("A", 0), ("A", 1)]],
            [set(), {make_pair(("A", 0), ("A", 1))}],
        )
        assert len(views) == 2
        assert views[1].handles[("A", 0)] == views[1].handles[("A", 1)]
