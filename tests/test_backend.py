"""Tests for the bilinear-group backend abstraction.

The central contract: the fast backend and the BN254 backend must be
*observationally equivalent* — equal exponent structure produces equal
GT handles on both.
"""

from __future__ import annotations

import pytest

from repro.crypto.backend import (
    BN254Backend,
    FastBackend,
    FastGT,
    get_backend,
)
from repro.crypto.params import CURVE_ORDER
from repro.errors import CryptoError


class TestFastBackend:
    def test_order_is_curve_order(self, fast_backend):
        assert fast_backend.order == CURVE_ORDER

    def test_pairing_is_inner_product(self, fast_backend):
        g1 = fast_backend.g1_powers([2, 3])
        g2 = fast_backend.g2_powers([5, 7])
        assert fast_backend.pair_vectors(g1, g2) == fast_backend.gt_generator_power(31)

    def test_gt_pow(self, fast_backend):
        h = fast_backend.gt_generator_power(6)
        assert fast_backend.gt_pow(h, 7) == fast_backend.gt_generator_power(42)

    def test_length_mismatch(self, fast_backend):
        with pytest.raises(CryptoError):
            fast_backend.pair_vectors([1], [1, 2])

    def test_custom_modulus(self):
        backend = FastBackend(modulus=2**61 - 1)
        assert backend.order == 2**61 - 1

    def test_composite_modulus_rejected(self):
        with pytest.raises(CryptoError):
            FastBackend(modulus=2**61)

    def test_gt_bytes_stable(self, fast_backend):
        a = fast_backend.gt_generator_power(5)
        b = fast_backend.gt_generator_power(5 + CURVE_ORDER)
        assert a.to_bytes() == b.to_bytes()
        assert hash(a) == hash(b)

    def test_handles_usable_as_dict_keys(self, fast_backend):
        buckets = {}
        for e in [1, 2, 1, 3, 2]:
            buckets.setdefault(fast_backend.gt_generator_power(e), []).append(e)
        assert len(buckets) == 3


class TestGetBackend:
    def test_returns_singletons(self):
        assert get_backend("fast") is get_backend("fast")
        assert get_backend("bn254") is get_backend("bn254")

    def test_unknown_name(self):
        with pytest.raises(CryptoError):
            get_backend("nope")

    def test_types(self):
        assert isinstance(get_backend("fast"), FastBackend)
        assert isinstance(get_backend("bn254"), BN254Backend)


class TestFastGTRepr:
    def test_reduction(self):
        assert FastGT(CURVE_ORDER + 1, CURVE_ORDER).value == 1


@pytest.mark.bn254
class TestBackendEquivalence:
    """The fast backend must mirror the real pairing's match structure."""

    def test_same_match_pattern(self, bn254_backend, fast_backend):
        vectors = [([1, 2], [3, 4]), ([5, 1], [1, 6]), ([2, 2], [2, 2])]
        real_handles = []
        fast_handles = []
        for v, w in vectors:
            real_handles.append(
                bn254_backend.pair_vectors(
                    bn254_backend.g1_powers(v), bn254_backend.g2_powers(w)
                )
            )
            fast_handles.append(
                fast_backend.pair_vectors(
                    fast_backend.g1_powers(v), fast_backend.g2_powers(w)
                )
            )
        # <1,2;3,4> = 11, <5,1;1,6> = 11, <2,2;2,2> = 8.
        assert real_handles[0] == real_handles[1]
        assert real_handles[0] != real_handles[2]
        assert fast_handles[0] == fast_handles[1]
        assert fast_handles[0] != fast_handles[2]

    def test_generator_power_consistency(self, bn254_backend):
        a = bn254_backend.gt_generator_power(3)
        b = bn254_backend.gt_pow(bn254_backend.gt_generator_power(1), 3)
        assert a == b

    def test_pair_singletons(self, bn254_backend):
        lhs = bn254_backend.pair(
            bn254_backend.g1_power(6), bn254_backend.g2_power(7)
        )
        assert lhs == bn254_backend.gt_generator_power(42)


class TestBackendPickling:
    """Backends are shipped once per pooled worker; keep that cheap."""

    def test_fast_backend_round_trips(self):
        import pickle

        backend = FastBackend()
        clone = pickle.loads(pickle.dumps(backend))
        assert clone.order == backend.order
        assert clone.pair_vectors([3], [5]) == backend.pair_vectors([3], [5])

    @pytest.mark.bn254
    def test_bn254_pickle_drops_fixed_base_caches(self, bn254_backend):
        import pickle

        # Populate the caches, then pickle: the blob must stay small
        # (the tables hold hundreds of curve points) and the clone must
        # rebuild them lazily with identical results.
        point = bn254_backend.g1_power(7)
        blob = pickle.dumps(bn254_backend)
        assert len(blob) < 4096
        clone = pickle.loads(blob)
        assert clone._g1_table is None and clone._g2_table is None
        assert clone.g1_power(7) == point
