"""Tests for the function-hiding inner-product encryption schemes.

Most cases run on the fast backend (semantically identical exponents);
a small number of smoke tests exercise the real BN254 backend to confirm
the schemes are backend-agnostic.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.backend import FastBackend
from repro.crypto.ipe import IPEScheme, ModifiedIPEScheme
from repro.errors import IPEError


def _scheme(dim, seed=0):
    return IPEScheme(dim, FastBackend(), random.Random(seed))


def _modified(dim, seed=0):
    return ModifiedIPEScheme(dim, FastBackend(), random.Random(seed))


class TestIPECorrectness:
    def test_decrypt_recovers_inner_product(self):
        scheme = _scheme(4)
        msk = scheme.setup()
        v = [1, 2, 3, 4]
        w = [5, 6, 7, 8]
        expected = sum(a * b for a, b in zip(v, w))
        sk = scheme.keygen(msk, v)
        ct = scheme.encrypt(msk, w)
        assert scheme.decrypt(sk, ct, range(200)) == expected

    def test_decrypt_returns_none_outside_search_space(self):
        scheme = _scheme(2)
        msk = scheme.setup()
        sk = scheme.keygen(msk, [10, 10])
        ct = scheme.encrypt(msk, [10, 10])  # <v,w> = 200
        assert scheme.decrypt(sk, ct, range(100)) is None

    def test_zero_inner_product(self):
        scheme = _scheme(2)
        msk = scheme.setup()
        sk = scheme.keygen(msk, [1, 1])
        ct = scheme.encrypt(msk, [1, -1])
        assert scheme.decrypt(sk, ct, range(10)) == 0

    def test_dimension_mismatch_raises(self):
        scheme = _scheme(3)
        msk = scheme.setup()
        with pytest.raises(IPEError):
            scheme.keygen(msk, [1, 2])
        with pytest.raises(IPEError):
            scheme.encrypt(msk, [1, 2, 3, 4])

    def test_invalid_dimension(self):
        with pytest.raises(IPEError):
            IPEScheme(0)

    def test_keys_are_randomized(self):
        """Two keys for the same vector must differ (alpha randomness)."""
        scheme = _scheme(2)
        msk = scheme.setup()
        sk1 = scheme.keygen(msk, [3, 4])
        sk2 = scheme.keygen(msk, [3, 4])
        assert sk1.k2 != sk2.k2

    def test_ciphertexts_are_randomized(self):
        scheme = _scheme(2)
        msk = scheme.setup()
        ct1 = scheme.encrypt(msk, [3, 4])
        ct2 = scheme.encrypt(msk, [3, 4])
        assert ct1.c2 != ct2.c2

    @given(
        st.lists(st.integers(min_value=0, max_value=20), min_size=3, max_size=3),
        st.lists(st.integers(min_value=0, max_value=20), min_size=3, max_size=3),
    )
    @settings(max_examples=20, deadline=None)
    def test_correctness_property(self, v, w):
        scheme = _scheme(3, seed=hash((tuple(v), tuple(w))) & 0xFFFF)
        msk = scheme.setup()
        sk = scheme.keygen(msk, v)
        ct = scheme.encrypt(msk, w)
        expected = sum(a * b for a, b in zip(v, w))
        assert scheme.decrypt(sk, ct, range(1300)) == expected


class TestModifiedIPE:
    def test_match_on_equal_inner_products(self):
        """D handles are equal iff det(B)<v,w> coincide."""
        scheme = _modified(3)
        msk = scheme.setup()
        tk = scheme.keygen(msk, [1, 2, 3])
        ct1 = scheme.encrypt(msk, [6, 0, 1])   # <v,w> = 9
        ct2 = scheme.encrypt(msk, [1, 1, 2])   # <v,w> = 9
        ct3 = scheme.encrypt(msk, [1, 1, 3])   # <v,w> = 12
        d1 = scheme.decrypt(tk, ct1)
        d2 = scheme.decrypt(tk, ct2)
        d3 = scheme.decrypt(tk, ct3)
        assert d1 == d2
        assert d1 != d3

    def test_no_pair_components(self):
        """Modified scheme emits bare vectors (no K1/C1 components)."""
        scheme = _modified(2)
        msk = scheme.setup()
        tk = scheme.keygen(msk, [1, 0])
        ct = scheme.encrypt(msk, [0, 1])
        assert isinstance(tk, tuple) and len(tk) == 2
        assert isinstance(ct, tuple) and len(ct) == 2

    def test_deterministic_given_msk_and_vector(self):
        """With alpha=beta=1, same vector -> same token (randomness is
        the caller's responsibility via the extra slots)."""
        scheme = _modified(2)
        msk = scheme.setup()
        assert scheme.keygen(msk, [5, 6]) == scheme.keygen(msk, [5, 6])

    def test_decrypt_dimension_check(self):
        scheme = _modified(3)
        msk = scheme.setup()
        tk = scheme.keygen(msk, [1, 2, 3])
        with pytest.raises(IPEError):
            scheme.decrypt(tk[:2], scheme.encrypt(msk, [1, 2, 3]))

    def test_handle_equals_generator_power(self):
        """D == e(g1,g2)^(det(B) <v,w>) exactly."""
        backend = FastBackend()
        scheme = ModifiedIPEScheme(2, backend, random.Random(1))
        msk = scheme.setup()
        v, w = [2, 5], [7, 3]
        d = scheme.decrypt(scheme.keygen(msk, v), scheme.encrypt(msk, w))
        expected = backend.gt_generator_power(
            msk.det_b * (2 * 7 + 5 * 3) % backend.order
        )
        assert d == expected


@pytest.mark.bn254
class TestIPEOnRealPairing:
    """Smoke tests on the real BN254 backend (slow: real pairings)."""

    def test_original_scheme(self, bn254_backend):
        scheme = IPEScheme(2, bn254_backend, random.Random(5))
        msk = scheme.setup()
        sk = scheme.keygen(msk, [2, 3])
        ct = scheme.encrypt(msk, [4, 1])
        assert scheme.decrypt(sk, ct, range(20)) == 11

    def test_modified_scheme_match(self, bn254_backend):
        scheme = ModifiedIPEScheme(2, bn254_backend, random.Random(6))
        msk = scheme.setup()
        tk = scheme.keygen(msk, [1, 2])
        ct1 = scheme.encrypt(msk, [4, 3])  # 10
        ct2 = scheme.encrypt(msk, [2, 4])  # 10
        ct3 = scheme.encrypt(msk, [1, 1])  # 3
        assert scheme.decrypt(tk, ct1) == scheme.decrypt(tk, ct2)
        assert scheme.decrypt(tk, ct1) != scheme.decrypt(tk, ct3)
