"""The streaming join pipeline: matcher kernels, stream/materialized
byte-identity, early emission, matcher pricing, and wire v3.

The contract under test: however the decrypted chunks interleave —
per-row serial streams, per-batch inline streams, out-of-order pooled
completions — the final join result is byte-identical to the fully
materialized decrypt-then-match pass, while match batches stream out
*before* the sides finish decrypting.
"""

from __future__ import annotations

import random

import pytest

from repro.core.client import SecureJoinClient
from repro.core.engine import (
    AutoEngine,
    BatchedEngine,
    ParallelEngine,
    SerialEngine,
)
from repro.core.server import SecureJoinServer
from repro.db.matcher import (
    HashMatcher,
    NestedMatcher,
    get_matcher,
)
from repro.db.query import JoinQuery
from repro.db.schema import Schema
from repro.db.table import Table
from repro.errors import QueryError

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is an optional dev dep
    HAVE_HYPOTHESIS = False

# Module-scoped engines: the pooled engine's pool is spawned once and
# shared by every test (part of the contract under test).
ENGINES = (
    SerialEngine(),
    BatchedEngine(batch_size=3),
    ParallelEngine(workers=2, batch_size=4),
    AutoEngine(batch_size=3),
)


# -- matcher kernels ------------------------------------------------------


def _reference_pairs(left_keys, right_keys):
    """The canonical build-then-probe result: right-major order."""
    return [
        (i, j)
        for j, rk in enumerate(right_keys)
        for i, lk in enumerate(left_keys)
        if lk == rk
    ]


def _feed_in_order(matcher, left_items, right_items, order):
    """Feed two sides to a matcher in an arbitrary interleaving.

    ``order`` is a sequence of ("left"|"right", start, count) chunks.
    Returns the concatenated incremental emissions.
    """
    sides = {"left": left_items, "right": right_items}
    feeds = {"left": matcher.add_left, "right": matcher.add_right}
    emitted = []
    for side, start, count in order:
        emitted.extend(feeds[side](sides[side][start:start + count]))
    return emitted


class TestMatcherKernels:
    def test_hash_matches_reference_any_order(self):
        left_keys = [1, 1, 2, 3, 7]
        right_keys = [1, 2, 2, 5, 7, 7]
        left_items = list(enumerate(left_keys))
        right_items = list(enumerate(right_keys))
        reference = _reference_pairs(left_keys, right_keys)
        orders = [
            # materialized: all left, then all right
            [("left", 0, 5), ("right", 0, 6)],
            # right before left
            [("right", 0, 6), ("left", 0, 5)],
            # interleaved chunks
            [("left", 0, 2), ("right", 0, 3), ("left", 2, 3),
             ("right", 3, 3)],
            # out-of-order chunk arrival within a side
            [("right", 3, 3), ("left", 2, 3), ("right", 0, 3),
             ("left", 0, 2)],
        ]
        for order in orders:
            matcher = HashMatcher()
            emitted = _feed_in_order(matcher, left_items, right_items, order)
            assert sorted(emitted) == sorted(reference)
            assert matcher.finish() == reference
            # Canonical accounting regardless of arrival order.
            assert matcher.stats.probes == len(right_keys)
            assert matcher.stats.matches == len(reference)
            assert (
                matcher.stats.comparisons
                == matcher.stats.probes + matcher.stats.matches
            )

    def test_nested_matches_reference_any_order(self):
        left_keys = [1, 2, 2, 9]
        right_keys = [2, 9, 9, 4, 1]
        left_items = list(enumerate(left_keys))
        right_items = list(enumerate(right_keys))
        reference = _reference_pairs(left_keys, right_keys)
        orders = [
            [("left", 0, 4), ("right", 0, 5)],
            [("right", 0, 5), ("left", 0, 4)],
            [("right", 2, 3), ("left", 0, 2), ("right", 0, 2),
             ("left", 2, 2)],
        ]
        for order in orders:
            matcher = NestedMatcher()
            emitted = _feed_in_order(matcher, left_items, right_items, order)
            assert sorted(emitted) == sorted(reference)
            assert matcher.finish() == reference
            # Exactly one comparison per cross pair, however fed.
            assert matcher.stats.comparisons == len(left_keys) * len(
                right_keys
            )

    @pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
    @settings(max_examples=60, deadline=None)
    @given(
        left_keys=st.lists(st.integers(0, 4), min_size=0, max_size=12),
        right_keys=st.lists(st.integers(0, 4), min_size=0, max_size=12),
        seed=st.integers(0, 2**16),
    )
    def test_property_random_interleavings(self, left_keys, right_keys, seed):
        """Any chunking and interleaving yields the canonical result
        with canonical accounting, for both kernels."""
        rng = random.Random(seed)
        chunks = []
        for side, keys in (("left", left_keys), ("right", right_keys)):
            start = 0
            while start < len(keys):
                count = rng.randint(1, 4)
                chunks.append((side, start, min(count, len(keys) - start)))
                start += count
        rng.shuffle(chunks)
        reference = _reference_pairs(left_keys, right_keys)
        for build in (HashMatcher, NestedMatcher):
            matcher = build()
            emitted = _feed_in_order(
                matcher, list(enumerate(left_keys)),
                list(enumerate(right_keys)), chunks,
            )
            assert sorted(emitted) == sorted(reference)
            assert matcher.finish() == reference
            assert matcher.stats.matches == len(reference)
            if build is HashMatcher:
                assert matcher.stats.probes == len(right_keys)
                assert (
                    matcher.stats.comparisons
                    == matcher.stats.probes + matcher.stats.matches
                )
            else:
                assert matcher.stats.comparisons == len(left_keys) * len(
                    right_keys
                )

    def test_get_matcher(self):
        assert isinstance(get_matcher("hash"), HashMatcher)
        assert isinstance(get_matcher("nested"), NestedMatcher)
        with pytest.raises(ValueError):
            get_matcher("sorted-merge")


# -- streamed vs. materialized joins --------------------------------------


def _build(left_keys, right_keys, seed=7):
    left = Table(
        "L", Schema.of(("k", "int"), ("a", "str")),
        [(k, f"a{i}") for i, k in enumerate(left_keys)],
    )
    right = Table(
        "R", Schema.of(("k", "int"), ("b", "str")),
        [(k, f"b{i}") for i, k in enumerate(right_keys)],
    )
    client = SecureJoinClient.for_tables(
        [(left, "k"), (right, "k")], in_clause_limit=1,
        rng=random.Random(seed),
    )
    server = SecureJoinServer(client.params, workers=2)
    server.store(client.encrypt_table(left, "k"))
    server.store(client.encrypt_table(right, "k"))
    return client, server


def _materialized_reference(server, query, engine):
    """The pre-pipeline pass, reconstructed independently: decrypt both
    sides to completion (engine.decrypt_handles), then build-then-probe
    hash match in canonical right-major order."""
    left = server.table(query.left_table)
    right = server.table(query.right_table)
    backend = server.scheme.backend
    left_handles, _ = engine.decrypt_handles(
        backend, query.left_token.elements,
        [c.elements for c in left.ciphertexts],
    )
    right_handles, _ = engine.decrypt_handles(
        backend, query.right_token.elements,
        [c.elements for c in right.ciphertexts],
    )
    buckets = {}
    for i, handle in enumerate(left_handles):
        buckets.setdefault(handle, []).append(i)
    pairs = [
        (i, j)
        for j, handle in enumerate(right_handles)
        for i in buckets.get(handle, ())
    ]
    return pairs, [left.payloads[i] for i, _ in pairs], [
        right.payloads[j] for _, j in pairs
    ]


def _drain(generator):
    """Drain a stream_join generator: (yields, return value)."""
    batches = []
    while True:
        try:
            batches.append(next(generator))
        except StopIteration as stop:
            return batches, stop.value


class TestStreamedEquivalence:
    def test_streamed_byte_identical_to_materialized(self):
        client, server = _build([1, 1, 2, 3, 5] * 4, [1, 2, 2, 5, 8] * 3)
        query = client.create_query(JoinQuery.build("L", "R", on=("k", "k")))
        with server:
            for engine in ENGINES:
                expected_pairs, expected_left, expected_right = (
                    _materialized_reference(server, query, BatchedEngine(4))
                )
                batches, result = _drain(
                    server.stream_join(query, engine=engine)
                )
                assert result.index_pairs == expected_pairs
                assert result.left_payloads == expected_left
                assert result.right_payloads == expected_right
                # The incremental emissions cover the final result exactly.
                streamed = [
                    pair for batch in batches for pair in batch.index_pairs
                ]
                assert sorted(streamed) == sorted(expected_pairs)
                streamed_left = [
                    payload for batch in batches
                    for payload in batch.left_payloads
                ]
                assert sorted(streamed_left) == sorted(expected_left)

    @pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
    @settings(max_examples=10, deadline=None)
    @given(
        left_keys=st.lists(st.integers(0, 4), min_size=0, max_size=10),
        right_keys=st.lists(st.integers(0, 4), min_size=1, max_size=10),
        seed=st.integers(0, 2**16),
    )
    def test_property_streamed_equals_materialized(
        self, left_keys, right_keys, seed
    ):
        """Property: for every engine, the streamed pipeline's result is
        byte-identical to the independent materialized reference, and
        its emissions reassemble to it."""
        client, server = _build(left_keys, right_keys, seed=seed)
        query = client.create_query(JoinQuery.build("L", "R", on=("k", "k")))
        reference = _reference_pairs(left_keys, right_keys)
        with server:
            expected_pairs, expected_left, expected_right = (
                _materialized_reference(server, query, BatchedEngine(3))
            )
            assert expected_pairs == reference
            for engine in ENGINES:
                batches, result = _drain(
                    server.stream_join(query, engine=engine)
                )
                assert result.index_pairs == expected_pairs
                assert result.left_payloads == expected_left
                assert result.right_payloads == expected_right
                streamed = [
                    pair for batch in batches for pair in batch.index_pairs
                ]
                assert sorted(streamed) == sorted(expected_pairs)

    def test_nested_algorithm_streams_identically(self):
        client, server = _build([2, 2, 4, 6], [2, 4, 4, 9])
        query = client.create_query(JoinQuery.build("L", "R", on=("k", "k")))
        hash_result = server.execute_join(query, algorithm="hash")
        nested_result = server.execute_join(query, algorithm="nested")
        assert nested_result.index_pairs == hash_result.index_pairs
        assert nested_result.stats.matcher == "nested"
        assert hash_result.stats.matcher == "hash"
        server.close()


class TestEarlyEmission:
    def test_first_batch_before_decryption_finishes(self):
        """With chunked streams, matches must surface before the last
        chunk: more than one batch, and the first batch is a strict
        subset of the final result."""
        client, server = _build([i % 5 for i in range(40)],
                                [i % 5 for i in range(40)])
        query = client.create_query(JoinQuery.build("L", "R", on=("k", "k")))
        with server:
            batches, result = _drain(
                server.stream_join(query, engine=BatchedEngine(batch_size=4))
            )
        assert len(batches) > 1
        assert 0 < len(batches[0].index_pairs) < len(result.index_pairs)

    def test_stage_timings_recorded(self):
        client, server = _build([i % 3 for i in range(30)],
                                [i % 3 for i in range(30)])
        query = client.create_query(JoinQuery.build("L", "R", on=("k", "k")))
        result = server.execute_join(query, engine=BatchedEngine(4))
        stats = result.stats
        assert stats.matches > 0
        assert stats.time_to_first_match > 0.0
        assert stats.decrypt_seconds > 0.0
        assert stats.match_seconds > 0.0
        # First match arrives before the decrypt stage is over.
        assert stats.time_to_first_match < (
            stats.decrypt_seconds + stats.match_seconds
        )
        server.close()

    def test_empty_join_has_zero_ttfm(self):
        client, server = _build([1, 2], [3, 4])
        query = client.create_query(JoinQuery.build("L", "R", on=("k", "k")))
        result = server.execute_join(query)
        assert result.stats.matches == 0
        assert result.stats.time_to_first_match == 0.0
        server.close()

    def test_both_sides_interleave_on_the_pool(self):
        """One query, two large sides, pooled engine: the service must
        co-admit them (concurrent_sides >= 2), on one pool generation."""
        client, server = _build([i % 9 for i in range(90)],
                                [i % 9 for i in range(90)])
        query = client.create_query(JoinQuery.build("L", "R", on=("k", "k")))
        with server:
            result = server.execute_join(
                query, engine=ParallelEngine(workers=2, batch_size=4)
            )
            assert result.stats.concurrent_sides >= 2
            assert result.stats.pool_generation == 1
            assert server.execution_service.peak_concurrent_sides >= 2

    def test_client_decrypts_streamed_batches(self):
        """End-to-end streaming: the client turns every MatchBatch into
        plaintext rows, their union equals the materialized join, and
        the wrapped generator's final result is passed through."""
        client, server = _build([1, 2, 2, 3], [2, 2, 3, 4, 1])
        query = client.create_query(JoinQuery.build("L", "R", on=("k", "k")))
        reference = server.execute_join(query)
        streamed_rows = []
        decrypting = client.stream_decrypt(
            "L", "R", server.stream_join(query)
        )
        while True:
            try:
                pairs, rows = next(decrypting)
            except StopIteration as stop:
                result = stop.value
                break
            assert len(pairs) == len(rows)
            streamed_rows.extend(rows)
        # stream_decrypt surfaces stream_join's final result.
        assert result.index_pairs == reference.index_pairs
        final = client.decrypt_result(result)
        assert sorted(streamed_rows) == sorted(final.table.rows())
        server.close()

    def test_abandoned_stream_releases_pool_state(self):
        """Dropping a stream mid-join must not leak admitted sides, and
        must still record the adversary observation for the handles the
        server did compute."""
        client, server = _build([i % 4 for i in range(60)],
                                [i % 4 for i in range(60)])
        query = client.create_query(JoinQuery.build("L", "R", on=("k", "k")))
        with server:
            engine = ParallelEngine(workers=2, batch_size=4)
            observations_before = len(server.observations)
            stream = server.stream_join(query, engine=engine)
            next(stream)  # first batch only
            stream.close()
            assert server.execution_service.active_sides == 0
            # The partial adversary view is part of the leakage record.
            assert len(server.observations) == observations_before + 1
            assert len(server.observations[-1].handles) > 0
            # The pool is still healthy for the next (full) query.
            result = server.execute_join(query, engine=engine)
            reference = server.execute_join(query, engine=BatchedEngine(4))
            assert result.index_pairs == reference.index_pairs


# -- matcher pricing ------------------------------------------------------


class TestMatcherAuto:
    def test_auto_picks_hash_at_scale(self):
        client, server = _build([i % 7 for i in range(64)],
                                [i % 7 for i in range(64)])
        query = client.create_query(JoinQuery.build("L", "R", on=("k", "k")))
        result = server.execute_join(query, algorithm="auto")
        assert result.stats.matcher == "hash"
        match_records = [
            record for record in (result.stats.planner or [])
            if record.get("stage") == "match"
        ]
        assert len(match_records) == 1
        record = match_records[0]
        assert record["build_rows"] == 64
        assert record["probe_rows"] == 64
        assert set(record["estimates"]) == {"hash", "nested"}
        assert record["chosen"] == "hash"
        server.close()

    def test_auto_picks_nested_for_tiny_sides(self):
        client, server = _build([1], [1, 2])
        query = client.create_query(JoinQuery.build("L", "R", on=("k", "k")))
        result = server.execute_join(query, algorithm="auto")
        assert result.stats.matcher == "nested"
        assert result.index_pairs == [(0, 0)]
        server.close()

    def test_auto_matcher_result_identical_to_hash(self):
        client, server = _build([1, 2, 2, 5] * 8, [2, 5, 7] * 8)
        query = client.create_query(JoinQuery.build("L", "R", on=("k", "k")))
        auto = server.execute_join(query, algorithm="auto")
        hashed = server.execute_join(query, algorithm="hash")
        assert auto.index_pairs == hashed.index_pairs
        assert auto.left_payloads == hashed.left_payloads
        server.close()

    def test_unknown_algorithm_rejected(self):
        client, server = _build([1], [1])
        query = client.create_query(JoinQuery.build("L", "R", on=("k", "k")))
        with pytest.raises(QueryError):
            server.execute_join(query, algorithm="sorted-merge")
        server.close()


# -- wire v3 --------------------------------------------------------------


class TestWireV3:
    def _result(self):
        client, server = _build([1, 2, 2], [2, 2, 5])
        query = client.create_query(JoinQuery.build("L", "R", on=("k", "k")))
        result = server.execute_join(query, algorithm="auto", engine="auto")
        server.close()
        return result

    def test_round_trips_pipeline_fields(self):
        from repro.store.wire import decode_join_result, encode_join_result

        result = self._result()
        decoded = decode_join_result(encode_join_result(result))
        assert decoded.stats == result.stats
        assert decoded.stats.matcher == result.stats.matcher
        assert (
            decoded.stats.time_to_first_match
            == result.stats.time_to_first_match
        )
        assert decoded.stats.decrypt_seconds == result.stats.decrypt_seconds
        assert decoded.stats.match_seconds == result.stats.match_seconds
        assert (
            decoded.stats.concurrent_sides == result.stats.concurrent_sides
        )

    def test_v2_payload_still_decodes_with_defaults(self):
        """A v2 (pre-pipeline) stats block takes pipeline defaults."""
        from repro.store import wire as wire_module
        from repro.store.codec import Writer, write_header
        from repro.store.wire import decode_join_result

        writer = Writer()
        write_header(
            writer, b"RPROJRES", 2,
            {
                "left_table": "L", "right_table": "R", "n_pairs": 1,
                "stats": {
                    "candidates_left": 3, "candidates_right": 2,
                    "decryptions": 5, "probes": 2, "comparisons": 3,
                    "matches": 1, "engine": "parallel",
                    "pool_generation": 4,
                },
            },
        )
        writer.u32(0)
        writer.u32(0)
        writer.blob(b"left-payload")
        writer.blob(b"right-payload")
        decoded = decode_join_result(writer.getvalue())
        assert wire_module._VERSION >= 3
        assert decoded.stats.engine == "parallel"
        assert decoded.stats.pool_generation == 4
        # Pipeline fields: dataclass defaults.
        assert decoded.stats.matcher == "hash"
        assert decoded.stats.time_to_first_match == 0.0
        assert decoded.stats.concurrent_sides == 0
