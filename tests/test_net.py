"""Tests for the network service layer (:mod:`repro.net`).

Covers the full remote-join path over real sockets: streamed
match-batch delivery (multiple frames before the final frame,
byte-identical reassembly against the in-process result), in-band
error reporting, client-side backpressure, the hint-allowlist gate,
QoS threading (priority-preferring dispatch, deadline cancellation)
and graceful drain.
"""

from __future__ import annotations

import dataclasses
import random
import socket
import threading
import time
from collections import deque
from types import SimpleNamespace

import pytest

from repro.core.client import SecureJoinClient
from repro.core.engine import BatchedEngine
from repro.core.server import SecureJoinServer, ServerStats
from repro.core.service import ExecutionService, QueryQoS
from repro.db.query import JoinQuery
from repro.db.schema import Schema
from repro.db.table import Table
from repro.errors import (
    DeadlineError,
    NetworkError,
    QueryError,
    SchemeError,
)
from repro.net import (
    JoinServiceServer,
    RemoteJoinClient,
    recv_message,
    send_message,
)
from repro.store.wire import (
    ErrorFrame,
    FinalFrame,
    MatchBatchFrame,
    StreamHeaderFrame,
    decode_frame,
    encode_join_query,
    encode_join_result,
)


def _fixture(n_rows=12, batch_size=3, seed=17, **server_kwargs):
    """Client + server whose joins span multiple decryption chunks.

    Every left key matches a right key, so with ``batch_size``-row
    chunks the streaming pipeline emits several non-empty match batches
    before the final frame.
    """
    keys = [i % 5 for i in range(n_rows)]
    left = Table("L", Schema.of(("k", "int"), ("a", "str")),
                 [(k, f"a{i}") for i, k in enumerate(keys)])
    right = Table("R", Schema.of(("k", "int"), ("b", "str")),
                  [(k, f"b{i}") for i, k in enumerate(keys)])
    client = SecureJoinClient.for_tables(
        [(left, "k"), (right, "k")],
        in_clause_limit=1,
        rng=random.Random(seed),
    )
    server_kwargs.setdefault("engine", BatchedEngine(batch_size=batch_size))
    server = SecureJoinServer(client.params, **server_kwargs)
    server.store(client.encrypt_table(left, "k"))
    server.store(client.encrypt_table(right, "k"))
    return client, server


def _query(client, **kwargs):
    return client.create_query(
        JoinQuery.build("L", "R", on=("k", "k")), **kwargs
    )


def _drain(stream):
    """Consume a stream generator; returns (batches, final result)."""
    batches = []
    while True:
        try:
            batches.append(next(stream))
        except StopIteration as stop:
            return batches, stop.value


def _normalize(result):
    """Strip the run-dependent stats for byte-identity comparison."""
    return dataclasses.replace(result, stats=ServerStats())


# -- end-to-end over a real socket -----------------------------------------


class TestRemoteJoin:
    def test_streamed_join_multiple_batches_byte_identical(self):
        client, server = _fixture()
        reference = server.execute_join(_query(client))
        with JoinServiceServer(server) as service:
            host, port = service.address
            with RemoteJoinClient(host, port, client.scheme.backend) as rc:
                batches, result = _drain(rc.stream_join(_query(client)))
        # The join spans multiple chunks: several match-batch frames
        # arrive before the final frame, and at least two carry pairs.
        assert len(batches) >= 2
        assert sum(1 for b in batches if b.index_pairs) >= 2
        assert sum(len(b.index_pairs) for b in batches) == len(
            reference.index_pairs
        )
        # Reassembly is byte-identical to the in-process result modulo
        # the run-dependent stats block.
        assert result.index_pairs == reference.index_pairs
        assert result.left_payloads == reference.left_payloads
        assert result.right_payloads == reference.right_payloads
        assert encode_join_result(_normalize(result)) == encode_join_result(
            _normalize(reference)
        )
        # The remote stats still describe a real execution.
        assert result.stats.matches == len(reference.index_pairs)

    def test_execute_join_remote(self):
        client, server = _fixture(n_rows=6)
        reference = server.execute_join(_query(client))
        with JoinServiceServer(server) as service:
            host, port = service.address
            with RemoteJoinClient(host, port, client.scheme.backend) as rc:
                result = rc.execute_join(_query(client))
        assert result.index_pairs == reference.index_pairs
        assert result.left_payloads == reference.left_payloads

    def test_connection_serves_many_queries(self):
        client, server = _fixture(n_rows=6)
        with JoinServiceServer(server) as service:
            host, port = service.address
            with RemoteJoinClient(host, port, client.scheme.backend) as rc:
                first = rc.execute_join(_query(client))
                second = rc.execute_join(_query(client))
            assert first.index_pairs == second.index_pairs
            # The handler bumps the counter after sending the final
            # frame, so a fast client can observe the result first.
            deadline = time.monotonic() + 5.0
            while (
                service.queries_served != 2
                and time.monotonic() < deadline
            ):
                time.sleep(0.005)
            assert service.queries_served == 2

    def test_concurrent_clients(self):
        client, server = _fixture(n_rows=8)
        reference = server.execute_join(_query(client))
        results = {}
        errors = []

        def run(name, host, port):
            try:
                with RemoteJoinClient(
                    host, port, client.scheme.backend
                ) as rc:
                    results[name] = rc.execute_join(_query(client))
            except Exception as error:  # noqa: BLE001 - collected
                errors.append((name, error))

        with JoinServiceServer(server) as service:
            host, port = service.address
            threads = [
                threading.Thread(target=run, args=(i, host, port))
                for i in range(3)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
        assert not errors
        assert len(results) == 3
        for result in results.values():
            assert result.index_pairs == reference.index_pairs

    def test_single_connection_rejects_overlapping_streams(self):
        client, server = _fixture(n_rows=6)
        with JoinServiceServer(server) as service:
            host, port = service.address
            with RemoteJoinClient(host, port, client.scheme.backend) as rc:
                stream = rc.stream_join(_query(client))
                next(stream)
                with pytest.raises(NetworkError, match="in flight"):
                    next(rc.stream_join(_query(client)))
                _drain_started(stream)


def _drain_started(stream):
    while True:
        try:
            next(stream)
        except StopIteration as stop:
            return stop.value


# -- in-band errors ---------------------------------------------------------


class TestRemoteErrors:
    def test_unknown_table_maps_to_query_error(self):
        client, server = _fixture(n_rows=4)
        query = _query(client)
        object.__setattr__(query, "right_table", "NOPE")
        with JoinServiceServer(server) as service:
            host, port = service.address
            with RemoteJoinClient(host, port, client.scheme.backend) as rc:
                with pytest.raises(QueryError, match="server:"):
                    rc.execute_join(query)
                # An in-band error leaves the connection in sync: the
                # next query on the same connection succeeds.
                good = rc.execute_join(_query(client))
                assert good.index_pairs

    def test_undecodable_request_gets_error_frame(self):
        client, server = _fixture(n_rows=4)
        with JoinServiceServer(server) as service:
            host, port = service.address
            with socket.create_connection((host, port), timeout=10) as sock:
                send_message(sock, b"RPROJQRY garbage that will not parse")
                frame = decode_frame(recv_message(sock))
                assert isinstance(frame, ErrorFrame)
                assert frame.error_type == "SchemeError"
                # Still in sync: a real query now streams normally.
                send_message(sock, encode_join_query(
                    _query(client), client.scheme.backend
                ))
                opening = decode_frame(recv_message(sock))
                assert isinstance(opening, StreamHeaderFrame)
                while True:
                    frame = decode_frame(recv_message(sock))
                    if isinstance(frame, FinalFrame):
                        break
                    assert isinstance(frame, MatchBatchFrame)

    def test_scheme_error_type_survives_the_wire(self):
        client, server = _fixture(n_rows=4)
        with JoinServiceServer(server) as service:
            host, port = service.address
            with socket.create_connection((host, port), timeout=10) as sock:
                send_message(sock, b"\x00" * 32)
                frame = decode_frame(recv_message(sock))
                assert isinstance(frame, ErrorFrame)
                assert frame.error_type == "SchemeError"

    def test_oversized_request_drops_connection(self):
        client, server = _fixture(n_rows=4)
        with JoinServiceServer(
            server, max_message_size=1024
        ) as service:
            host, port = service.address
            with socket.create_connection((host, port), timeout=10) as sock:
                send_message(sock, b"\x00" * 4096)
                # The server cannot trust the framing any more: it
                # closes rather than answering (clean EOF, or a reset
                # when our unread bytes were still in its buffer).
                try:
                    assert recv_message(sock) is None
                except NetworkError:
                    pass

    def test_deadline_exceeded_maps_to_deadline_error(self):
        client, server = _fixture(n_rows=12)
        query = _query(client, deadline=1e-9)
        with JoinServiceServer(server) as service:
            host, port = service.address
            with RemoteJoinClient(host, port, client.scheme.backend) as rc:
                with pytest.raises(DeadlineError, match="deadline"):
                    rc.execute_join(query)
                # Cancellation is in-band: the connection still serves.
                good = rc.execute_join(_query(client))
                assert good.index_pairs


# -- hint allowlist gate ----------------------------------------------------


class TestHintGate:
    def test_allowed_hint_is_honored(self):
        client, server = _fixture(
            n_rows=6, engine="serial", hint_engines=("serial", "batched")
        )
        with JoinServiceServer(server) as service:
            host, port = service.address
            with RemoteJoinClient(host, port, client.scheme.backend) as rc:
                result = rc.execute_join(_query(client, engine="batched"))
        assert result.stats.engine_source == "hint"
        assert result.stats.engine == "batched"

    def test_disallowed_hint_falls_back_to_default(self):
        client, server = _fixture(
            n_rows=6, engine="serial", hint_engines=("serial",)
        )
        with JoinServiceServer(server) as service:
            host, port = service.address
            with RemoteJoinClient(host, port, client.scheme.backend) as rc:
                result = rc.execute_join(_query(client, engine="batched"))
        # The hint is advisory and gated: not on the allowlist, so the
        # server default runs and the stats say so.
        assert result.stats.engine_source == "default"
        assert result.stats.engine == "serial"


# -- client-side backpressure -----------------------------------------------


class TestBackpressure:
    def test_slow_consumer_still_reassembles(self):
        client, server = _fixture(n_rows=15, batch_size=2)
        reference = server.execute_join(_query(client))
        with JoinServiceServer(server) as service:
            host, port = service.address
            with RemoteJoinClient(
                host, port, client.scheme.backend, max_buffered_batches=1
            ) as rc:
                stream = rc.stream_join(_query(client))
                batches = []
                while True:
                    try:
                        batches.append(next(stream))
                    except StopIteration as stop:
                        result = stop.value
                        break
                    time.sleep(0.01)  # fall behind the producer
        assert len(batches) >= 2
        assert result.index_pairs == reference.index_pairs
        assert result.left_payloads == reference.left_payloads

    def test_bounded_buffer_rejects_nonsense_size(self):
        client, server = _fixture(n_rows=4)
        with JoinServiceServer(server) as service:
            host, port = service.address
            with pytest.raises(NetworkError, match="at least 1"):
                RemoteJoinClient(
                    host, port, client.scheme.backend,
                    max_buffered_batches=0,
                )

    def test_abandoned_stream_closes_connection_and_releases(self):
        client, server = _fixture(n_rows=15, batch_size=2)
        with JoinServiceServer(server) as service:
            host, port = service.address
            rc = RemoteJoinClient(host, port, client.scheme.backend)
            stream = rc.stream_join(_query(client))
            next(stream)  # at least the first batch arrived
            stream.close()  # abandon mid-stream
            # Mid-stream abandonment desynchronizes the framing: the
            # client drops the connection...
            assert rc.closed
            # ...and the server notices, releasing the handler slot.
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if service.active_connections == 0:
                    break
                time.sleep(0.02)
            assert service.active_connections == 0
            # The service remains healthy for new clients.
            with RemoteJoinClient(host, port, client.scheme.backend) as rc2:
                assert rc2.execute_join(_query(client)).index_pairs


# -- graceful drain ---------------------------------------------------------


class TestDrain:
    def test_shutdown_closes_idle_connections_and_stops_accepting(self):
        client, server = _fixture(n_rows=4)
        service = JoinServiceServer(server)
        host, port = service.start()
        idle = socket.create_connection((host, port), timeout=10)
        try:
            service.shutdown(drain=True)
            # The idle connection was force-closed (EOF or reset)...
            try:
                assert recv_message(idle) is None
            except NetworkError:
                pass
        finally:
            idle.close()
        # ...and nothing new is accepted.
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=1)

    def test_drain_finishes_in_flight_stream(self):
        client, server = _fixture(n_rows=15, batch_size=2)
        reference = server.execute_join(_query(client))
        service = JoinServiceServer(server, drain_timeout=30.0)
        host, port = service.start()
        rc = RemoteJoinClient(host, port, client.scheme.backend)
        try:
            stream = rc.stream_join(_query(client))
            first = next(stream)  # the stream is in flight
            shutdown_done = threading.Event()

            def trigger():
                service.shutdown(drain=True)
                shutdown_done.set()

            threading.Thread(target=trigger, daemon=True).start()
            batches, result = _drain(stream)
            # Drain let the in-flight stream run to completion.
            assert result.index_pairs == reference.index_pairs
            assert [first.index_pairs] + [
                b.index_pairs for b in batches
            ]  # batches all arrived
            assert shutdown_done.wait(timeout=30)
        finally:
            rc.close()
        # The pool went down with the service.
        assert not server.execution_service.started

    def test_shutdown_without_drain_cuts_streams(self):
        client, server = _fixture(n_rows=15, batch_size=2)
        service = JoinServiceServer(server)
        host, port = service.start()
        rc = RemoteJoinClient(host, port, client.scheme.backend)
        try:
            stream = rc.stream_join(_query(client))
            next(stream)
            service.shutdown(drain=False)
            with pytest.raises((NetworkError, StopIteration)):
                while True:
                    next(stream)
        finally:
            rc.close()

    def test_shutdown_is_idempotent(self):
        client, server = _fixture(n_rows=4)
        service = JoinServiceServer(server)
        service.start()
        service.shutdown()
        service.shutdown()


# -- QoS: priority-preferring dispatch and deadline cancellation ------------


def _fake_side(ctx_id, priority=0, pending=1):
    return SimpleNamespace(
        ctx_id=ctx_id,
        released=False,
        pending=deque([(i, 1) for i in range(pending)]),
        error=None,
        expired=False,
        holding={},
        allowed_workers=frozenset({0}),
        max_workers=1,
        qos=QueryQoS(priority=priority),
    )


def _scheduler_with(sides):
    service = ExecutionService(workers=1)
    for side in sides:
        service._active[side.ctx_id] = side
        service._rr.append(side.ctx_id)
    return service


class TestPriorityScheduling:
    def test_higher_priority_side_wins_the_refill(self):
        low = _fake_side(1, priority=0)
        high = _fake_side(2, priority=7)
        service = _scheduler_with([low, high])
        worker = SimpleNamespace(index=0)
        assert service._pick_side_locked(worker) is high

    def test_negative_priority_defers_to_neutral(self):
        background = _fake_side(1, priority=-5)
        neutral = _fake_side(2, priority=0)
        service = _scheduler_with([background, neutral])
        worker = SimpleNamespace(index=0)
        assert service._pick_side_locked(worker) is neutral

    def test_equal_priorities_round_robin(self):
        a = _fake_side(1, priority=3, pending=4)
        b = _fake_side(2, priority=3, pending=4)
        service = _scheduler_with([a, b])
        worker = SimpleNamespace(index=0)
        picks = [service._pick_side_locked(worker).ctx_id for _ in range(4)]
        assert picks == [1, 2, 1, 2]

    def test_expired_and_errored_sides_are_skipped(self):
        dead = _fake_side(1, priority=9)
        dead.expired = True
        failed = _fake_side(2, priority=9)
        failed.error = "boom"
        ok = _fake_side(3, priority=0)
        service = _scheduler_with([dead, failed, ok])
        worker = SimpleNamespace(index=0)
        assert service._pick_side_locked(worker) is ok

    def test_priority_outranks_rotation_position(self):
        # Even sitting at the back of the rotation, the high-priority
        # side is picked first on a fresh refill.
        sides = [_fake_side(i, priority=0, pending=2) for i in (1, 2, 3)]
        high = _fake_side(4, priority=1, pending=2)
        service = _scheduler_with(sides + [high])
        worker = SimpleNamespace(index=0)
        assert service._pick_side_locked(worker) is high
        assert service._pick_side_locked(worker) is high


class TestDeadlineCancellation:
    def test_expired_admission_raises_deadline_error(self):
        client, _ = _fixture(n_rows=8)
        backend = client.scheme.backend
        table = client.encrypt_table(
            Table("T", Schema.of(("k", "int"), ("v", "str")),
                  [(i, f"v{i}") for i in range(8)]),
            "k",
        )
        query = _query(client)
        service = ExecutionService(workers=1)
        try:
            side = service.admit_side(
                backend,
                query.left_token.elements,
                [c.elements for c in table.ciphertexts],
                batch_size=2,
                qos=QueryQoS(priority=0, deadline=time.monotonic() - 1.0),
            )
            with pytest.raises(DeadlineError, match="deadline"):
                for _ in service.stream_chunks(side):
                    pass
        finally:
            service.close()

    def test_unexpired_admission_completes(self):
        client, _ = _fixture(n_rows=6)
        backend = client.scheme.backend
        table = client.encrypt_table(
            Table("T", Schema.of(("k", "int"), ("v", "str")),
                  [(i, f"v{i}") for i in range(6)]),
            "k",
        )
        query = _query(client)
        service = ExecutionService(workers=1)
        try:
            side = service.admit_side(
                backend,
                query.left_token.elements,
                [c.elements for c in table.ciphertexts],
                batch_size=2,
                qos=QueryQoS(priority=2, deadline=time.monotonic() + 300.0),
            )
            chunks = list(service.stream_chunks(side))
            assert sum(len(handles) for _, handles in chunks) == 6
        finally:
            service.close()

    def test_batched_engine_checks_deadline_between_chunks(self):
        client, server = _fixture(n_rows=8)
        backend = client.scheme.backend
        query = _query(client)
        table = server.table("L")
        engine = BatchedEngine(batch_size=2)
        stream = engine.decrypt_stream(
            backend,
            query.left_token.elements,
            [c.elements for c in table.ciphertexts],
            qos=QueryQoS(deadline=time.monotonic() - 1.0),
        )
        with pytest.raises(DeadlineError):
            for _ in stream:
                pass
        server.close()
