"""Tests for the row/token vector encodings (Section 4.2/4.3)."""

from __future__ import annotations

import random

import pytest

from repro.core.encoding import (
    VectorLayout,
    embed_attribute,
    embed_join_value,
)
from repro.crypto.matrix import inner_product
from repro.crypto.params import CURVE_ORDER
from repro.errors import SchemeError

Q = CURVE_ORDER


class TestEmbeddings:
    def test_join_and_attribute_domains_differ(self):
        assert embed_join_value("x", Q) != embed_attribute("x", Q)

    def test_deterministic(self):
        assert embed_join_value(7, Q) == embed_join_value(7, Q)


class TestLayout:
    def test_dimension_formula(self):
        layout = VectorLayout(num_attributes=3, degree=2)
        assert layout.dimension == 3 * 3 + 3

    def test_invalid_params(self):
        with pytest.raises(SchemeError):
            VectorLayout(0, 1)
        with pytest.raises(SchemeError):
            VectorLayout(1, 0)


class TestRowVector:
    def test_shape_and_structure(self):
        layout = VectorLayout(2, 3)
        rng = random.Random(1)
        w = layout.row_vector("join-val", ["a", "b"], Q, rng)
        assert len(w) == layout.dimension
        assert w[0] == embed_join_value("join-val", Q)
        assert w[-1] == 0  # last slot is the structural zero

    def test_padding_short_rows(self):
        layout = VectorLayout(3, 2)
        rng = random.Random(2)
        w = layout.row_vector("j", ["only-one"], Q, rng)
        assert len(w) == layout.dimension

    def test_too_many_attributes_rejected(self):
        layout = VectorLayout(1, 2)
        with pytest.raises(SchemeError):
            layout.row_vector("j", ["a", "b"], Q, random.Random(3))

    def test_blinding_differs_per_row(self):
        layout = VectorLayout(1, 1)
        rng = random.Random(4)
        w1 = layout.row_vector("j", ["a"], Q, rng)
        w2 = layout.row_vector("j", ["a"], Q, rng)
        assert w1 != w2          # gamma randomness
        assert w1[0] == w2[0]    # but the join slot is deterministic


class TestTokenVector:
    def test_shape_and_structure(self):
        layout = VectorLayout(2, 2)
        rng = random.Random(5)
        polys = layout.selection_polynomials({0: ["x"]}, Q, rng)
        v = layout.token_vector(42, polys, Q, rng)
        assert len(v) == layout.dimension
        assert v[0] == 42
        assert v[-2] == 0  # second-to-last slot is the structural zero

    def test_zero_query_key_rejected(self):
        layout = VectorLayout(1, 1)
        rng = random.Random(6)
        polys = layout.selection_polynomials({}, Q, rng)
        with pytest.raises(SchemeError):
            layout.token_vector(0, polys, Q, rng)

    def test_selection_polynomial_count(self):
        layout = VectorLayout(3, 2)
        rng = random.Random(7)
        polys = layout.selection_polynomials({1: ["v"]}, Q, rng)
        assert len(polys) == 3
        assert polys[0].is_zero and polys[2].is_zero
        assert not polys[1].is_zero

    def test_unknown_position_rejected(self):
        layout = VectorLayout(2, 2)
        with pytest.raises(SchemeError):
            layout.selection_polynomials({5: ["v"]}, Q, random.Random(8))

    def test_oversized_in_clause_rejected(self):
        layout = VectorLayout(1, 2)
        with pytest.raises(SchemeError):
            layout.selection_polynomials({0: ["a", "b", "c"]}, Q, random.Random(9))

    def test_empty_in_clause_rejected(self):
        layout = VectorLayout(1, 2)
        with pytest.raises(SchemeError):
            layout.selection_polynomials({0: []}, Q, random.Random(10))

    def test_wrong_polynomial_count_rejected(self):
        layout = VectorLayout(2, 2)
        rng = random.Random(11)
        polys = layout.selection_polynomials({}, Q, rng)
        with pytest.raises(SchemeError):
            layout.token_vector(1, polys[:1], Q, rng)


class TestInnerProductIdentity:
    """<v, w> = k*H(a0) + gamma2 * sum_i P_i(a_i) — the scheme's engine."""

    def test_selected_row_collapses_to_join_handle(self):
        layout = VectorLayout(2, 2)
        rng = random.Random(12)
        k = 777
        w = layout.row_vector("join-x", ["hit", "other"], Q, rng)
        polys = layout.selection_polynomials({0: ["hit", "miss"]}, Q, rng)
        v = layout.token_vector(k, polys, Q, rng)
        expected = k * embed_join_value("join-x", Q) % Q
        assert inner_product(v, w, Q) == expected

    def test_unselected_row_does_not_collapse(self):
        layout = VectorLayout(2, 2)
        rng = random.Random(13)
        k = 777
        w = layout.row_vector("join-x", ["not-selected", "other"], Q, rng)
        polys = layout.selection_polynomials({0: ["hit", "miss"]}, Q, rng)
        v = layout.token_vector(k, polys, Q, rng)
        assert inner_product(v, w, Q) != k * embed_join_value("join-x", Q) % Q

    def test_no_selection_always_collapses(self):
        layout = VectorLayout(2, 2)
        rng = random.Random(14)
        k = 99
        w = layout.row_vector("jv", ["anything", "at-all"], Q, rng)
        polys = layout.selection_polynomials({}, Q, rng)
        v = layout.token_vector(k, polys, Q, rng)
        assert inner_product(v, w, Q) == k * embed_join_value("jv", Q) % Q

    def test_multi_attribute_selection(self):
        layout = VectorLayout(3, 2)
        rng = random.Random(15)
        k = 5
        w = layout.row_vector("jv", ["a-val", "b-val", "c-val"], Q, rng)
        polys = layout.selection_polynomials(
            {0: ["a-val"], 2: ["c-val", "zzz"]}, Q, rng
        )
        v = layout.token_vector(k, polys, Q, rng)
        assert inner_product(v, w, Q) == k * embed_join_value("jv", Q) % Q
