"""Malformed-payload property suite for the wire codecs.

The network service (:mod:`repro.net`) feeds these decoders bytes from
arbitrary remote peers, so the contract is absolute: for *any* input —
truncated at any byte offset, bit-flipped anywhere in the header,
carrying hostile counts — the only exception a decoder may raise is
:class:`~repro.errors.SchemeError`.  Never ``MemoryError`` (a count
that commits a huge allocation), never ``struct.error`` / ``KeyError``
/ ``TypeError`` (internals leaking), and never a hang.

Also pins the v4 round-trip (priority/deadline, stream frames) and the
v1–v3 backward-compatibility window.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.store.wire as wire_module
from repro.core.client import SecureJoinClient
from repro.core.server import (
    EncryptedJoinResult,
    MatchBatch,
    SecureJoinServer,
    ServerStats,
)
from repro.db.query import JoinQuery
from repro.db.schema import Schema
from repro.db.table import Table
from repro.errors import SchemeError
from repro.store.codec import Reader, Writer, read_element_vector, write_header
from repro.store.wire import (
    MAX_PRIORITY_MAGNITUDE,
    ErrorFrame,
    FinalFrame,
    MatchBatchFrame,
    ScatterChunkFrame,
    ScatterFinalFrame,
    ShardMapFrame,
    StreamHeaderFrame,
    StreamReassembler,
    decode_frame,
    decode_join_query,
    decode_join_result,
    encode_error_frame,
    encode_final_frame,
    encode_join_query,
    encode_join_result,
    encode_match_batch,
    encode_scatter_chunk,
    encode_scatter_final,
    encode_shard_map,
    encode_stream_header,
)


def _fixture(seed=6):
    left = Table("L", Schema.of(("k", "int"), ("c", "str")),
                 [(1, "x"), (2, "y"), (1, "z")])
    right = Table("R", Schema.of(("k", "int"), ("d", "str")),
                  [(1, "p"), (3, "q")])
    client = SecureJoinClient.for_tables(
        [(left, "k"), (right, "k")],
        in_clause_limit=2,
        rng=random.Random(seed),
    )
    enc_left = client.encrypt_table(left, "k")
    enc_right = client.encrypt_table(right, "k")
    return client, enc_left, enc_right


def _query_bytes(seed=6, **query_kwargs):
    client, _, _ = _fixture(seed=seed)
    query = client.create_query(
        JoinQuery.build("L", "R", on=("k", "k")), **query_kwargs
    )
    return encode_join_query(query, client.scheme.backend), client


def _result_bytes():
    result = EncryptedJoinResult(
        left_table="L",
        right_table="R",
        index_pairs=[(0, 0), (2, 0), (1, 1)],
        left_payloads=[b"pl0", b"pl2", b"pl1"],
        right_payloads=[b"pr0", b"pr0", b"pr1"],
        stats=ServerStats(matches=3),
    )
    return encode_join_result(result), result


def _frame_bytes():
    batch = MatchBatch(
        index_pairs=[(2, 0), (0, 0)],
        left_payloads=[b"a", b"b"],
        right_payloads=[b"c", b"d"],
    )
    result = EncryptedJoinResult(
        left_table="L",
        right_table="R",
        index_pairs=[(0, 0), (2, 0)],
        left_payloads=[b"b", b"a"],
        right_payloads=[b"d", b"c"],
        stats=ServerStats(matches=2),
    )
    from repro.core.engine import EngineReport

    return {
        "stream_header": encode_stream_header(7, "L", "R"),
        "match_batch": encode_match_batch(batch),
        "final": encode_final_frame(result),
        "error": encode_error_frame("QueryError", "boom"),
        # v5 scatter frames ride through the same truncation/bit-flip
        # machinery as the v4 frames.
        "shard_map": encode_shard_map(ShardMapFrame(
            shard_count=2,
            seed=b"repro-shard-v1",
            tables=("L", "R"),
            endpoints=(("h0", 9000), ("h1", 9001)),
        )),
        "scatter_chunk": encode_scatter_chunk("left", [
            (4, b"\x11" * 32, b"payload-4"),
            (9, b"\x22" * 32, b""),
        ]),
        "scatter_final": encode_scatter_final(ScatterFinalFrame(
            candidates_left=3,
            candidates_right=2,
            left_report=EngineReport(engine="parallel", workers=2),
            right_report=EngineReport(engine="batched", batches=1),
        )),
    }


#: Exceptions that must never escape a decoder, however hostile the
#: input.  ``MemoryError`` means an unvalidated count committed an
#: allocation; the rest are implementation details leaking through.
_FORBIDDEN = (
    MemoryError,
    OverflowError,
    KeyError,
    IndexError,
    TypeError,
    ValueError,
    AttributeError,
)


def _assert_only_scheme_error(decode, blob):
    """Decoding ``blob`` either succeeds or raises exactly SchemeError."""
    try:
        decode(blob)
    except SchemeError:
        pass
    # Anything in _FORBIDDEN (or any other exception) propagates and
    # fails the test with the real traceback.


# -- truncation at every byte offset ---------------------------------------


class TestTruncation:
    """Every proper prefix of a valid payload fails with SchemeError."""

    def test_query_truncated_at_every_offset(self):
        blob, client = _query_bytes()
        backend = client.scheme.backend
        for cut in range(len(blob)):
            prefix = blob[:cut]
            with pytest.raises(SchemeError):
                decode_join_query(prefix, backend)

    def test_result_truncated_at_every_offset(self):
        blob, _ = _result_bytes()
        for cut in range(len(blob)):
            with pytest.raises(SchemeError):
                decode_join_result(blob[:cut])

    @pytest.mark.parametrize("kind", sorted(_frame_bytes()))
    def test_frame_truncated_at_every_offset(self, kind):
        blob = _frame_bytes()[kind]
        for cut in range(len(blob)):
            with pytest.raises(SchemeError):
                decode_frame(blob[:cut])

    def test_query_with_prefilter_truncated_at_every_offset(self):
        left = Table("L", Schema.of(("k", "int"), ("c", "str")),
                     [(1, "x"), (2, "y")])
        right = Table("R", Schema.of(("k", "int"), ("d", "str")),
                      [(1, "p")])
        client = SecureJoinClient.for_tables(
            [(left, "k"), (right, "k")],
            in_clause_limit=2,
            rng=random.Random(3),
            enable_prefilter=True,
        )
        client.encrypt_table(left, "k")
        client.encrypt_table(right, "k")
        query = client.create_query(JoinQuery.build(
            "L", "R", on=("k", "k"), where_left={"c": ["x"]},
        ))
        blob = encode_join_query(query, client.scheme.backend)
        assert query.left_prefilter  # the interesting body section exists
        for cut in range(len(blob)):
            with pytest.raises(SchemeError):
                decode_join_query(blob[:cut], client.scheme.backend)


# -- hostile counts and sizes ----------------------------------------------


class TestHostileCounts:
    """Wire-supplied counts must be bounded before any allocation."""

    def test_element_vector_count_bounded_by_remaining(self):
        # A count claiming ~4 billion elements with a 12-byte body: the
        # old code built the list element-by-element until truncation;
        # worse counts could MemoryError.  Now it fails up front.
        writer = Writer()
        writer.u32(0xFFFFFFFF).raw(b"\x00" * 12)
        with pytest.raises(SchemeError, match="bad element-vector count"):
            read_element_vector(Reader(writer.getvalue()), size=4)

    def test_element_vector_zero_size_rejected(self):
        writer = Writer()
        writer.u32(10)
        with pytest.raises(SchemeError, match="element size"):
            read_element_vector(Reader(writer.getvalue()), size=0)

    def test_element_vector_exact_fit_still_reads(self):
        writer = Writer()
        write_element = [b"abcd", b"efgh"]
        writer.u32(2).raw(b"".join(write_element))
        assert read_element_vector(
            Reader(writer.getvalue()), size=4
        ) == write_element

    @pytest.mark.parametrize("n_pairs", [-1, -(2**40)])
    def test_result_negative_pair_count_rejected(self, n_pairs):
        writer = Writer()
        write_header(writer, b"RPROJRES", wire_module._VERSION, {
            "left_table": "L", "right_table": "R",
            "n_pairs": n_pairs, "stats": {},
        })
        with pytest.raises(SchemeError, match="n_pairs"):
            decode_join_result(writer.getvalue())

    @pytest.mark.parametrize("n_pairs", [1, 10**6, 2**61])
    def test_result_oversized_pair_count_rejected_before_read(self, n_pairs):
        # No body bytes at all: any positive count exceeds remaining//8.
        writer = Writer()
        write_header(writer, b"RPROJRES", wire_module._VERSION, {
            "left_table": "L", "right_table": "R",
            "n_pairs": n_pairs, "stats": {},
        })
        with pytest.raises(SchemeError, match="bad pair count"):
            decode_join_result(writer.getvalue())

    def test_match_batch_frame_oversized_pair_count_rejected(self):
        writer = Writer()
        write_header(writer, b"RPROJFRM", wire_module._VERSION, {
            "kind": "match_batch", "n_pairs": 2**32,
        })
        with pytest.raises(SchemeError, match="bad pair count"):
            decode_frame(writer.getvalue())

    def test_query_g1_size_mismatch_is_a_clear_error(self):
        # Satellite 1: a query built by a differently parameterized
        # backend must fail on the declared element size, not with a
        # misleading truncated-blob error deep in the body.
        blob, client = _query_bytes()
        backend = client.scheme.backend
        reader = Reader(blob)
        reader.take(len(b"RPROJQRY"))
        reader.u8()
        header = json.loads(reader.blob())
        body = blob[len(blob) - reader.remaining:]
        header["g1_element_size"] = backend.g1_element_size + 1
        writer = Writer()
        write_header(writer, b"RPROJQRY", wire_module._VERSION, header)
        writer.raw(body)
        with pytest.raises(SchemeError, match="mismatched backend"):
            decode_join_query(writer.getvalue(), backend)

    def test_query_priority_magnitude_capped(self):
        blob, client = _query_bytes()
        backend = client.scheme.backend
        for hostile in (MAX_PRIORITY_MAGNITUDE + 1, -(2**300)):
            rewritten = _rewrite_query_header(blob, priority=hostile)
            with pytest.raises(SchemeError, match="priority"):
                decode_join_query(rewritten, backend)

    @pytest.mark.parametrize(
        "deadline", [0, -1.5, float("nan"), float("inf"), "soon", True]
    )
    def test_query_bad_deadline_rejected(self, deadline):
        blob, client = _query_bytes()
        rewritten = _rewrite_query_header(blob, deadline=deadline)
        with pytest.raises(SchemeError, match="deadline"):
            decode_join_query(rewritten, client.scheme.backend)


def _rewrite_query_header(blob: bytes, **overrides) -> bytes:
    """Re-emit a valid query blob with hostile header fields."""
    reader = Reader(blob)
    reader.take(len(b"RPROJQRY"))
    version = reader.u8()
    header = json.loads(reader.blob())
    body = blob[len(blob) - reader.remaining:]
    header.update(overrides)
    writer = Writer()
    writer.raw(b"RPROJQRY").u8(version)
    # json.dumps cannot emit NaN/Infinity by default; these tests need
    # exactly those hostile values on the wire, so allow them here (the
    # *decoder* must reject them).
    writer.blob(json.dumps(header, allow_nan=True).encode("utf-8"))
    writer.raw(body)
    return writer.getvalue()


# -- property-based corruption ---------------------------------------------


_QUERY_BLOB, _QUERY_CLIENT = _query_bytes(seed=11)
_RESULT_BLOB, _ = _result_bytes()
_FRAME_BLOBS = _frame_bytes()


def _header_span(blob: bytes, magic_len: int = 8) -> tuple[int, int]:
    """Byte range of the JSON header inside ``blob``."""
    reader = Reader(blob)
    reader.take(magic_len)
    reader.u8()
    length = reader.u32()
    start = magic_len + 1 + 4
    return start, start + length


class TestHeaderBitFlips:
    """Single-bit corruption anywhere in the message: only SchemeError.

    Flips land in the magic, the version byte, the header length, the
    JSON header, and the body — every region of the message.  Decoding
    may still *succeed* (some JSON bytes are don't-cares); it must never
    raise anything but SchemeError.
    """

    @settings(max_examples=300, deadline=None)
    @given(
        offset=st.integers(min_value=0, max_value=len(_QUERY_BLOB) - 1),
        bit=st.integers(min_value=0, max_value=7),
    )
    def test_query_bit_flips(self, offset, bit):
        corrupted = bytearray(_QUERY_BLOB)
        corrupted[offset] ^= 1 << bit
        _assert_only_scheme_error(
            lambda b: decode_join_query(b, _QUERY_CLIENT.scheme.backend),
            bytes(corrupted),
        )

    @settings(max_examples=300, deadline=None)
    @given(
        offset=st.integers(min_value=0, max_value=len(_RESULT_BLOB) - 1),
        bit=st.integers(min_value=0, max_value=7),
    )
    def test_result_bit_flips(self, offset, bit):
        corrupted = bytearray(_RESULT_BLOB)
        corrupted[offset] ^= 1 << bit
        _assert_only_scheme_error(decode_join_result, bytes(corrupted))

    @settings(max_examples=200, deadline=None)
    @given(
        kind=st.sampled_from(sorted(_FRAME_BLOBS)),
        data=st.data(),
    )
    def test_frame_bit_flips(self, kind, data):
        blob = _FRAME_BLOBS[kind]
        offset = data.draw(
            st.integers(min_value=0, max_value=len(blob) - 1)
        )
        bit = data.draw(st.integers(min_value=0, max_value=7))
        corrupted = bytearray(blob)
        corrupted[offset] ^= 1 << bit
        _assert_only_scheme_error(decode_frame, bytes(corrupted))

    @settings(max_examples=150, deadline=None)
    @given(
        header_json=st.dictionaries(
            st.text(max_size=12),
            st.one_of(
                st.none(),
                st.booleans(),
                st.integers(min_value=-(2**70), max_value=2**70),
                st.floats(allow_nan=False),
                st.text(max_size=16),
                st.lists(st.integers(), max_size=4),
            ),
            max_size=6,
        ),
        body=st.binary(max_size=64),
    )
    def test_arbitrary_headers_never_leak_internals(self, header_json, body):
        # Well-formed JSON of arbitrary shape: type confusion territory.
        for magic, decode in (
            (b"RPROJQRY",
             lambda b: decode_join_query(b, _QUERY_CLIENT.scheme.backend)),
            (b"RPROJRES", decode_join_result),
            (b"RPROJFRM", decode_frame),
        ):
            writer = Writer()
            write_header(writer, magic, wire_module._VERSION, header_json)
            writer.raw(body)
            _assert_only_scheme_error(decode, writer.getvalue())

    @settings(max_examples=150, deadline=None)
    @given(blob=st.binary(max_size=128))
    def test_random_bytes_never_leak_internals(self, blob):
        _assert_only_scheme_error(
            lambda b: decode_join_query(b, _QUERY_CLIENT.scheme.backend),
            blob,
        )
        _assert_only_scheme_error(decode_join_result, blob)
        _assert_only_scheme_error(decode_frame, blob)


# -- hostile scatter frames (v5) -------------------------------------------


class TestHostileScatterFrames:
    """Shard-map / scatter frames under hostile headers: bounded counts,
    validated endpoints and seeds, only SchemeError escaping."""

    @pytest.mark.parametrize("n_rows", [-1, 1, 10**6, 2**61])
    def test_scatter_chunk_bad_row_count_rejected_before_read(self, n_rows):
        writer = Writer()
        write_header(writer, b"RPROJFRM", wire_module._VERSION, {
            "kind": "scatter_chunk", "side": "left", "n_rows": n_rows,
        })
        with pytest.raises(SchemeError, match="row count|n_rows"):
            decode_frame(writer.getvalue())

    @pytest.mark.parametrize("side", ["middle", "", 3, None, ["left"]])
    def test_scatter_chunk_bad_side_rejected(self, side):
        writer = Writer()
        write_header(writer, b"RPROJFRM", wire_module._VERSION, {
            "kind": "scatter_chunk", "side": side, "n_rows": 0,
        })
        with pytest.raises(SchemeError, match="side"):
            decode_frame(writer.getvalue())

    @pytest.mark.parametrize("count", [0, -1, 1025, 2**40, True, "2", None])
    def test_shard_map_hostile_count_rejected(self, count):
        writer = Writer()
        write_header(writer, b"RPROJFRM", wire_module._VERSION, {
            "kind": "shard_map", "shard_count": count,
            "seed": "aa", "tables": [], "endpoints": [],
        })
        with pytest.raises(SchemeError, match="shard"):
            decode_frame(writer.getvalue())

    def test_shard_map_endpoint_count_must_match(self):
        writer = Writer()
        write_header(writer, b"RPROJFRM", wire_module._VERSION, {
            "kind": "shard_map", "shard_count": 3, "seed": "aa",
            "tables": ["L"], "endpoints": [["h", 1], ["h", 2]],
        })
        with pytest.raises(SchemeError, match="exactly 3 endpoints"):
            decode_frame(writer.getvalue())

    @pytest.mark.parametrize(
        "endpoint",
        [["h"], ["h", 1, 2], "h:1", [3, 1], ["h", -1], ["h", 65536],
         ["h", "80"], None],
    )
    def test_shard_map_bad_endpoint_rejected(self, endpoint):
        writer = Writer()
        write_header(writer, b"RPROJFRM", wire_module._VERSION, {
            "kind": "shard_map", "shard_count": 1, "seed": "aa",
            "tables": [], "endpoints": [endpoint],
        })
        with pytest.raises(SchemeError):
            decode_frame(writer.getvalue())

    @pytest.mark.parametrize("seed", ["", "zz", "a" * 200, 7, None, "abc"])
    def test_shard_map_bad_seed_rejected(self, seed):
        writer = Writer()
        write_header(writer, b"RPROJFRM", wire_module._VERSION, {
            "kind": "shard_map", "shard_count": 1, "seed": seed,
            "tables": [], "endpoints": [["h", 1]],
        })
        with pytest.raises(SchemeError):
            decode_frame(writer.getvalue())

    @pytest.mark.parametrize(
        "reports",
        [
            "not-a-dict",
            {"left": "not-a-dict"},
            {"left": {"planner": "not-a-dict"}},
            {"left": {"engine": {"nested": True}}},
        ],
    )
    def test_scatter_final_malformed_reports_rejected(self, reports):
        writer = Writer()
        write_header(writer, b"RPROJFRM", wire_module._VERSION, {
            "kind": "scatter_final", "candidates_left": 1,
            "candidates_right": 1, "reports": reports,
        })
        _assert_only_scheme_error(decode_frame, writer.getvalue())

    @pytest.mark.parametrize("count", [-1, "3", None, 1.5])
    def test_scatter_final_bad_candidate_counts_rejected(self, count):
        writer = Writer()
        write_header(writer, b"RPROJFRM", wire_module._VERSION, {
            "kind": "scatter_final", "candidates_left": count,
            "candidates_right": 0, "reports": {},
        })
        with pytest.raises(SchemeError, match="candidates_left"):
            decode_frame(writer.getvalue())


# -- v4 round-trip ----------------------------------------------------------


class TestWireV4RoundTrip:
    def test_query_qos_round_trips(self):
        client, _, _ = _fixture(seed=21)
        query = client.create_query(
            JoinQuery.build("L", "R", on=("k", "k")),
            priority=5,
            deadline=12.5,
        )
        decoded = decode_join_query(
            encode_join_query(query, client.scheme.backend),
            client.scheme.backend,
        )
        assert decoded.priority == 5
        assert decoded.deadline == 12.5
        assert decoded.left_token == query.left_token
        assert decoded.right_token == query.right_token

    def test_query_defaults_round_trip(self):
        blob, client = _query_bytes(seed=22)
        decoded = decode_join_query(blob, client.scheme.backend)
        assert decoded.priority == 0
        assert decoded.deadline is None

    def test_all_frames_round_trip(self):
        header = decode_frame(encode_stream_header(42, "L", "R"))
        assert header == StreamHeaderFrame(42, "L", "R")

        batch = MatchBatch(
            index_pairs=[(3, 1), (0, 2)],
            left_payloads=[b"lp3", b"lp0"],
            right_payloads=[b"rp1", b"rp2"],
        )
        decoded_batch = decode_frame(encode_match_batch(batch))
        assert isinstance(decoded_batch, MatchBatchFrame)
        assert decoded_batch.batch == batch

        _, result = _result_bytes()
        final = decode_frame(encode_final_frame(result))
        assert isinstance(final, FinalFrame)
        assert final.index_pairs == result.index_pairs
        assert final.stats == result.stats

        error = decode_frame(encode_error_frame("DeadlineError", "late"))
        assert error == ErrorFrame("DeadlineError", "late")

    def test_reassembler_rebuilds_canonical_result(self):
        _, result = _result_bytes()
        # Deliver the pairs across two batches in scrambled order.
        reassembler = StreamReassembler()
        reassembler.add_batch(MatchBatch(
            index_pairs=[result.index_pairs[2], result.index_pairs[0]],
            left_payloads=[result.left_payloads[2], result.left_payloads[0]],
            right_payloads=[
                result.right_payloads[2], result.right_payloads[0],
            ],
        ))
        reassembler.add_batch(MatchBatch(
            index_pairs=[result.index_pairs[1]],
            left_payloads=[result.left_payloads[1]],
            right_payloads=[result.right_payloads[1]],
        ))
        final = decode_frame(encode_final_frame(result))
        rebuilt = reassembler.finish(final)
        assert rebuilt == result
        assert encode_join_result(rebuilt) == encode_join_result(result)

    def test_reassembler_rejects_duplicate_and_missing_pairs(self):
        _, result = _result_bytes()
        final = decode_frame(encode_final_frame(result))
        batch = MatchBatch(
            index_pairs=[result.index_pairs[0]],
            left_payloads=[result.left_payloads[0]],
            right_payloads=[result.right_payloads[0]],
        )
        reassembler = StreamReassembler()
        reassembler.add_batch(batch)
        with pytest.raises(SchemeError, match="more than once"):
            reassembler.add_batch(batch)
        with pytest.raises(SchemeError, match="claims"):
            StreamReassemblerWith(batch).finish(final)

    def test_reassembler_rejects_final_naming_undelivered_pair(self):
        _, result = _result_bytes()
        reassembler = StreamReassembler()
        reassembler.add_batch(MatchBatch(
            index_pairs=[(90, 90), (91, 91), (92, 92)],
            left_payloads=[b"x", b"y", b"z"],
            right_payloads=[b"x", b"y", b"z"],
        ))
        final = decode_frame(encode_final_frame(result))
        with pytest.raises(SchemeError, match="no match batch delivered"):
            reassembler.finish(final)


def StreamReassemblerWith(batch: MatchBatch) -> StreamReassembler:
    reassembler = StreamReassembler()
    reassembler.add_batch(batch)
    return reassembler


# -- v5 round-trip ----------------------------------------------------------


class TestWireV5RoundTrip:
    def test_shard_map_round_trips(self):
        shard_map = ShardMapFrame(
            shard_count=4,
            seed=b"repro-shard-v1",
            tables=("L", "R"),
            endpoints=(
                ("10.0.0.1", 9000), ("10.0.0.2", 9000),
                ("10.0.0.3", 9001), ("10.0.0.4", 0),
            ),
        )
        assert decode_frame(encode_shard_map(shard_map)) == shard_map

    def test_scatter_chunk_round_trips(self):
        items = [(0, b"\x00" * 48, b"p0"), (7, b"\xff" * 48, b"")]
        decoded = decode_frame(encode_scatter_chunk("right", items))
        assert isinstance(decoded, ScatterChunkFrame)
        assert decoded.side == "right"
        assert decoded.items == items

    def test_scatter_final_round_trips_reports(self):
        from repro.core.engine import EngineReport

        final = ScatterFinalFrame(
            candidates_left=11,
            candidates_right=0,
            left_report=EngineReport(
                engine="parallel", batches=3, workers=2, miller_loops=44,
            ),
            right_report=None,
        )
        assert decode_frame(encode_scatter_final(final)) == final

    def test_scatter_final_tolerates_unknown_report_fields(self):
        # Newer minor revisions may add report fields; they must drop,
        # not crash — mirroring the stats decode.
        writer = Writer()
        write_header(writer, b"RPROJFRM", wire_module._VERSION, {
            "kind": "scatter_final", "candidates_left": 1,
            "candidates_right": 2,
            "reports": {
                "left": {"engine": "batched", "from_the_future": 9},
                "right": None,
            },
        })
        decoded = decode_frame(writer.getvalue())
        assert decoded.left_report.engine == "batched"
        assert decoded.right_report is None

    def test_scatter_frames_accept_v4_stamp(self):
        # The frame channel's compat window starts at v4; a v4-stamped
        # scatter frame (e.g. a patched older peer) still decodes.
        writer = Writer()
        write_header(writer, b"RPROJFRM", 4, {
            "kind": "scatter_final", "candidates_left": 0,
            "candidates_right": 0, "reports": {},
        })
        decoded = decode_frame(writer.getvalue())
        assert decoded == ScatterFinalFrame(0, 0)

    def test_result_stats_carry_shard_fields(self):
        stats = ServerStats(matches=1, shards=3, shard_skew=1.5)
        result = EncryptedJoinResult(
            left_table="L", right_table="R",
            index_pairs=[(0, 0)], left_payloads=[b"l"],
            right_payloads=[b"r"], stats=stats,
        )
        decoded = decode_join_result(encode_join_result(result))
        assert decoded.stats.shards == 3
        assert decoded.stats.shard_skew == 1.5
        # And a v4 peer's stats (no shard keys) default to unsharded.
        writer = Writer()
        write_header(writer, b"RPROJRES", 4, {
            "left_table": "L", "right_table": "R", "n_pairs": 0,
            "stats": {"matches": 0},
        })
        legacy = decode_join_result(writer.getvalue())
        assert legacy.stats.shards == 0
        assert legacy.stats.shard_skew == 0.0


# -- v1..v3 backward compatibility -----------------------------------------


class TestBackwardCompat:
    """v1–v3 payloads still decode; QoS fields default; frames are v4+."""

    @pytest.mark.parametrize("version", [1, 2, 3])
    def test_older_query_versions_decode_with_default_qos(self, version):
        client, enc_left, enc_right = _fixture(seed=31)
        backend = client.scheme.backend
        query = client.create_query(JoinQuery.build("L", "R", on=("k", "k")))
        writer = Writer()
        body = Writer()
        for token in (query.left_token, query.right_token):
            from repro.store.codec import write_element_vector
            write_element_vector(
                body,
                [backend.encode_g1(e) for e in token.elements],
                backend.g1_element_size,
            )
        header = {
            "query_id": query.query_id,
            "left_table": "L",
            "right_table": "R",
            "backend": backend.name,
            "g1_element_size": backend.g1_element_size,
            "left_prefilter_columns": None,
            "right_prefilter_columns": None,
        }
        if version >= 2:
            header["engine_hint"] = None
        # No "priority"/"deadline" keys before v4.
        write_header(writer, b"RPROJQRY", version, header)
        writer.raw(body.getvalue())

        decoded = decode_join_query(writer.getvalue(), backend)
        assert decoded.priority == 0
        assert decoded.deadline is None
        assert decoded.left_token == query.left_token

        server = SecureJoinServer(client.params)
        server.store(enc_left)
        server.store(enc_right)
        result = server.execute_join(decoded)
        assert sorted(result.index_pairs) == [(0, 0), (2, 0)]

    @pytest.mark.parametrize("version", [1, 2, 3])
    def test_older_result_versions_decode(self, version):
        writer = Writer()
        write_header(writer, b"RPROJRES", version, {
            "left_table": "L", "right_table": "R", "n_pairs": 0,
            "stats": {"matches": 0},
        })
        decoded = decode_join_result(writer.getvalue())
        assert decoded.index_pairs == []
        assert decoded.stats.matches == 0

    @pytest.mark.parametrize("version", [1, 2, 3])
    def test_frames_reject_pre_v4_versions(self, version):
        writer = Writer()
        write_header(writer, b"RPROJFRM", version, {
            "kind": "error", "error_type": "QueryError", "message": "m",
        })
        with pytest.raises(SchemeError, match="version"):
            decode_frame(writer.getvalue())

    def test_future_versions_rejected_everywhere(self):
        future = wire_module._VERSION + 1
        for magic, decode in (
            (b"RPROJQRY",
             lambda b: decode_join_query(
                 b, _QUERY_CLIENT.scheme.backend
             )),
            (b"RPROJRES", decode_join_result),
            (b"RPROJFRM", decode_frame),
        ):
            writer = Writer()
            write_header(writer, magic, future, {})
            with pytest.raises(SchemeError, match="version"):
                decode(writer.getvalue())
