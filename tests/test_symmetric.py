"""Tests for the payload stream cipher."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.symmetric import SymmetricCipher
from repro.errors import CryptoError


class TestSymmetricCipher:
    def test_round_trip(self):
        cipher = SymmetricCipher(b"k" * 32)
        blob = cipher.encrypt(b"hello world")
        assert cipher.decrypt(blob) == b"hello world"

    def test_empty_plaintext(self):
        cipher = SymmetricCipher(b"k" * 32)
        assert cipher.decrypt(cipher.encrypt(b"")) == b""

    def test_probabilistic(self):
        cipher = SymmetricCipher(b"k" * 32)
        assert cipher.encrypt(b"same") != cipher.encrypt(b"same")

    def test_fixed_nonce_deterministic(self):
        cipher = SymmetricCipher(b"k" * 32)
        nonce = b"n" * 16
        assert cipher.encrypt(b"x", nonce) == cipher.encrypt(b"x", nonce)

    def test_wrong_key_fails(self):
        blob = SymmetricCipher(b"a" * 32).encrypt(b"secret")
        with pytest.raises(CryptoError):
            SymmetricCipher(b"b" * 32).decrypt(blob)

    def test_tamper_detection(self):
        cipher = SymmetricCipher(b"k" * 32)
        blob = bytearray(cipher.encrypt(b"payload bytes"))
        blob[20] ^= 0x01
        with pytest.raises(CryptoError):
            cipher.decrypt(bytes(blob))

    def test_truncated_blob(self):
        cipher = SymmetricCipher(b"k" * 32)
        with pytest.raises(CryptoError):
            cipher.decrypt(b"short")

    def test_short_key_rejected(self):
        with pytest.raises(CryptoError):
            SymmetricCipher(b"tiny")

    def test_bad_nonce_length(self):
        cipher = SymmetricCipher(b"k" * 32)
        with pytest.raises(CryptoError):
            cipher.encrypt(b"x", b"short-nonce")

    def test_long_plaintext(self):
        cipher = SymmetricCipher(b"k" * 32)
        plaintext = bytes(range(256)) * 64
        assert cipher.decrypt(cipher.encrypt(plaintext)) == plaintext

    @given(st.binary(max_size=512))
    def test_round_trip_property(self, plaintext):
        cipher = SymmetricCipher(b"prop-key-32-bytes-prop-key-32-by")
        assert cipher.decrypt(cipher.encrypt(plaintext)) == plaintext
