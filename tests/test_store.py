"""Tests for the persistence and wire formats."""

from __future__ import annotations

import random

import pytest

from repro.core.client import SecureJoinClient
from repro.core.server import SecureJoinServer
from repro.crypto.backend import BN254Backend, FastBackend
from repro.db.query import JoinQuery
from repro.db.schema import Schema
from repro.db.table import Table
from repro.errors import SchemeError
from repro.store.codec import Reader, Writer, read_header, write_header
from repro.store.tables import (
    decode_encrypted_table,
    encode_encrypted_table,
    load_encrypted_table,
    save_encrypted_table,
)
from repro.store.wire import (
    decode_join_query,
    decode_join_result,
    encode_join_query,
    encode_join_result,
)


def _fixture(backend=None, enable_prefilter=False, seed=6):
    left = Table("L", Schema.of(("k", "int"), ("c", "str")),
                 [(1, "x"), (2, "y"), (1, "z")])
    right = Table("R", Schema.of(("k", "int"), ("d", "str")),
                  [(1, "p"), (3, "q")])
    client = SecureJoinClient.for_tables(
        [(left, "k"), (right, "k")],
        in_clause_limit=2,
        backend=backend,
        rng=random.Random(seed),
        enable_prefilter=enable_prefilter,
    )
    enc_left = client.encrypt_table(left, "k")
    enc_right = client.encrypt_table(right, "k")
    return client, enc_left, enc_right


class TestCodecPrimitives:
    def test_reader_writer_round_trip(self):
        writer = Writer()
        writer.u8(7).u32(123456).blob(b"hello")
        reader = Reader(writer.getvalue())
        assert reader.u8() == 7
        assert reader.u32() == 123456
        assert reader.blob() == b"hello"
        reader.expect_end()

    def test_truncated_read(self):
        reader = Reader(b"\x00\x01")
        with pytest.raises(SchemeError):
            reader.u32()

    def test_trailing_bytes_detected(self):
        reader = Reader(b"\x00extra")
        reader.u8()
        with pytest.raises(SchemeError):
            reader.expect_end()

    def test_header_round_trip(self):
        writer = Writer()
        write_header(writer, b"MAGICXYZ", 1, {"a": [1, 2]})
        reader = Reader(writer.getvalue())
        assert read_header(reader, b"MAGICXYZ", 1) == {"a": [1, 2]}

    def test_bad_magic(self):
        writer = Writer()
        write_header(writer, b"MAGICXYZ", 1, {})
        with pytest.raises(SchemeError):
            read_header(Reader(writer.getvalue()), b"OTHERMAG", 1)

    def test_bad_version(self):
        writer = Writer()
        write_header(writer, b"MAGICXYZ", 2, {})
        with pytest.raises(SchemeError):
            read_header(Reader(writer.getvalue()), b"MAGICXYZ", 1)


class TestEncryptedTableFormat:
    def test_round_trip_fast_backend(self):
        client, enc_left, _ = _fixture()
        backend = client.scheme.backend
        decoded = decode_encrypted_table(
            encode_encrypted_table(enc_left, backend), backend
        )
        assert decoded.name == enc_left.name
        assert decoded.schema == enc_left.schema
        assert decoded.join_column == enc_left.join_column
        assert decoded.attribute_columns == enc_left.attribute_columns
        assert [c.elements for c in decoded.ciphertexts] == [
            c.elements for c in enc_left.ciphertexts
        ]
        assert decoded.payloads == enc_left.payloads

    def test_round_trip_with_prefilter(self):
        client, enc_left, _ = _fixture(enable_prefilter=True)
        backend = client.scheme.backend
        decoded = decode_encrypted_table(
            encode_encrypted_table(enc_left, backend), backend
        )
        assert decoded.prefilter_tags == enc_left.prefilter_tags

    @pytest.mark.bn254
    def test_round_trip_bn254(self, bn254_backend):
        client, enc_left, _ = _fixture(backend=bn254_backend)
        decoded = decode_encrypted_table(
            encode_encrypted_table(enc_left, bn254_backend), bn254_backend
        )
        assert [c.elements for c in decoded.ciphertexts] == [
            c.elements for c in enc_left.ciphertexts
        ]

    def test_backend_mismatch_rejected(self):
        client, enc_left, _ = _fixture()
        blob = encode_encrypted_table(enc_left, client.scheme.backend)
        with pytest.raises(SchemeError):
            decode_encrypted_table(blob, BN254Backend())

    def test_corrupt_blob_rejected(self):
        client, enc_left, _ = _fixture()
        blob = encode_encrypted_table(enc_left, client.scheme.backend)
        with pytest.raises(SchemeError):
            decode_encrypted_table(blob[:-3], client.scheme.backend)

    def test_save_load_file(self, tmp_path):
        client, enc_left, _ = _fixture()
        backend = client.scheme.backend
        path = tmp_path / "left.etbl"
        save_encrypted_table(enc_left, path, backend)
        loaded = load_encrypted_table(path, backend)
        assert loaded.payloads == enc_left.payloads

    def test_loaded_table_joins_correctly(self, tmp_path):
        """A server restarted from disk must produce identical results."""
        client, enc_left, enc_right = _fixture(seed=9)
        backend = client.scheme.backend
        save_encrypted_table(enc_left, tmp_path / "l.etbl", backend)
        save_encrypted_table(enc_right, tmp_path / "r.etbl", backend)

        server = SecureJoinServer(client.params)
        server.store(load_encrypted_table(tmp_path / "l.etbl", backend))
        server.store(load_encrypted_table(tmp_path / "r.etbl", backend))
        query = JoinQuery.build("L", "R", on=("k", "k"))
        result = server.execute_join(client.create_query(query))
        assert sorted(result.index_pairs) == [(0, 0), (2, 0)]
        decrypted = client.decrypt_result(result)
        assert len(decrypted.table) == 2


class TestWireFormats:
    def test_query_round_trip(self):
        client, _, _ = _fixture(enable_prefilter=True)
        query = JoinQuery.build("L", "R", on=("k", "k"),
                                where_left={"c": ["x"]})
        encrypted_query = client.create_query(query)
        backend = client.scheme.backend
        decoded = decode_join_query(
            encode_join_query(encrypted_query, backend), backend
        )
        assert decoded.query_id == encrypted_query.query_id
        assert decoded.left_token == encrypted_query.left_token
        assert decoded.right_token == encrypted_query.right_token
        assert decoded.left_prefilter == encrypted_query.left_prefilter
        assert decoded.right_prefilter is None

    def test_query_over_wire_executes(self):
        """Full split-process flow: bytes in, bytes out, decrypt."""
        client, enc_left, enc_right = _fixture(seed=10)
        backend = client.scheme.backend
        server = SecureJoinServer(client.params)
        server.store(enc_left)
        server.store(enc_right)

        query = JoinQuery.build("L", "R", on=("k", "k"))
        wire_query = encode_join_query(client.create_query(query), backend)
        result = server.execute_join(decode_join_query(wire_query, backend))
        wire_result = encode_join_result(result)
        decrypted = client.decrypt_result(decode_join_result(wire_result))
        assert len(decrypted.table) == 2

    def test_result_round_trip_preserves_stats(self):
        client, enc_left, enc_right = _fixture(seed=11)
        server = SecureJoinServer(client.params)
        server.store(enc_left)
        server.store(enc_right)
        query = JoinQuery.build("L", "R", on=("k", "k"))
        result = server.execute_join(client.create_query(query))
        decoded = decode_join_result(encode_join_result(result))
        assert decoded.stats == result.stats
        assert decoded.index_pairs == result.index_pairs

    def test_query_backend_mismatch(self):
        client, _, _ = _fixture()
        query = JoinQuery.build("L", "R", on=("k", "k"))
        blob = encode_join_query(
            client.create_query(query), client.scheme.backend
        )
        with pytest.raises(SchemeError):
            decode_join_query(blob, BN254Backend())
