"""Tests for the persistence and wire formats."""

from __future__ import annotations

import random

import pytest

from repro.core.client import SecureJoinClient
from repro.core.server import SecureJoinServer
from repro.crypto.backend import BN254Backend, FastBackend
from repro.db.query import JoinQuery
from repro.db.schema import Schema
from repro.db.table import Table
from repro.errors import SchemeError
from repro.store.codec import Reader, Writer, read_header, write_header
from repro.store.tables import (
    decode_encrypted_table,
    encode_encrypted_table,
    load_encrypted_table,
    save_encrypted_table,
)
from repro.store.wire import (
    decode_join_query,
    decode_join_result,
    encode_join_query,
    encode_join_result,
)


def _fixture(backend=None, enable_prefilter=False, seed=6):
    left = Table("L", Schema.of(("k", "int"), ("c", "str")),
                 [(1, "x"), (2, "y"), (1, "z")])
    right = Table("R", Schema.of(("k", "int"), ("d", "str")),
                  [(1, "p"), (3, "q")])
    client = SecureJoinClient.for_tables(
        [(left, "k"), (right, "k")],
        in_clause_limit=2,
        backend=backend,
        rng=random.Random(seed),
        enable_prefilter=enable_prefilter,
    )
    enc_left = client.encrypt_table(left, "k")
    enc_right = client.encrypt_table(right, "k")
    return client, enc_left, enc_right


class TestCodecPrimitives:
    def test_reader_writer_round_trip(self):
        writer = Writer()
        writer.u8(7).u32(123456).blob(b"hello")
        reader = Reader(writer.getvalue())
        assert reader.u8() == 7
        assert reader.u32() == 123456
        assert reader.blob() == b"hello"
        reader.expect_end()

    def test_truncated_read(self):
        reader = Reader(b"\x00\x01")
        with pytest.raises(SchemeError):
            reader.u32()

    def test_trailing_bytes_detected(self):
        reader = Reader(b"\x00extra")
        reader.u8()
        with pytest.raises(SchemeError):
            reader.expect_end()

    def test_header_round_trip(self):
        writer = Writer()
        write_header(writer, b"MAGICXYZ", 1, {"a": [1, 2]})
        reader = Reader(writer.getvalue())
        assert read_header(reader, b"MAGICXYZ", 1) == {"a": [1, 2]}

    def test_bad_magic(self):
        writer = Writer()
        write_header(writer, b"MAGICXYZ", 1, {})
        with pytest.raises(SchemeError):
            read_header(Reader(writer.getvalue()), b"OTHERMAG", 1)

    def test_bad_version(self):
        writer = Writer()
        write_header(writer, b"MAGICXYZ", 2, {})
        with pytest.raises(SchemeError):
            read_header(Reader(writer.getvalue()), b"MAGICXYZ", 1)


class TestEncryptedTableFormat:
    def test_round_trip_fast_backend(self):
        client, enc_left, _ = _fixture()
        backend = client.scheme.backend
        decoded = decode_encrypted_table(
            encode_encrypted_table(enc_left, backend), backend
        )
        assert decoded.name == enc_left.name
        assert decoded.schema == enc_left.schema
        assert decoded.join_column == enc_left.join_column
        assert decoded.attribute_columns == enc_left.attribute_columns
        assert [c.elements for c in decoded.ciphertexts] == [
            c.elements for c in enc_left.ciphertexts
        ]
        assert decoded.payloads == enc_left.payloads

    def test_round_trip_with_prefilter(self):
        client, enc_left, _ = _fixture(enable_prefilter=True)
        backend = client.scheme.backend
        decoded = decode_encrypted_table(
            encode_encrypted_table(enc_left, backend), backend
        )
        assert decoded.prefilter_tags == enc_left.prefilter_tags

    @pytest.mark.bn254
    def test_round_trip_bn254(self, bn254_backend):
        client, enc_left, _ = _fixture(backend=bn254_backend)
        decoded = decode_encrypted_table(
            encode_encrypted_table(enc_left, bn254_backend), bn254_backend
        )
        assert [c.elements for c in decoded.ciphertexts] == [
            c.elements for c in enc_left.ciphertexts
        ]

    def test_backend_mismatch_rejected(self):
        client, enc_left, _ = _fixture()
        blob = encode_encrypted_table(enc_left, client.scheme.backend)
        with pytest.raises(SchemeError):
            decode_encrypted_table(blob, BN254Backend())

    def test_corrupt_blob_rejected(self):
        client, enc_left, _ = _fixture()
        blob = encode_encrypted_table(enc_left, client.scheme.backend)
        with pytest.raises(SchemeError):
            decode_encrypted_table(blob[:-3], client.scheme.backend)

    def test_save_load_file(self, tmp_path):
        client, enc_left, _ = _fixture()
        backend = client.scheme.backend
        path = tmp_path / "left.etbl"
        save_encrypted_table(enc_left, path, backend)
        loaded = load_encrypted_table(path, backend)
        assert loaded.payloads == enc_left.payloads

    def test_loaded_table_joins_correctly(self, tmp_path):
        """A server restarted from disk must produce identical results."""
        client, enc_left, enc_right = _fixture(seed=9)
        backend = client.scheme.backend
        save_encrypted_table(enc_left, tmp_path / "l.etbl", backend)
        save_encrypted_table(enc_right, tmp_path / "r.etbl", backend)

        server = SecureJoinServer(client.params)
        server.store(load_encrypted_table(tmp_path / "l.etbl", backend))
        server.store(load_encrypted_table(tmp_path / "r.etbl", backend))
        query = JoinQuery.build("L", "R", on=("k", "k"))
        result = server.execute_join(client.create_query(query))
        assert sorted(result.index_pairs) == [(0, 0), (2, 0)]
        decrypted = client.decrypt_result(result)
        assert len(decrypted.table) == 2


class TestShardedTableFormat:
    """Format v3: the optional shard descriptor section."""

    @staticmethod
    def _patched(blob: bytes, version: int, drop_keys: tuple = ()) -> bytes:
        """Re-stamp a table blob with an older version byte, optionally
        dropping header keys that version did not have."""
        import json
        import struct

        header_length = struct.unpack(">I", blob[9:13])[0]
        header = json.loads(blob[13:13 + header_length])
        for key in drop_keys:
            header.pop(key, None)
        new_header = json.dumps(header, sort_keys=True).encode("utf-8")
        return (
            blob[:8] + bytes([version])
            + struct.pack(">I", len(new_header)) + new_header
            + blob[13 + header_length:]
        )

    def test_sharded_round_trip(self):
        from repro.shard import partition_table

        client, enc_left, _ = _fixture(enable_prefilter=True)
        backend = client.scheme.backend
        for shard in partition_table(enc_left, backend, 2):
            decoded = decode_encrypted_table(
                encode_encrypted_table(shard, backend), backend
            )
            assert decoded.shard == shard.shard
            assert decoded.payloads == shard.payloads
            assert decoded.prefilter_tags == shard.prefilter_tags
            assert [c.elements for c in decoded.ciphertexts] == [
                c.elements for c in shard.ciphertexts
            ]

    def test_loaded_shards_join_identically(self, tmp_path):
        """Shard tables restored from disk feed a coordinator that
        reproduces the single-store result byte-for-byte."""
        from repro.shard import (
            LocalShard, ShardCoordinator, partition_table,
        )

        client, enc_left, enc_right = _fixture(seed=21)
        backend = client.scheme.backend
        single = SecureJoinServer(client.params)
        single.store(enc_left)
        single.store(enc_right)
        query = JoinQuery.build("L", "R", on=("k", "k"))
        reference = single.execute_join(client.create_query(query))

        shards = [LocalShard(client.params, backend=backend)
                  for _ in range(2)]
        for table in (enc_left, enc_right):
            for i, part in enumerate(partition_table(table, backend, 2)):
                path = tmp_path / f"{table.name}-{i}.etbl"
                save_encrypted_table(part, path, backend)
                shards[i].store(load_encrypted_table(path, backend))
        coordinator = ShardCoordinator(shards)
        try:
            result = coordinator.execute_join(client.create_query(query))
        finally:
            coordinator.close()
        assert result.index_pairs == reference.index_pairs
        assert result.left_payloads == reference.left_payloads
        assert result.right_payloads == reference.right_payloads

    def test_v1_table_still_loads(self):
        """A pre-prepared-rows, pre-shard file loads unprepared and
        unsharded."""
        client, enc_left, _ = _fixture()
        backend = client.scheme.backend
        blob = self._patched(
            encode_encrypted_table(enc_left, backend), 1,
            drop_keys=("prepared", "prepared_element_size", "shard"),
        )
        decoded = decode_encrypted_table(blob, backend)
        assert decoded.shard is None
        assert decoded.prepared_rows is None
        assert decoded.payloads == enc_left.payloads

    def test_v2_table_still_loads(self):
        """A v2 file (prepared rows, no shard key) loads unsharded."""
        from repro.store.tables import prepare_encrypted_table

        client, enc_left, _ = _fixture()
        backend = client.scheme.backend
        prepare_encrypted_table(enc_left, backend)
        blob = self._patched(
            encode_encrypted_table(enc_left, backend), 2,
            drop_keys=("shard",),
        )
        decoded = decode_encrypted_table(blob, backend)
        assert decoded.shard is None
        assert decoded.prepared_rows is not None
        assert len(decoded.prepared_rows) == len(enc_left.ciphertexts)

    def test_descriptor_row_count_mismatch_rejected_on_encode(self):
        from repro.shard import ShardDescriptor

        client, enc_left, _ = _fixture()
        backend = client.scheme.backend
        enc_left.shard = ShardDescriptor(0, 2, b"seed", (0,))
        with pytest.raises(SchemeError, match="maps 1 rows"):
            encode_encrypted_table(enc_left, backend)

    @pytest.mark.parametrize("shard_header", [
        "not-a-dict",
        ["index", 0],
        {"index": 0, "count": 2},                       # missing seed
        {"index": 0, "count": 2, "seed": ""},           # empty seed
        {"index": 0, "count": 2, "seed": "zz"},         # not hex
        {"index": 0, "count": 2, "seed": "ab" * 100},   # oversized
        {"index": 0, "count": 2, "seed": 7},            # wrong type
        {"index": 2, "count": 2, "seed": "ab"},         # index OOB
        {"index": 0, "count": 0, "seed": "ab"},         # zero shards
        {"index": 0, "count": 2000, "seed": "ab"},      # absurd fan-out
        {"index": True, "count": 2, "seed": "ab"},      # bool index
    ])
    def test_hostile_shard_headers_rejected(self, shard_header):
        import json
        import struct

        client, enc_left, _ = _fixture()
        backend = client.scheme.backend
        blob = encode_encrypted_table(enc_left, backend)
        header_length = struct.unpack(">I", blob[9:13])[0]
        header = json.loads(blob[13:13 + header_length])
        header["shard"] = shard_header
        new_header = json.dumps(header, sort_keys=True).encode("utf-8")
        patched = (
            blob[:9] + struct.pack(">I", len(new_header)) + new_header
            + blob[13 + header_length:]
        )
        with pytest.raises(SchemeError):
            decode_encrypted_table(patched, backend)

    def test_truncated_indices_section_rejected(self):
        from repro.shard import partition_table

        client, enc_left, _ = _fixture()
        backend = client.scheme.backend
        shard = next(
            s for s in partition_table(enc_left, backend, 2) if len(s) > 0
        )
        blob = encode_encrypted_table(shard, backend)
        with pytest.raises(SchemeError):
            decode_encrypted_table(blob[:-2], backend)


class TestWireFormats:
    def test_query_round_trip(self):
        client, _, _ = _fixture(enable_prefilter=True)
        query = JoinQuery.build("L", "R", on=("k", "k"),
                                where_left={"c": ["x"]})
        encrypted_query = client.create_query(query)
        backend = client.scheme.backend
        decoded = decode_join_query(
            encode_join_query(encrypted_query, backend), backend
        )
        assert decoded.query_id == encrypted_query.query_id
        assert decoded.left_token == encrypted_query.left_token
        assert decoded.right_token == encrypted_query.right_token
        assert decoded.left_prefilter == encrypted_query.left_prefilter
        assert decoded.right_prefilter is None

    def test_query_over_wire_executes(self):
        """Full split-process flow: bytes in, bytes out, decrypt."""
        client, enc_left, enc_right = _fixture(seed=10)
        backend = client.scheme.backend
        server = SecureJoinServer(client.params)
        server.store(enc_left)
        server.store(enc_right)

        query = JoinQuery.build("L", "R", on=("k", "k"))
        wire_query = encode_join_query(client.create_query(query), backend)
        result = server.execute_join(decode_join_query(wire_query, backend))
        wire_result = encode_join_result(result)
        decrypted = client.decrypt_result(decode_join_result(wire_result))
        assert len(decrypted.table) == 2

    def test_result_round_trip_preserves_stats(self):
        client, enc_left, enc_right = _fixture(seed=11)
        server = SecureJoinServer(client.params)
        server.store(enc_left)
        server.store(enc_right)
        query = JoinQuery.build("L", "R", on=("k", "k"))
        result = server.execute_join(client.create_query(query))
        decoded = decode_join_result(encode_join_result(result))
        assert decoded.stats == result.stats
        assert decoded.index_pairs == result.index_pairs

    def test_query_backend_mismatch(self):
        client, _, _ = _fixture()
        query = JoinQuery.build("L", "R", on=("k", "k"))
        blob = encode_join_query(
            client.create_query(query), client.scheme.backend
        )
        with pytest.raises(SchemeError):
            decode_join_query(blob, BN254Backend())


try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is an optional dev dep
    HAVE_HYPOTHESIS = False

from repro.core.server import EncryptedJoinResult, ServerStats
from repro.store import wire as wire_module
from repro.store.codec import write_element_vector


def _planner_record(chosen: str, rows: int, estimate: float) -> dict:
    return {
        "rows": rows,
        "dimension": 5,
        "workers": 2,
        "pool_warm": bool(rows % 2),
        "chosen": chosen,
        "estimates": {
            "serial": estimate * 3,
            "batched": estimate,
            "parallel": estimate * 1.5,
        },
    }


class TestWireV2Stats:
    """Round-trip properties for the v2 stats block (planner included)."""

    @pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
    @settings(max_examples=25, deadline=None)
    @given(
        counts=st.lists(st.integers(0, 2**31 - 1), min_size=7, max_size=7),
        engine=st.sampled_from(["serial", "batched", "parallel", "auto"]),
        source=st.sampled_from(["default", "hint", "override"]),
        selected=st.sampled_from(
            ["serial", "batched", "parallel", "batched+parallel"]
        ),
        pool_generation=st.integers(0, 100),
        worker_restarts=st.integers(0, 100),
        planner_sides=st.lists(
            st.tuples(
                st.sampled_from(["serial", "batched", "parallel"]),
                st.integers(0, 10**6),
                st.floats(
                    min_value=0.0, max_value=1e6,
                    allow_nan=False, allow_infinity=False,
                ),
            ),
            min_size=0, max_size=2,
        ),
        n_pairs=st.integers(0, 5),
    )
    def test_stats_round_trip_property(
        self, counts, engine, source, selected, pool_generation,
        worker_restarts, planner_sides, n_pairs,
    ):
        stats = ServerStats(
            candidates_left=counts[0],
            candidates_right=counts[1],
            decryptions=counts[2],
            probes=counts[3],
            comparisons=counts[4],
            matches=counts[5],
            engine=engine,
            batches=counts[6] % 1000,
            max_batch_size=counts[6] % 64,
            workers=1 + counts[6] % 8,
            miller_loops=counts[2],
            final_exponentiations=counts[3],
            engine_source=source,
            engine_selected=selected,
            planner=(
                [_planner_record(*side) for side in planner_sides] or None
            ),
            pool_generation=pool_generation,
            worker_restarts=worker_restarts,
        )
        result = EncryptedJoinResult(
            left_table="L",
            right_table="R",
            index_pairs=[(i, i + 1) for i in range(n_pairs)],
            left_payloads=[b"l%d" % i for i in range(n_pairs)],
            right_payloads=[b"r%d" % i for i in range(n_pairs)],
            stats=stats,
        )
        decoded = decode_join_result(encode_join_result(result))
        assert decoded.stats == stats
        assert decoded.index_pairs == result.index_pairs
        assert decoded.left_payloads == result.left_payloads
        assert decoded.right_payloads == result.right_payloads

    def test_unknown_future_stats_fields_ignored(self):
        """A newer minor revision may add stats keys; we must not crash."""
        result = EncryptedJoinResult(
            left_table="L", right_table="R", index_pairs=[],
            left_payloads=[], right_payloads=[], stats=ServerStats(),
        )
        blob = bytearray(encode_join_result(result))
        # Re-encode with an extra stats key spliced into the header JSON.
        import json
        import struct

        magic_version = bytes(blob[:9])
        header_length = struct.unpack(">I", bytes(blob[9:13]))[0]
        header = json.loads(bytes(blob[13:13 + header_length]))
        header["stats"]["from_the_future"] = 42
        body = bytes(blob[13 + header_length:])
        new_header = json.dumps(header, sort_keys=True).encode("utf-8")
        patched = (
            magic_version
            + struct.pack(">I", len(new_header)) + new_header + body
        )
        decoded = decode_join_result(patched)
        assert decoded.stats == ServerStats()


class TestWireV1BackwardCompat:
    """Version-1 payloads (pre-engine-fields) must still decode."""

    def _v1_query_bytes(self, client, encrypted_query) -> bytes:
        backend = client.scheme.backend
        writer = Writer()
        body = Writer()
        for token in (encrypted_query.left_token, encrypted_query.right_token):
            write_element_vector(
                body,
                [backend.encode_g1(e) for e in token.elements],
                backend.g1_element_size,
            )
        header = {
            "query_id": encrypted_query.query_id,
            "left_table": encrypted_query.left_table,
            "right_table": encrypted_query.right_table,
            "backend": backend.name,
            "g1_element_size": backend.g1_element_size,
            "left_prefilter_columns": None,
            "right_prefilter_columns": None,
            # v1 had no "engine_hint" key.
        }
        write_header(writer, b"RPROJQRY", 1, header)
        writer.raw(body.getvalue())
        return writer.getvalue()

    def test_v1_query_decodes_and_executes(self):
        client, enc_left, enc_right = _fixture(seed=13)
        server = SecureJoinServer(client.params)
        server.store(enc_left)
        server.store(enc_right)
        query = JoinQuery.build("L", "R", on=("k", "k"))
        encrypted_query = client.create_query(query)
        v1_blob = self._v1_query_bytes(client, encrypted_query)

        decoded = decode_join_query(v1_blob, client.scheme.backend)
        assert decoded.engine_hint is None
        assert decoded.left_token == encrypted_query.left_token
        result = server.execute_join(decoded)
        assert sorted(result.index_pairs) == [(0, 0), (2, 0)]

    def test_v1_result_decodes_with_default_engine_stats(self):
        writer = Writer()
        header = {
            "left_table": "L",
            "right_table": "R",
            "n_pairs": 1,
            # The v1 stats block: no engine fields at all.
            "stats": {
                "candidates_left": 3,
                "candidates_right": 2,
                "decryptions": 5,
                "probes": 2,
                "comparisons": 3,
                "matches": 1,
            },
        }
        write_header(writer, b"RPROJRES", 1, header)
        writer.u32(0).u32(0)
        writer.blob(b"left-payload")
        writer.blob(b"right-payload")

        decoded = decode_join_result(writer.getvalue())
        assert decoded.index_pairs == [(0, 0)]
        assert decoded.stats.decryptions == 5
        # Engine fields take their dataclass defaults.
        assert decoded.stats.engine == "batched"
        assert decoded.stats.engine_source == "default"
        assert decoded.stats.planner is None
        assert decoded.stats.pool_generation == 0

    def test_version_zero_and_future_versions_rejected(self):
        for bad_version in (0, wire_module._VERSION + 1):
            writer = Writer()
            write_header(
                writer, b"RPROJRES", bad_version,
                {"left_table": "L", "right_table": "R", "n_pairs": 0,
                 "stats": {}},
            )
            with pytest.raises(SchemeError):
                decode_join_result(writer.getvalue())
