"""Unit tests for the BN254 curve groups G1 and G2."""

from __future__ import annotations

import random

import pytest

from repro.crypto.curve import G1Point, G2Point, TWIST_B, embed_g1, untwist
from repro.crypto.field import Fp2, Fp12
from repro.crypto.numtheory import naf_digits
from repro.crypto.params import CURVE_ORDER
from repro.errors import CurveError, FieldError

_rng = random.Random(7)


class TestG1:
    def test_generator_on_curve(self):
        g = G1Point.generator()
        assert not g.is_infinity()

    def test_invalid_point_rejected(self):
        with pytest.raises(CurveError):
            G1Point(1, 3)

    def test_identity_laws(self):
        g = G1Point.generator()
        inf = G1Point.infinity()
        assert g + inf == g
        assert inf + g == g
        assert inf + inf == inf

    def test_inverse(self):
        g = G1Point.generator()
        assert (g + (-g)).is_infinity()

    def test_double_matches_add(self):
        g = G1Point.generator()
        assert g.double() == g + g

    def test_associativity(self):
        g = G1Point.generator()
        a, b, c = g * 3, g * 5, g * 11
        assert (a + b) + c == a + (b + c)

    def test_scalar_mul_distributes(self):
        g = G1Point.generator()
        assert g * 7 + g * 9 == g * 16

    def test_order(self):
        g = G1Point.generator()
        assert (g * CURVE_ORDER).is_infinity()
        assert g * (CURVE_ORDER + 1) == g

    def test_scalar_zero(self):
        g = G1Point.generator()
        assert (g * 0).is_infinity()

    def test_random_scalar_round_trip(self):
        g = G1Point.generator()
        k = _rng.randrange(1, CURVE_ORDER)
        assert g * k + g * (CURVE_ORDER - k) == G1Point.infinity()

    def test_to_bytes_distinct(self):
        g = G1Point.generator()
        assert g.to_bytes() != (g * 2).to_bytes()
        assert len(g.to_bytes()) == 64

    def test_hashable(self):
        g = G1Point.generator()
        assert len({g, g * 1}) == 1


class TestG2:
    def test_generator_on_twist(self):
        g = G2Point.generator()
        assert not g.is_infinity()

    def test_generator_in_subgroup(self):
        assert G2Point.generator().is_in_subgroup()

    def test_twist_b_value(self):
        # b' = 3/xi must satisfy the generator equation, checked in ctor.
        assert TWIST_B == Fp2(3) * Fp2(9, 1).inverse()

    def test_invalid_point_rejected(self):
        with pytest.raises(CurveError):
            G2Point(Fp2(1, 0), Fp2(1, 0))

    def test_group_laws(self):
        g = G2Point.generator()
        assert g.double() == g + g
        assert (g + (-g)).is_infinity()
        a, b, c = g * 2, g * 3, g * 5
        assert (a + b) + c == a + (b + c)

    def test_order(self):
        g = G2Point.generator()
        assert (g * CURVE_ORDER).is_infinity()

    def test_scalar_mul_distributes(self):
        g = G2Point.generator()
        assert g * 4 + g * 6 == g * 10


class TestUntwist:
    def test_untwist_lands_on_fp12_curve(self):
        """psi(Q) must satisfy y^2 = x^3 + 3 over Fp12."""
        q = G2Point.generator() * 5
        x, y = untwist(q)
        assert y.square() == x.square() * x + Fp12.from_int(3)

    def test_untwist_infinity_raises(self):
        with pytest.raises(CurveError):
            untwist(G2Point.infinity())

    def test_embed_g1_on_curve(self):
        p = G1Point.generator() * 3
        x, y = embed_g1(p)
        assert y.square() == x.square() * x + Fp12.from_int(3)

    def test_untwist_is_homomorphic_on_doubling(self):
        """psi(2Q) equals doubling psi(Q) on the Fp12 curve."""
        from repro.crypto.pairing import _double

        q = G2Point.generator()
        assert untwist(q.double()) == _double(untwist(q))


class TestNAFScalarMul:
    """The NAF ladder: same results, pinned-lower addition count."""

    def test_naf_digits_reconstruct_and_are_non_adjacent(self):
        for _ in range(100):
            k = _rng.randrange(0, CURVE_ORDER)
            digits = naf_digits(k)
            assert sum(d << i for i, d in enumerate(digits)) == k
            assert all(d in (-1, 0, 1) for d in digits)
            assert all(
                not (digits[i] and digits[i + 1])
                for i in range(len(digits) - 1)
            )

    def test_naf_rejects_negative(self):
        with pytest.raises(FieldError):
            naf_digits(-1)

    def test_matches_plain_double_and_add(self):
        def naive(point, k):
            result = type(point).infinity()
            addend = point
            while k:
                if k & 1:
                    result = result + addend
                addend = addend.double()
                k >>= 1
            return result

        g1, g2 = G1Point.generator(), G2Point.generator()
        for k in (0, 1, 2, 3, CURVE_ORDER - 1, CURVE_ORDER,
                  _rng.randrange(CURVE_ORDER)):
            assert g1.scalar_mul(k) == naive(g1, k % CURVE_ORDER)
            assert g2.scalar_mul(k) == naive(g2, k % CURVE_ORDER)

    def test_addition_count_regression(self, monkeypatch):
        """scalar_mul must perform exactly one addition per nonzero NAF
        digit plus one doubling per digit — strictly fewer additions
        than the binary ladder's Hamming-weight count."""
        adds = {"n": 0}
        doubles = {"n": 0}
        real_add = G1Point.__add__
        real_double = G1Point.double

        def counting_add(self, other):
            adds["n"] += 1
            return real_add(self, other)

        def counting_double(self):
            doubles["n"] += 1
            return real_double(self)

        monkeypatch.setattr(G1Point, "__add__", counting_add)
        monkeypatch.setattr(G1Point, "double", counting_double)
        k = _rng.randrange(1, CURVE_ORDER)
        digits = naf_digits(k)
        naf_weight = sum(1 for d in digits if d)
        G1Point.generator().scalar_mul(k)
        assert adds["n"] == naf_weight
        assert doubles["n"] == len(digits)
        assert naf_weight < bin(k).count("1") or naf_weight <= 2
