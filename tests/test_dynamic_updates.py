"""Tests for dynamic inserts and deletes on encrypted tables."""

from __future__ import annotations

import random

import pytest

from repro.core.client import SecureJoinClient
from repro.core.server import SecureJoinServer
from repro.db.query import JoinQuery
from repro.db.schema import Schema
from repro.db.table import Table
from repro.errors import QueryError, SchemaError


def _setup(enable_prefilter=False, seed=31):
    left = Table("L", Schema.of(("k", "int"), ("c", "str")),
                 [(1, "x"), (2, "y")])
    right = Table("R", Schema.of(("k", "int"), ("d", "str")),
                  [(1, "p"), (2, "q")])
    client = SecureJoinClient.for_tables(
        [(left, "k"), (right, "k")],
        in_clause_limit=2,
        rng=random.Random(seed),
        enable_prefilter=enable_prefilter,
    )
    server = SecureJoinServer(client.params)
    server.store(client.encrypt_table(left, "k"))
    server.store(client.encrypt_table(right, "k"))
    return client, server


def _join_pairs(client, server, **where):
    query = JoinQuery.build("L", "R", on=("k", "k"), **where)
    return sorted(
        server.execute_join(client.create_query(query)).index_pairs
    )


class TestInsert:
    def test_inserted_row_joins(self):
        client, server = _setup()
        assert _join_pairs(client, server) == [(0, 0), (1, 1)]
        ciphertext, payload, tags = client.encrypt_row_for("R", (1, "r"))
        index = server.insert_row("R", ciphertext, payload, tags)
        assert index == 2
        assert _join_pairs(client, server) == [(0, 0), (0, 2), (1, 1)]

    def test_inserted_row_decrypts_in_results(self):
        client, server = _setup()
        ciphertext, payload, tags = client.encrypt_row_for("L", (3, "new"))
        server.insert_row("L", ciphertext, payload, tags)
        ciphertext, payload, tags = client.encrypt_row_for("R", (3, "match"))
        server.insert_row("R", ciphertext, payload, tags)
        query = JoinQuery.build("L", "R", on=("k", "k"))
        result = server.execute_join(client.create_query(query))
        decrypted = client.decrypt_result(result)
        assert (3, "new", 3, "match") in decrypted.table.rows()

    def test_insert_with_prefilter_updates_index(self):
        client, server = _setup(enable_prefilter=True)
        ciphertext, payload, tags = client.encrypt_row_for("R", (1, "p"))
        server.insert_row("R", ciphertext, payload, tags)
        pairs = _join_pairs(client, server, where_right={"d": ["p"]})
        assert pairs == [(0, 0), (0, 2)]

    def test_insert_missing_tags_rejected(self):
        client, server = _setup(enable_prefilter=True)
        ciphertext, payload, _ = client.encrypt_row_for("R", (1, "p"))
        with pytest.raises(QueryError):
            server.insert_row("R", ciphertext, payload, None)

    def test_insert_invalid_row_rejected(self):
        client, server = _setup()
        with pytest.raises(SchemaError):
            client.encrypt_row_for("R", ("not-an-int", "p"))

    def test_insert_into_unknown_table(self):
        client, server = _setup()
        ciphertext, payload, tags = client.encrypt_row_for("R", (1, "r"))
        with pytest.raises(QueryError):
            server.insert_row("Ghost", ciphertext, payload, tags)


class TestDelete:
    def test_deleted_row_stops_joining(self):
        client, server = _setup()
        server.delete_rows("R", [0])
        assert _join_pairs(client, server) == [(1, 1)]

    def test_delete_then_insert(self):
        client, server = _setup()
        server.delete_rows("L", [0])
        ciphertext, payload, tags = client.encrypt_row_for("L", (1, "again"))
        server.insert_row("L", ciphertext, payload, tags)
        assert _join_pairs(client, server) == [(1, 1), (2, 0)]

    def test_delete_out_of_range(self):
        client, server = _setup()
        with pytest.raises(QueryError):
            server.delete_rows("L", [99])

    def test_delete_reduces_decryptions(self):
        client, server = _setup()
        query = JoinQuery.build("L", "R", on=("k", "k"))
        before = server.execute_join(client.create_query(query))
        server.delete_rows("R", [0, 1])
        after = server.execute_join(client.create_query(query))
        assert after.stats.decryptions < before.stats.decryptions
        assert after.stats.matches == 0

    def test_delete_idempotent(self):
        client, server = _setup()
        server.delete_rows("R", [0])
        server.delete_rows("R", [0])
        assert _join_pairs(client, server) == [(1, 1)]
