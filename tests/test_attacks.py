"""Tests for the frequency-analysis attack (Naveed et al. style).

The quantitative claim behind the paper's motivation: the attack
recovers most of a skewed join column from deterministic-encryption
leakage, and near nothing from Secure Join's leakage.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines import DeterministicScheme, SecureJoinAdapter
from repro.baselines.api import make_pair
from repro.db.query import JoinQuery
from repro.db.schema import Schema
from repro.db.table import Table
from repro.leakage.attacks import (
    attack_scheme_view,
    auxiliary_from_tables,
    equivalence_classes,
    frequency_attack,
    join_column_truth,
    score_attack,
)


def _zipfian_tables(seed=1, n_left=40, n_right=120):
    """Two tables whose join column follows a skewed distribution."""
    rng = random.Random(seed)
    # Zipf-ish: value v appears with weight ~ 1/rank.
    values = [1, 1, 1, 1, 1, 1, 2, 2, 2, 3, 3, 4, 5, 6]
    left = Table("L", Schema.of(("dept", "int"), ("tag", "str")),
                 [(rng.choice(values), f"l{i}") for i in range(n_left)])
    right = Table("R", Schema.of(("dept", "int"), ("tag", "str")),
                  [(rng.choice(values), f"r{i}") for i in range(n_right)])
    return [(left, "dept"), (right, "dept")]


class TestPrimitives:
    def test_equivalence_classes_with_singletons(self):
        universe = [("T", 0), ("T", 1), ("T", 2)]
        pairs = {make_pair(("T", 0), ("T", 1))}
        classes = equivalence_classes(pairs, universe)
        sizes = sorted(len(c) for c in classes)
        assert sizes == [1, 2]

    def test_frequency_attack_ranks(self):
        classes = [
            [("T", 0), ("T", 1), ("T", 2)],   # largest -> most common value
            [("T", 3)],
        ]
        histogram = {"common": 3, "rare": 1}
        guesses = frequency_attack(classes, histogram)
        assert guesses[("T", 0)] == "common"
        assert guesses[("T", 3)] == "rare"

    def test_score_attack(self):
        guesses = {("T", 0): "a", ("T", 1): "b"}
        truth = {("T", 0): "a", ("T", 1): "c"}
        result = score_attack(guesses, truth)
        assert result.correct == 1
        assert result.total == 2
        assert result.recovery_rate == 0.5

    def test_truth_and_auxiliary(self):
        tables = _zipfian_tables()
        truth = join_column_truth(tables)
        auxiliary = auxiliary_from_tables(tables)
        assert len(truth) == 160
        assert sum(auxiliary.values()) == 160


class TestAttackOnSchemes:
    def test_deterministic_encryption_breaks(self):
        """With upload-time leakage the attack recovers most rows."""
        tables = _zipfian_tables()
        scheme = DeterministicScheme()
        scheme.upload(tables)
        result = attack_scheme_view(scheme.revealed_pairs(), tables)
        assert result.recovery_rate > 0.6

    def test_securejoin_resists_before_queries(self):
        tables = _zipfian_tables()
        scheme = SecureJoinAdapter(rng=random.Random(2))
        scheme.upload(tables)
        result = attack_scheme_view(scheme.revealed_pairs(), tables)
        # Nothing revealed: every class is a singleton; at best the
        # attacker gets lucky on a handful of rows.
        assert result.recovery_rate < 0.15

    def test_securejoin_resists_after_selective_queries(self):
        tables = _zipfian_tables()
        scheme = SecureJoinAdapter(rng=random.Random(3))
        scheme.upload(tables)
        scheme.run_query(JoinQuery.build(
            "L", "R", on=("dept", "dept"),
            where_left={"tag": ["l0", "l1"]},
            where_right={"tag": ["r0", "r1"]},
        ))
        det = DeterministicScheme()
        det.upload(tables)
        det_result = attack_scheme_view(det.revealed_pairs(), tables)
        sj_result = attack_scheme_view(scheme.revealed_pairs(), tables)
        assert sj_result.recovery_rate < det_result.recovery_rate / 2

    def test_more_queries_more_leakage_monotone(self):
        """Recovery can only grow with queries, but stays below DET."""
        tables = _zipfian_tables()
        scheme = SecureJoinAdapter(rng=random.Random(4))
        scheme.upload(tables)
        rates = []
        for i in range(3):
            scheme.run_query(JoinQuery.build(
                "L", "R", on=("dept", "dept"),
                where_left={"tag": [f"l{2 * i}", f"l{2 * i + 1}"]},
            ))
            rates.append(
                attack_scheme_view(scheme.revealed_pairs(), tables).recovery_rate
            )
        assert rates == sorted(rates)
        det = DeterministicScheme()
        det.upload(tables)
        det_rate = attack_scheme_view(det.revealed_pairs(), tables).recovery_rate
        assert rates[-1] <= det_rate
