"""Sharded store + scatter-gather coordination: the proof suite.

The contracts under test:

- **determinism** — the partitioner is a pure function of stored bytes
  (seeded blake2b), identical across processes and interpreter runs
  regardless of ``PYTHONHASHSEED``; golden values are pinned;
- **explicitness** — repartitioning never happens silently: layout
  mismatches (wrong shard count, mixed seeds, duplicate indices) are
  errors, not triggers;
- **byte-identity** — the merged scatter-gather stream reassembles the
  *exact* single-store ``execute_join`` result (pairs and payloads) for
  any shard count, any skew, any engine, local or remote shards;
- **fault tolerance** — a SIGKILLed worker inside one shard's pool is
  rescued invisibly (result unchanged); a whole shard dying mid-stream
  raises :class:`~repro.errors.ShardUnavailableError` naming the shard,
  with every surviving shard's admissions released and flat process/FD
  counts afterwards.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import random
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.core.client import SecureJoinClient
from repro.core.server import SecureJoinServer
from repro.crypto.backend import get_backend
from repro.db.query import JoinQuery
from repro.db.schema import Schema
from repro.db.table import Table
from repro.errors import SchemeError, ShardUnavailableError
from repro.net import RemoteShard, ShardServiceServer
from repro.shard import (
    DEFAULT_SEED,
    LocalShard,
    ShardCoordinator,
    ShardDescriptor,
    partition_rows,
    partition_table,
    shard_of_bytes,
    shard_skew,
    validate_shard_layout,
)

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is an optional dev dep
    HAVE_HYPOTHESIS = False

#: Engines are passed to the coordinator by *name*: engine instances
#: stay bound to the first service they run on, so each shard's server
#: must resolve its own instance against its own pool.
ENGINE_NAMES = ("serial", "batched", "parallel")


def _alive_children() -> int:
    return len(multiprocessing.active_children())


def _open_fds() -> int:
    return len(os.listdir("/proc/self/fd")) if os.path.isdir(
        "/proc/self/fd"
    ) else -1


def _fixture(left_keys, right_keys, seed=7):
    """Plaintext tables -> (client, backend, [enc_left, enc_right], ref).

    ``ref`` is the single-store ``execute_join`` result the sharded
    runs must reproduce byte-for-byte.
    """
    left = Table(
        "L", Schema.of(("k", "int"), ("a", "str")),
        [(k, f"a{i}") for i, k in enumerate(left_keys)],
    )
    right = Table(
        "R", Schema.of(("k", "int"), ("b", "str")),
        [(k, f"b{i}") for i, k in enumerate(right_keys)],
    )
    client = SecureJoinClient.for_tables(
        [(left, "k"), (right, "k")], in_clause_limit=1,
        rng=random.Random(seed),
    )
    tables = [client.encrypt_table(left, "k"), client.encrypt_table(right, "k")]
    server = SecureJoinServer(client.params, workers=2)
    for table in tables:
        server.store(table)
    ref = server.execute_join(_query(client))
    backend = server.scheme.backend
    server.close()
    return client, backend, tables, ref


def _query(client, **kwargs):
    return client.create_query(
        JoinQuery.build("L", "R", on=("k", "k")), **kwargs
    )


def _sharded(client, backend, tables, n_shards, assignments=None, workers=2):
    """Build ``n_shards`` local shards holding the partitioned tables."""
    shards = [
        LocalShard(client.params, workers=workers, name=f"shard-{i}")
        for i in range(n_shards)
    ]
    for position, table in enumerate(tables):
        assignment = assignments[position] if assignments else None
        for piece in partition_table(
            table, backend, n_shards, assignment=assignment
        ):
            shards[piece.shard.shard_index].store(piece)
    return shards


def _drain(generator):
    batches = []
    while True:
        try:
            batches.append(next(generator))
        except StopIteration as stop:
            return batches, stop.value


def _assert_identical(result, ref, shards):
    assert result.index_pairs == ref.index_pairs
    assert result.left_payloads == ref.left_payloads
    assert result.right_payloads == ref.right_payloads
    assert result.stats.shards == shards
    assert result.stats.candidates_left == ref.stats.candidates_left
    assert result.stats.candidates_right == ref.stats.candidates_right
    assert result.stats.matches == ref.stats.matches


# -- partitioner determinism ----------------------------------------------


class TestPartitionerDeterminism:
    def test_golden_values_pinned(self):
        """The placement function is part of the on-disk/wire contract:
        these exact values must hold on every platform and forever
        (changing them silently re-homes every stored row)."""
        expected = {
            b"row-0": [1, 2, 1, 5],
            b"row-1": [0, 1, 0, 5],
            b"hello world": [1, 2, 1, 6],
            b"\x00" * 16: [0, 2, 2, 3],
        }
        for key, placements in expected.items():
            assert [
                shard_of_bytes(key, n, DEFAULT_SEED) for n in (2, 3, 4, 7)
            ] == placements
        # The seed really keys the hash.
        assert shard_of_bytes(b"row-0", 4, b"other-seed") == 0

    def test_deterministic_across_interpreter_runs(self):
        """Same bytes -> same shard in a fresh interpreter with a
        different PYTHONHASHSEED — the partitioner must not lean on
        ``hash()`` anywhere (that is the bug class this pins)."""
        script = (
            "import json, sys\n"
            "from repro.shard import shard_of_bytes, DEFAULT_SEED\n"
            "keys = [b'row-%d' % i for i in range(32)]\n"
            "print(json.dumps("
            "[shard_of_bytes(k, 5, DEFAULT_SEED) for k in keys]))\n"
        )
        runs = []
        for hash_seed in ("0", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in ("src", env.get("PYTHONPATH", "")) if p
            )
            output = subprocess.run(
                [sys.executable, "-c", script],
                env=env, capture_output=True, text=True, check=True,
            ).stdout
            runs.append(json.loads(output))
        in_process = [
            shard_of_bytes(b"row-%d" % i, 5, DEFAULT_SEED) for i in range(32)
        ]
        assert runs[0] == runs[1] == in_process

    def test_row_assignment_deterministic_and_stable(self):
        client, backend, tables, _ = _fixture(range(12), range(12))
        first = partition_rows(tables[0], backend, 4)
        assert partition_rows(tables[0], backend, 4) == first
        assert all(0 <= shard < 4 for shard in first)

    def test_layout_validation_rejects_hostile_values(self):
        for count in (0, -1, 1025, True, "2", None, 2.0):
            with pytest.raises(SchemeError):
                validate_shard_layout(0, count, DEFAULT_SEED)
        for index in (-1, 2, True, "0"):
            with pytest.raises(SchemeError):
                validate_shard_layout(index, 2, DEFAULT_SEED)
        for seed in (b"", b"x" * 65, "not-bytes", None):
            with pytest.raises(SchemeError):
                validate_shard_layout(0, 2, seed)

    def test_descriptor_requires_monotonic_indices(self):
        for bad in ((3, 3), (2, 1), (-1, 0), (0, "1")):
            with pytest.raises(SchemeError):
                ShardDescriptor(0, 2, DEFAULT_SEED, bad)
        ShardDescriptor(0, 2, DEFAULT_SEED, (0, 5, 9))

    def test_shard_skew(self):
        assert shard_skew([]) == 1.0
        assert shard_skew([5, 5]) == 1.0
        assert shard_skew([0, 0]) == 1.0
        assert shard_skew([9, 1, 2]) == pytest.approx(2.25)


# -- explicit repartitioning ----------------------------------------------


class TestExplicitRepartitioning:
    def test_unsharded_table_rejected_by_shard(self):
        client, backend, tables, _ = _fixture([1, 2], [2, 3])
        shard = LocalShard(client.params)
        with pytest.raises(SchemeError, match="partition_table"):
            shard.store(tables[0])
        shard.close()

    def test_mixed_layouts_rejected_by_shard(self):
        client, backend, tables, _ = _fixture([1, 2, 3], [2, 3, 4])
        two = partition_table(tables[0], backend, 2)
        three = partition_table(tables[1], backend, 3)
        with LocalShard(client.params) as shard:
            shard.store(two[0])
            with pytest.raises(SchemeError, match="repartition"):
                shard.store(three[0])

    def test_shard_count_change_is_never_silent(self):
        """Tables partitioned for 3 shards refuse to serve under a
        2-shard coordinator: the caller must repartition."""
        client, backend, tables, _ = _fixture([1, 2, 3], [2, 3, 4])
        shards = [
            LocalShard(client.params, name=f"s{i}") for i in range(2)
        ]
        for table in tables:
            pieces = partition_table(table, backend, 3)
            shards[0].store(pieces[0])
            shards[1].store(pieces[1])
        with pytest.raises(SchemeError, match="repartition"):
            ShardCoordinator(shards)
        for shard in shards:
            shard.close()

    def test_duplicate_shard_index_rejected(self):
        client, backend, tables, _ = _fixture([1, 2], [2, 3])
        shards = [
            LocalShard(client.params, name=f"s{i}") for i in range(2)
        ]
        for shard in shards:
            for table in tables:
                shard.store(partition_table(table, backend, 2)[0])
        with pytest.raises(SchemeError, match="same shard index"):
            ShardCoordinator(shards)
        for shard in shards:
            shard.close()

    def test_assignment_override_validated(self):
        client, backend, tables, _ = _fixture([1, 2, 3], [2, 3, 4])
        with pytest.raises(SchemeError, match="assignment names"):
            partition_table(tables[0], backend, 2, assignment=[0])
        with pytest.raises(SchemeError, match="outside"):
            partition_table(tables[0], backend, 2, assignment=[0, 2, 0])
        pieces = partition_table(tables[0], backend, 2, assignment=[1, 1, 1])
        assert len(pieces[0].ciphertexts) == 0
        assert pieces[1].shard.global_indices == (0, 1, 2)


# -- scatter-gather byte-identity -----------------------------------------


class TestScatterGather:
    def test_matches_single_store_every_engine_and_count(self):
        client, backend, tables, ref = _fixture(
            [i % 5 for i in range(14)], [i % 5 for i in range(11)]
        )
        for n_shards in (1, 2, 3):
            shards = _sharded(client, backend, tables, n_shards)
            with ShardCoordinator(shards) as coordinator:
                for engine in (None,) + ENGINE_NAMES:
                    result = coordinator.execute_join(
                        _query(client), engine=engine
                    )
                    _assert_identical(result, ref, n_shards)

    def test_streamed_batches_reassemble_canonically(self):
        client, backend, tables, ref = _fixture(
            [i % 4 for i in range(12)], [i % 4 for i in range(12)]
        )
        shards = _sharded(client, backend, tables, 3)
        with ShardCoordinator(shards) as coordinator:
            batches, result = _drain(coordinator.stream_join(_query(client)))
            _assert_identical(result, ref, 3)
            streamed = [
                pair for batch in batches for pair in batch.index_pairs
            ]
            # Discovery order differs from canonical; the set must not.
            assert sorted(streamed) == sorted(ref.index_pairs)
            assert len(streamed) == len(set(streamed))
            for batch in batches:
                assert len(batch.index_pairs) == len(batch.left_payloads)
                assert len(batch.index_pairs) == len(batch.right_payloads)

    def test_skewed_partition_still_identical(self):
        """All rows crammed onto one shard of two: maximal skew, same
        bytes out, and the skew shows up in the stats."""
        client, backend, tables, ref = _fixture(
            [i % 3 for i in range(10)], [i % 3 for i in range(8)]
        )
        assignments = [[1] * 10, [1] * 8]
        shards = _sharded(client, backend, tables, 2, assignments=assignments)
        with ShardCoordinator(shards) as coordinator:
            result = coordinator.execute_join(_query(client))
            _assert_identical(result, ref, 2)
            assert result.stats.shard_skew == pytest.approx(2.0)
            scatter = [
                record for record in result.stats.planner
                if record.get("stage") == "scatter"
            ]
            assert scatter and scatter[0]["rows_per_shard"] == [0, 18]

    def test_abandoned_stream_releases_every_shard(self):
        client, backend, tables, _ = _fixture(
            [i % 2 for i in range(30)], [i % 2 for i in range(30)]
        )
        shards = _sharded(client, backend, tables, 2)
        with ShardCoordinator(shards) as coordinator:
            stream = coordinator.stream_join(
                _query(client), engine="parallel"
            )
            next(stream)  # at least one batch in flight
            stream.close()
            for shard in shards:
                assert shard.server.execution_service.active_sides == 0

    def test_observations_cover_all_shards(self):
        """The coordinator's adversary view matches the single store's:
        it sees every handle, under global row indices."""
        client, backend, tables, _ = _fixture([1, 2, 3, 4], [2, 3, 4, 5])
        server = SecureJoinServer(client.params)
        for table in tables:
            server.store(table)
        query = _query(client)
        server.execute_join(query)
        single_view = server.observations[-1].handles
        server.close()
        shards = _sharded(client, backend, tables, 2)
        with ShardCoordinator(shards) as coordinator:
            coordinator.execute_join(query)
            assert coordinator.observations[-1].handles == single_view

    @pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
    @settings(max_examples=10, deadline=None)
    @given(
        left_keys=st.lists(st.integers(0, 4), min_size=0, max_size=10),
        right_keys=st.lists(st.integers(0, 4), min_size=0, max_size=10),
        n_shards=st.integers(1, 4),
        engine=st.sampled_from((None,) + ENGINE_NAMES),
        data=st.data(),
    )
    def test_property_identical_for_any_partition(
        self, left_keys, right_keys, n_shards, engine, data
    ):
        """Hypothesis-drawn keys, shard counts, skews and engines: the
        scatter-gather result is always byte-identical to the single
        store — including under arbitrary (drawn) row placements."""
        client, backend, tables, ref = _fixture(left_keys, right_keys)
        assignments = [
            data.draw(st.lists(
                st.integers(0, n_shards - 1),
                min_size=len(table.ciphertexts),
                max_size=len(table.ciphertexts),
            ))
            for table in tables
        ]
        shards = _sharded(
            client, backend, tables, n_shards, assignments=assignments
        )
        with ShardCoordinator(shards) as coordinator:
            result = coordinator.execute_join(_query(client), engine=engine)
            _assert_identical(result, ref, n_shards)


# -- fault injection ------------------------------------------------------


class TestFaultInjection:
    def test_worker_sigkill_mid_scatter_is_rescued(self):
        """SIGKILL one shard's pool worker while the scatter is in
        flight: the shard's own rescue respawns it, the merged result is
        byte-identical, and the restart is visible in the stats."""
        client, backend, tables, ref = _fixture(
            [i % 6 for i in range(72)], [i % 6 for i in range(72)]
        )
        shards = _sharded(client, backend, tables, 2)
        victim_service = shards[0].server.execution_service
        stop = threading.Event()

        def killer():
            while not stop.is_set():
                pids = victim_service.worker_pids()
                if pids:
                    try:
                        os.kill(pids[0], signal.SIGKILL)
                    except ProcessLookupError:  # pragma: no cover
                        pass
                    return
                time.sleep(0.001)

        thread = threading.Thread(target=killer)
        with ShardCoordinator(shards) as coordinator:
            thread.start()
            try:
                result = coordinator.execute_join(
                    _query(client), engine="parallel"
                )
            finally:
                stop.set()
                thread.join()
            _assert_identical(result, ref, 2)
            assert result.stats.worker_restarts >= 1

    def test_shard_death_mid_stream_raises_and_releases(self):
        """Hard-kill one whole shard's pool mid-stream: the consumer
        gets a ShardUnavailableError naming the shard, the surviving
        shard's admissions are released, and no process or FD leaks."""
        children_before = _alive_children()
        fds_before = _open_fds()
        # Shard 1 gets nearly all rows, so after the first merged batch
        # its streams are guaranteed to still be in flight.
        left_n, right_n = 160, 160
        client, backend, tables, _ = _fixture(
            [i % 8 for i in range(left_n)], [i % 8 for i in range(right_n)]
        )
        assignments = [
            [0 if i < 4 else 1 for i in range(left_n)],
            [0 if i < 4 else 1 for i in range(right_n)],
        ]
        shards = _sharded(client, backend, tables, 2, assignments=assignments)
        coordinator = ShardCoordinator(shards)
        stream = coordinator.stream_join(_query(client), engine="parallel")
        next(stream)
        shards[1].server.execution_service.close()
        with pytest.raises(ShardUnavailableError, match="shard 1"):
            while True:
                next(stream)
        assert shards[0].server.execution_service.active_sides == 0
        coordinator.close()
        assert _alive_children() == children_before
        assert _open_fds() == fds_before

    def test_unavailable_error_is_not_raised_for_deadlines(self):
        """Deadline expiry is a property of the query, not shard death:
        it must surface as DeadlineError, untranslated."""
        from repro.errors import DeadlineError, QueryError

        assert issubclass(ShardUnavailableError, QueryError)
        assert not issubclass(DeadlineError, ShardUnavailableError)
        assert not issubclass(ShardUnavailableError, DeadlineError)


# -- remote shards --------------------------------------------------------


class TestRemoteShards:
    def test_mixed_local_and_remote_identical(self):
        client, backend, tables, ref = _fixture(
            [i % 4 for i in range(13)], [i % 4 for i in range(9)]
        )
        shards = _sharded(client, backend, tables, 2)
        service = ShardServiceServer(shards[1])
        host, port = service.start()
        remote = RemoteShard(host, port, backend, name="remote-1")
        try:
            with ShardCoordinator([shards[0], remote]) as coordinator:
                result = coordinator.execute_join(_query(client))
                _assert_identical(result, ref, 2)
                batches, streamed = _drain(
                    coordinator.stream_join(_query(client))
                )
                _assert_identical(streamed, ref, 2)
        finally:
            shards[0].close()
            service.shutdown()

    def test_remote_shard_unreachable_raises(self):
        client, backend, tables, _ = _fixture([1], [1])
        shards = _sharded(client, backend, tables, 2)
        # A bound-then-closed socket: connection refused, deterministic.
        import socket as socket_module

        probe = socket_module.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        remote = RemoteShard("127.0.0.1", dead_port, backend, name="gone")
        with ShardCoordinator([shards[0], remote]) as coordinator:
            with pytest.raises(ShardUnavailableError, match="unreachable"):
                coordinator.execute_join(_query(client))
            assert shards[0].server.execution_service.active_sides == 0
        shards[0].close()

    def test_remote_service_shutdown_mid_stream(self):
        """Cutting the shard service's sockets mid-stream surfaces as a
        ShardUnavailableError at the coordinator, and the local
        surviving shard releases its admissions."""
        left_n, right_n = 160, 160
        client, backend, tables, _ = _fixture(
            [i % 8 for i in range(left_n)], [i % 8 for i in range(right_n)]
        )
        assignments = [
            [0 if i < 4 else 1 for i in range(left_n)],
            [0 if i < 4 else 1 for i in range(right_n)],
        ]
        shards = _sharded(client, backend, tables, 2, assignments=assignments)
        service = ShardServiceServer(shards[1], engine="parallel")
        host, port = service.start()
        remote = RemoteShard(host, port, backend, name="doomed")
        coordinator = ShardCoordinator([shards[0], remote])
        stream = coordinator.stream_join(_query(client), engine="parallel")
        next(stream)
        service.shutdown(drain=False, timeout=0.0)
        with pytest.raises(ShardUnavailableError):
            while True:
                next(stream)
        assert shards[0].server.execution_service.active_sides == 0
        coordinator.close()
        shards[0].close()
