"""Correctness tests for the optimal-ate pairing.

These are the definitive checks for the whole crypto substrate: if
bilinearity and non-degeneracy hold, the tower, curve and Miller loop
are all consistent.
"""

from __future__ import annotations

import random

import pytest

from repro.crypto.curve import G1Point, G2Point
from repro.crypto.field import Fp12
from repro.crypto.pairing import final_exponentiation, miller_loop, multi_pairing, pairing
from repro.crypto.params import CURVE_ORDER

_rng = random.Random(99)


@pytest.fixture(scope="module")
def gt_generator():
    return pairing(G1Point.generator(), G2Point.generator())


class TestPairing:
    def test_non_degenerate(self, gt_generator):
        assert not gt_generator.is_one()

    def test_gt_has_order_r(self, gt_generator):
        assert gt_generator.pow(CURVE_ORDER).is_one()
        assert not gt_generator.pow(CURVE_ORDER - 1).is_one()

    def test_bilinear_left(self, gt_generator):
        a = _rng.randrange(2, 10**6)
        lhs = pairing(G1Point.generator() * a, G2Point.generator())
        assert lhs == gt_generator.pow(a)

    def test_bilinear_right(self, gt_generator):
        b = _rng.randrange(2, 10**6)
        lhs = pairing(G1Point.generator(), G2Point.generator() * b)
        assert lhs == gt_generator.pow(b)

    def test_bilinear_both(self, gt_generator):
        a = _rng.randrange(2, 10**6)
        b = _rng.randrange(2, 10**6)
        lhs = pairing(G1Point.generator() * a, G2Point.generator() * b)
        assert lhs == gt_generator.pow(a * b % CURVE_ORDER)

    def test_large_scalars(self, gt_generator):
        a = _rng.randrange(CURVE_ORDER)
        lhs = pairing(G1Point.generator() * a, G2Point.generator())
        assert lhs == gt_generator.pow(a)

    def test_infinity_maps_to_one(self):
        assert pairing(G1Point.infinity(), G2Point.generator()).is_one()
        assert pairing(G1Point.generator(), G2Point.infinity()).is_one()

    def test_inverse_argument(self, gt_generator):
        lhs = pairing(-G1Point.generator(), G2Point.generator())
        assert lhs == gt_generator.pow(CURVE_ORDER - 1)
        assert lhs * gt_generator == Fp12.one()


class TestMultiPairing:
    def test_matches_product_of_pairings(self):
        pairs = [
            (G1Point.generator() * a, G2Point.generator() * b)
            for a, b in [(2, 3), (5, 7), (1, 11)]
        ]
        product = Fp12.one()
        for p, q in pairs:
            product = product * pairing(p, q)
        assert multi_pairing(pairs) == product

    def test_exponent_sums(self, gt_generator):
        # prod e(g1^ai, g2^bi) = gt^(sum ai*bi)
        coeffs = [(2, 9), (4, 1), (6, 5)]
        pairs = [
            (G1Point.generator() * a, G2Point.generator() * b) for a, b in coeffs
        ]
        expected = sum(a * b for a, b in coeffs) % CURVE_ORDER
        assert multi_pairing(pairs) == gt_generator.pow(expected)

    def test_empty_is_one(self):
        assert multi_pairing([]).is_one()

    def test_skips_infinity(self, gt_generator):
        pairs = [
            (G1Point.infinity(), G2Point.generator()),
            (G1Point.generator() * 3, G2Point.generator()),
        ]
        assert multi_pairing(pairs) == gt_generator.pow(3)


class TestFinalExponentiation:
    def test_kills_r_th_powers_structure(self):
        """FE output always has order dividing r."""
        f = miller_loop(G2Point.generator() * 2, G1Point.generator() * 3)
        out = final_exponentiation(f)
        assert out.pow(CURVE_ORDER).is_one()

    def test_degenerate_zero_raises(self):
        from repro.errors import PairingError

        with pytest.raises(PairingError):
            final_exponentiation(Fp12.zero())
