"""Unit tests for hashing, value encoding and keyed tags."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.hashing import (
    derive_key,
    encode_value,
    hash_bytes_to_zq,
    hash_to_zq,
    keyed_tag,
)
from repro.crypto.params import CURVE_ORDER


class TestEncodeValue:
    def test_type_tags_prevent_cross_type_collisions(self):
        assert encode_value(1) != encode_value("1")
        assert encode_value(True) != encode_value(1)
        assert encode_value(None) != encode_value("")
        assert encode_value(b"x") != encode_value("x")

    def test_deterministic(self):
        assert encode_value("hello") == encode_value("hello")

    def test_floats(self):
        assert encode_value(1.5) == encode_value(1.5)
        assert encode_value(1.5) != encode_value(2.5)

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            encode_value([1, 2])

    @given(st.integers(), st.integers())
    def test_int_injective(self, a, b):
        if a != b:
            assert encode_value(a) != encode_value(b)


class TestHashToZq:
    def test_in_range(self):
        h = hash_to_zq("custkey-42", CURVE_ORDER)
        assert 0 <= h < CURVE_ORDER

    def test_deterministic(self):
        assert hash_to_zq(42, CURVE_ORDER) == hash_to_zq(42, CURVE_ORDER)

    def test_distinct_inputs(self):
        assert hash_to_zq(1, CURVE_ORDER) != hash_to_zq(2, CURVE_ORDER)

    def test_domain_separation(self):
        assert hash_to_zq(1, CURVE_ORDER, b"a") != hash_to_zq(1, CURVE_ORDER, b"b")

    def test_small_modulus(self):
        values = {hash_to_zq(i, 17) for i in range(100)}
        assert values <= set(range(17))
        assert len(values) > 8

    def test_bytes_variant(self):
        assert hash_bytes_to_zq(b"k", CURVE_ORDER) != hash_bytes_to_zq(b"j", CURVE_ORDER)


class TestKeyedTag:
    def test_same_key_same_value(self):
        assert keyed_tag(b"k", "x") == keyed_tag(b"k", "x")

    def test_different_keys_unlinkable(self):
        assert keyed_tag(b"k1", "x") != keyed_tag(b"k2", "x")

    def test_different_values(self):
        assert keyed_tag(b"k", "x") != keyed_tag(b"k", "y")

    def test_domain_separation(self):
        assert keyed_tag(b"k", "x", b"d1") != keyed_tag(b"k", "x", b"d2")

    def test_length(self):
        assert len(keyed_tag(b"k", "x")) == 32


class TestDeriveKey:
    def test_distinct_labels(self):
        master = b"master-secret"
        assert derive_key(master, "join") != derive_key(master, "filter")

    def test_deterministic(self):
        assert derive_key(b"m", "a") == derive_key(b"m", "a")
