"""Integration tests: client + server against plaintext ground truth."""

from __future__ import annotations

import random

import pytest

from repro.core.client import SecureJoinClient
from repro.core.server import SecureJoinServer
from repro.db.database import Database
from repro.db.query import JoinQuery
from repro.db.schema import Schema
from repro.db.table import Table
from repro.errors import CryptoError, QueryError


def _example_tables():
    teams = Table("Teams", Schema.of(("key", "int"), ("name", "str")),
                  [(1, "Web Application"), (2, "Database")])
    employees = Table(
        "Employees",
        Schema.of(("record", "int"), ("employee", "str"),
                  ("role", "str"), ("team", "int")),
        [(1, "Hans", "Programmer", 1),
         (2, "Kaily", "Tester", 1),
         (3, "John", "Programmer", 2),
         (4, "Sally", "Tester", 2)],
    )
    return teams, employees


def _setup(enable_prefilter=False, seed=1):
    teams, employees = _example_tables()
    client = SecureJoinClient.for_tables(
        [(teams, "key"), (employees, "team")],
        in_clause_limit=3,
        rng=random.Random(seed),
        enable_prefilter=enable_prefilter,
    )
    server = SecureJoinServer(client.params)
    server.store(client.encrypt_table(teams, "key"))
    server.store(client.encrypt_table(employees, "team"))
    db = Database()
    db.add_table(teams)
    db.add_table(employees)
    return client, server, db


def _roundtrip(client, server, db, query, algorithm="hash"):
    encrypted = client.create_query(query)
    result = server.execute_join(encrypted, algorithm=algorithm)
    decrypted = client.decrypt_result(result)
    truth = db.execute(query)
    assert sorted(decrypted.table.rows()) == sorted(truth.table.rows())
    return result, decrypted


class TestEndToEnd:
    def test_paper_query_t1(self):
        client, server, db = _setup()
        query = JoinQuery.build(
            "Teams", "Employees", on=("key", "team"),
            where_left={"name": ["Web Application"]},
            where_right={"role": ["Tester"]},
        )
        result, decrypted = _roundtrip(client, server, db, query)
        assert decrypted.table.rows() == [
            (1, "Web Application", 2, "Kaily", "Tester", 1)
        ]

    def test_no_selection_full_join(self):
        client, server, db = _setup()
        query = JoinQuery.build("Teams", "Employees", on=("key", "team"))
        result, decrypted = _roundtrip(client, server, db, query)
        assert len(decrypted.table) == 4

    def test_in_clause_multiple_values(self):
        client, server, db = _setup()
        query = JoinQuery.build(
            "Teams", "Employees", on=("key", "team"),
            where_right={"role": ["Tester", "Programmer"]},
        )
        _roundtrip(client, server, db, query)

    def test_empty_result(self):
        client, server, db = _setup()
        query = JoinQuery.build(
            "Teams", "Employees", on=("key", "team"),
            where_left={"name": ["No Such Team"]},
        )
        result, decrypted = _roundtrip(client, server, db, query)
        assert len(decrypted.table) == 0

    def test_nested_algorithm_same_result(self):
        client, server, db = _setup()
        query = JoinQuery.build("Teams", "Employees", on=("key", "team"))
        hash_result, _ = _roundtrip(client, server, db, query, "hash")
        nested_result, _ = _roundtrip(client, server, db, query, "nested")
        assert sorted(hash_result.index_pairs) == sorted(nested_result.index_pairs)
        # Nested compares every candidate pair; the hash matcher does one
        # probe comparison per right row plus one per emitted pair.  On
        # this tiny workload (every probe matches) the counts tie; the
        # asymptotic separation is covered by the Section 6.5 benchmark.
        stats = nested_result.stats
        assert stats.comparisons == (
            stats.candidates_left * stats.candidates_right
        )
        assert hash_result.stats.comparisons == (
            hash_result.stats.probes + hash_result.stats.matches
        )
        assert hash_result.stats.comparisons <= stats.comparisons

    def test_many_to_many_join(self):
        left = Table("L", Schema.of(("g", "int"), ("x", "str")),
                     [(1, "a"), (1, "b"), (2, "c")])
        right = Table("R", Schema.of(("g", "int"), ("y", "str")),
                      [(1, "p"), (1, "q"), (3, "r")])
        client = SecureJoinClient.for_tables(
            [(left, "g"), (right, "g")], in_clause_limit=2,
            rng=random.Random(2),
        )
        server = SecureJoinServer(client.params)
        server.store(client.encrypt_table(left, "g"))
        server.store(client.encrypt_table(right, "g"))
        db = Database()
        db.add_table(left)
        db.add_table(right)
        query = JoinQuery.build("L", "R", on=("g", "g"))
        result, decrypted = _roundtrip(client, server, db, query)
        assert len(decrypted.table) == 4  # 2x2 cross on g=1

    def test_string_join_values(self):
        left = Table("L", Schema.of(("city", "str"), ("x", "int")),
                     [("oslo", 1), ("bern", 2)])
        right = Table("R", Schema.of(("town", "str"), ("y", "int")),
                      [("bern", 10), ("oslo", 20), ("rome", 30)])
        client = SecureJoinClient.for_tables(
            [(left, "city"), (right, "town")], in_clause_limit=2,
            rng=random.Random(3),
        )
        server = SecureJoinServer(client.params)
        server.store(client.encrypt_table(left, "city"))
        server.store(client.encrypt_table(right, "town"))
        db = Database()
        db.add_table(left)
        db.add_table(right)
        query = JoinQuery.build("L", "R", on=("city", "town"))
        _roundtrip(client, server, db, query)


class TestPrefilter:
    def test_prefilter_reduces_decryptions(self):
        client_on, server_on, db = _setup(enable_prefilter=True)
        client_off, server_off, _ = _setup(enable_prefilter=False)
        query = JoinQuery.build(
            "Teams", "Employees", on=("key", "team"),
            where_left={"name": ["Web Application"]},
            where_right={"role": ["Tester"]},
        )
        result_on = server_on.execute_join(client_on.create_query(query))
        result_off = server_off.execute_join(client_off.create_query(query))
        assert result_on.stats.decryptions == 3   # 1 team + 2 testers
        assert result_off.stats.decryptions == 6  # everything
        assert sorted(result_on.index_pairs) == sorted(result_off.index_pairs)

    def test_prefilter_same_answer(self):
        client, server, db = _setup(enable_prefilter=True)
        query = JoinQuery.build(
            "Teams", "Employees", on=("key", "team"),
            where_right={"role": ["Programmer"]},
        )
        _roundtrip(client, server, db, query)


class TestValidation:
    def test_unknown_selection_column(self):
        client, server, db = _setup()
        query = JoinQuery.build(
            "Teams", "Employees", on=("key", "team"),
            where_left={"nope": ["x"]},
        )
        with pytest.raises(QueryError):
            client.create_query(query)

    def test_selection_on_join_column_rejected(self):
        client, server, db = _setup()
        query = JoinQuery.build(
            "Teams", "Employees", on=("key", "team"),
            where_left={"key": [1]},
        )
        with pytest.raises(QueryError):
            client.create_query(query)

    def test_oversized_in_clause(self):
        client, server, db = _setup()  # t = 3
        query = JoinQuery.build(
            "Teams", "Employees", on=("key", "team"),
            where_right={"role": ["a", "b", "c", "d"]},
        )
        with pytest.raises(QueryError):
            client.create_query(query)

    def test_wrong_join_column(self):
        client, server, db = _setup()
        query = JoinQuery.build("Teams", "Employees", on=("name", "team"))
        with pytest.raises(QueryError):
            client.create_query(query)

    def test_unencrypted_table(self):
        client, server, db = _setup()
        query = JoinQuery.build("Nope", "Employees", on=("key", "team"))
        with pytest.raises(QueryError):
            client.create_query(query)

    def test_server_missing_table(self):
        teams, employees = _example_tables()
        client = SecureJoinClient.for_tables(
            [(teams, "key"), (employees, "team")], rng=random.Random(4)
        )
        server = SecureJoinServer(client.params)
        server.store(client.encrypt_table(teams, "key"))
        client.encrypt_table(employees, "team")  # encrypted but never stored
        query = JoinQuery.build("Teams", "Employees", on=("key", "team"))
        with pytest.raises(QueryError):
            server.execute_join(client.create_query(query))

    def test_unknown_algorithm(self):
        client, server, db = _setup()
        query = JoinQuery.build("Teams", "Employees", on=("key", "team"))
        with pytest.raises(QueryError):
            server.execute_join(client.create_query(query), algorithm="merge")


class TestObservations:
    def test_server_records_one_observation_per_query(self):
        client, server, db = _setup()
        query = JoinQuery.build("Teams", "Employees", on=("key", "team"))
        server.execute_join(client.create_query(query))
        server.execute_join(client.create_query(query))
        assert len(server.observations) == 2
        assert server.observations[0].query_id != server.observations[1].query_id

    def test_handles_unlinkable_across_queries(self):
        """The same row produces different handles under different queries."""
        client, server, db = _setup()
        query = JoinQuery.build("Teams", "Employees", on=("key", "team"))
        server.execute_join(client.create_query(query))
        server.execute_join(client.create_query(query))
        first, second = server.observations
        for ref, handle in first.handles.items():
            assert second.handles[ref] != handle


class TestPayloads:
    def test_payloads_are_probabilistic(self):
        teams, _ = _example_tables()
        duplicated = Table("T", teams.schema, [(1, "same"), (2, "same")])
        client = SecureJoinClient.for_tables(
            [(duplicated, "key")], rng=random.Random(5)
        )
        encrypted = client.encrypt_table(duplicated, "key")
        assert encrypted.payloads[0] != encrypted.payloads[1]

    def test_tampered_payload_detected(self):
        client, server, db = _setup()
        query = JoinQuery.build("Teams", "Employees", on=("key", "team"))
        result = server.execute_join(client.create_query(query))
        result.left_payloads[0] = b"\x00" * len(result.left_payloads[0])
        with pytest.raises(CryptoError):
            client.decrypt_result(result)
