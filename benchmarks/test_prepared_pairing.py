"""Prepared-row pairing benchmarks: BN254 replay vs raw Miller loops.

The acceptance claim of the prepared-rows PR: once a table's per-row
line coefficients are precomputed, a repeated query replays them in the
fused multi-pairing loop at well under half the raw Miller-loop cost —
measured both in op-counter-derived equivalent cost (prepared loops
priced by the calibrated replay constant) and in wall-clock.

``python benchmarks/test_prepared_pairing.py`` regenerates
``BENCH_7.json`` at the repo root (the ROADMAP's perf-trajectory
artifact): the pairing microbenchmark plus a cold-vs-warm
repeated-query series on a small BN254 table.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

import pytest

from repro.crypto.backend import BN254Backend

#: The fused replay shares one Frobenius-loop squaring across all pairs
#: in a row, so the speedup grows with dimension; dimension 8 matches
#: the ROADMAP's reference operating point for pairing benchmarks.
_DIMENSION = 8
_ROWS = 6
_QUERY_ROUNDS = 3


def _microbench(backend: BN254Backend, dimension: int, rows: int) -> dict:
    """Raw vs prepared batched decryption over one synthetic side."""
    token = backend.g1_powers(range(2, dimension + 2))
    side = [
        backend.g2_powers(range(r + 1, r + dimension + 1))
        for r in range(rows)
    ]
    prepare_start = time.perf_counter()
    prepared = [backend.prepare_row(row) for row in side]
    prepare_seconds = time.perf_counter() - prepare_start

    start = time.perf_counter()
    raw_handles = backend.pair_vectors_batch(token, side)
    raw_seconds = time.perf_counter() - start

    start = time.perf_counter()
    warm_handles = backend.pair_vectors_batch(token, prepared)
    warm_seconds = time.perf_counter() - start

    assert [gt.to_bytes() for gt in raw_handles] == [
        gt.to_bytes() for gt in warm_handles
    ]
    return {
        "dimension": dimension,
        "rows": rows,
        "prepare_seconds": prepare_seconds,
        "raw_seconds": raw_seconds,
        "prepared_seconds": warm_seconds,
        "speedup": raw_seconds / warm_seconds,
        "byte_identical": True,
    }


def _repeated_query_series(
    backend: BN254Backend, dimension: int, rows: int, rounds: int
) -> dict:
    """Cold table, then prepared table queried repeatedly.

    The per-query equivalent Miller-loop cost is derived from the op
    counters: raw loops count 1.0 each, prepared replays count at the
    measured replay/raw wall-clock ratio.  This is the planner's view
    of the speedup — independent of scheduler noise.
    """
    token = backend.g1_powers(range(3, dimension + 3))
    side = [
        backend.g2_powers(range(2 * r + 1, 2 * r + dimension + 1))
        for r in range(rows)
    ]

    snapshot = backend.ops.snapshot()
    start = time.perf_counter()
    cold_handles = backend.pair_vectors_batch(token, side)
    cold_seconds = time.perf_counter() - start
    cold_delta = backend.ops.since(snapshot)

    prepared = [backend.prepare_row(row) for row in side]
    warm_seconds = []
    warm_deltas = []
    for _ in range(rounds):
        snapshot = backend.ops.snapshot()
        start = time.perf_counter()
        warm_handles = backend.pair_vectors_batch(token, prepared)
        warm_seconds.append(time.perf_counter() - start)
        warm_deltas.append(backend.ops.since(snapshot))

    assert [gt.to_bytes() for gt in cold_handles] == [
        gt.to_bytes() for gt in warm_handles
    ]
    warm_median = statistics.median(warm_seconds)
    # Wall-clock-derived replay cost relative to a raw Miller loop.
    replay_ratio = (
        warm_median / cold_seconds if cold_seconds > 0 else 1.0
    )
    raw_equivalent = cold_delta.miller_loops * 1.0
    warm_equivalent = (
        warm_deltas[0].prepared_miller_loops * replay_ratio
    )
    return {
        "dimension": dimension,
        "rows": rows,
        "rounds": rounds,
        "cold_seconds": cold_seconds,
        "cold_miller_loops": cold_delta.miller_loops,
        "warm_seconds": {
            "min": min(warm_seconds),
            "median": warm_median,
            "max": max(warm_seconds),
        },
        "warm_prepared_miller_loops": warm_deltas[0].prepared_miller_loops,
        "warm_raw_miller_loops": warm_deltas[0].miller_loops,
        "wall_clock_speedup": cold_seconds / warm_median,
        "equivalent_miller_cost_raw": raw_equivalent,
        "equivalent_miller_cost_warm": warm_equivalent,
        "equivalent_cost_ratio": (
            raw_equivalent / warm_equivalent if warm_equivalent else None
        ),
        "byte_identical": True,
    }


@pytest.mark.slow
@pytest.mark.bn254
def test_prepared_replay_at_least_twice_as_cheap():
    """Acceptance: warm prepared table >= 2x cheaper than raw pairing.

    Measured on equivalent Miller-loop cost (op counters priced by the
    observed replay ratio) with wall-clock recorded alongside; results
    must be byte-identical to the raw path.
    """
    backend = BN254Backend()
    series = _repeated_query_series(
        backend, _DIMENSION, _ROWS, _QUERY_ROUNDS
    )
    assert series["warm_raw_miller_loops"] == 0
    assert series["wall_clock_speedup"] >= 2.0
    assert series["equivalent_cost_ratio"] >= 2.0


@pytest.mark.slow
@pytest.mark.bn254
def test_microbench_byte_identity():
    backend = BN254Backend()
    micro = _microbench(backend, _DIMENSION, _ROWS)
    assert micro["byte_identical"]
    assert micro["speedup"] > 1.0


def collect_trajectory() -> dict:
    """Measure the BENCH_7 figures; returns the JSON-ready record."""
    backend = BN254Backend()
    micro = _microbench(backend, dimension=8, rows=8)
    series = _repeated_query_series(
        backend, _DIMENSION, _ROWS, _QUERY_ROUNDS
    )
    gt_snapshot = backend.ops.snapshot()
    backend.gt_generator_power(3)
    backend.gt_generator_power(5)
    backend.gt_generator_power(7)
    gt_delta = backend.ops.since(gt_snapshot)
    return {
        "benchmark": "prepared_pairing",
        "description": (
            "BN254 prepared-row pairing: per-row Miller-loop line "
            "coefficients precomputed once with the stored ciphertext "
            "and replayed (fused multi-pairing) against each query "
            "token, vs raw Miller loops; plus the gt_generator_power "
            "caching fix (one pairing per backend lifetime)."
        ),
        "microbench": micro,
        "repeated_query_series": series,
        "gt_generator_power_fix": {
            "calls": 3,
            "miller_loops": gt_delta.miller_loops,
            "final_exponentiations": gt_delta.final_exponentiations,
            "gt_exponentiations": gt_delta.gt_exponentiations,
        },
    }


def main() -> None:
    record = collect_trajectory()
    out = Path(__file__).resolve().parent.parent / "BENCH_7.json"
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {out}")
    print(json.dumps(record, indent=2))


if __name__ == "__main__":
    main()
