"""Streaming-pipeline benchmarks: time to first match vs. full join.

The acceptance claim of the pipeline PR: on the Figure 3 workload, the
first matched rows surface in a small fraction of the time a full-side
materialization needs — the matcher starts pairing the moment the first
decrypted chunks land, instead of waiting for both sides to finish
SJ.Dec.  These benchmarks measure that gap and pin it with an
assertion, and time the concurrent-admission path (several queries
interleaved on one warm pool) for the CI trajectory artifact.
"""

from __future__ import annotations

import threading
import time

import pytest

from benchmarks.conftest import SCALE_FACTORS
from repro.bench.workloads import build_encrypted_tpch, tpch_query

_SELECTIVITY = 1 / 12.5  # densest series: the most decryptions per query


@pytest.fixture(autouse=True)
def _close_cached_pools():
    """Close any worker pool a test warmed up on the module-cached
    workload servers (pools restart lazily, so this is safe)."""
    yield
    from repro.bench.workloads import _CACHE

    for workload in _CACHE.values():
        workload.server.close()


def _first_match_seconds(server, encrypted_query, engine="batched"):
    """Drive ``stream_join`` until the first batch only."""
    stream = server.stream_join(encrypted_query, engine=engine)
    start = time.perf_counter()
    try:
        next(stream)
    except StopIteration:  # pragma: no cover - workload always matches
        pass
    elapsed = time.perf_counter() - start
    stream.close()
    return elapsed


@pytest.mark.parametrize("scale_factor", list(SCALE_FACTORS))
def test_time_to_first_match(benchmark, scale_factor):
    """Benchmark: latency of the *first* streamed match batch."""
    workload = build_encrypted_tpch(scale_factor, in_clause_limit=1)
    encrypted_query = workload.client.create_query(
        tpch_query(_SELECTIVITY, in_clause_size=1)
    )
    elapsed = benchmark.pedantic(
        lambda: _first_match_seconds(workload.server, encrypted_query),
        rounds=3, iterations=1,
    )
    assert elapsed > 0.0


@pytest.mark.parametrize("scale_factor", list(SCALE_FACTORS))
def test_streamed_full_join(benchmark, scale_factor):
    """Benchmark: the full pipelined join (for the ratio in the JSON)."""
    workload = build_encrypted_tpch(scale_factor, in_clause_limit=1)
    encrypted_query = workload.client.create_query(
        tpch_query(_SELECTIVITY, in_clause_size=1)
    )
    result = benchmark.pedantic(
        lambda: workload.server.execute_join(encrypted_query),
        rounds=3, iterations=1,
    )
    assert result.stats.matches > 0
    assert result.stats.time_to_first_match > 0.0


def test_first_match_beats_materialization():
    """Acceptance: time-to-first-match on the Figure 3 workload is
    measurably below the full join (which is itself a lower bound for
    the old decrypt-everything-then-match pass)."""
    workload = build_encrypted_tpch(0.02, in_clause_limit=1)
    encrypted_query = workload.client.create_query(
        tpch_query(_SELECTIVITY, in_clause_size=1)
    )

    def best_of(fn, rounds=3):
        return min(fn() for _ in range(rounds))

    def full_join_seconds():
        start = time.perf_counter()
        result = workload.server.execute_join(encrypted_query)
        assert result.stats.matches > 0
        return time.perf_counter() - start

    first = best_of(
        lambda: _first_match_seconds(workload.server, encrypted_query)
    )
    full = best_of(full_join_seconds)
    # ~1300 decryptions vs. one 64-row chunk per side before the first
    # match: the gap is structural, 0.5 leaves room for timer noise.
    assert first < full * 0.5

    # The stats agree: the recorded time_to_first_match is also well
    # under the query's own decrypt stage.
    result = workload.server.execute_join(encrypted_query)
    assert 0.0 < result.stats.time_to_first_match < full


def test_concurrent_admission_throughput():
    """Concurrent queries interleaved on one pool complete correctly
    and co-admit (the admission counters prove the interleaving)."""
    workload = build_encrypted_tpch(0.01, in_clause_limit=1)
    encrypted = [
        workload.client.create_query(tpch_query(_SELECTIVITY, in_clause_size=1))
        for _ in range(4)
    ]
    reference = workload.server.execute_join(encrypted[0], engine="batched")
    results = [None] * len(encrypted)

    def run(slot):
        results[slot] = workload.server.execute_join(
            encrypted[slot], engine="parallel"
        )

    threads = [
        threading.Thread(target=run, args=(slot,))
        for slot in range(len(encrypted))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    for slot, result in enumerate(results):
        assert result is not None
        if slot == 0:
            assert result.index_pairs == reference.index_pairs
        assert result.stats.matches == reference.stats.matches
    service = workload.server.execution_service
    # One pool incarnation served every concurrent query (the cached
    # workload server may have spawned earlier pools for other
    # benchmark modules; what matters is no per-query respawn here).
    assert len({r.stats.pool_generation for r in results}) == 1
    assert service.generation == results[0].stats.pool_generation
    assert service.peak_concurrent_sides >= 2
