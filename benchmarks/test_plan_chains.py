"""Multi-way chain plan benchmarks: pooled decryption vs. sequential joins.

The acceptance claims of the multi-way planner PR: a 3-way chain
``T1 ⋈ T2 ⋈ T3`` with a dominant middle table decrypts each
``(table, token)`` side exactly once and beats the sequential two-way
baseline (``T1 ⋈ T2`` then ``T2 ⋈ T3``, which pays SJ.Dec for the
middle table twice) by at least 1.5x wall-clock; and a chain sharing a
side (``T1 ⋈ T2 ⋈ T1``) performs exactly one Miller loop per
ciphertext element per *distinct* side row — the op-counter proof of
the handle pool's exactly-once contract.

``python benchmarks/test_plan_chains.py`` regenerates ``BENCH_10.json``
at the repo root (the ROADMAP's perf-trajectory artifact) with the
full-size measurement; the pytest checks run a smaller instance of the
same workload so the acceptance bound is enforced on every CI run.
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

import pytest

from repro.core.client import SecureJoinClient
from repro.core.server import SecureJoinServer
from repro.db.query import ChainQuery, JoinQuery
from repro.db.schema import Schema
from repro.db.table import Table

#: Full-size BENCH_10 workload: the middle table dominates, so pooled
#: single-decryption (1000 + 20000 + 1000 rows) vs. the sequential
#: baseline's double-decrypted middle (1000 + 2*20000 + 1000) predicts
#: an ideal 42000/22000 ~ 1.9x; 1.5x tolerates noisy runners.
_FULL_SIZES = (1000, 20000, 1000)
_TEST_SIZES = (500, 8000, 500)
_MIN_SPEEDUP = 1.5


def _key_domain(sizes) -> int:
    # Keeps intermediate and final outputs small (hundreds of tuples),
    # so match work never swamps the SJ.Dec contrast under test.
    return max(2, sum(sizes) // 2)


def _build(sizes, seed=20221):
    domain = _key_domain(sizes)
    rng = random.Random(seed)
    tables = [
        Table(
            f"T{i + 1}",
            Schema.of(("k", "int"), ("v", "str")),
            [(rng.randrange(domain), f"T{i + 1}.{j}") for j in range(n)],
        )
        for i, n in enumerate(sizes)
    ]
    # The paper-default IN-clause bound t=10: tokens and rows carry the
    # full-dimension element vectors, so SJ.Dec costs what it costs in
    # the reference workloads (a t=1 scheme would understate the
    # decrypt work the pooled chain saves).
    client = SecureJoinClient.for_tables(
        [(t, "k") for t in tables],
        in_clause_limit=10,
        rng=random.Random(seed + 1),
    )
    server = SecureJoinServer(client.params)
    for t in tables:
        server.store(client.encrypt_table(t, "k"))
    return client, server, tables


def _chain_query(client, names):
    return client.create_chain_query(
        ChainQuery.build([(name, "k") for name in names])
    )


def _compose_pairs(pairs12, pairs23):
    """Plaintext composition of the two baseline joins into 3-tuples.

    Valid because the chain is transitive: a T2 row carries one join
    value, so (a, b) and (b, c) agree on it by construction.
    """
    by_middle: dict[int, list[int]] = {}
    for middle, right in pairs23:
        by_middle.setdefault(middle, []).append(right)
    return sorted(
        (left, middle, right)
        for left, middle in pairs12
        for right in by_middle.get(middle, ())
    )


def _three_way_contrast(sizes) -> dict:
    client, server, _ = _build(sizes)
    ops = server.scheme.backend.ops
    dimension = len(server.table("T1").ciphertexts[0])
    try:
        # Warm up the interpreter and the server's execution path so
        # the timed contrast measures SJ.Dec + match work, not import
        # and allocator cold starts.  The warmup query uses fresh
        # tokens, so neither the series cache nor the handle store can
        # leak work into the measured run.
        server.execute_chain(_chain_query(client, ["T1", "T2", "T3"]))

        # -- the pooled chain --
        query = _chain_query(client, ["T1", "T2", "T3"])
        snapshot = ops.snapshot()
        start = time.perf_counter()
        chain = server.execute_chain(query)
        chain_seconds = time.perf_counter() - start
        chain_ops = ops.since(snapshot)

        # -- the sequential two-way baseline (fresh state: new server,
        # so neither the series cache nor the handle store helps it) --
        baseline_server = SecureJoinServer(client.params)
        for name in ("T1", "T2", "T3"):
            import copy

            baseline_server.store(copy.deepcopy(server.table(name)))
        try:
            q12 = client.create_query(
                JoinQuery.build("T1", "T2", on=("k", "k"))
            )
            q23 = client.create_query(
                JoinQuery.build("T2", "T3", on=("k", "k"))
            )
            snapshot = ops.snapshot()
            start = time.perf_counter()
            j12 = baseline_server.execute_join(q12)
            j23 = baseline_server.execute_join(q23)
            composed = _compose_pairs(j12.index_pairs, j23.index_pairs)
            baseline_seconds = time.perf_counter() - start
            baseline_ops = ops.since(snapshot)
            baseline_decryptions = (
                j12.stats.decryptions + j23.stats.decryptions
            )
        finally:
            baseline_server.close()

        assert composed == chain.tuples, "chain disagrees with baseline"
        chain_rows = (
            chain_ops.miller_loops + chain_ops.prepared_miller_loops
        ) / dimension
        baseline_rows = (
            baseline_ops.miller_loops + baseline_ops.prepared_miller_loops
        ) / dimension
        return {
            "sizes": list(sizes),
            "key_domain": _key_domain(sizes),
            "dimension": dimension,
            "chain_seconds": chain_seconds,
            "baseline_seconds": baseline_seconds,
            "speedup": baseline_seconds / chain_seconds,
            "chain_decryptions": chain.stats.decryptions,
            "baseline_decryptions": baseline_decryptions,
            "chain_decrypted_rows_by_ops": chain_rows,
            "baseline_decrypted_rows_by_ops": baseline_rows,
            "time_to_first_match": chain.stats.time_to_first_match,
            "plan_order": list(
                chain.stats.planner[0]["order"]
            ) if chain.stats.planner else None,
            "matches": len(chain.tuples),
            "byte_identical": True,
        }
    finally:
        server.close()


def _shared_side_exactly_once(sizes) -> dict:
    """The op-counter proof: T1 ⋈ T2 ⋈ T1 decrypts T1 once."""
    client, server, _ = _build(sizes[:2], seed=20223)
    ops = server.scheme.backend.ops
    dimension = len(server.table("T1").ciphertexts[0])
    try:
        query = _chain_query(client, ["T1", "T2", "T1"])
        snapshot = ops.snapshot()
        start = time.perf_counter()
        result = server.execute_chain(query)
        seconds = time.perf_counter() - start
        since = ops.since(snapshot)
        decrypted_rows = (
            since.miller_loops + since.prepared_miller_loops
        ) / dimension
        return {
            "sizes": list(sizes[:2]),
            "seconds": seconds,
            "decryptions": result.stats.decryptions,
            "handle_pool_hits": result.stats.handle_pool_hits,
            "decrypted_rows_by_ops": decrypted_rows,
            "distinct_side_rows": sizes[0] + sizes[1],
            "exactly_once": decrypted_rows == sizes[0] + sizes[1],
            "matches": len(result.tuples),
        }
    finally:
        server.close()


@pytest.mark.slow
def test_three_way_chain_beats_sequential_baseline():
    """Acceptance: the pooled chain decrypts the middle table once and
    beats the double-decrypting sequential baseline by >= 1.5x."""
    contrast = _three_way_contrast(_TEST_SIZES)
    assert contrast["chain_decryptions"] == sum(_TEST_SIZES)
    assert contrast["baseline_decryptions"] == (
        sum(_TEST_SIZES) + _TEST_SIZES[1]
    )
    assert contrast["chain_decrypted_rows_by_ops"] == sum(_TEST_SIZES)
    assert contrast["speedup"] >= _MIN_SPEEDUP


@pytest.mark.slow
def test_shared_side_decrypts_exactly_once():
    """Acceptance: a chain sharing its outer side performs exactly one
    Miller loop per element per distinct side row (op-counter proof)."""
    record = _shared_side_exactly_once(_TEST_SIZES)
    assert record["handle_pool_hits"] == 1
    assert record["exactly_once"]
    assert record["decryptions"] == _TEST_SIZES[0] + _TEST_SIZES[1]


def collect_trajectory() -> dict:
    """Measure the BENCH_10 figures; returns the JSON-ready record."""
    return {
        "benchmark": "plan_chains",
        "description": (
            "Multi-way join planner with per-query handle pooling: a "
            "3-way chain over a dominant middle table decrypts each "
            "(table, token) side exactly once and beats the "
            "sequential two-way baseline (which pays SJ.Dec for the "
            "middle table twice) by the recorded speedup; shared_side "
            "is the op-counter proof that a chain reusing its outer "
            "table (T1 join T2 join T1) performs exactly one Miller "
            "loop per element per distinct side row."
        ),
        "cpu_count": os.cpu_count(),
        "backend": "fast",
        "min_speedup_accepted": _MIN_SPEEDUP,
        "three_way": _three_way_contrast(_FULL_SIZES),
        "shared_side": _shared_side_exactly_once(_FULL_SIZES),
    }


def main() -> None:
    record = collect_trajectory()
    out = Path(__file__).resolve().parent.parent / "BENCH_10.json"
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {out}")
    print(json.dumps(record, indent=2))


if __name__ == "__main__":
    main()
