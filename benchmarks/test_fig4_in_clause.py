"""Figure 4: server-side join runtime vs. IN-clause size (SF 0.01).

Paper reference: runtime grows roughly linearly in t (vector dimension
is m(t+1)+3, so each decryption pairing costs O(t)); the growth is
steeper for higher selectivities because more rows pay the per-row
cost (3.50s -> 8.75s for s=1/100; 27.86s -> 69.62s for s=1/12.5).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import IN_CLAUSE_SIZES, SELECTIVITIES
from repro.bench.workloads import build_encrypted_tpch, tpch_query

_SCALE_FACTOR = 0.01


@pytest.mark.parametrize("t", list(IN_CLAUSE_SIZES))
@pytest.mark.parametrize("selectivity", list(SELECTIVITIES))
def test_join_runtime(benchmark, t, selectivity):
    workload = build_encrypted_tpch(_SCALE_FACTOR, in_clause_limit=t)
    query = tpch_query(selectivity, in_clause_size=t)
    encrypted_query = workload.client.create_query(query)

    result = benchmark.pedantic(
        lambda: workload.server.execute_join(encrypted_query),
        rounds=3, iterations=1,
    )
    assert result.stats.decryptions > 0


def test_cost_grows_with_in_clause_size():
    """Per-row decryption cost is O(t): dimension m(t+1)+3."""
    small = build_encrypted_tpch(_SCALE_FACTOR, in_clause_limit=1)
    large = build_encrypted_tpch(_SCALE_FACTOR, in_clause_limit=IN_CLAUSE_SIZES[-1])
    assert (
        large.client.params.dimension > small.client.params.dimension
    )
    # Same selected rows regardless of t (padding labels match nothing).
    q_small = tpch_query(1 / 100, in_clause_size=1)
    q_large = tpch_query(1 / 100, in_clause_size=IN_CLAUSE_SIZES[-1])
    r_small = small.server.execute_join(small.client.create_query(q_small))
    r_large = large.server.execute_join(large.client.create_query(q_large))
    assert r_small.stats.decryptions == r_large.stats.decryptions
    assert r_small.stats.matches == r_large.stats.matches
