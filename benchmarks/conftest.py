"""Shared configuration for the benchmark suite.

``REPRO_BENCH_FULL=1`` switches to the paper's complete parameter sweeps
(ten scale factors, IN-clause sizes 1-10, BN254 at every t); the default
configuration keeps the whole suite to a few minutes.
"""

from __future__ import annotations

import os

import pytest

FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"

SCALE_FACTORS = (
    (0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09, 0.1)
    if FULL
    else (0.01, 0.02, 0.04)
)
IN_CLAUSE_SIZES = tuple(range(1, 11)) if FULL else (1, 4, 10)
SELECTIVITIES = (1 / 100, 1 / 50, 1 / 25, 1 / 12.5)
BN254_T_VALUES = tuple(range(1, 11)) if FULL else (1, 2)


@pytest.fixture(scope="session")
def bench_selectivities():
    return SELECTIVITIES
