"""Network-streaming benchmarks: remote time-to-first-frame.

The acceptance claim of the network PR: putting a real TCP socket
between the client and the server does not forfeit the streaming
pipeline's early results — the first match-batch *frame* reaches a
remote client in the same ballpark as the in-process time to first
match, because frames are emitted while SJ.Dec is still running rather
than after the full join materializes.

``python benchmarks/test_net_streaming.py`` regenerates ``BENCH_6.json``
at the repo root (the ROADMAP's perf-trajectory artifact): remote
time-to-first-frame vs in-process time-to-first-match at SF 0.01.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

import pytest

from repro.bench.workloads import build_encrypted_tpch, tpch_query
from repro.net import JoinServiceServer, RemoteJoinClient

_SELECTIVITY = 1 / 12.5  # densest series: the most decryptions per query
_SCALE_FACTOR = 0.01
_ENGINE = "batched"


@pytest.fixture(autouse=True)
def _close_cached_pools():
    yield
    from repro.bench.workloads import _CACHE

    for workload in _CACHE.values():
        workload.server.close()


def _workload_and_query():
    workload = build_encrypted_tpch(_SCALE_FACTOR, in_clause_limit=1)
    encrypted_query = workload.client.create_query(
        tpch_query(_SELECTIVITY, in_clause_size=1), engine=_ENGINE
    )
    return workload, encrypted_query


def _inprocess_first_match_seconds(server, encrypted_query) -> float:
    stream = server.stream_join(encrypted_query, engine=_ENGINE)
    start = time.perf_counter()
    try:
        next(stream)
    except StopIteration:  # pragma: no cover - workload always matches
        pass
    elapsed = time.perf_counter() - start
    stream.close()
    return elapsed


def _remote_first_frame_seconds(remote, encrypted_query) -> float:
    """Time from query submission to the first match-batch frame.

    The stream is drained afterwards (outside the timed window):
    abandoning it mid-flight would desynchronize — and therefore drop —
    the connection, and these measurements reuse one connection.
    """
    stream = remote.stream_join(encrypted_query)
    start = time.perf_counter()
    try:
        next(stream)
    except StopIteration:  # pragma: no cover - workload always matches
        pass
    elapsed = time.perf_counter() - start
    while True:
        try:
            next(stream)
        except StopIteration:
            break
    return elapsed


def test_remote_first_frame(benchmark):
    """Benchmark: latency of the first streamed frame over a socket."""
    workload, encrypted_query = _workload_and_query()
    with JoinServiceServer(workload.server) as service:
        host, port = service.address
        with RemoteJoinClient(
            host, port, workload.client.scheme.backend
        ) as remote:
            elapsed = benchmark.pedantic(
                lambda: _remote_first_frame_seconds(remote, encrypted_query),
                rounds=3, iterations=1,
            )
    assert elapsed > 0.0


def test_remote_streaming_overhead_is_bounded():
    """Acceptance: the socket adds transport overhead, not a pipeline
    stall — remote time-to-first-frame stays within an order of
    magnitude of the in-process time-to-first-match (the in-process
    figure is microseconds-scale at SF 0.01, so generous headroom is
    deliberate: this guards against accidentally materializing the
    full join before the first frame, not against syscall costs)."""
    workload, encrypted_query = _workload_and_query()
    full_join = workload.server.execute_join(encrypted_query)
    full_seconds = full_join.stats.decrypt_seconds + (
        full_join.stats.match_seconds
    )
    with JoinServiceServer(workload.server) as service:
        host, port = service.address
        with RemoteJoinClient(
            host, port, workload.client.scheme.backend
        ) as remote:
            remote_first = min(
                _remote_first_frame_seconds(remote, encrypted_query)
                for _ in range(3)
            )
    # The first frame must beat the full join's compute time: if the
    # server materialized everything before emitting, it could not.
    assert remote_first < max(full_seconds, 0.05)


def collect_trajectory(rounds: int = 5) -> dict:
    """Measure the BENCH_6 figures; returns the JSON-ready record."""
    workload, encrypted_query = _workload_and_query()
    inprocess = [
        _inprocess_first_match_seconds(workload.server, encrypted_query)
        for _ in range(rounds)
    ]
    with JoinServiceServer(workload.server) as service:
        host, port = service.address
        with RemoteJoinClient(
            host, port, workload.client.scheme.backend
        ) as remote:
            remote_first = [
                _remote_first_frame_seconds(remote, encrypted_query)
                for _ in range(rounds)
            ]
            full = remote.execute_join(encrypted_query)
    return {
        "benchmark": "net_streaming",
        "description": (
            "Remote streamed join over TCP vs the in-process streaming "
            "pipeline: seconds from query submission to the first "
            "matched rows."
        ),
        "workload": {
            "scale_factor": _SCALE_FACTOR,
            "selectivity": _SELECTIVITY,
            "engine": _ENGINE,
            "num_customers": workload.num_customers,
            "num_orders": workload.num_orders,
            "matches": full.stats.matches,
        },
        "rounds": rounds,
        "inprocess_time_to_first_match_s": {
            "min": min(inprocess),
            "median": statistics.median(inprocess),
            "max": max(inprocess),
        },
        "remote_time_to_first_frame_s": {
            "min": min(remote_first),
            "median": statistics.median(remote_first),
            "max": max(remote_first),
        },
        "remote_over_inprocess_median_ratio": (
            statistics.median(remote_first) / statistics.median(inprocess)
        ),
    }


def main() -> None:
    record = collect_trajectory()
    out = Path(__file__).resolve().parent.parent / "BENCH_6.json"
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {out}")
    print(json.dumps(record, indent=2))


if __name__ == "__main__":
    main()
