"""Section 6.5: Secure Join vs. Hahn et al.

Two structural comparisons from the paper's discussion:

1. **Join algorithm** — the paper's handles support hash joins
   (expected O(n)); Hahn et al.'s searchable ciphertexts force
   nested-loop joins (O(n^2)).  Both matchers run here on identical
   encrypted handles, so the measured gap is purely algorithmic.
2. **Scheme-level run** — the Hahn baseline end to end on the same
   workload, showing the quadratic comparison count.
"""

from __future__ import annotations

import pytest

from repro.baselines import HahnScheme
from repro.bench.workloads import build_encrypted_tpch, tpch_query
from repro.db.query import JoinQuery
from repro.tpch.generator import TPCHGenerator

_SCALE_FACTORS = (0.002, 0.004, 0.008)
_SELECTIVITY = 1 / 12.5  # the densest series: most selected rows


@pytest.mark.parametrize("scale_factor", list(_SCALE_FACTORS))
@pytest.mark.parametrize("algorithm", ["hash", "nested"])
def test_matcher_scaling(benchmark, scale_factor, algorithm):
    workload = build_encrypted_tpch(scale_factor, in_clause_limit=1)
    query = tpch_query(_SELECTIVITY, in_clause_size=1)
    encrypted_query = workload.client.create_query(query)

    result = benchmark.pedantic(
        lambda: workload.server.execute_join(encrypted_query, algorithm=algorithm),
        rounds=3, iterations=1,
    )
    assert result.stats.matches > 0


def test_comparison_counts_quadratic_vs_linear():
    """The O(n) / O(n^2) separation, independent of wall-clock noise."""
    small = build_encrypted_tpch(_SCALE_FACTORS[0], in_clause_limit=1)
    large = build_encrypted_tpch(_SCALE_FACTORS[-1], in_clause_limit=1)
    query = tpch_query(_SELECTIVITY)
    scale = _SCALE_FACTORS[-1] / _SCALE_FACTORS[0]

    counts = {}
    for name, workload in (("small", small), ("large", large)):
        for algorithm in ("hash", "nested"):
            result = workload.server.execute_join(
                workload.client.create_query(query), algorithm=algorithm
            )
            counts[(name, algorithm)] = result.stats.comparisons

    nested_growth = counts[("large", "nested")] / counts[("small", "nested")]
    hash_growth = counts[("large", "hash")] / counts[("small", "hash")]
    assert nested_growth == pytest.approx(scale**2, rel=0.15)
    assert hash_growth == pytest.approx(scale, rel=0.25)


def test_hahn_scheme_end_to_end(benchmark):
    """The Hahn baseline itself on a PK/FK TPC-H subset."""
    generator = TPCHGenerator(0.002)
    customers, orders = generator.both()
    scheme = HahnScheme()
    scheme.upload([(customers, "custkey"), (orders, "custkey")])
    query = JoinQuery.build(
        "Customers", "Orders", on=("custkey", "custkey"),
        where_left={"selectivity": ["1/12.5"]},
        where_right={"selectivity": ["1/12.5"]},
    )

    answer = benchmark.pedantic(
        lambda: scheme.run_query(query), rounds=3, iterations=1
    )
    assert scheme.comparisons > 0
    assert len(answer.index_pairs) >= 0
