"""Figure 3: server-side join runtime vs. TPC-H scale factor.

Paper reference (Orders x Customers, t = 1, four selectivity series):
runtime grows linearly in the scale factor, with slope proportional to
the selectivity (3.52s at SF 0.01 / s=1/100 up to 282.49s at SF 0.1 /
s=1/12.5 on their hardware).  Here the fast backend makes each
decryption microseconds instead of milliseconds, so absolute numbers
shrink by ~3 orders of magnitude, but linearity in SF and
proportionality in s are preserved (asserted in the tests).

The encrypted database is built once per scale factor and shared by the
four selectivity series (pytest-benchmark measures only execute_join).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SCALE_FACTORS, SELECTIVITIES
from repro.bench.workloads import build_encrypted_tpch, tpch_query


@pytest.mark.parametrize("scale_factor", list(SCALE_FACTORS))
@pytest.mark.parametrize("selectivity", list(SELECTIVITIES))
def test_join_runtime(benchmark, scale_factor, selectivity):
    workload = build_encrypted_tpch(scale_factor, in_clause_limit=1)
    query = tpch_query(selectivity, in_clause_size=1)
    encrypted_query = workload.client.create_query(query)

    result = benchmark.pedantic(
        lambda: workload.server.execute_join(encrypted_query),
        rounds=3, iterations=1,
    )
    # The server touches only the selected fraction of each table.
    expected = round(selectivity * workload.num_customers) + round(
        selectivity * workload.num_orders
    )
    assert result.stats.decryptions == expected


def test_runtime_scales_linearly_with_database_size():
    """The paper's headline trend: join time ~ database size (fixed s)."""
    small_sf, large_sf = SCALE_FACTORS[0], SCALE_FACTORS[-1]
    ratio = large_sf / small_sf
    small = build_encrypted_tpch(small_sf, in_clause_limit=1)
    large = build_encrypted_tpch(large_sf, in_clause_limit=1)
    query = tpch_query(1 / 12.5)
    small_result = small.server.execute_join(small.client.create_query(query))
    large_result = large.server.execute_join(large.client.create_query(query))
    observed = large_result.stats.decryptions / small_result.stats.decryptions
    assert observed == pytest.approx(ratio, rel=0.05)


def test_runtime_proportional_to_selectivity():
    """Fixed SF: decryption work scales with the selected fraction."""
    workload = build_encrypted_tpch(SCALE_FACTORS[0], in_clause_limit=1)
    counts = {}
    for selectivity in SELECTIVITIES:
        query = tpch_query(selectivity)
        result = workload.server.execute_join(
            workload.client.create_query(query)
        )
        counts[selectivity] = result.stats.decryptions
    assert counts[1 / 12.5] == pytest.approx(8 * counts[1 / 100], rel=0.05)
    assert counts[1 / 25] == pytest.approx(2 * counts[1 / 50], rel=0.05)
