"""Shard scaling benchmarks: scatter-gather vs the single-store join.

The acceptance claim of the sharding PR: partitioning an encrypted
store across ``n`` shards divides the SJ.Dec work ``1/n`` per shard
(max rows per shard shrinks accordingly), the coordinator's merged
result stays byte-identical to the single store at every shard count,
and the calibrated cost model prices the scatter makespan (slowest
shard + per-shard dispatch) so the planner can see the parallel
speedup before spending it.

``python benchmarks/test_shard_scaling.py`` regenerates
``BENCH_8.json`` at the repo root (the ROADMAP's perf-trajectory
artifact): a measured single-vs-sharded series on the fast backend
plus the cost model's scatter estimates.  Wall-clock speedup needs one
core per shard pool — the artifact records ``cpu_count`` so a
single-core run is read as overhead measurement, not a regression.
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

import pytest

from repro.bench.costmodel import (
    default_engine_cost_model,
    estimate_scatter_costs,
)
from repro.core.client import SecureJoinClient
from repro.core.server import SecureJoinServer
from repro.crypto.backend import BN254Backend
from repro.db.query import JoinQuery
from repro.db.schema import Schema
from repro.db.table import Table
from repro.shard import LocalShard, ShardCoordinator, partition_table

#: Shard counts of the measured series; 1 is the sharded-but-trivial
#: baseline (coordinator overhead with no fan-out).
_SHARD_SERIES = (1, 2, 4)
_ROWS = 96
_DISTINCT_KEYS = 12
_WORKERS = 2


def _fixture(rows: int, backend=None, seed: int = 29):
    left = Table(
        "L", Schema.of(("k", "int"), ("a", "str")),
        [(i % _DISTINCT_KEYS, f"a{i}") for i in range(rows)],
    )
    right = Table(
        "R", Schema.of(("k", "int"), ("b", "str")),
        [(i % _DISTINCT_KEYS, f"b{i}") for i in range(rows)],
    )
    client = SecureJoinClient.for_tables(
        [(left, "k"), (right, "k")], in_clause_limit=1,
        backend=backend, rng=random.Random(seed),
    )
    tables = [
        client.encrypt_table(left, "k"), client.encrypt_table(right, "k")
    ]
    return client, tables


def _query(client):
    return client.create_query(JoinQuery.build("L", "R", on=("k", "k")))


def _single_store_run(client, tables) -> tuple:
    server = SecureJoinServer(client.params, workers=_WORKERS)
    for table in tables:
        server.store(table)
    try:
        start = time.perf_counter()
        result = server.execute_join(_query(client), engine="parallel")
        seconds = time.perf_counter() - start
    finally:
        server.close()
    return result, seconds


def _sharded_run(client, backend, tables, n_shards: int) -> tuple:
    shards = [
        LocalShard(client.params, workers=_WORKERS, name=f"shard-{i}")
        for i in range(n_shards)
    ]
    for table in tables:
        for piece in partition_table(table, backend, n_shards):
            shards[piece.shard.shard_index].store(piece)
    coordinator = ShardCoordinator(shards)
    try:
        start = time.perf_counter()
        result = coordinator.execute_join(
            _query(client), engine="parallel"
        )
        seconds = time.perf_counter() - start
    finally:
        coordinator.close()
    return result, seconds


def _scaling_series(rows: int, backend=None) -> dict:
    """Single store vs every shard count; byte-identity enforced."""
    client, tables = _fixture(rows, backend=backend)
    resolved = client.scheme.backend
    reference, single_seconds = _single_store_run(client, tables)
    dimension = len(tables[0].ciphertexts[0]) if tables[0].ciphertexts else 1
    # Price the spread under the measured backend AND the production
    # pairing backend: fast-backend rows cost microseconds, so dispatch
    # overhead dominates its estimate; under BN254 per-row pairing cost
    # the same partition shows the real fan-out win.
    models = {
        resolved.name: default_engine_cost_model(resolved.name),
        "bn254": default_engine_cost_model("bn254"),
    }
    points = []
    for n_shards in _SHARD_SERIES:
        result, seconds = _sharded_run(client, resolved, tables, n_shards)
        assert result.index_pairs == reference.index_pairs
        assert result.left_payloads == reference.left_payloads
        assert result.right_payloads == reference.right_payloads
        assert result.stats.shards == n_shards
        per_table = [
            [len(piece) for piece in
             partition_table(table, resolved, n_shards)]
            for table in tables
        ]
        rows_per_shard = [sum(col) for col in zip(*per_table)]
        estimates = {
            name: estimate_scatter_costs(
                model, rows_per_shard, dimension=dimension,
                workers=_WORKERS,
            )
            for name, model in models.items()
        }
        points.append({
            "shards": n_shards,
            "seconds": seconds,
            "speedup_vs_single": single_seconds / seconds,
            "rows_per_shard": rows_per_shard,
            "max_rows_per_shard": max(rows_per_shard),
            "work_division": (
                (rows * 2) / max(rows_per_shard) if rows else 1.0
            ),
            "skew": result.stats.shard_skew,
            "model_estimates": estimates,
            "byte_identical": True,
        })
    return {
        "backend": resolved.name,
        "rows_per_side": rows,
        "distinct_keys": _DISTINCT_KEYS,
        "matches": len(reference.index_pairs),
        "workers_per_shard": _WORKERS,
        "single_store_seconds": single_seconds,
        "series": points,
    }


@pytest.mark.slow
def test_sharded_byte_identity_across_series():
    """Acceptance: every shard count reproduces the single store, max
    rows per shard shrinks with the fan-out, and the cost model prices
    a speedup for the spread."""
    series = _scaling_series(_ROWS)
    max_rows = [point["max_rows_per_shard"] for point in series["series"]]
    assert all(point["byte_identical"] for point in series["series"])
    assert max_rows == sorted(max_rows, reverse=True)
    assert max_rows[-1] < max_rows[0]
    four = next(p for p in series["series"] if p["shards"] == 4)
    assert four["model_estimates"]["bn254"]["speedup"] > 1.5


@pytest.mark.slow
@pytest.mark.bn254
def test_sharded_byte_identity_bn254():
    """The identity claim holds under the production pairing backend."""
    client, tables = _fixture(rows=12, backend=BN254Backend(), seed=31)
    backend = client.scheme.backend
    reference, _ = _single_store_run(client, tables)
    result, _ = _sharded_run(client, backend, tables, 2)
    assert result.index_pairs == reference.index_pairs
    assert result.left_payloads == reference.left_payloads
    assert result.right_payloads == reference.right_payloads


def collect_trajectory() -> dict:
    """Measure the BENCH_8 figures; returns the JSON-ready record."""
    return {
        "benchmark": "shard_scaling",
        "description": (
            "Hash-partitioned encrypted store under scatter-gather "
            "coordination: SJ.Dec fans out to per-shard pools, handles "
            "gather to one central matcher, and the merged result is "
            "byte-identical to the single store at every shard count. "
            "max_rows_per_shard tracks the 1/n work division; "
            "model_estimates is the calibrated planner view (scatter "
            "makespan = slowest shard + per-shard dispatch). Wall-clock "
            "speedup requires one core per shard pool (see cpu_count)."
        ),
        "cpu_count": os.cpu_count(),
        "fast_backend_series": _scaling_series(_ROWS),
    }


def main() -> None:
    record = collect_trajectory()
    out = Path(__file__).resolve().parent.parent / "BENCH_8.json"
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {out}")
    print(json.dumps(record, indent=2))


if __name__ == "__main__":
    main()
