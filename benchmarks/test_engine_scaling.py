"""Execution-engine ablation: serial vs. batched vs. parallel SJ.Dec.

The server-side join is pairing-bound, so how SJ.Dec is issued against
the backend decides the scale ceiling:

- ``serial`` — the naive product of pairings (one final exponentiation
  per vector component per row);
- ``batched`` — chunked multi-pairings, one shared final exponentiation
  per row (d× fewer, d = scheme dimension);
- ``parallel`` — the batched plan fanned out over a worker pool.

``REPRO_BENCH_FULL=1`` widens the sweep as for the other benchmarks.
Run ``python -m repro.bench`` for the paper-style engine table, or
``pytest benchmarks/test_engine_scaling.py --benchmark-only`` here.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SCALE_FACTORS
from repro.bench.workloads import build_encrypted_tpch, tpch_query

_SELECTIVITY = 1 / 12.5  # densest series: the most decryptions per query
_ENGINES = ("serial", "batched", "parallel")


@pytest.mark.parametrize("scale_factor", list(SCALE_FACTORS))
@pytest.mark.parametrize("engine", _ENGINES)
def test_engine_scaling(benchmark, scale_factor, engine):
    workload = build_encrypted_tpch(scale_factor, in_clause_limit=1)
    encrypted_query = workload.client.create_query(
        tpch_query(_SELECTIVITY, in_clause_size=1)
    )

    result = benchmark.pedantic(
        lambda: workload.server.execute_join(encrypted_query, engine=engine),
        rounds=3, iterations=1,
    )
    assert result.stats.engine == engine
    assert result.stats.matches > 0


def test_batched_final_exponentiation_savings():
    """Acceptance: >= 2x fewer final exponentiations on a 64+ handle side."""
    workload = build_encrypted_tpch(0.008, in_clause_limit=1)
    encrypted_query = workload.client.create_query(
        tpch_query(_SELECTIVITY, in_clause_size=1)
    )
    serial = workload.server.execute_join(encrypted_query, engine="serial")
    batched = workload.server.execute_join(encrypted_query, engine="batched")

    assert serial.stats.candidates_left >= 64  # a 64-handle (or larger) side
    assert serial.index_pairs == batched.index_pairs
    assert batched.stats.final_exponentiations == batched.stats.decryptions
    assert (
        serial.stats.final_exponentiations
        >= 2 * batched.stats.final_exponentiations
    )


def test_parallel_engine_matches_batched_plan():
    """The pool fan-out must not change the batched plan's results."""
    workload = build_encrypted_tpch(0.004, in_clause_limit=1)
    encrypted_query = workload.client.create_query(
        tpch_query(_SELECTIVITY, in_clause_size=1)
    )
    batched = workload.server.execute_join(encrypted_query, engine="batched")
    parallel = workload.server.execute_join(encrypted_query, engine="parallel")

    assert parallel.index_pairs == batched.index_pairs
    assert parallel.stats.final_exponentiations == (
        batched.stats.final_exponentiations
    )
    assert parallel.stats.workers >= 2
