"""Execution-engine ablation: serial vs. batched vs. parallel SJ.Dec.

The server-side join is pairing-bound, so how SJ.Dec is issued against
the backend decides the scale ceiling:

- ``serial`` — the naive product of pairings (one final exponentiation
  per vector component per row);
- ``batched`` — chunked multi-pairings, one shared final exponentiation
  per row (d× fewer, d = scheme dimension);
- ``parallel`` — the batched plan fanned out over the *persistent*
  worker pool (no per-query fork since the execution-service PR);
- ``auto`` — the cost-model planner picking among the above per side.

``REPRO_BENCH_FULL=1`` widens the sweep as for the other benchmarks.
Run ``python -m repro.bench`` for the paper-style engine table, or
``pytest benchmarks/test_engine_scaling.py --benchmark-only`` here.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import SCALE_FACTORS
from repro.bench.workloads import build_encrypted_tpch, tpch_query
from repro.crypto.backend import FastBackend

_SELECTIVITY = 1 / 12.5  # densest series: the most decryptions per query
_ENGINES = ("serial", "batched", "parallel", "auto")


@pytest.fixture(autouse=True)
def _close_cached_pools():
    """Workloads (and their servers) are cached module-wide; close any
    worker pool a test warmed up so idle workers don't accumulate under
    the rest of the session.  Pools restart lazily, so this is safe."""
    yield
    from repro.bench.workloads import _CACHE

    for workload in _CACHE.values():
        workload.server.close()


@pytest.mark.parametrize("scale_factor", list(SCALE_FACTORS))
@pytest.mark.parametrize("engine", _ENGINES)
def test_engine_scaling(benchmark, scale_factor, engine):
    workload = build_encrypted_tpch(scale_factor, in_clause_limit=1)
    encrypted_query = workload.client.create_query(
        tpch_query(_SELECTIVITY, in_clause_size=1)
    )

    result = benchmark.pedantic(
        lambda: workload.server.execute_join(encrypted_query, engine=engine),
        rounds=3, iterations=1,
    )
    assert result.stats.engine == engine
    assert result.stats.matches > 0


def test_batched_final_exponentiation_savings():
    """Acceptance: >= 2x fewer final exponentiations on a 64+ handle side."""
    workload = build_encrypted_tpch(0.008, in_clause_limit=1)
    encrypted_query = workload.client.create_query(
        tpch_query(_SELECTIVITY, in_clause_size=1)
    )
    serial = workload.server.execute_join(encrypted_query, engine="serial")
    batched = workload.server.execute_join(encrypted_query, engine="batched")

    assert serial.stats.candidates_left >= 64  # a 64-handle (or larger) side
    assert serial.index_pairs == batched.index_pairs
    assert batched.stats.final_exponentiations == batched.stats.decryptions
    assert (
        serial.stats.final_exponentiations
        >= 2 * batched.stats.final_exponentiations
    )


def test_parallel_engine_matches_batched_plan():
    """The pool fan-out must not change the batched plan's results."""
    workload = build_encrypted_tpch(0.004, in_clause_limit=1)
    encrypted_query = workload.client.create_query(
        tpch_query(_SELECTIVITY, in_clause_size=1)
    )
    batched = workload.server.execute_join(encrypted_query, engine="batched")
    parallel = workload.server.execute_join(encrypted_query, engine="parallel")

    assert parallel.index_pairs == batched.index_pairs
    assert parallel.stats.final_exponentiations == (
        batched.stats.final_exponentiations
    )
    assert parallel.stats.workers >= 2


def test_parallel_pool_persists_across_queries():
    """Acceptance: no per-query pool spawn.  After warmup, repeated
    queries report the same pool generation and warm runs are not
    slower than the cold one that paid the fork."""
    workload = build_encrypted_tpch(0.004, in_clause_limit=1)
    encrypted_query = workload.client.create_query(
        tpch_query(_SELECTIVITY, in_clause_size=1)
    )

    start = time.perf_counter()
    cold = workload.server.execute_join(encrypted_query, engine="parallel")
    cold_seconds = time.perf_counter() - start

    warm_seconds = []
    generations = []
    for _ in range(3):
        start = time.perf_counter()
        warm = workload.server.execute_join(encrypted_query, engine="parallel")
        warm_seconds.append(time.perf_counter() - start)
        generations.append(warm.stats.pool_generation)
        assert warm.index_pairs == cold.index_pairs

    assert generations == [cold.stats.pool_generation] * 3
    # Warm queries skip the fork: allow scheduling noise, but a warm run
    # re-spawning the pool (the PR 1 behavior) would clearly fail this.
    assert min(warm_seconds) <= cold_seconds * 1.5


def test_warm_pool_beats_per_query_pool():
    """Acceptance vs PR 1: a query on the warm persistent pool must be
    cheaper than one that spawns (and tears down) a pool of its own —
    the old per-query-fork behavior.  Holds on any core count: the gap
    is the fork cost itself."""
    from repro.core.engine import ParallelEngine
    from repro.core.service import ExecutionService

    workload = build_encrypted_tpch(0.004, in_clause_limit=1)
    encrypted_query = workload.client.create_query(
        tpch_query(_SELECTIVITY, in_clause_size=1)
    )
    # Warm the server-owned pool once.
    warm_result = workload.server.execute_join(
        encrypted_query, engine="parallel"
    )

    def best_warm(rounds=3):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            workload.server.execute_join(encrypted_query, engine="parallel")
            best = min(best, time.perf_counter() - start)
        return best

    def best_per_query_pool(rounds=3):
        best = float("inf")
        for _ in range(rounds):
            service = ExecutionService(workers=2)
            engine = ParallelEngine(workers=2, service=service)
            start = time.perf_counter()
            result = workload.server.execute_join(
                encrypted_query, engine=engine
            )
            service.close()
            best = min(best, time.perf_counter() - start)
            assert result.index_pairs == warm_result.index_pairs
        return best

    assert best_warm() < best_per_query_pool()


class _ComputeBoundBackend(FastBackend):
    """FastBackend plus an artificial per-row pairing cost.

    Emulates a compute-dominated backend (the BN254 regime, where one
    pairing costs milliseconds) at benchmark-friendly speed, so the
    pool's multi-core win is measurable without the real pairing.
    """

    SPIN_PER_ROW = 5e-4  # seconds of busy work per decrypted row

    def pair_vectors_batch(self, g1_vector, g2_vectors):
        handles = super().pair_vectors_batch(g1_vector, g2_vectors)
        deadline = time.perf_counter() + self.SPIN_PER_ROW * len(g2_vectors)
        while time.perf_counter() < deadline:
            pass
        return handles


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="pooled-vs-batched wall-clock comparison needs >= 2 cores",
)
def test_pooled_beats_batched_when_compute_dominates():
    """On real cores, with per-row compute dominating transport (the
    BN254 regime the planner's model encodes), the warm pool must beat
    single-threaded batched."""
    from repro.core.engine import BatchedEngine, ParallelEngine
    from repro.core.service import ExecutionService

    backend = _ComputeBoundBackend()
    dimension, rows = 5, 200
    token = backend.g1_powers(range(1, dimension + 1))
    side = [
        backend.g2_powers(range(r + 1, r + dimension + 1))
        for r in range(rows)
    ]
    workers = min(4, os.cpu_count() or 2)
    service = ExecutionService(workers=workers)
    pooled = ParallelEngine(workers=workers, batch_size=16, service=service)
    batched = BatchedEngine(batch_size=64)
    with service:
        # Warm the pool, and check byte-identical handles while at it.
        warm_handles, _ = pooled.decrypt_handles(backend, token, side)
        batched_handles, _ = batched.decrypt_handles(backend, token, side)
        assert warm_handles == batched_handles

        def best_of(engine, rounds=3):
            best = float("inf")
            for _ in range(rounds):
                start = time.perf_counter()
                engine.decrypt_handles(backend, token, side)
                best = min(best, time.perf_counter() - start)
            return best

        # ~100 ms of spin across >= 2 cores vs one core: require a real
        # win, with slack for scheduling noise.
        assert best_of(pooled) <= best_of(batched) * 0.85


def test_auto_planner_is_never_slower_than_default():
    """Acceptance: on the benchmarked grid the planner's choice is
    estimated no slower than the static default, and its measured
    results are identical to batched's."""
    for scale_factor in SCALE_FACTORS:
        workload = build_encrypted_tpch(scale_factor, in_clause_limit=1)
        encrypted_query = workload.client.create_query(
            tpch_query(_SELECTIVITY, in_clause_size=1)
        )
        batched = workload.server.execute_join(
            encrypted_query, engine="batched"
        )
        auto = workload.server.execute_join(encrypted_query, engine="auto")
        assert auto.index_pairs == batched.index_pairs
        assert auto.stats.planner is not None
        for side in auto.stats.planner:
            estimates = side["estimates"]
            assert estimates[side["chosen"]] <= estimates["batched"]
            # The planner never falls back to the naive ablation baseline.
            assert side["chosen"] != "serial"
