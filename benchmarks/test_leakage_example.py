"""Section 2.1 / Example 2.1: the leakage comparison table.

Regenerates the paper's t0/t1/t2 pair counts for all four schemes and
benchmarks the full analysis pipeline.  The asserted numbers ARE the
paper's table: DET 6/6/6, CryptDB 0/6/6, Hahn 0/1/6, Secure Join 0/1/2.
"""

from __future__ import annotations

import random

from repro.baselines import (
    CryptDBScheme,
    DeterministicScheme,
    HahnScheme,
    SecureJoinAdapter,
)
from repro.bench.experiments import example_queries, example_tables
from repro.leakage import analyze_schemes


def _run_timeline(seed: int = 3):
    schemes = [
        DeterministicScheme(),
        CryptDBScheme(),
        HahnScheme(),
        SecureJoinAdapter(rng=random.Random(seed)),
    ]
    return analyze_schemes(schemes, example_tables(), example_queries())


def test_leakage_timeline(benchmark):
    timeline = benchmark.pedantic(_run_timeline, rounds=3, iterations=1)
    summary = timeline.summary()
    assert summary["deterministic"] == [6, 6, 6]
    assert summary["cryptdb"] == [0, 6, 6]
    assert summary["hahn"] == [0, 1, 6]
    assert summary["securejoin"] == [0, 1, 2]
    assert summary["minimum (closure of union)"] == [0, 1, 2]


def test_secure_join_alone(benchmark):
    """Just the paper's scheme on the example series (upload + 2 queries)."""

    def run():
        scheme = SecureJoinAdapter(rng=random.Random(4))
        scheme.upload(example_tables())
        for query in example_queries():
            scheme.run_query(query)
        return scheme.revealed_pairs()

    pairs = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(pairs) == 2
