"""Query-series benchmarks: repeated queries and trickle inserts.

The acceptance claims of the query-series PR: re-submitting the same
encrypted query replays the cached canonical result with *zero* Miller
loops and at least 5x the cold speed; a trickle of inserts is repaired
by decrypting exactly the inserted rows (SJ.Dec never re-runs over the
retained prefix); and every cached answer stays byte-identical to a
from-scratch join.

``python benchmarks/test_series_queries.py`` regenerates
``BENCH_9.json`` at the repo root (the ROADMAP's perf-trajectory
artifact): a measured repeated-query + trickle-insert TPC-H mix at
SF 0.01, plus the honest compressed-store measurement — prepared
coefficient blocks are near-uniform field elements, so zlib buys
almost nothing; the number is recorded rather than implied.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.bench.workloads import build_encrypted_tpch, tpch_query
from repro.crypto.backend import BN254Backend
from repro.store.tables import encode_encrypted_table, prepare_encrypted_table

_SCALE_FACTOR = 0.01
_SELECTIVITY = 1 / 12.5
_WARM_REPEATS = 5
_TRICKLE_ROUNDS = 3
_TRICKLE_BATCH = 3
#: Warm replay must beat the cold run by at least this factor; measured
#: headroom is ~40x on the fast backend, so 5x tolerates noisy runners.
_MIN_WARM_SPEEDUP = 5.0


def _workload():
    return build_encrypted_tpch(
        _SCALE_FACTOR, use_cache=False, series_cache=True
    )


def _order_row(orderkey: int) -> tuple:
    """A fresh Orders row whose selectivity label the query selects."""
    return (
        orderkey, 7, "O", 1234.5, "1995-01-02", "1-URGENT",
        "Clerk#000000001", 0, "trickle", "1/12.5",
    )


def _repeated_query_series(workload) -> dict:
    ops = workload.server.scheme.backend.ops
    query = workload.client.create_query(tpch_query(_SELECTIVITY))
    start = time.perf_counter()
    cold = workload.server.execute_join(query)
    cold_seconds = time.perf_counter() - start
    warm_seconds = []
    snapshot = ops.snapshot()
    for _ in range(_WARM_REPEATS):
        start = time.perf_counter()
        warm = workload.server.execute_join(query)
        warm_seconds.append(time.perf_counter() - start)
        assert warm.index_pairs == cold.index_pairs
        assert warm.left_payloads == cold.left_payloads
        assert warm.right_payloads == cold.right_payloads
    since = ops.since(snapshot)
    warm_mean = sum(warm_seconds) / len(warm_seconds)
    return {
        "cold_seconds": cold_seconds,
        "cold_decryptions": cold.stats.decryptions,
        "warm_repeats": _WARM_REPEATS,
        "warm_seconds_mean": warm_mean,
        "warm_miller_loops": (
            since.miller_loops + since.prepared_miller_loops
        ),
        "warm_final_exponentiations": since.final_exponentiations,
        "warm_decryptions": warm.stats.decryptions,
        "reused_handles": warm.stats.reused_handles,
        "matches": cold.stats.matches,
        "speedup": cold_seconds / warm_mean,
        "byte_identical": True,
    }


def _trickle_insert_series(workload) -> dict:
    ops = workload.server.scheme.backend.ops
    query = workload.client.create_query(tpch_query(_SELECTIVITY))
    workload.server.execute_join(query)
    dimension = len(workload.server.table("Orders").ciphertexts[0])
    rounds = []
    orderkey = 10_000_000
    for _ in range(_TRICKLE_ROUNDS):
        for _ in range(_TRICKLE_BATCH):
            orderkey += 1
            workload.server.insert_row(
                "Orders",
                *workload.client.encrypt_row_for(
                    "Orders", _order_row(orderkey)
                ),
            )
        snapshot = ops.snapshot()
        start = time.perf_counter()
        refreshed = workload.server.execute_join(query)
        seconds = time.perf_counter() - start
        since = ops.since(snapshot)
        rounds.append({
            "inserted_rows": _TRICKLE_BATCH,
            "seconds": seconds,
            "delta_rows": refreshed.stats.delta_rows,
            "decryptions": refreshed.stats.decryptions,
            "miller_loops_per_row": (
                (since.miller_loops + since.prepared_miller_loops)
                / _TRICKLE_BATCH
            ),
        })
    return {
        "rounds": rounds,
        "dimension": dimension,
        "total_inserted": _TRICKLE_ROUNDS * _TRICKLE_BATCH,
    }


def _compression_series() -> list[dict]:
    """Honest compressed-store numbers: near-uniform blocks don't shrink.

    The ``compress_prepared`` store flag exists and round-trips, but
    pairing coefficients are close to uniform field elements, so the
    measured ratio hovers at 1.0 — recorded so nobody mistakes the
    flag for a win it does not deliver.
    """
    from repro.bench.workloads import clear_cache

    points = []
    for backend_name, rows in (("fast", 64), ("bn254", 6)):
        clear_cache()
        if backend_name == "bn254":
            import random

            from repro.core.client import SecureJoinClient
            from repro.db.schema import Schema
            from repro.db.table import Table

            plain = Table(
                "T", Schema.of(("k", "int"), ("v", "str")),
                [(i, f"v{i}") for i in range(rows)],
            )
            client = SecureJoinClient.for_tables(
                [(plain, "k"), (plain, "k")], in_clause_limit=1,
                backend=BN254Backend(), rng=random.Random(11),
            )
            table = client.encrypt_table(plain, "k")
            backend = client.scheme.backend
        else:
            workload = build_encrypted_tpch(
                0.001, use_cache=False
            )
            table = workload.server.table("Customers")
            backend = workload.server.scheme.backend
            workload.server.close()
        prepare_encrypted_table(table, backend)
        plain_bytes = len(encode_encrypted_table(table, backend))
        compressed_bytes = len(
            encode_encrypted_table(table, backend, compress_prepared=True)
        )
        points.append({
            "backend": backend.name,
            "rows": len(table),
            "plain_bytes": plain_bytes,
            "compressed_bytes": compressed_bytes,
            "ratio": compressed_bytes / plain_bytes,
        })
    return points


@pytest.mark.slow
def test_warm_replay_is_5x_and_runs_zero_pairing_ops():
    """Acceptance: the warm repeated query performs zero Miller loops
    and beats the cold run by at least 5x at SF 0.01."""
    workload = _workload()
    try:
        series = _repeated_query_series(workload)
        assert series["warm_miller_loops"] == 0
        assert series["warm_final_exponentiations"] == 0
        assert series["warm_decryptions"] == 0
        assert series["speedup"] >= _MIN_WARM_SPEEDUP
    finally:
        workload.server.close()


@pytest.mark.slow
def test_trickle_insert_decrypts_exactly_the_delta():
    """Acceptance: every trickle round decrypts exactly the inserted
    rows — one Miller loop per ciphertext element per new row."""
    workload = _workload()
    try:
        series = _trickle_insert_series(workload)
        for round_record in series["rounds"]:
            assert round_record["delta_rows"] == _TRICKLE_BATCH
            assert round_record["decryptions"] == _TRICKLE_BATCH
            assert (
                round_record["miller_loops_per_row"]
                == series["dimension"]
            )
    finally:
        workload.server.close()


def collect_trajectory() -> dict:
    """Measure the BENCH_9 figures; returns the JSON-ready record."""
    workload = _workload()
    try:
        repeated = _repeated_query_series(workload)
        trickle = _trickle_insert_series(workload)
    finally:
        workload.server.close()
    return {
        "benchmark": "series_queries",
        "description": (
            "Cross-query series cache under a repeated-query + "
            "trickle-insert TPC-H mix: the first execution retains "
            "decrypted handles and live matcher state, warm replays "
            "run zero Miller loops, and inserts are delta-maintained "
            "(SJ.Dec over exactly the new rows, fed into the retained "
            "matcher). compression_series is the honest "
            "compress_prepared measurement: near-uniform coefficient "
            "blocks give a ~1.0 ratio, so the flag stays opt-in."
        ),
        "cpu_count": os.cpu_count(),
        "scale_factor": _SCALE_FACTOR,
        "selectivity": _SELECTIVITY,
        "backend": "fast",
        "repeated_query": repeated,
        "trickle_insert": trickle,
        "compression_series": _compression_series(),
    }


def main() -> None:
    record = collect_trajectory()
    out = Path(__file__).resolve().parent.parent / "BENCH_9.json"
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {out}")
    print(json.dumps(record, indent=2))


if __name__ == "__main__":
    main()
