"""Ablations over the design choices DESIGN.md calls out.

1. Pre-filter on/off — the paper's evaluation regime (SSE pre-filter,
   decrypt only selected rows) vs. the maximally private regime
   (decrypt everything).
2. Backend — the identical scheme operation on the real BN254 pairing
   vs. the fast exponent backend (quantifies the DESIGN.md §4
   substitution).
3. Multi-pairing — Secure Join decryption is a product of pairings;
   sharing one final exponentiation across the d Miller loops vs.
   computing d full pairings.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.workloads import build_encrypted_tpch, tpch_query
from repro.core.scheme import SecureJoinParams, SecureJoinScheme
from repro.crypto.backend import get_backend
from repro.crypto.curve import G1Point, G2Point
from repro.crypto.field import Fp12
from repro.crypto.pairing import (
    final_exponentiation,
    miller_loop,
    multi_pairing,
    pairing,
)
from repro.crypto.pairing_fast import (
    final_exponentiation_fast,
    miller_loop_fast,
    pairing_fast,
)

_SCALE_FACTOR = 0.01
_SELECTIVITY = 1 / 25


@pytest.mark.parametrize("prefilter", [True, False])
def test_prefilter_ablation(benchmark, prefilter):
    workload = build_encrypted_tpch(
        _SCALE_FACTOR, in_clause_limit=1, prefilter=prefilter
    )
    query = tpch_query(_SELECTIVITY)
    encrypted_query = workload.client.create_query(query)

    result = benchmark.pedantic(
        lambda: workload.server.execute_join(encrypted_query),
        rounds=3, iterations=1,
    )
    total_rows = workload.num_customers + workload.num_orders
    if prefilter:
        assert result.stats.decryptions < total_rows
    else:
        assert result.stats.decryptions == total_rows


@pytest.mark.parametrize(
    "backend_name",
    [
        "fast",
        pytest.param(
            "bn254", marks=[pytest.mark.bn254, pytest.mark.slow]
        ),
    ],
)
def test_backend_ablation_decryption(benchmark, backend_name):
    """One SJ.Dec on each backend (m=2, t=1: a 9-dimensional pairing)."""
    backend = get_backend(backend_name)
    scheme = SecureJoinScheme(
        SecureJoinParams(2, 1, backend_name), backend, random.Random(5)
    )
    msk = scheme.setup()
    token = scheme.token(msk, {0: ["x"]}, scheme.new_query_key())
    ciphertext = scheme.encrypt_row(msk, 1, ["x", "y"])

    handle = benchmark.pedantic(
        lambda: scheme.decrypt(token, ciphertext), rounds=2, iterations=1
    )
    assert handle is not None


@pytest.mark.slow
@pytest.mark.bn254
class TestPairingImplementations:
    """Reference vs. optimized pairing: Miller loop and final exponentiation.

    The optimized path (twist-native affine Miller loop + sparse line
    multiplication + addition-chain hard part) is what the BN254 backend
    uses; the reference implementation is the correctness oracle.
    """

    _P = G1Point.generator() * 123456789
    _Q = G2Point.generator() * 987654321

    def test_reference_pairing(self, benchmark):
        result = benchmark.pedantic(
            lambda: pairing(self._P, self._Q), rounds=3, iterations=1
        )
        assert not result.is_one()

    def test_optimized_pairing(self, benchmark):
        result = benchmark.pedantic(
            lambda: pairing_fast(self._P, self._Q), rounds=3, iterations=1
        )
        assert result == pairing(self._P, self._Q)

    def test_reference_miller_loop(self, benchmark):
        benchmark.pedantic(
            lambda: miller_loop(self._Q, self._P), rounds=3, iterations=1
        )

    def test_optimized_miller_loop(self, benchmark):
        benchmark.pedantic(
            lambda: miller_loop_fast(self._Q, self._P), rounds=3, iterations=1
        )

    def test_reference_final_exponentiation(self, benchmark):
        f = miller_loop(self._Q, self._P)
        benchmark.pedantic(
            lambda: final_exponentiation(f), rounds=3, iterations=1
        )

    def test_optimized_final_exponentiation(self, benchmark):
        f = miller_loop_fast(self._Q, self._P)
        benchmark.pedantic(
            lambda: final_exponentiation_fast(f), rounds=3, iterations=1
        )


@pytest.mark.slow
@pytest.mark.bn254
class TestMultiPairing:
    _PAIRS = [
        (G1Point.generator() * a, G2Point.generator() * b)
        for a, b in [(2, 3), (5, 7), (11, 13), (17, 19)]
    ]

    def test_shared_final_exponentiation(self, benchmark):
        result = benchmark.pedantic(
            lambda: multi_pairing(self._PAIRS), rounds=2, iterations=1
        )
        assert not result.is_one()

    def test_naive_product_of_pairings(self, benchmark):
        def naive():
            product = Fp12.one()
            for p, q in self._PAIRS:
                product = product * pairing(p, q)
            return product

        result = benchmark.pedantic(naive, rounds=2, iterations=1)
        assert result == multi_pairing(self._PAIRS)
