"""Figure 2: per-row crypto operation micro-benchmarks vs. IN-clause size.

Paper reference (BN254 in C, Customers row, m = 8):
  token generation < 2 ms flat in t;
  encryption 3.4 ms (t=1) -> 9.6 ms (t=10), linear;
  decryption 21.2 ms (t=1) -> 53 ms (t=10), linear and dominant.

The BN254 groups here are pure Python, so absolute numbers are larger by
a constant factor; the orderings (dec > enc > token) and the linear
growth in t are the reproduction targets.  The fast backend rows give
the same sweep at exponent-arithmetic cost.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import BN254_T_VALUES
from repro.core.scheme import SecureJoinParams, SecureJoinScheme
from repro.crypto.backend import get_backend

_M = 8  # Customers non-join attributes, as in the paper.
_ATTRIBUTES = (
    "Customer#000004242", "1709 regular st.", 7, "21-467-899-1042",
    3056.30, "BUILDING", "carefully final accounts sleep", "1/100",
)


def _scheme(t: int, backend_name: str) -> tuple[SecureJoinScheme, object]:
    backend = get_backend(backend_name)
    scheme = SecureJoinScheme(
        SecureJoinParams(_M, t, backend_name), backend, random.Random(1)
    )
    return scheme, scheme.setup()


@pytest.mark.parametrize("t", list(range(1, 11)))
class TestFastBackend:
    def test_token_generation(self, benchmark, t):
        scheme, msk = _scheme(t, "fast")
        key = scheme.new_query_key()
        selection = {0: [f"v{i}" for i in range(t)]}
        benchmark(lambda: scheme.token(msk, selection, key))

    def test_encryption(self, benchmark, t):
        scheme, msk = _scheme(t, "fast")
        benchmark(lambda: scheme.encrypt_row(msk, 4242, _ATTRIBUTES))

    def test_decryption(self, benchmark, t):
        scheme, msk = _scheme(t, "fast")
        token = scheme.token(
            msk, {0: [f"v{i}" for i in range(t)]}, scheme.new_query_key()
        )
        ciphertext = scheme.encrypt_row(msk, 4242, _ATTRIBUTES)
        benchmark(lambda: scheme.decrypt(token, ciphertext))


@pytest.mark.slow
@pytest.mark.bn254
@pytest.mark.parametrize("t", list(BN254_T_VALUES))
class TestBN254Backend:
    """The real pairing. One round per op: each call is ms-to-seconds."""

    def test_token_generation(self, benchmark, t):
        scheme, msk = _scheme(t, "bn254")
        key = scheme.new_query_key()
        selection = {0: [f"v{i}" for i in range(t)]}
        benchmark.pedantic(
            lambda: scheme.token(msk, selection, key), rounds=1, iterations=1
        )

    def test_encryption(self, benchmark, t):
        scheme, msk = _scheme(t, "bn254")
        benchmark.pedantic(
            lambda: scheme.encrypt_row(msk, 4242, _ATTRIBUTES),
            rounds=1, iterations=1,
        )

    def test_decryption(self, benchmark, t):
        scheme, msk = _scheme(t, "bn254")
        token = scheme.token(
            msk, {0: [f"v{i}" for i in range(t)]}, scheme.new_query_key()
        )
        ciphertext = scheme.encrypt_row(msk, 4242, _ATTRIBUTES)
        benchmark.pedantic(
            lambda: scheme.decrypt(token, ciphertext), rounds=1, iterations=1
        )
