"""Encrypted joins over TPC-H data: the paper's evaluation workload.

Generates the Customers and Orders tables at a small scale factor,
encrypts and uploads them, then runs the paper's benchmark query --
join on custkey, filtered by the selectivity column -- for each of the
four selectivity values, reporting server-side work.

Run:  python examples/tpch_join.py [scale_factor]
"""

from __future__ import annotations

import sys
import time

from repro.bench.workloads import build_encrypted_tpch, tpch_query
from repro.db.database import Database
from repro.tpch.generator import SELECTIVITY_VALUES, TPCHGenerator


def main(scale_factor: float = 0.005) -> None:
    print(f"Building encrypted TPC-H pair at scale factor {scale_factor} ...")
    start = time.perf_counter()
    workload = build_encrypted_tpch(scale_factor, in_clause_limit=1)
    elapsed = time.perf_counter() - start
    print(f"  {workload.num_customers} customers + {workload.num_orders} "
          f"orders encrypted and uploaded in {elapsed:.1f}s\n")

    # Plaintext mirror for ground-truth checking.
    customers, orders = TPCHGenerator(scale_factor).both()
    db = Database()
    db.add_table(customers)
    db.add_table(orders)

    print(f"{'selectivity':>12} {'join time':>10} {'decryptions':>12} "
          f"{'matches':>8}")
    for selectivity in SELECTIVITY_VALUES:
        query = tpch_query(selectivity)
        encrypted_query = workload.client.create_query(query)
        start = time.perf_counter()
        result = workload.server.execute_join(encrypted_query)
        elapsed = time.perf_counter() - start
        truth = db.execute(query)
        assert sorted(result.index_pairs) == sorted(truth.index_pairs), (
            "encrypted join must agree with the plaintext join"
        )
        print(f"{selectivity:>12.4f} {elapsed:>9.3f}s "
              f"{result.stats.decryptions:>12} {result.stats.matches:>8}")

    print("\nAll encrypted results verified against plaintext execution.")
    print("Runtime grows with selectivity (more rows decrypted), matching "
          "Figure 3's trend.")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.005)
