"""Quickstart: encrypt two tables, run an encrypted equi-join, decrypt.

This walks the paper's running example (Tables 1-4): the Teams and
Employees tables, joined on Team = Key with selections on Name and Role.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import (
    Database,
    JoinQuery,
    Schema,
    SecureJoinClient,
    SecureJoinServer,
    Table,
)


def main() -> None:
    # --- the plaintext data (Tables 1 and 2 of the paper) -----------------
    teams = Table(
        "Teams",
        Schema.of(("key", "int"), ("name", "str")),
        [(1, "Web Application"), (2, "Database")],
    )
    employees = Table(
        "Employees",
        Schema.of(("record", "int"), ("employee", "str"),
                  ("role", "str"), ("team", "int")),
        [
            (1, "Hans", "Programmer", 1),
            (2, "Kaily", "Tester", 1),
            (3, "John", "Programmer", 2),
            (4, "Sally", "Tester", 2),
        ],
    )

    # --- upload phase (client encrypts, server stores) ---------------------
    client = SecureJoinClient.for_tables(
        [(teams, "key"), (employees, "team")],
        in_clause_limit=3,
        rng=random.Random(2022),
    )
    server = SecureJoinServer(client.params)
    server.store(client.encrypt_table(teams, "key"))
    server.store(client.encrypt_table(employees, "team"))
    print("Uploaded encrypted tables:",
          f"Teams ({len(teams)} rows), Employees ({len(employees)} rows)\n")

    # --- query phase (the t1 query of Section 2.1) -----------------------
    query = JoinQuery.build(
        "Teams", "Employees", on=("key", "team"),
        where_left={"name": ["Web Application"]},
        where_right={"role": ["Tester"]},
    )
    print("Query:", query)

    encrypted_query = client.create_query(query)
    result = server.execute_join(encrypted_query)
    print(f"Server stats: {result.stats}\n")

    decrypted = client.decrypt_result(result)
    print("Decrypted join result (the paper's Table 3):")
    print(decrypted.table.pretty())

    # --- sanity: the encrypted path agrees with plaintext execution -------
    db = Database()
    db.add_table(teams)
    db.add_table(employees)
    truth = db.execute(query)
    assert sorted(decrypted.table.rows()) == sorted(truth.table.rows())
    print("\nEncrypted result matches plaintext ground truth.")


if __name__ == "__main__":
    main()
