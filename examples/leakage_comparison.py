"""Reproduce the paper's Section 2.1 leakage analysis (Example 2.1).

Replays the two queries of the running example against four schemes —
deterministic encryption, CryptDB onions, Hahn et al., and Secure Join —
and prints how many true equality pairs each scheme has revealed after
upload (t0), after the first query (t1) and after the second (t2).

Expected output (the paper's narrative):

    deterministic   6  6  6     (everything leaks at upload)
    cryptdb         0  6  6     (first join strips the whole column)
    hahn            0  1  6     (minimal per query, super-additive total)
    securejoin      0  1  2     (the transitive-closure minimum)

Run:  python examples/leakage_comparison.py
"""

from __future__ import annotations

import random

from repro.baselines import (
    CryptDBScheme,
    DeterministicScheme,
    HahnScheme,
    SecureJoinAdapter,
)
from repro.bench.experiments import example_queries, example_tables
from repro.leakage import analyze_schemes


def main() -> None:
    tables = example_tables()
    queries = example_queries()

    print("Tables:")
    for table, join_column in tables:
        print(f"\n{table.name} (join column: {join_column})")
        print(table.pretty())

    print("\nQuery series:")
    for i, query in enumerate(queries, start=1):
        print(f"  t{i}: {query}")

    schemes = [
        DeterministicScheme(),
        CryptDBScheme(),
        HahnScheme(),
        SecureJoinAdapter(rng=random.Random(42)),
    ]
    timeline = analyze_schemes(schemes, tables, queries)

    print("\nRevealed equality pairs over time:")
    print(timeline.format_table())

    print("\nSuper-additive leakage (reveals more than the closure of the "
          "union of per-query leakages)?")
    for name, trace in timeline.traces.items():
        verdict = "YES" if trace.is_super_additive(timeline.floor) else "no"
        print(f"  {name:15s} {verdict}")

    securejoin = timeline.traces["securejoin"]
    assert securejoin.revealed == timeline.floor, (
        "Secure Join should achieve exactly the minimal leakage"
    )
    print("\nSecure Join achieves exactly the minimum: the transitive "
          "closure of the union of per-query leakages.")


if __name__ == "__main__":
    main()
