"""Composing encrypted joins: a three-table query as a series of queries.

The paper's scheme joins two tables per query; richer queries compose.
Here a Regions-Suppliers-Shipments chain runs as two encrypted joins;
the client stitches the decrypted halves.  Because every query uses a
fresh key, the two joins leak only their own matched pairs — composing
queries never reveals more than the closure of the individual leakages.

Run:  python examples/three_way_join.py
"""

from __future__ import annotations

import random

from repro import (
    Database,
    JoinQuery,
    Schema,
    SecureJoinClient,
    SecureJoinServer,
    Table,
)


def main() -> None:
    regions = Table(
        "Regions",
        Schema.of(("rid", "int"), ("rname", "str")),
        [(1, "north"), (2, "south")],
    )
    suppliers = Table(
        "Suppliers",
        Schema.of(("sid", "int"), ("rid", "int"), ("sname", "str")),
        [(10, 1, "Acme"), (11, 1, "Bolt"), (12, 2, "Crux")],
    )
    shipments = Table(
        "Shipments",
        Schema.of(("sid", "int"), ("item", "str"), ("urgent", "str")),
        [(10, "pipes", "yes"), (11, "nails", "no"),
         (12, "beams", "yes"), (10, "tiles", "no")],
    )

    # Each encrypted table is bound to ONE join column (the H(a0) slot of
    # its row vectors), so a table joining on two different attributes is
    # uploaded twice, once per join key — the standard deployment pattern.
    suppliers_by_sid = suppliers.rename("SuppliersBySid")

    client = SecureJoinClient.for_tables(
        [(regions, "rid"), (suppliers, "rid"),
         (suppliers_by_sid, "sid"), (shipments, "sid")],
        in_clause_limit=2,
        rng=random.Random(13),
    )
    server = SecureJoinServer(client.params)
    server.store(client.encrypt_table(regions, "rid"))
    server.store(client.encrypt_table(suppliers, "rid"))
    server.store(client.encrypt_table(suppliers_by_sid, "sid"))
    server.store(client.encrypt_table(shipments, "sid"))

    # Hop 1: Regions x Suppliers on rid.
    hop1 = JoinQuery.build("Regions", "Suppliers", on=("rid", "rid"),
                           where_left={"rname": ["north"]})
    first = client.decrypt_result(
        server.execute_join(client.create_query(hop1))
    )
    print("Hop 1 (Regions JOIN Suppliers WHERE rname = 'north'):")
    print(first.table.pretty(), "\n")

    # Hop 2: Suppliers x Shipments on sid, restricted to urgent shipments.
    hop2 = JoinQuery.build("SuppliersBySid", "Shipments", on=("sid", "sid"),
                           where_right={"urgent": ["yes"]})
    second = client.decrypt_result(
        server.execute_join(client.create_query(hop2))
    )
    print("Hop 2 (Suppliers JOIN Shipments WHERE urgent = 'yes'):")
    print(second.table.pretty(), "\n")

    # Client-side stitch on the shared supplier id.  (Hop 2's schema
    # prefixes the colliding "sid" columns, so address the left one.)
    sid_first = first.table.schema.index_of("Suppliers.sid")
    sid_second = second.table.schema.index_of("SuppliersBySid.sid")
    stitched = [
        a + b
        for a in first.table.rows()
        for b in second.table.rows()
        if a[sid_first] == b[sid_second]
    ]
    print("Stitched three-way rows (region, supplier, urgent shipment):")
    for row in stitched:
        print("  ", row)

    # Ground truth via the plaintext engine, composed the same way.
    db = Database()
    for table in (regions, suppliers, suppliers_by_sid, shipments):
        db.add_table(table)
    truth_first = db.execute(hop1).table.rows()
    truth_second = db.execute(hop2).table.rows()
    truth = [
        a + b
        for a in truth_first
        for b in truth_second
        if a[sid_first] == b[sid_second]
    ]
    assert sorted(stitched) == sorted(truth)
    print("\nComposed encrypted result matches plaintext composition; the "
          "two hops used independent query keys, so the server cannot link "
          "them beyond the returned matches.")


if __name__ == "__main__":
    main()
