"""Issue encrypted joins through the SQL front end.

The restricted SQL grammar covers exactly the paper's query shape:

    SELECT * FROM A JOIN B ON A.x = B.y
    WHERE A.c IN (...) AND B.d = ...

Run:  python examples/sql_interface.py
"""

from __future__ import annotations

import random

from repro import (
    Schema,
    SecureJoinClient,
    SecureJoinServer,
    Table,
    parse_join_query,
)


def main() -> None:
    products = Table(
        "Products",
        Schema.of(("sku", "int"), ("category", "str"), ("price", "float")),
        [
            (100, "widgets", 9.99),
            (200, "gadgets", 24.50),
            (300, "widgets", 3.75),
        ],
    )
    sales = Table(
        "Sales",
        Schema.of(("sale", "int"), ("sku", "int"), ("store", "str")),
        [
            (1, 100, "north"),
            (2, 200, "south"),
            (3, 100, "south"),
            (4, 300, "north"),
        ],
    )

    client = SecureJoinClient.for_tables(
        [(products, "sku"), (sales, "sku")],
        in_clause_limit=2,
        rng=random.Random(99),
    )
    server = SecureJoinServer(client.params)
    server.store(client.encrypt_table(products, "sku"))
    server.store(client.encrypt_table(sales, "sku"))

    sql = (
        "SELECT * FROM Products JOIN Sales ON Products.sku = Sales.sku "
        "WHERE category = 'widgets' AND store = 'north'"
    )
    print("SQL:", sql, "\n")

    query = parse_join_query(
        sql, left_schema=products.schema, right_schema=sales.schema
    )
    print("Parsed:", query, "\n")

    result = server.execute_join(client.create_query(query))
    decrypted = client.decrypt_result(result)
    print("Result:")
    print(decrypted.table.pretty())


if __name__ == "__main__":
    main()
