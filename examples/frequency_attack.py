"""Frequency-analysis attack: why join-column leakage matters.

Naveed et al. (CCS 2015) broke CryptDB-style deterministic columns with
frequency analysis — the attack that motivates this paper.  This example
mounts the attack against the adversary view of deterministic
encryption and of Secure Join on a skewed (Zipf-like) join column, and
prints the fraction of rows whose join value the attacker recovers.

Run:  python examples/frequency_attack.py
"""

from __future__ import annotations

import random

from repro import JoinQuery, Schema, Table
from repro.baselines import DeterministicScheme, SecureJoinAdapter
from repro.leakage import attack_scheme_view


def build_tables(seed: int = 5, n_left: int = 60, n_right: int = 200):
    """Employees and tickets sharing a skewed department column."""
    rng = random.Random(seed)
    departments = [1] * 8 + [2] * 4 + [3] * 2 + [4, 5]  # Zipf-ish weights
    employees = Table(
        "Employees",
        Schema.of(("dept", "int"), ("badge", "str")),
        [(rng.choice(departments), f"e{i}") for i in range(n_left)],
    )
    tickets = Table(
        "Tickets",
        Schema.of(("dept", "int"), ("ticket", "str")),
        [(rng.choice(departments), f"t{i}") for i in range(n_right)],
    )
    return [(employees, "dept"), (tickets, "dept")]


def main() -> None:
    tables = build_tables()
    total_rows = sum(len(t) for t, _ in tables)
    print(f"Dataset: {total_rows} rows, skewed join column (5 departments)\n")

    det = DeterministicScheme()
    det.upload(tables)
    det_result = attack_scheme_view(det.revealed_pairs(), tables)
    print("Deterministic encryption (leaks at upload, before any query):")
    print(f"  attacker recovers {det_result.correct}/{det_result.total} rows "
          f"({det_result.recovery_rate:.0%})\n")

    securejoin = SecureJoinAdapter(rng=random.Random(77))
    securejoin.upload(tables)
    at_upload = attack_scheme_view(securejoin.revealed_pairs(), tables)
    print("Secure Join, after upload:")
    print(f"  attacker recovers {at_upload.correct}/{at_upload.total} rows "
          f"({at_upload.recovery_rate:.0%})")

    for i in range(3):
        securejoin.run_query(JoinQuery.build(
            "Employees", "Tickets", on=("dept", "dept"),
            where_left={"badge": [f"e{2 * i}", f"e{2 * i + 1}"]},
            where_right={"ticket": [f"t{3 * i}", f"t{3 * i + 1}"]},
        ))
        step = attack_scheme_view(securejoin.revealed_pairs(), tables)
        print(f"Secure Join, after {i + 1} selective quer"
              f"{'y' if i == 0 else 'ies'}: "
              f"{step.correct}/{step.total} rows "
              f"({step.recovery_rate:.0%})")

    final = attack_scheme_view(securejoin.revealed_pairs(), tables)
    print(f"\nThe attack is {det_result.recovery_rate / max(final.recovery_rate, 1e-9):.0f}x "
          "less effective against Secure Join on this workload: leakage is "
          "confined to rows that matched a selection criterion, under "
          "per-query keys.")


if __name__ == "__main__":
    main()
