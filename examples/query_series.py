"""A series of queries: fresh keys, unlinkable handles, closure-only leakage.

Demonstrates the paper's headline property on a many-to-many dataset:
repeating and varying queries never lets the server link results across
queries beyond the transitive closure of what each query individually
revealed.

Run:  python examples/query_series.py
"""

from __future__ import annotations

import random

from repro import (
    JoinQuery,
    Schema,
    SecureJoinClient,
    SecureJoinServer,
    Table,
)
from repro.baselines import HahnScheme, SecureJoinAdapter
from repro.errors import QueryError
from repro.leakage import analyze_schemes


def main() -> None:
    # Suppliers and shipments share region codes (a many-to-many join that
    # Hahn et al.'s PK/FK-only scheme cannot even express on this data).
    suppliers = Table(
        "Suppliers",
        Schema.of(("region", "int"), ("name", "str"), ("tier", "str")),
        [
            (10, "Acme", "gold"),
            (10, "Bolt", "silver"),
            (20, "Crux", "gold"),
            (30, "Dyno", "bronze"),
        ],
    )
    shipments = Table(
        "Shipments",
        Schema.of(("shipment", "int"), ("region", "int"), ("priority", "str")),
        [
            (1, 10, "high"),
            (2, 20, "low"),
            (3, 20, "high"),
            (4, 30, "low"),
            (5, 10, "low"),
        ],
    )

    client = SecureJoinClient.for_tables(
        [(suppliers, "region"), (shipments, "region")],
        in_clause_limit=2,
        rng=random.Random(7),
    )
    server = SecureJoinServer(client.params)
    server.store(client.encrypt_table(suppliers, "region"))
    server.store(client.encrypt_table(shipments, "region"))

    queries = [
        JoinQuery.build("Suppliers", "Shipments", on=("region", "region"),
                        where_left={"tier": ["gold"]},
                        where_right={"priority": ["high"]}),
        JoinQuery.build("Suppliers", "Shipments", on=("region", "region"),
                        where_left={"tier": ["bronze"]},
                        where_right={"priority": ["low"]}),
        JoinQuery.build("Suppliers", "Shipments", on=("region", "region"),
                        where_left={"tier": ["silver", "bronze"]},
                        where_right={"priority": ["high"]}),
    ]

    print("Running a series of three queries...\n")
    for i, query in enumerate(queries, start=1):
        result = server.execute_join(client.create_query(query))
        decrypted = client.decrypt_result(result)
        print(f"t{i}: {query}")
        print(f"    {len(decrypted.table)} joined rows, "
              f"{result.stats.decryptions} decryptions\n")

    # Handles for the same row differ across queries: unlinkable.
    first, second = server.observations[0], server.observations[1]
    shared = set(first.handles) & set(second.handles)
    relinked = [r for r in shared if first.handles[r] == second.handles[r]]
    print(f"Rows decrypted by both q1 and q2: {len(shared)}; "
          f"handles that coincide across the queries: {len(relinked)}")
    assert not relinked, "fresh query keys must make handles unlinkable"

    # Hahn et al.'s scheme cannot even express this workload: the join is
    # many-to-many (duplicate regions on both sides), but their
    # construction supports only primary-key/foreign-key joins.
    hahn = HahnScheme()
    hahn.upload([(suppliers, "region"), (shipments, "region")])
    try:
        hahn.run_query(queries[0])
        raise AssertionError("expected the PK/FK restriction to trigger")
    except QueryError as error:
        print(f"\nHahn et al. baseline rejects this workload: {error}")

    # On a PK/FK variant (unique supplier regions), compare the leakage
    # timelines of the two schemes directly.
    pk_suppliers = Table(
        "Suppliers", suppliers.schema,
        [(10, "Acme", "gold"), (20, "Crux", "gold"),
         (30, "Dyno", "bronze"), (40, "Echo", "silver")],
    )
    print("\nLeakage timeline vs. Hahn et al. on a PK/FK variant:")
    timeline = analyze_schemes(
        [HahnScheme(), SecureJoinAdapter(rng=random.Random(8))],
        [(pk_suppliers, "region"), (shipments, "region")],
        queries,
    )
    print(timeline.format_table())
    print("\nSecure Join stays on the floor (closure of the union); the "
          "selection-gated baseline overshoots once queries overlap.")


if __name__ == "__main__":
    main()
