"""Timing and reporting utilities for the experiment drivers."""

from __future__ import annotations

import statistics
import time
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field


@dataclass
class BenchmarkRecord:
    """One measured configuration: parameters plus timing statistics."""

    params: dict
    seconds_mean: float
    seconds_stdev: float = 0.0
    repeats: int = 1
    extra: dict = field(default_factory=dict)

    @property
    def millis_mean(self) -> float:
        return self.seconds_mean * 1000.0


@dataclass
class ExperimentResult:
    """A named experiment with its measured records."""

    name: str
    records: list[BenchmarkRecord] = field(default_factory=list)
    notes: str = ""

    def filter(self, **params) -> list[BenchmarkRecord]:
        """Records whose parameters match all given key/value pairs."""
        return [
            r
            for r in self.records
            if all(r.params.get(k) == v for k, v in params.items())
        ]

    def series(self, x_param: str, group_param: str | None = None):
        """Group records into plottable series: {group: [(x, seconds)]}."""
        series: dict[object, list[tuple[object, float]]] = {}
        for record in self.records:
            group = record.params.get(group_param) if group_param else ""
            series.setdefault(group, []).append(
                (record.params.get(x_param), record.seconds_mean)
            )
        for points in series.values():
            points.sort(key=lambda p: p[0])
        return series


def speedup_series(
    result: ExperimentResult,
    x_param: str,
    group_param: str,
    baseline_group: object,
) -> dict[object, list[tuple[object, float]]]:
    """Per-group speedup over a baseline group: ``{group: [(x, x̄_base/x̄)]}``.

    Used by the engine ablation to report how much faster each execution
    engine runs than the serial baseline at every sweep point.
    """
    series = result.series(x_param, group_param)
    if baseline_group not in series:
        raise ValueError(
            f"baseline group {baseline_group!r} not present in results"
        )
    baseline = dict(series[baseline_group])
    speedups: dict[object, list[tuple[object, float]]] = {}
    for group, points in series.items():
        if group == baseline_group:
            continue
        speedups[group] = [
            (x, baseline[x] / seconds)
            for x, seconds in points
            if x in baseline and seconds > 0
        ]
    return speedups


def time_callable(
    fn: Callable[[], object],
    repeats: int = 3,
    warmup: int = 0,
) -> tuple[float, float]:
    """Run ``fn`` ``repeats`` times; return (mean, stdev) seconds."""
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    mean = statistics.fmean(samples)
    stdev = statistics.stdev(samples) if len(samples) > 1 else 0.0
    return mean, stdev


def format_series_table(
    title: str,
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str],
) -> str:
    """Render measurement rows as an aligned text table (paper style)."""
    header = [str(c) for c in columns]
    body = [[_fmt(row.get(c)) for c in columns] for row in rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
        for i in range(len(columns))
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
