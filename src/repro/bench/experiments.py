"""Experiment drivers: one function per paper artifact (Section 6).

Every driver returns an :class:`~repro.bench.harness.ExperimentResult`
whose records carry the same parameters the paper sweeps, so the
benchmark files and ``python -m repro.bench`` can print paper-style
tables.  Absolute times differ from the paper (pure Python vs. the
authors' C prototype — see EXPERIMENTS.md); the sweeps and trends are
the reproduction target.
"""

from __future__ import annotations

import random

from repro.baselines import (
    CryptDBScheme,
    DeterministicScheme,
    HahnScheme,
    SecureJoinAdapter,
)
from repro.bench.harness import BenchmarkRecord, ExperimentResult, time_callable
from repro.bench.workloads import build_encrypted_tpch, tpch_query
from repro.core.scheme import SecureJoinParams, SecureJoinScheme
from repro.crypto.backend import get_backend
from repro.db.query import JoinQuery
from repro.db.schema import Schema
from repro.db.table import Table
from repro.leakage.analyzer import analyze_schemes
from repro.tpch.generator import SELECTIVITY_VALUES, TPCHGenerator

# A single Customers row (m = 8 non-join attributes), as in Figure 2.
_CUSTOMERS_M = 8
_SAMPLE_JOIN_VALUE = 4242
_SAMPLE_ATTRIBUTES = (
    "Customer#000004242",
    "1709 regular st.",
    7,
    "21-467-899-1042",
    3056.30,
    "BUILDING",
    "carefully final accounts sleep",
    "1/100",
)


def figure2(
    t_values=tuple(range(1, 11)),
    backend_name: str = "bn254",
    repeats: int = 3,
    seed: int = 1,
) -> ExperimentResult:
    """Figure 2: TokenGen / Encryption / Decryption time per row vs. t.

    Uses one Customers row exactly as the paper does.  Each record's
    params carry ``t`` and ``operation``; seconds are per single call.
    """
    backend = get_backend(backend_name)
    result = ExperimentResult(
        name="figure2",
        notes=f"crypto micro-benchmarks, backend={backend_name}, m={_CUSTOMERS_M}",
    )
    for t in t_values:
        rng = random.Random(seed)
        params = SecureJoinParams(_CUSTOMERS_M, t, backend_name)
        scheme = SecureJoinScheme(params, backend, rng)
        msk = scheme.setup()
        selection = {0: [f"value-{i}" for i in range(t)]}
        query_key = scheme.new_query_key()

        token_mean, token_stdev = time_callable(
            lambda: scheme.token(msk, selection, query_key), repeats=repeats
        )
        result.records.append(BenchmarkRecord(
            {"t": t, "operation": "token_generation"},
            token_mean, token_stdev, repeats,
        ))

        enc_mean, enc_stdev = time_callable(
            lambda: scheme.encrypt_row(
                msk, _SAMPLE_JOIN_VALUE, _SAMPLE_ATTRIBUTES
            ),
            repeats=repeats,
        )
        result.records.append(BenchmarkRecord(
            {"t": t, "operation": "encryption"}, enc_mean, enc_stdev, repeats,
        ))

        token = scheme.token(msk, selection, query_key)
        ciphertext = scheme.encrypt_row(
            msk, _SAMPLE_JOIN_VALUE, _SAMPLE_ATTRIBUTES
        )
        dec_mean, dec_stdev = time_callable(
            lambda: scheme.decrypt(token, ciphertext), repeats=repeats
        )
        result.records.append(BenchmarkRecord(
            {"t": t, "operation": "decryption"}, dec_mean, dec_stdev, repeats,
        ))
    return result


def figure3(
    scale_factors=(0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09, 0.1),
    selectivities=SELECTIVITY_VALUES,
    repeats: int = 3,
    prefilter: bool = True,
) -> ExperimentResult:
    """Figure 3: server-side join runtime vs. TPC-H scale factor.

    One series per selectivity; the IN clause has a single value (t=1),
    matching Section 6.3.  The measured quantity is the server's work:
    pre-filter + SJ.Dec over selected rows + hash matching.
    """
    result = ExperimentResult(
        name="figure3",
        notes="join runtime vs scale factor (fast backend, prefilter="
              f"{prefilter})",
    )
    for scale_factor in scale_factors:
        workload = build_encrypted_tpch(
            scale_factor, in_clause_limit=1, prefilter=prefilter
        )
        for selectivity in selectivities:
            query = tpch_query(selectivity, in_clause_size=1)
            encrypted_query = workload.client.create_query(query)
            holder = {}

            def run():
                holder["result"] = workload.server.execute_join(encrypted_query)

            mean, stdev = time_callable(run, repeats=repeats)
            stats = holder["result"].stats
            result.records.append(BenchmarkRecord(
                {"scale_factor": scale_factor, "selectivity": selectivity},
                mean, stdev, repeats,
                extra={
                    "decryptions": stats.decryptions,
                    "matches": stats.matches,
                    "rows_total": workload.num_customers + workload.num_orders,
                },
            ))
    return result


def figure4(
    in_clause_sizes=tuple(range(1, 11)),
    selectivities=SELECTIVITY_VALUES,
    scale_factor: float = 0.01,
    repeats: int = 3,
    prefilter: bool = True,
) -> ExperimentResult:
    """Figure 4: server-side join runtime vs. IN-clause size at SF 0.01."""
    result = ExperimentResult(
        name="figure4",
        notes=f"join runtime vs IN-clause size, SF={scale_factor}",
    )
    for t in in_clause_sizes:
        workload = build_encrypted_tpch(
            scale_factor, in_clause_limit=t, prefilter=prefilter
        )
        for selectivity in selectivities:
            query = tpch_query(selectivity, in_clause_size=t)
            encrypted_query = workload.client.create_query(query)
            holder = {}

            def run():
                holder["result"] = workload.server.execute_join(encrypted_query)

            mean, stdev = time_callable(run, repeats=repeats)
            stats = holder["result"].stats
            result.records.append(BenchmarkRecord(
                {"t": t, "selectivity": selectivity},
                mean, stdev, repeats,
                extra={"decryptions": stats.decryptions, "matches": stats.matches},
            ))
    return result


def comparison_with_hahn(
    scale_factors=(0.002, 0.004, 0.006, 0.008, 0.01),
    selectivity: float = 1 / 100,
    repeats: int = 3,
) -> ExperimentResult:
    """Section 6.5: hash join (ours) vs. nested-loop join (Hahn et al.).

    Both matchers run on the *same* encrypted handles, so the measured gap
    is purely the join algorithm — the structural advantage the paper
    claims (expected O(n) vs O(n^2)).  Comparison counts are recorded so
    the quadratic blow-up is visible independently of wall-clock noise.
    """
    result = ExperimentResult(
        name="comparison_hahn",
        notes="hash vs nested-loop matching on identical encrypted handles",
    )
    for scale_factor in scale_factors:
        workload = build_encrypted_tpch(
            scale_factor, in_clause_limit=1, prefilter=True
        )
        query = tpch_query(selectivity, in_clause_size=1)
        encrypted_query = workload.client.create_query(query)
        for algorithm in ("hash", "nested"):
            holder = {}

            def run():
                holder["result"] = workload.server.execute_join(
                    encrypted_query, algorithm=algorithm
                )

            mean, stdev = time_callable(run, repeats=repeats)
            stats = holder["result"].stats
            result.records.append(BenchmarkRecord(
                {"scale_factor": scale_factor, "algorithm": algorithm},
                mean, stdev, repeats,
                extra={
                    "comparisons": stats.comparisons,
                    "matches": stats.matches,
                    "decryptions": stats.decryptions,
                },
            ))
    return result


def engine_ablation(
    scale_factors=(0.01, 0.02, 0.04),
    selectivity: float = 1 / 12.5,
    engines=("serial", "batched", "parallel", "auto"),
    repeats: int = 3,
    prefilter: bool = True,
) -> ExperimentResult:
    """Ablation: SJ.Dec execution engine vs. join runtime and pairing ops.

    Runs the Figure 3 workload under each execution engine
    (:mod:`repro.core.engine`) and records the pairing-operation counts
    alongside wall-clock time, so both the shared-final-exponentiation
    saving of the batched engine and the fan-out of the parallel engine
    are visible.  The parallel engine runs on the workload server's
    persistent pool, so its first record pays the one-time fork and the
    rest measure the warm path; ``auto`` records what the planner chose
    per query (``engine_selected``).  Since the streaming-pipeline PR
    each record also carries the pipeline stage timings —
    ``time_to_first_match`` (how long until the matcher emitted its
    first pair, the streaming win over full-side materialization),
    ``decrypt_seconds`` and ``match_seconds``.  Use
    :func:`repro.bench.harness.speedup_series` with
    ``baseline_group="serial"`` to summarize.
    """
    result = ExperimentResult(
        name="engine_ablation",
        notes=f"execution engines on the Figure 3 workload, s={selectivity}",
    )
    for scale_factor in scale_factors:
        workload = build_encrypted_tpch(
            scale_factor, in_clause_limit=1, prefilter=prefilter
        )
        query = tpch_query(selectivity, in_clause_size=1)
        encrypted_query = workload.client.create_query(query)
        for engine in engines:
            holder = {}

            def run():
                holder["result"] = workload.server.execute_join(
                    encrypted_query, engine=engine
                )

            mean, stdev = time_callable(run, repeats=repeats)
            stats = holder["result"].stats
            result.records.append(BenchmarkRecord(
                {"scale_factor": scale_factor, "engine": engine},
                mean, stdev, repeats,
                extra={
                    "decryptions": stats.decryptions,
                    "matches": stats.matches,
                    "final_exponentiations": stats.final_exponentiations,
                    "miller_loops": stats.miller_loops,
                    "batches": stats.batches,
                    "workers": stats.workers,
                    "engine_selected": stats.engine_selected,
                    "pool_generation": stats.pool_generation,
                    "time_to_first_match": stats.time_to_first_match,
                    "decrypt_seconds": stats.decrypt_seconds,
                    "match_seconds": stats.match_seconds,
                    "concurrent_sides": stats.concurrent_sides,
                },
            ))
        # The workload server is cached across drivers; don't leave its
        # worker pool idling after the measurements (it restarts lazily).
        workload.server.close()
    return result


def example_tables() -> list[tuple[Table, str]]:
    """Tables 1 and 2 of the paper (Teams and Employees)."""
    teams = Table(
        "Teams",
        Schema.of(("key", "int"), ("name", "str")),
        [(1, "Web Application"), (2, "Database")],
    )
    employees = Table(
        "Employees",
        Schema.of(
            ("record", "int"), ("employee", "str"),
            ("role", "str"), ("team", "int"),
        ),
        [
            (1, "Hans", "Programmer", 1),
            (2, "Kaily", "Tester", 1),
            (3, "John", "Programmer", 2),
            (4, "Sally", "Tester", 2),
        ],
    )
    return [(teams, "key"), (employees, "team")]


def example_queries() -> list[JoinQuery]:
    """The t1 and t2 queries of Section 2.1."""
    q1 = JoinQuery.build(
        "Teams", "Employees", on=("key", "team"),
        where_left={"name": ["Web Application"]},
        where_right={"role": ["Tester"]},
    )
    q2 = JoinQuery.build(
        "Teams", "Employees", on=("key", "team"),
        where_left={"name": ["Database"]},
        where_right={"role": ["Programmer"]},
    )
    return [q1, q2]


def leakage_example(seed: int = 3):
    """Section 2.1 / Example 2.1: leakage timeline of all four schemes.

    Returns the :class:`~repro.leakage.analyzer.LeakageTimeline`; the
    expected pair counts are DET 6/6/6, CryptDB 0/6/6, Hahn 0/1/6,
    Secure Join 0/1/2 (the minimum).
    """
    schemes = [
        DeterministicScheme(),
        CryptDBScheme(),
        HahnScheme(),
        SecureJoinAdapter(rng=random.Random(seed)),
    ]
    return analyze_schemes(schemes, example_tables(), example_queries())


def prefilter_ablation(
    scale_factor: float = 0.01,
    selectivity: float = 1 / 100,
    repeats: int = 3,
) -> ExperimentResult:
    """Ablation: server join time with and without the SSE pre-filter.

    Without the pre-filter the server runs SJ.Dec on *every* row (the
    maximally private regime); with it, only on the selected fraction
    (the paper's evaluation regime).
    """
    result = ExperimentResult(
        name="prefilter_ablation",
        notes=f"SF={scale_factor}, selectivity={selectivity}",
    )
    for prefilter in (True, False):
        workload = build_encrypted_tpch(
            scale_factor, in_clause_limit=1, prefilter=prefilter
        )
        query = tpch_query(selectivity, in_clause_size=1)
        encrypted_query = workload.client.create_query(query)
        holder = {}

        def run():
            holder["result"] = workload.server.execute_join(encrypted_query)

        mean, stdev = time_callable(run, repeats=repeats)
        stats = holder["result"].stats
        result.records.append(BenchmarkRecord(
            {"prefilter": prefilter},
            mean, stdev, repeats,
            extra={"decryptions": stats.decryptions, "matches": stats.matches},
        ))
    return result


def backend_ablation(repeats: int = 3, seed: int = 2) -> ExperimentResult:
    """Ablation: identical per-row crypto on BN254 vs. the fast backend.

    Quantifies the substitution documented in DESIGN.md §4: what one row
    costs on the real pairing vs. the exponent-space backend.
    """
    result = ExperimentResult(name="backend_ablation")
    for backend_name in ("fast", "bn254"):
        sub = figure2(
            t_values=(1,), backend_name=backend_name,
            repeats=repeats, seed=seed,
        )
        for record in sub.records:
            record.params["backend"] = backend_name
            result.records.append(record)
    return result


def minimum_rows_decrypted(
    scale_factor: float = 0.01, selectivity: float = 1 / 100
) -> dict:
    """Sanity numbers for EXPERIMENTS.md: how many rows each query touches."""
    generator = TPCHGenerator(scale_factor)
    customers, orders = generator.both()
    label_count_customers = sum(
        1 for v in customers.column_values("selectivity")
        if v == tpch_query(selectivity).left_selection.as_dict()["selectivity"][0]
    )
    label_count_orders = sum(
        1 for v in orders.column_values("selectivity")
        if v == tpch_query(selectivity).right_selection.as_dict()["selectivity"][0]
    )
    return {
        "customers": len(customers),
        "orders": len(orders),
        "selected_customers": label_count_customers,
        "selected_orders": label_count_orders,
    }
