"""Print the paper's evaluation tables: ``python -m repro.bench [--full]``.

Default mode keeps the total runtime to a couple of minutes; ``--full``
runs the complete parameter sweeps of the paper (expect tens of minutes
on the BN254 micro-benchmarks).
"""

from __future__ import annotations

import argparse

from repro.bench import experiments
from repro.bench.costmodel import calibrate_engine_cost_model
from repro.bench.harness import ExperimentResult, format_series_table
from repro.crypto.backend import get_backend


def _print_result(result: ExperimentResult, columns: list[str]) -> None:
    rows = []
    for record in result.records:
        row = dict(record.params)
        row["seconds"] = record.seconds_mean
        row["millis"] = record.millis_mean
        row.update(record.extra)
        rows.append(row)
    print(format_series_table(
        f"{result.name}  ({result.notes})", rows, columns
    ))
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true",
        help="run the complete paper sweeps (slow)",
    )
    parser.add_argument(
        "--skip-bn254", action="store_true",
        help="skip the real-pairing micro-benchmarks",
    )
    parser.add_argument(
        "--calibrate-out", default=None, metavar="PATH",
        help="calibrate the engine cost model on this machine, save it "
        "as JSON to PATH, and exit (feed it to python -m repro.net "
        "--cost-model)",
    )
    parser.add_argument(
        "--calibrate-backend", default="fast",
        help="backend to calibrate when --calibrate-out is given "
        "(fast/bn254; default fast)",
    )
    args = parser.parse_args()

    if args.calibrate_out:
        backend = get_backend(args.calibrate_backend)
        model = calibrate_engine_cost_model(backend)
        model.save(args.calibrate_out)
        print(
            f"calibrated {backend.name} cost model "
            f"(miller_loop={model.miller_loop:.3e}s, "
            f"final_exponentiation={model.final_exponentiation:.3e}s) "
            f"-> {args.calibrate_out}"
        )
        return

    print("Leakage (Section 2.1, Example 2.1)")
    print("==================================")
    timeline = experiments.leakage_example()
    print(timeline.format_table())
    print()

    if not args.skip_bn254:
        t_values = tuple(range(1, 11)) if args.full else (1, 2, 3)
        result = experiments.figure2(
            t_values=t_values, backend_name="bn254",
            repeats=3 if args.full else 1,
        )
        _print_result(result, ["t", "operation", "millis"])

    result = experiments.figure2(backend_name="fast", repeats=5)
    _print_result(result, ["t", "operation", "millis"])

    scale_factors = (
        (0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09, 0.1)
        if args.full else (0.01, 0.02, 0.04)
    )
    result = experiments.figure3(scale_factors=scale_factors,
                                 repeats=3 if args.full else 1)
    _print_result(
        result,
        ["scale_factor", "selectivity", "seconds", "decryptions", "matches"],
    )

    in_sizes = tuple(range(1, 11)) if args.full else (1, 4, 7, 10)
    result = experiments.figure4(in_clause_sizes=in_sizes,
                                 repeats=3 if args.full else 1)
    _print_result(result, ["t", "selectivity", "seconds", "decryptions"])

    result = experiments.comparison_with_hahn(
        repeats=3 if args.full else 1
    )
    _print_result(
        result,
        ["scale_factor", "algorithm", "seconds", "comparisons", "matches"],
    )

    result = experiments.prefilter_ablation(repeats=3 if args.full else 1)
    _print_result(result, ["prefilter", "seconds", "decryptions"])

    result = experiments.engine_ablation(
        scale_factors=scale_factors, repeats=3 if args.full else 1
    )
    _print_result(
        result,
        ["scale_factor", "engine", "seconds", "time_to_first_match",
         "final_exponentiations", "batches", "workers", "engine_selected"],
    )


if __name__ == "__main__":
    main()
