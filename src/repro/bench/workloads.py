"""Workload builders shared by the experiment drivers and benchmarks.

The expensive part of every table-scale experiment is encrypting the
TPC-H tables; :func:`build_encrypted_tpch` does it once per (scale
factor, t) configuration and the result is cached within a process so
the four selectivity series of Figures 3/4 reuse one encrypted database,
exactly as a real deployment would.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.client import SecureJoinClient
from repro.core.server import SecureJoinServer
from repro.series.cache import DEFAULT_SERIES_BUDGET
from repro.db.query import JoinQuery
from repro.tpch.generator import TPCHGenerator, selectivity_label


@dataclass
class EncryptedTPCH:
    """An encrypted Customers/Orders pair ready for join queries."""

    scale_factor: float
    in_clause_limit: int
    client: SecureJoinClient
    server: SecureJoinServer
    num_customers: int
    num_orders: int


_CACHE: dict[tuple, EncryptedTPCH] = {}


def build_encrypted_tpch(
    scale_factor: float,
    in_clause_limit: int = 1,
    seed: int = 20220310,
    prefilter: bool = True,
    use_cache: bool = True,
    series_cache: bool = False,
) -> EncryptedTPCH:
    """Generate, encrypt and upload the TPC-H pair for one configuration.

    With ``prefilter=True`` the ``selectivity`` column carries searchable
    tags, reproducing the paper's evaluation regime where the server
    decrypts only the selected fraction of rows (see DESIGN.md §4.3).

    ``series_cache`` defaults to *off*, unlike a production server: the
    figure drivers time repeated submissions of one encrypted query,
    and with the cross-query cache enabled every repeat after the first
    would measure warm replay instead of SJ.Dec.  The series benchmarks
    opt in explicitly.
    """
    key = (scale_factor, in_clause_limit, seed, prefilter, series_cache)
    if use_cache and key in _CACHE:
        return _CACHE[key]
    generator = TPCHGenerator(scale_factor, seed=seed)
    customers, orders = generator.both()
    client = SecureJoinClient.for_tables(
        [(customers, "custkey"), (orders, "custkey")],
        in_clause_limit=in_clause_limit,
        rng=random.Random(seed),
        enable_prefilter=prefilter,
        prefilter_columns=("selectivity",),
    )
    server = SecureJoinServer(
        client.params,
        series_cache_bytes=None if not series_cache else DEFAULT_SERIES_BUDGET,
    )
    server.store(client.encrypt_table(customers, "custkey"))
    server.store(client.encrypt_table(orders, "custkey"))
    workload = EncryptedTPCH(
        scale_factor=scale_factor,
        in_clause_limit=in_clause_limit,
        client=client,
        server=server,
        num_customers=len(customers),
        num_orders=len(orders),
    )
    if use_cache:
        _CACHE[key] = workload
    return workload


def clear_cache() -> None:
    """Drop cached encrypted databases (frees memory between experiments)."""
    _CACHE.clear()


def tpch_query(selectivity: float, in_clause_size: int = 1) -> JoinQuery:
    """The paper's benchmark query: join on custkey, filter by selectivity.

    ``in_clause_size`` pads the IN clause to size t with distinct labels
    (the paper's Section 6.4 varies exactly this parameter); padding uses
    never-assigned labels so the selected fraction stays ``selectivity``.
    """
    label = selectivity_label(selectivity)
    padding = [f"pad-{i}" for i in range(in_clause_size - 1)]
    in_values = [label] + padding
    return JoinQuery.build(
        "Customers",
        "Orders",
        on=("custkey", "custkey"),
        where_left={"selectivity": in_values},
        where_right={"selectivity": in_values},
    )
