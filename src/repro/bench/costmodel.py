"""A linear cost model for the encrypted join, and paper-scale extrapolation.

The server-side join cost decomposes as

    runtime = c_dec * decryptions + c_match * matches + c_0

(:func:`fit_join_cost` recovers the coefficients from Figure 3/4-style
measurements by least squares).  Because ``decryptions`` is determined
analytically by the workload — ``s * (|Customers| + |Orders|)`` with
pre-filtering — the same model predicts what the runtime *would be* on
hardware with a different per-decryption cost.  That is how
EXPERIMENTS.md bridges our fast-backend numbers to the paper's C/BN254
numbers: the per-decryption cost implied by the paper's Figure 3
(runtime / analytic decryption count, ~21.3 ms) equals the paper's own
Figure 2 decryption time (21.2 ms at t=1), and one constant explains
all four reported Figure 3 corner points to < 1% relative error.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, replace

from repro.bench.harness import BenchmarkRecord
from repro.errors import BenchmarkError

# TPC-H row counts per unit scale factor.
_CUSTOMERS_PER_SF = 150_000
_ORDERS_PER_SF = 1_500_000


@dataclass(frozen=True)
class CostModel:
    """``runtime = per_decryption * D + per_match * M + fixed`` (seconds)."""

    per_decryption: float
    per_match: float
    fixed: float
    residual: float

    def predict(self, decryptions: int, matches: int = 0) -> float:
        return (
            self.per_decryption * decryptions
            + self.per_match * matches
            + self.fixed
        )


def fit_join_cost(records: list[BenchmarkRecord]) -> CostModel:
    """Least-squares fit over records carrying decryptions/matches extras."""
    # numpy is a dev-only dependency; importing it lazily keeps the
    # planner entry points (``engine="auto"`` goes through this module)
    # usable in a bare install that never fits measurement series.
    import numpy as np

    rows = [
        r for r in records
        if "decryptions" in r.extra and "matches" in r.extra
    ]
    if len(rows) < 3:
        raise BenchmarkError(
            "need at least three measurements with decryptions/matches to fit"
        )
    features = np.array(
        [[r.extra["decryptions"], r.extra["matches"], 1.0] for r in rows]
    )
    times = np.array([r.seconds_mean for r in rows])
    solution, residuals, _, _ = np.linalg.lstsq(features, times, rcond=None)
    residual = float(residuals[0]) if len(residuals) else 0.0
    return CostModel(
        per_decryption=float(solution[0]),
        per_match=float(solution[1]),
        fixed=float(solution[2]),
        residual=residual,
    )


def expected_decryptions(scale_factor: float, selectivity: float) -> int:
    """Rows the server decrypts with pre-filtering: ``s * (n_C + n_O)``."""
    customers = round(_CUSTOMERS_PER_SF * scale_factor)
    orders = round(_ORDERS_PER_SF * scale_factor)
    return round(selectivity * customers) + round(selectivity * orders)


def predict_with_unit_cost(
    per_decryption_seconds: float,
    scale_factor: float,
    selectivity: float,
) -> float:
    """Analytic join-runtime prediction for a given per-decryption cost.

    With a cryptography-dominated profile (the paper's regime: ~ms per
    pairing decryption) the fixed and per-match terms are negligible, so
    ``runtime ~= c_dec * s * (n_C + n_O)``.
    """
    return per_decryption_seconds * expected_decryptions(
        scale_factor, selectivity
    )


# Figure 3's reported corner points (seconds) for the shape check:
# (scale factor, selectivity) -> runtime reported by the paper.
PAPER_FIGURE3_POINTS = {
    (0.01, 1 / 100): 3.52,
    (0.1, 1 / 100): 35.34,
    (0.01, 1 / 12.5): 27.88,
    (0.1, 1 / 12.5): 282.49,
}


def implied_paper_unit_cost() -> float:
    """The per-decryption cost implied by the paper's Figure 3 numbers.

    Averaging runtime / decryptions over the four reported corner points
    gives the effective per-row cost of the authors' testbed (~21.3 ms, matching their Figure 2).
    """
    costs = [
        runtime / expected_decryptions(scale_factor, selectivity)
        for (scale_factor, selectivity), runtime in PAPER_FIGURE3_POINTS.items()
    ]
    return sum(costs) / len(costs)


# -- engine planner cost model -------------------------------------------


@dataclass(frozen=True)
class EngineCostModel:
    """Per-operation timings the engine planner prices a side with.

    The planner (``engine="auto"``) estimates, per candidate side,

    - ``serial``:   one full pairing per vector component —
      ``rows * d * (miller_loop + final_exponentiation)``;
    - ``batched``:  ``d`` Miller loops but one shared final
      exponentiation per row, plus a per-chunk dispatch cost;
    - ``parallel``: the batched pairing work divided across ``workers``,
      plus what the persistent pool charges — a one-time spawn cost when
      the pool is cold, per-element encode/transport/decode, and a
      per-chunk scheduling round trip.

    ``switch_margin`` is the planner's conservatism: a non-default
    engine must beat ``batched`` by at least this factor before it is
    chosen, so estimate noise can never make ``auto`` slower than the
    static default.
    """

    backend: str
    miller_loop: float
    final_exponentiation: float
    row_overhead: float
    batch_overhead: float
    element_transport: float
    chunk_overhead: float
    pool_spawn: float
    switch_margin: float = 1.25


#: Defaults measured on the fast (exponent-group) backend: pairing work
#: is a handful of modular multiplications, so transport dominates and
#: the planner correctly prefers ``batched`` at every realistic size.
FAST_ENGINE_COSTS = EngineCostModel(
    backend="fast",
    miller_loop=3.5e-7,
    final_exponentiation=1.5e-6,
    row_overhead=1.5e-6,
    # Kept <= final_exponentiation so batched dominates serial at every
    # side size (their gap is rows*(d-1)*fexp - chunks*batch_overhead).
    batch_overhead=1e-6,
    element_transport=1.2e-6,
    chunk_overhead=4e-4,
    pool_spawn=3e-2,
)

#: Defaults for the pure-Python BN254 pairing (seconds per Miller loop):
#: compute dwarfs IPC, so the planner fans out whenever the pool has
#: more than one worker.
BN254_ENGINE_COSTS = EngineCostModel(
    backend="bn254",
    miller_loop=0.5,
    final_exponentiation=0.7,
    row_overhead=1.5e-6,
    batch_overhead=4e-5,
    element_transport=2e-5,
    chunk_overhead=1e-3,
    pool_spawn=5e-2,
)

_DEFAULT_ENGINE_COSTS = {
    "fast": FAST_ENGINE_COSTS,
    "bn254": BN254_ENGINE_COSTS,
}


def default_engine_cost_model(backend_name: str) -> EngineCostModel:
    """The built-in cost model for a backend (fast-backend shape if unknown)."""
    return _DEFAULT_ENGINE_COSTS.get(backend_name, FAST_ENGINE_COSTS)


def estimate_engine_costs(
    model: EngineCostModel,
    rows: int,
    dimension: int,
    workers: int,
    batch_size: int,
    parallel_batch_size: int | None = None,
    pool_warm: bool = False,
) -> dict[str, float]:
    """Predicted seconds per engine for one candidate side."""
    if rows < 0 or dimension < 1:
        raise BenchmarkError("need rows >= 0 and dimension >= 1")
    workers = max(1, workers)
    if parallel_batch_size is None:
        parallel_batch_size = max(1, batch_size // 2)
    pairing_rows = rows * (
        dimension * model.miller_loop + model.final_exponentiation
    )
    overhead_rows = rows * model.row_overhead
    serial = (
        rows * dimension * (model.miller_loop + model.final_exponentiation)
        + overhead_rows
    )
    batches = math.ceil(rows / batch_size) if rows else 0
    batched = pairing_rows + overhead_rows + batches * model.batch_overhead
    chunks = math.ceil(rows / parallel_batch_size) if rows else 0
    parallel = (
        (0.0 if pool_warm else model.pool_spawn * workers)
        + rows * dimension * model.element_transport
        + chunks * model.chunk_overhead
        + pairing_rows / workers
        + overhead_rows
    )
    return {"serial": serial, "batched": batched, "parallel": parallel}


def choose_engine(
    model: EngineCostModel,
    rows: int,
    dimension: int,
    workers: int,
    batch_size: int,
    parallel_batch_size: int | None = None,
    pool_warm: bool = False,
    allowed: tuple[str, ...] = ("serial", "batched", "parallel"),
) -> tuple[str, dict[str, float]]:
    """The planner decision: ``(chosen_engine, per-engine estimates)``.

    ``batched`` (the static default) wins unless another allowed engine
    is estimated at least ``switch_margin`` times cheaper — the
    guarantee behind "auto is never slower than the default".
    """
    estimates = estimate_engine_costs(
        model, rows, dimension, workers, batch_size,
        parallel_batch_size, pool_warm,
    )
    candidates = {
        name: cost for name, cost in estimates.items() if name in allowed
    }
    if not candidates:
        raise BenchmarkError(
            f"no allowed engine among {sorted(estimates)}; allowed={allowed}"
        )
    if "batched" in candidates:
        baseline = candidates["batched"]
        best_name, best_cost = min(
            candidates.items(), key=lambda item: item[1]
        )
        # Ties (and anything inside the margin) go to the default:
        # a challenger must be strictly better, by the full margin.
        if best_name != "batched" and (
            best_cost >= baseline
            or best_cost * model.switch_margin > baseline
        ):
            return "batched", estimates
        return best_name, estimates
    best_name = min(candidates, key=candidates.get)
    return best_name, estimates


def calibrate_engine_cost_model(
    backend,
    dimension: int = 8,
    rows: int = 24,
    repeats: int = 3,
) -> EngineCostModel:
    """Measure per-op pairing costs on ``backend``; keep default overheads.

    Times the serial (full pairing per component) and batched
    (``pair_vectors_batch``) paths over a synthetic side and solves for
    the Miller-loop and final-exponentiation costs; transport and
    scheduling constants are inherited from the backend's default model
    (measuring those would itself require spawning a pool).
    """
    if dimension < 2 or rows < 1:
        raise BenchmarkError("calibration needs dimension >= 2 and rows >= 1")
    token = backend.g1_powers(range(1, dimension + 1))
    side = [
        backend.g2_powers(range(r + 1, r + dimension + 1))
        for r in range(rows)
    ]

    def measure(fn) -> float:
        best = math.inf
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    def run_batched():
        backend.pair_vectors_batch(token, side)

    def run_serial():
        for row in side:
            accumulator = backend.gt_identity()
            for g1, g2 in zip(token, row):
                accumulator = backend.gt_mul(
                    accumulator, backend.pair(g1, g2)
                )

    batched_row = measure(run_batched) / rows   # d*miller + 1*fexp
    serial_row = measure(run_serial) / rows     # d*(miller + fexp)
    base = default_engine_cost_model(backend.name)
    fexp = max((serial_row - batched_row) / (dimension - 1), 0.0)
    miller = max((batched_row - fexp) / dimension, 1e-12)
    return replace(
        base,
        backend=backend.name,
        miller_loop=miller,
        final_exponentiation=max(fexp, 1e-12),
    )


def paper_shape_errors(unit_cost: float | None = None) -> dict[tuple, float]:
    """Relative error of the analytic model against every reported point.

    Small errors mean the paper's Figure 3 is explained by a single
    per-decryption constant — i.e. our linear-cost reproduction has the
    right shape and only the constant differs across testbeds.
    """
    if unit_cost is None:
        unit_cost = implied_paper_unit_cost()
    errors = {}
    for (scale_factor, selectivity), reported in PAPER_FIGURE3_POINTS.items():
        predicted = predict_with_unit_cost(unit_cost, scale_factor, selectivity)
        errors[(scale_factor, selectivity)] = abs(predicted - reported) / reported
    return errors
