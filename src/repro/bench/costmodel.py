"""A linear cost model for the encrypted join, and paper-scale extrapolation.

The server-side join cost decomposes as

    runtime = c_dec * decryptions + c_match * matches + c_0

(:func:`fit_join_cost` recovers the coefficients from Figure 3/4-style
measurements by least squares).  Because ``decryptions`` is determined
analytically by the workload — ``s * (|Customers| + |Orders|)`` with
pre-filtering — the same model predicts what the runtime *would be* on
hardware with a different per-decryption cost.  That is how
EXPERIMENTS.md bridges our fast-backend numbers to the paper's C/BN254
numbers: the per-decryption cost implied by the paper's Figure 3
(runtime / analytic decryption count, ~21.3 ms) equals the paper's own
Figure 2 decryption time (21.2 ms at t=1), and one constant explains
all four reported Figure 3 corner points to < 1% relative error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.harness import BenchmarkRecord
from repro.errors import BenchmarkError

# TPC-H row counts per unit scale factor.
_CUSTOMERS_PER_SF = 150_000
_ORDERS_PER_SF = 1_500_000


@dataclass(frozen=True)
class CostModel:
    """``runtime = per_decryption * D + per_match * M + fixed`` (seconds)."""

    per_decryption: float
    per_match: float
    fixed: float
    residual: float

    def predict(self, decryptions: int, matches: int = 0) -> float:
        return (
            self.per_decryption * decryptions
            + self.per_match * matches
            + self.fixed
        )


def fit_join_cost(records: list[BenchmarkRecord]) -> CostModel:
    """Least-squares fit over records carrying decryptions/matches extras."""
    rows = [
        r for r in records
        if "decryptions" in r.extra and "matches" in r.extra
    ]
    if len(rows) < 3:
        raise BenchmarkError(
            "need at least three measurements with decryptions/matches to fit"
        )
    features = np.array(
        [[r.extra["decryptions"], r.extra["matches"], 1.0] for r in rows]
    )
    times = np.array([r.seconds_mean for r in rows])
    solution, residuals, _, _ = np.linalg.lstsq(features, times, rcond=None)
    residual = float(residuals[0]) if len(residuals) else 0.0
    return CostModel(
        per_decryption=float(solution[0]),
        per_match=float(solution[1]),
        fixed=float(solution[2]),
        residual=residual,
    )


def expected_decryptions(scale_factor: float, selectivity: float) -> int:
    """Rows the server decrypts with pre-filtering: ``s * (n_C + n_O)``."""
    customers = round(_CUSTOMERS_PER_SF * scale_factor)
    orders = round(_ORDERS_PER_SF * scale_factor)
    return round(selectivity * customers) + round(selectivity * orders)


def predict_with_unit_cost(
    per_decryption_seconds: float,
    scale_factor: float,
    selectivity: float,
) -> float:
    """Analytic join-runtime prediction for a given per-decryption cost.

    With a cryptography-dominated profile (the paper's regime: ~ms per
    pairing decryption) the fixed and per-match terms are negligible, so
    ``runtime ~= c_dec * s * (n_C + n_O)``.
    """
    return per_decryption_seconds * expected_decryptions(
        scale_factor, selectivity
    )


# Figure 3's reported corner points (seconds) for the shape check:
# (scale factor, selectivity) -> runtime reported by the paper.
PAPER_FIGURE3_POINTS = {
    (0.01, 1 / 100): 3.52,
    (0.1, 1 / 100): 35.34,
    (0.01, 1 / 12.5): 27.88,
    (0.1, 1 / 12.5): 282.49,
}


def implied_paper_unit_cost() -> float:
    """The per-decryption cost implied by the paper's Figure 3 numbers.

    Averaging runtime / decryptions over the four reported corner points
    gives the effective per-row cost of the authors' testbed (~21.3 ms, matching their Figure 2).
    """
    costs = [
        runtime / expected_decryptions(scale_factor, selectivity)
        for (scale_factor, selectivity), runtime in PAPER_FIGURE3_POINTS.items()
    ]
    return sum(costs) / len(costs)


def paper_shape_errors(unit_cost: float | None = None) -> dict[tuple, float]:
    """Relative error of the analytic model against every reported point.

    Small errors mean the paper's Figure 3 is explained by a single
    per-decryption constant — i.e. our linear-cost reproduction has the
    right shape and only the constant differs across testbeds.
    """
    if unit_cost is None:
        unit_cost = implied_paper_unit_cost()
    errors = {}
    for (scale_factor, selectivity), reported in PAPER_FIGURE3_POINTS.items():
        predicted = predict_with_unit_cost(unit_cost, scale_factor, selectivity)
        errors[(scale_factor, selectivity)] = abs(predicted - reported) / reported
    return errors
