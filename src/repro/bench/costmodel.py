"""A linear cost model for the encrypted join, and paper-scale extrapolation.

The server-side join cost decomposes as

    runtime = c_dec * decryptions + c_match * matches + c_0

(:func:`fit_join_cost` recovers the coefficients from Figure 3/4-style
measurements by least squares).  Because ``decryptions`` is determined
analytically by the workload — ``s * (|Customers| + |Orders|)`` with
pre-filtering — the same model predicts what the runtime *would be* on
hardware with a different per-decryption cost.  That is how
EXPERIMENTS.md bridges our fast-backend numbers to the paper's C/BN254
numbers: the per-decryption cost implied by the paper's Figure 3
(runtime / analytic decryption count, ~21.3 ms) equals the paper's own
Figure 2 decryption time (21.2 ms at t=1), and one constant explains
all four reported Figure 3 corner points to < 1% relative error.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import threading
import time
from dataclasses import dataclass, replace

from repro.bench.harness import BenchmarkRecord
from repro.errors import BenchmarkError

# TPC-H row counts per unit scale factor.
_CUSTOMERS_PER_SF = 150_000
_ORDERS_PER_SF = 1_500_000


@dataclass(frozen=True)
class CostModel:
    """``runtime = per_decryption * D + per_match * M + fixed`` (seconds)."""

    per_decryption: float
    per_match: float
    fixed: float
    residual: float

    def predict(self, decryptions: int, matches: int = 0) -> float:
        return (
            self.per_decryption * decryptions
            + self.per_match * matches
            + self.fixed
        )


def fit_join_cost(records: list[BenchmarkRecord]) -> CostModel:
    """Least-squares fit over records carrying decryptions/matches extras."""
    # numpy is a dev-only dependency; importing it lazily keeps the
    # planner entry points (``engine="auto"`` goes through this module)
    # usable in a bare install that never fits measurement series.
    import numpy as np

    rows = [
        r for r in records
        if "decryptions" in r.extra and "matches" in r.extra
    ]
    if len(rows) < 3:
        raise BenchmarkError(
            "need at least three measurements with decryptions/matches to fit"
        )
    features = np.array(
        [[r.extra["decryptions"], r.extra["matches"], 1.0] for r in rows]
    )
    times = np.array([r.seconds_mean for r in rows])
    solution, residuals, _, _ = np.linalg.lstsq(features, times, rcond=None)
    residual = float(residuals[0]) if len(residuals) else 0.0
    return CostModel(
        per_decryption=float(solution[0]),
        per_match=float(solution[1]),
        fixed=float(solution[2]),
        residual=residual,
    )


def expected_decryptions(scale_factor: float, selectivity: float) -> int:
    """Rows the server decrypts with pre-filtering: ``s * (n_C + n_O)``."""
    customers = round(_CUSTOMERS_PER_SF * scale_factor)
    orders = round(_ORDERS_PER_SF * scale_factor)
    return round(selectivity * customers) + round(selectivity * orders)


def predict_with_unit_cost(
    per_decryption_seconds: float,
    scale_factor: float,
    selectivity: float,
) -> float:
    """Analytic join-runtime prediction for a given per-decryption cost.

    With a cryptography-dominated profile (the paper's regime: ~ms per
    pairing decryption) the fixed and per-match terms are negligible, so
    ``runtime ~= c_dec * s * (n_C + n_O)``.
    """
    return per_decryption_seconds * expected_decryptions(
        scale_factor, selectivity
    )


# Figure 3's reported corner points (seconds) for the shape check:
# (scale factor, selectivity) -> runtime reported by the paper.
PAPER_FIGURE3_POINTS = {
    (0.01, 1 / 100): 3.52,
    (0.1, 1 / 100): 35.34,
    (0.01, 1 / 12.5): 27.88,
    (0.1, 1 / 12.5): 282.49,
}


def implied_paper_unit_cost() -> float:
    """The per-decryption cost implied by the paper's Figure 3 numbers.

    Averaging runtime / decryptions over the four reported corner points
    gives the effective per-row cost of the authors' testbed (~21.3 ms, matching their Figure 2).
    """
    costs = [
        runtime / expected_decryptions(scale_factor, selectivity)
        for (scale_factor, selectivity), runtime in PAPER_FIGURE3_POINTS.items()
    ]
    return sum(costs) / len(costs)


# -- engine planner cost model -------------------------------------------


@dataclass(frozen=True)
class EngineCostModel:
    """Per-operation timings the planner prices the join pipeline with.

    The planner (``engine="auto"``) estimates, per candidate side,

    - ``serial``:   one full pairing per vector component —
      ``rows * d * (miller_loop + final_exponentiation)``;
    - ``batched``:  ``d`` Miller loops but one shared final
      exponentiation per row, plus a per-chunk dispatch cost;
    - ``parallel``: the batched pairing work divided across ``workers``,
      plus what the persistent pool charges — a one-time spawn cost when
      the pool is cold, per-element encode/transport/decode, and a
      per-chunk scheduling round trip.

    ``switch_margin`` is the planner's conservatism: a non-default
    engine must beat ``batched`` by at least this factor before it is
    chosen, so estimate noise can never make ``auto`` slower than the
    static default.

    The matcher stage (SJ.Match) is priced too, so the planner covers
    the full decrypt→match pipeline: ``hash_build`` / ``hash_probe``
    are the per-item bucket insert and probe of the hash matcher,
    ``nested_compare`` is one nested-loop equality, and ``pair_emit``
    is the per-output-pair cost common to both
    (:func:`estimate_matcher_costs` / :func:`choose_matcher`).
    """

    backend: str
    miller_loop: float
    final_exponentiation: float
    row_overhead: float
    batch_overhead: float
    element_transport: float
    chunk_overhead: float
    pool_spawn: float
    switch_margin: float = 1.25
    hash_build: float = 2.5e-7
    hash_probe: float = 3.0e-7
    nested_compare: float = 8.0e-8
    pair_emit: float = 2.0e-7
    #: Per-component cost of replaying a prepared row's stored line
    #: coefficients instead of a full Miller loop (``None`` = no
    #: prepared pricing; fall back to ``miller_loop``).
    prepared_miller_loop: float | None = None
    #: Per-shard coordination cost of a scatter-gather join: admitting
    #: the query on one more shard's pool and merging its chunk stream
    #: (:func:`estimate_scatter_costs`).
    shard_dispatch: float = 5e-4
    #: Fixed per-call cost of standing up the chunked-stream machinery
    #: (chunk assembly, stream plumbing, admission bookkeeping) that the
    #: batched and parallel engines pay *per refresh* — negligible on a
    #: full-table side, dominant on a 3-row series delta, which is why
    #: :func:`choose_delta_engine` sends tiny deltas through the serial
    #: inline path instead of waking anything up.
    delta_dispatch: float = 2.5e-4

    # -- persistence ------------------------------------------------------
    def save(self, path: str | os.PathLike) -> None:
        """Write the model as JSON (atomic via rename).

        The calibration counterpart of the stored cost *history*: a
        restarted server loads this file and prices replay from what a
        previous calibration measured instead of re-measuring.
        """
        payload = {
            "format": _COST_MODEL_FORMAT,
            "version": _COST_MODEL_VERSION,
            "model": dataclasses.asdict(self),
        }
        temp_path = f"{path}.tmp"
        with open(temp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(temp_path, path)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "EngineCostModel":
        """Inverse of :meth:`save` (validating).

        Unknown model keys (a newer writer) are dropped; absent optional
        fields take their defaults — the same tolerant-decode posture as
        the wire stats.  Anything structurally wrong (bad format tag,
        non-numeric constant, missing required field) raises
        :class:`~repro.errors.BenchmarkError`, never a raw decode error.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as error:
            raise BenchmarkError(
                f"cannot load cost model from {path}: {error}"
            ) from error
        if (
            not isinstance(payload, dict)
            or payload.get("format") != _COST_MODEL_FORMAT
            or not isinstance(payload.get("model"), dict)
        ):
            raise BenchmarkError(
                f"{path} is not a saved engine cost model"
            )
        raw = payload["model"]
        known = {field.name: field for field in dataclasses.fields(cls)}
        kwargs = {}
        for name, value in raw.items():
            field = known.get(name)
            if field is None:
                continue
            if name == "backend":
                if not isinstance(value, str) or not value:
                    raise BenchmarkError(
                        "cost model 'backend' must be a non-empty string"
                    )
            elif value is None:
                if name != "prepared_miller_loop":
                    raise BenchmarkError(
                        f"cost model constant {name!r} must be a number"
                    )
            elif isinstance(value, bool) or not isinstance(
                value, (int, float)
            ) or not math.isfinite(value) or value < 0:
                raise BenchmarkError(
                    f"cost model constant {name!r} must be a finite "
                    f"non-negative number, got {value!r}"
                )
            else:
                value = float(value)
            kwargs[name] = value
        required = {
            name
            for name, field in known.items()
            if field.default is dataclasses.MISSING
        }
        missing = sorted(required - set(kwargs))
        if missing:
            raise BenchmarkError(
                f"saved cost model is missing required constants {missing}"
            )
        return cls(**kwargs)


_COST_MODEL_FORMAT = "repro-engine-cost-model"
_COST_MODEL_VERSION = 1


#: Defaults measured on the fast (exponent-group) backend: pairing work
#: is a handful of modular multiplications, so transport dominates and
#: the planner correctly prefers ``batched`` at every realistic size.
FAST_ENGINE_COSTS = EngineCostModel(
    backend="fast",
    miller_loop=3.5e-7,
    final_exponentiation=1.5e-6,
    row_overhead=1.5e-6,
    # Kept <= final_exponentiation so batched dominates serial at every
    # side size (their gap is rows*(d-1)*fexp - chunks*batch_overhead).
    batch_overhead=1e-6,
    element_transport=1.2e-6,
    chunk_overhead=4e-4,
    pool_spawn=3e-2,
    # The fast backend models a prepared replay as the same modular
    # multiply as a raw pairing — only the BN254 backend actually saves.
    prepared_miller_loop=3.5e-7,
)

#: Defaults for the pure-Python BN254 pairing (seconds per Miller loop):
#: compute dwarfs IPC, so the planner fans out whenever the pool has
#: more than one worker.
BN254_ENGINE_COSTS = EngineCostModel(
    backend="bn254",
    miller_loop=0.5,
    final_exponentiation=0.7,
    row_overhead=1.5e-6,
    batch_overhead=4e-5,
    element_transport=2e-5,
    chunk_overhead=1e-3,
    pool_spawn=5e-2,
    # Replaying stored coefficients in the fused multi-pairing loop
    # costs about a third of a raw Miller loop (see BENCH_7.json).
    prepared_miller_loop=0.17,
)

_DEFAULT_ENGINE_COSTS = {
    "fast": FAST_ENGINE_COSTS,
    "bn254": BN254_ENGINE_COSTS,
}


def default_engine_cost_model(backend_name: str) -> EngineCostModel:
    """The built-in cost model for a backend (fast-backend shape if unknown)."""
    return _DEFAULT_ENGINE_COSTS.get(backend_name, FAST_ENGINE_COSTS)


def estimate_engine_costs(
    model: EngineCostModel,
    rows: int,
    dimension: int,
    workers: int,
    batch_size: int,
    parallel_batch_size: int | None = None,
    pool_warm: bool = False,
    prepared: bool = False,
) -> dict[str, float]:
    """Predicted seconds per engine for one candidate side.

    ``prepared`` prices the side's Miller-loop work with the model's
    ``prepared_miller_loop`` constant — the coefficient-replay cost of
    a warm prepared table — instead of the raw ``miller_loop``.
    """
    if rows < 0 or dimension < 1:
        raise BenchmarkError("need rows >= 0 and dimension >= 1")
    workers = max(1, workers)
    if parallel_batch_size is None:
        parallel_batch_size = max(1, batch_size // 2)
    miller = model.miller_loop
    if prepared and model.prepared_miller_loop is not None:
        miller = model.prepared_miller_loop
    pairing_rows = rows * (
        dimension * miller + model.final_exponentiation
    )
    overhead_rows = rows * model.row_overhead
    serial = (
        rows * dimension * (miller + model.final_exponentiation)
        + overhead_rows
    )
    batches = math.ceil(rows / batch_size) if rows else 0
    batched = pairing_rows + overhead_rows + batches * model.batch_overhead
    chunks = math.ceil(rows / parallel_batch_size) if rows else 0
    parallel = (
        (0.0 if pool_warm else model.pool_spawn * workers)
        + rows * dimension * model.element_transport
        + chunks * model.chunk_overhead
        + pairing_rows / workers
        + overhead_rows
    )
    return {"serial": serial, "batched": batched, "parallel": parallel}


def estimate_scatter_costs(
    model: EngineCostModel,
    rows_per_shard: list[int],
    dimension: int,
    workers: int = 1,
) -> dict[str, float]:
    """Predicted seconds: single-store vs scatter-gather over shards.

    Cross-shard parallelism is a makespan problem: every shard decrypts
    its own candidate rows concurrently, so the scatter estimate is the
    *most loaded* shard's pairing time plus a per-shard ``shard_dispatch``
    coordination charge — skewed partitions therefore price close to the
    single store (the ideal ``1/n`` speedup is discounted by exactly the
    ``skew`` figure, max over mean) while uniform ones approach it.
    ``workers`` is each store's pool width and divides the pairing work
    identically on both sides of the comparison.
    """
    counts = [int(n) for n in rows_per_shard]
    if not counts or any(n < 0 for n in counts) or dimension < 1:
        raise BenchmarkError(
            "need at least one shard, rows >= 0 and dimension >= 1"
        )
    workers = max(1, workers)
    per_row = (
        dimension * model.miller_loop
        + model.final_exponentiation
        + model.row_overhead
    )
    total = sum(counts)
    single = total * per_row / workers
    scatter = (
        max(counts) * per_row / workers
        + len(counts) * model.shard_dispatch
    )
    mean = total / len(counts)
    return {
        "single": single,
        "scatter": scatter,
        "skew": (max(counts) / mean) if mean else 1.0,
        "speedup": (single / scatter) if scatter > 0.0 else 1.0,
    }


def select_engine(
    estimates: dict[str, float],
    switch_margin: float,
    allowed: tuple[str, ...] = ("serial", "batched", "parallel"),
) -> str:
    """The decision rule alone, applied to precomputed estimates.

    ``batched`` (the static default) wins unless another allowed engine
    is estimated at least ``switch_margin`` times cheaper — the
    guarantee behind "auto is never slower than the default".
    """
    candidates = {
        name: cost for name, cost in estimates.items() if name in allowed
    }
    if not candidates:
        raise BenchmarkError(
            f"no allowed engine among {sorted(estimates)}; allowed={allowed}"
        )
    if "batched" in candidates:
        baseline = candidates["batched"]
        best_name, best_cost = min(
            candidates.items(), key=lambda item: item[1]
        )
        # Ties (and anything inside the margin) go to the default:
        # a challenger must be strictly better, by the full margin.
        if best_name != "batched" and (
            best_cost >= baseline
            or best_cost * switch_margin > baseline
        ):
            return "batched"
        return best_name
    return min(candidates, key=candidates.get)


def choose_engine(
    model: EngineCostModel,
    rows: int,
    dimension: int,
    workers: int,
    batch_size: int,
    parallel_batch_size: int | None = None,
    pool_warm: bool = False,
    allowed: tuple[str, ...] = ("serial", "batched", "parallel"),
    corrections: dict[str, float] | None = None,
    prepared: bool = False,
) -> tuple[str, dict[str, float]]:
    """The planner decision: ``(chosen_engine, per-engine estimates)``.

    ``corrections`` (per-engine multiplicative factors, typically from
    an :class:`OnlineCalibrator`) scale the model estimates with what
    observed runs say about this hardware; the returned estimates are
    the corrected ones the decision was actually made on.  ``prepared``
    marks the side as a warm prepared table (coefficient replay
    instead of raw Miller loops).
    """
    estimates = estimate_engine_costs(
        model, rows, dimension, workers, batch_size,
        parallel_batch_size, pool_warm, prepared=prepared,
    )
    if corrections:
        estimates = {
            name: cost * float(corrections.get(name, 1.0))
            for name, cost in estimates.items()
        }
    return select_engine(estimates, model.switch_margin, allowed), estimates


def estimate_delta_costs(
    model: EngineCostModel,
    rows: int,
    dimension: int,
    workers: int,
    batch_size: int = 64,
    parallel_batch_size: int | None = None,
    pool_warm: bool = False,
    prepared: bool = False,
) -> dict[str, float]:
    """Predicted seconds per engine for one *delta* side.

    A series-cache refresh decrypts only the handful of rows inserted
    since the last execution, so per-call machinery dominates: the
    batched and parallel engines additionally pay ``delta_dispatch``
    (stream/chunk plumbing that a full-table side amortizes away), and
    a cold pool still pays its spawn cost.  Serial pays neither — it
    decrypts inline, row by row, which is exactly right for a 3-row
    delta.
    """
    estimates = estimate_engine_costs(
        model, rows, dimension, workers, batch_size,
        parallel_batch_size, pool_warm, prepared=prepared,
    )
    return {
        "serial": estimates["serial"],
        "batched": estimates["batched"] + model.delta_dispatch,
        "parallel": estimates["parallel"] + model.delta_dispatch,
    }


def choose_delta_engine(
    model: EngineCostModel,
    rows: int,
    dimension: int,
    workers: int,
    batch_size: int = 64,
    parallel_batch_size: int | None = None,
    pool_warm: bool = False,
    allowed: tuple[str, ...] = ("serial", "batched", "parallel"),
    prepared: bool = False,
) -> tuple[str, dict[str, float]]:
    """The delta-path planner decision: ``(chosen, estimates)``.

    The decision rule mirrors :func:`select_engine` but with **serial**
    as the conservative default: on a tiny delta nothing should be
    woken up, so a chunked or pooled engine must beat the inline path
    by the model's ``switch_margin`` before it is chosen.  Large deltas
    (hundreds of rows) cross back over to batched/parallel exactly as
    the constants dictate.
    """
    estimates = estimate_delta_costs(
        model, rows, dimension, workers, batch_size,
        parallel_batch_size, pool_warm, prepared=prepared,
    )
    candidates = {
        name: cost for name, cost in estimates.items() if name in allowed
    }
    if not candidates:
        raise BenchmarkError(
            f"no allowed engine among {sorted(estimates)}; allowed={allowed}"
        )
    if "serial" in candidates:
        baseline = candidates["serial"]
        best_name, best_cost = min(
            candidates.items(), key=lambda item: item[1]
        )
        if best_name != "serial" and (
            best_cost >= baseline
            or best_cost * model.switch_margin > baseline
        ):
            return "serial", estimates
        return best_name, estimates
    return min(candidates, key=candidates.get), estimates


class OnlineCalibrator:
    """Online correction of planner estimates from observed runtimes.

    The planner records, per decrypted side, its estimates and the
    side's actual seconds.  This class folds those residuals into a
    per-engine multiplicative correction — an exponential moving
    average of ``actual / predicted`` — which :func:`choose_engine`
    applies to future estimates.  Corrections stay at ``1.0`` until an
    engine has ``min_samples`` observations (one noisy query must not
    swing the planner), and are clamped so a pathological measurement
    can never push the model off by more than ``clamp``.

    Thread-safe: one calibrator may serve concurrently admitted
    queries.
    """

    def __init__(
        self,
        alpha: float = 0.35,
        min_samples: int = 2,
        clamp: tuple[float, float] = (0.05, 20.0),
    ):
        if not 0.0 < alpha <= 1.0:
            raise BenchmarkError("alpha must be in (0, 1]")
        if min_samples < 1:
            raise BenchmarkError("min_samples must be at least 1")
        self.alpha = alpha
        self.min_samples = min_samples
        self.clamp = clamp
        self._ratios: dict[str, float] = {}
        self._counts: dict[str, int] = {}
        self._lock = threading.Lock()

    def observe(
        self, engine: str, predicted_seconds: float, actual_seconds: float
    ) -> None:
        """Fold one (prediction, observation) pair into the correction."""
        if predicted_seconds <= 0.0 or actual_seconds <= 0.0:
            return
        ratio = actual_seconds / predicted_seconds
        low, high = self.clamp
        ratio = min(max(ratio, low), high)
        with self._lock:
            previous = self._ratios.get(engine)
            if previous is None:
                self._ratios[engine] = ratio
            else:
                self._ratios[engine] = (
                    (1.0 - self.alpha) * previous + self.alpha * ratio
                )
            self._counts[engine] = self._counts.get(engine, 0) + 1

    def observations(self, engine: str) -> int:
        with self._lock:
            return self._counts.get(engine, 0)

    def correction(self, engine: str) -> float:
        """The multiplicative factor for one engine (1.0 = trust model)."""
        with self._lock:
            if self._counts.get(engine, 0) < self.min_samples:
                return 1.0
            return self._ratios[engine]

    def corrections(self) -> dict[str, float]:
        """All warmed-up corrections (engines below min_samples omitted)."""
        with self._lock:
            return {
                engine: self._ratios[engine]
                for engine, count in self._counts.items()
                if count >= self.min_samples
            }


def calibrate_from_stats(
    planner_records, calibrator: OnlineCalibrator | None = None
) -> OnlineCalibrator:
    """Rebuild an online calibrator from recorded planner decisions.

    ``planner_records`` is any iterable of the per-side planner dicts
    that :class:`~repro.core.server.ServerStats` accumulates (each
    carries ``chosen``, ``estimates`` and ``actual_seconds``), e.g.
    drained from a stats log after a restart.  Records without an
    observed runtime are skipped.
    """
    if calibrator is None:
        calibrator = OnlineCalibrator()
    for record in planner_records:
        if not isinstance(record, dict):
            continue
        chosen = record.get("chosen")
        actual = record.get("actual_seconds")
        estimates = record.get("estimates") or {}
        if not chosen or not actual or chosen not in estimates:
            continue
        predicted = estimates[chosen]
        corrections = record.get("corrections") or {}
        # Undo the correction active when the record was made, so the
        # calibrator re-learns from raw model predictions.
        predicted /= float(corrections.get(chosen, 1.0)) or 1.0
        calibrator.observe(chosen, predicted, actual)
    return calibrator


# -- matcher-stage (SJ.Match) pricing ------------------------------------


def estimate_matcher_costs(
    model: EngineCostModel,
    build_rows: int,
    probe_rows: int,
    expected_matches: int = 0,
) -> dict[str, float]:
    """Predicted seconds per matcher for one (left, right) pairing."""
    if build_rows < 0 or probe_rows < 0 or expected_matches < 0:
        raise BenchmarkError("matcher row counts must be non-negative")
    emit = expected_matches * model.pair_emit
    hash_cost = (
        build_rows * model.hash_build
        + probe_rows * model.hash_probe
        + emit
    )
    nested_cost = build_rows * probe_rows * model.nested_compare + emit
    return {"hash": hash_cost, "nested": nested_cost}


def choose_matcher(
    model: EngineCostModel,
    build_rows: int,
    probe_rows: int,
    expected_matches: int = 0,
) -> tuple[str, dict[str, float]]:
    """The matcher decision: ``(chosen_matcher, per-matcher estimates)``.

    Nested only wins on tiny sides, where its zero setup cost beats the
    hash matcher's bucket maintenance; ties go to hash (the paper's
    algorithm and the asymptotically safe choice).
    """
    estimates = estimate_matcher_costs(
        model, build_rows, probe_rows, expected_matches
    )
    if estimates["nested"] < estimates["hash"]:
        return "nested", estimates
    return "hash", estimates


# -- multi-way plan pricing ----------------------------------------------


def estimate_expected_matches(
    build_rows: int,
    probe_rows: int,
    build_distinct: int | None = None,
    probe_distinct: int | None = None,
) -> int:
    """Expected equi-join output size from per-side distinct estimates.

    The classic containment assumption: with ``V(R)`` / ``V(S)``
    distinct join values per side, every value of the smaller domain is
    assumed to appear in the larger one, so

        E[|R join S|] = |R| * |S| / max(V(R), V(S))

    Distinct counts are clamped to ``[1, rows]``; when a side has no
    estimate its row count is used (every value distinct — the
    conservative floor that predicts the fewest matches).  This feeds
    both matcher pricing (``choose_matcher(expected_matches=...)``) and
    the join-order chooser's intermediate-size chain.
    """
    if build_rows < 0 or probe_rows < 0:
        raise BenchmarkError("row counts must be non-negative")
    if build_rows == 0 or probe_rows == 0:
        return 0
    build_v = build_rows if build_distinct is None else build_distinct
    probe_v = probe_rows if probe_distinct is None else probe_distinct
    build_v = max(1, min(int(build_v), build_rows))
    probe_v = max(1, min(int(probe_v), probe_rows))
    return max(0, round(build_rows * probe_rows / max(build_v, probe_v)))


#: Past this many tables the exhaustive left-deep enumeration
#: (``n * 2^(n-2)`` orders) gives way to a greedy chooser.
MAX_EXHAUSTIVE_PLAN_TABLES = 8


def _left_deep_orders(n: int) -> list[tuple[int, ...]]:
    """Every left-deep order over a chain of ``n`` tables.

    A valid order grows a contiguous interval of the chain — start
    anywhere, then repeatedly extend one end — so every node joins
    through a chain adjacency (no cross products).
    """
    orders: list[tuple[int, ...]] = []

    def extend(lo: int, hi: int, order: list[int]) -> None:
        if lo == 0 and hi == n - 1:
            orders.append(tuple(order))
            return
        if lo > 0:
            extend(lo - 1, hi, order + [lo - 1])
        if hi < n - 1:
            extend(lo, hi + 1, order + [hi + 1])

    for start in range(n):
        extend(start, start, [start])
    return orders


def _order_match_cost(
    model: EngineCostModel,
    order: tuple[int, ...],
    cardinalities: list[int],
    distincts: list[int],
) -> float:
    """Predicted match-stage seconds for one left-deep order.

    SJ.Dec cost is identical across orders — the handle pool decrypts
    every (table, token) side exactly once regardless — so orders
    compete on the match stage alone: each node prices as a hash
    matcher whose build side is the running intermediate estimate.
    """
    inter_rows = cardinalities[order[0]]
    inter_distinct = distincts[order[0]]
    total = 0.0
    for index in order[1:]:
        rows = cardinalities[index]
        expected = estimate_expected_matches(
            inter_rows, rows, inter_distinct, distincts[index]
        )
        total += estimate_matcher_costs(
            model, inter_rows, rows, expected
        )["hash"]
        inter_rows = expected
        # The live join-value domain only shrinks as the chain extends.
        inter_distinct = min(inter_distinct, distincts[index])
    return total


def estimate_plan_costs(
    model: EngineCostModel,
    cardinalities: "list[int] | tuple[int, ...]",
    distincts: "list[int | None] | None" = None,
) -> dict[tuple[int, ...], float]:
    """Predicted match-stage seconds per left-deep order of a chain.

    ``cardinalities[i]`` is the candidate row count of chain position
    ``i`` (post-prefilter); ``distincts[i]`` the estimated distinct
    join values on that side (``None`` → assume all-distinct).  Chains
    longer than :data:`MAX_EXHAUSTIVE_PLAN_TABLES` are not enumerated
    here — use :func:`choose_join_order`, which falls back to greedy.
    """
    cards = [int(c) for c in cardinalities]
    if len(cards) < 2:
        raise BenchmarkError("a plan needs at least two tables")
    if any(c < 0 for c in cards):
        raise BenchmarkError("cardinalities must be non-negative")
    if len(cards) > MAX_EXHAUSTIVE_PLAN_TABLES:
        raise BenchmarkError(
            f"exhaustive enumeration caps at "
            f"{MAX_EXHAUSTIVE_PLAN_TABLES} tables; got {len(cards)}"
        )
    dv = _clamped_distincts(cards, distincts)
    return {
        order: _order_match_cost(model, order, cards, dv)
        for order in _left_deep_orders(len(cards))
    }


def _clamped_distincts(
    cards: list[int], distincts: "list[int | None] | None"
) -> list[int]:
    if distincts is None:
        distincts = [None] * len(cards)
    if len(distincts) != len(cards):
        raise BenchmarkError(
            "distincts must align with cardinalities "
            f"({len(distincts)} != {len(cards)})"
        )
    return [
        max(1, min(int(v), c)) if v is not None else max(1, c)
        for v, c in zip(distincts, cards)
    ]


def choose_join_order(
    model: EngineCostModel,
    cardinalities: "list[int] | tuple[int, ...]",
    distincts: "list[int | None] | None" = None,
) -> tuple[tuple[int, ...], dict[str, float]]:
    """The join-order decision: ``(order, {order_key: seconds})``.

    Orders are tuples of chain positions; the estimates dict is keyed
    by comma-joined positions (JSON-friendly for planner records).
    Ties break toward the left-to-right chain order.  Chains past the
    exhaustive cap are ordered greedily: start at the smallest side,
    then repeatedly extend whichever chain end prices cheaper.
    """
    cards = [int(c) for c in cardinalities]
    if len(cards) < 2:
        raise BenchmarkError("a plan needs at least two tables")
    if any(c < 0 for c in cards):
        raise BenchmarkError("cardinalities must be non-negative")
    dv = _clamped_distincts(cards, distincts)
    if len(cards) > MAX_EXHAUSTIVE_PLAN_TABLES:
        order = _greedy_order(model, cards, dv)
        cost = _order_match_cost(model, order, cards, dv)
        return order, {",".join(map(str, order)): cost}
    costs = estimate_plan_costs(model, cards, distincts)
    identity = tuple(range(len(cards)))
    best = min(costs, key=lambda o: (costs[o], o != identity, o))
    return best, {
        ",".join(map(str, order)): cost for order, cost in costs.items()
    }


def _greedy_order(
    model: EngineCostModel, cards: list[int], dv: list[int]
) -> tuple[int, ...]:
    n = len(cards)
    start = min(range(n), key=lambda i: cards[i])
    order = [start]
    lo = hi = start
    while len(order) < n:
        choices = []
        if lo > 0:
            choices.append(lo - 1)
        if hi < n - 1:
            choices.append(hi + 1)
        nxt = min(
            choices,
            key=lambda i: _order_match_cost(
                model, tuple(order + [i]), cards, dv
            ),
        )
        order.append(nxt)
        lo, hi = min(lo, nxt), max(hi, nxt)
    return tuple(order)


def calibrate_engine_cost_model(
    backend,
    dimension: int = 8,
    rows: int = 24,
    repeats: int = 3,
) -> EngineCostModel:
    """Measure per-op pairing costs on ``backend``; keep default overheads.

    Times the serial (full pairing per component), batched
    (``pair_vectors_batch``) and prepared-replay (``prepare_row`` once,
    then batched over the prepared rows) paths over a synthetic side
    and solves for the Miller-loop, final-exponentiation and
    prepared-replay costs; transport and scheduling constants are
    inherited from the backend's default model (measuring those would
    itself require spawning a pool).
    """
    if dimension < 2 or rows < 1:
        raise BenchmarkError("calibration needs dimension >= 2 and rows >= 1")
    token = backend.g1_powers(range(1, dimension + 1))
    side = [
        backend.g2_powers(range(r + 1, r + dimension + 1))
        for r in range(rows)
    ]
    prepared_side = [backend.prepare_row(row) for row in side]

    def measure(fn) -> float:
        best = math.inf
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    def run_batched():
        backend.pair_vectors_batch(token, side)

    def run_prepared():
        backend.pair_vectors_batch(token, prepared_side)

    def run_serial():
        for row in side:
            accumulator = backend.gt_identity()
            for g1, g2 in zip(token, row):
                accumulator = backend.gt_mul(
                    accumulator, backend.pair(g1, g2)
                )

    batched_row = measure(run_batched) / rows    # d*miller + 1*fexp
    prepared_row = measure(run_prepared) / rows  # d*prep_miller + 1*fexp
    serial_row = measure(run_serial) / rows      # d*(miller + fexp)
    base = default_engine_cost_model(backend.name)
    fexp = max((serial_row - batched_row) / (dimension - 1), 0.0)
    miller = max((batched_row - fexp) / dimension, 1e-12)
    prep_miller = max((prepared_row - fexp) / dimension, 1e-12)
    return replace(
        base,
        backend=backend.name,
        miller_loop=miller,
        final_exponentiation=max(fexp, 1e-12),
        prepared_miller_loop=prep_miller,
    )


def paper_shape_errors(unit_cost: float | None = None) -> dict[tuple, float]:
    """Relative error of the analytic model against every reported point.

    Small errors mean the paper's Figure 3 is explained by a single
    per-decryption constant — i.e. our linear-cost reproduction has the
    right shape and only the constant differs across testbeds.
    """
    if unit_cost is None:
        unit_cost = implied_paper_unit_cost()
    errors = {}
    for (scale_factor, selectivity), reported in PAPER_FIGURE3_POINTS.items():
        predicted = predict_with_unit_cost(unit_cost, scale_factor, selectivity)
        errors[(scale_factor, selectivity)] = abs(predicted - reported) / reported
    return errors
