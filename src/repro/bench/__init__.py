"""Benchmark harness reproducing the paper's evaluation (Section 6).

Each experiment function regenerates the data behind one paper artifact:

- :func:`repro.bench.experiments.figure2` — per-row crypto operation
  micro-benchmarks vs. IN-clause size,
- :func:`repro.bench.experiments.figure3` — server join runtime vs.
  TPC-H scale factor for four selectivities,
- :func:`repro.bench.experiments.figure4` — server join runtime vs.
  IN-clause size for four selectivities,
- :func:`repro.bench.experiments.comparison_with_hahn` — the Section 6.5
  comparison (per-decryption cost; hash vs. nested-loop scaling),
- :func:`repro.bench.experiments.leakage_example` — the Section 2.1
  leakage table (Example 2.1).

The ``benchmarks/`` directory wraps these in pytest-benchmark targets;
``python -m repro.bench`` prints the paper-style tables directly.
"""

from repro.bench.costmodel import (
    CostModel,
    expected_decryptions,
    fit_join_cost,
    implied_paper_unit_cost,
    paper_shape_errors,
    predict_with_unit_cost,
)
from repro.bench.harness import (
    BenchmarkRecord,
    ExperimentResult,
    format_series_table,
    time_callable,
)
from repro.bench.workloads import EncryptedTPCH, build_encrypted_tpch, tpch_query

__all__ = [
    "BenchmarkRecord",
    "CostModel",
    "EncryptedTPCH",
    "ExperimentResult",
    "build_encrypted_tpch",
    "expected_decryptions",
    "fit_join_cost",
    "format_series_table",
    "implied_paper_unit_cost",
    "paper_shape_errors",
    "predict_with_unit_cost",
    "time_callable",
    "tpch_query",
]
