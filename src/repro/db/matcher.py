"""Incremental equi-match kernels: the shared SJ.Match / join layer.

Both the plaintext joins (:mod:`repro.db.join`) and the encrypted
server's SJ.Match (:mod:`repro.core.server`) used to carry their own
materialized build-then-probe loops.  The streaming pipeline needs the
matcher to accept *partial* sides — decrypted chunks arrive from the
execution engines out of order and interleaved across sides — so the
matching kernels live here, incremental by construction:

- :class:`HashMatcher` — the paper's expected-O(n) hash join as a
  *symmetric* hash join: both sides keep a bucket table, every arriving
  item probes the other side's table, so matches are emitted as soon as
  both partners have arrived, regardless of arrival order.
- :class:`NestedMatcher` — the O(n·m) nested loop (the Hahn et al.
  ablation baseline), incrementalized the same way: each arriving item
  is compared against everything seen on the other side.

Emission order depends on arrival order, but :meth:`finish` returns the
complete pairing in the **canonical right-major order** — sorted by
(right index, left index) — which is exactly what the materialized
build-then-probe pass produced, so streamed and materialized runs are
byte-identical at the end.

Accounting matches the materialized pass too, by charging the canonical
algorithm rather than the arrival schedule:

- hash: one probe and one hash-key comparison per *right* item, plus
  one equality confirmation per emitted pair — ``comparisons == probes
  + matches``, O(n + m + output);
- nested: exactly one comparison per (left, right) pair — ``|L| * |R|``
  total, however the items arrive.

**Retained matcher state (the query-series cache).**  A matcher may
outlive the query that built it: the series cache keeps it resident and
*resumes* it when the same query arrives again — new base-table rows
are fed through ``add_left`` / ``add_right`` exactly like late-arriving
chunks, and deleted rows are withdrawn with :meth:`retract_left` /
:meth:`retract_right`, which remove the row from the bucket/list state
(so it can never pair with future arrivals) and drop its emitted pairs.
``finish()`` is idempotent and re-callable, so every resume yields the
canonical pairing of the *current* row set — byte-identical to a
from-scratch join over the live rows.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from dataclasses import dataclass


@dataclass
class MatcherStats:
    """Operation counts for one incremental match run."""

    probes: int = 0
    comparisons: int = 0
    matches: int = 0


class IncrementalMatcher:
    """Base class: feed keyed items per side, collect pairs incrementally.

    Items are ``(index, key)`` tuples; ``key`` is whatever equality the
    join is over (handle bytes on the encrypted path, cell values on
    the plaintext path).  ``add_left`` / ``add_right`` return the pairs
    *newly completed* by that delivery, in discovery order;
    :meth:`finish` returns every pair in canonical right-major order.
    """

    name = "abstract"

    def __init__(self) -> None:
        self.stats = MatcherStats()
        self._pairs: list[tuple[int, int]] = []

    # -- feeding ----------------------------------------------------------
    def add_left(
        self, items: Iterable[tuple[int, Hashable]]
    ) -> list[tuple[int, int]]:
        raise NotImplementedError

    def add_right(
        self, items: Iterable[tuple[int, Hashable]]
    ) -> list[tuple[int, int]]:
        raise NotImplementedError

    # -- retraction (delta-maintained deletes) ----------------------------
    def retract_left(self, indices: Iterable[int]) -> list[tuple[int, int]]:
        """Withdraw left rows: drop their pairs, forget their keys.

        Returns the emitted pairs that were dropped, so a consumer
        holding downstream state keyed by pair (the multi-way chain
        executor) can cascade the retraction.  Retraction is
        bookkeeping, not matching — it charges no probes or
        comparisons; ``stats.matches`` is decremented so it keeps
        counting the pairs currently standing.
        """
        raise NotImplementedError

    def retract_right(self, indices: Iterable[int]) -> list[tuple[int, int]]:
        raise NotImplementedError

    def _drop_pairs(
        self, removed: set[int], position: int
    ) -> list[tuple[int, int]]:
        if not removed:
            return []
        kept: list[tuple[int, int]] = []
        dropped: list[tuple[int, int]] = []
        for pair in self._pairs:
            (dropped if pair[position] in removed else kept).append(pair)
        self._pairs = kept
        self.stats.matches -= len(dropped)
        return dropped

    # -- results ----------------------------------------------------------
    def _emit(self, left_index: int, right_index: int, emitted: list) -> None:
        pair = (left_index, right_index)
        self._pairs.append(pair)
        emitted.append(pair)
        self.stats.matches += 1

    def finish(self) -> list[tuple[int, int]]:
        """All pairs, sorted into the canonical right-major order.

        Idempotent and re-callable: a retained matcher is finished once
        per replay, after any delta feeding/retraction in between.
        """
        self._pairs.sort(key=lambda pair: (pair[1], pair[0]))
        return list(self._pairs)


class HashMatcher(IncrementalMatcher):
    """Symmetric incremental hash join (the paper's expected-O(n) match).

    ``probes`` counts right-side items (the canonical probe side);
    ``comparisons`` is one hash-key comparison per probe plus one
    equality confirmation per emitted pair, independent of which side's
    arrival completed the pair.

    With ``symmetric=False`` the matcher degrades to the classic
    build-then-probe kernel: no right-side bucket table is maintained,
    so every left item must arrive before the right items that should
    pair with it.  The materialized callers (:mod:`repro.db.join`) use
    this to skip bookkeeping the streaming case needs and they never
    probe.
    """

    name = "hash"

    def __init__(self, symmetric: bool = True) -> None:
        super().__init__()
        self._left: dict[Hashable, list[int]] = {}
        self._right: dict[Hashable, list[int]] | None = (
            {} if symmetric else None
        )
        # index -> key reverse maps, so retraction can find (and empty)
        # the right bucket without scanning the whole table.
        self._left_keys: dict[int, Hashable] = {}
        self._right_keys: dict[int, Hashable] = {}

    def add_left(self, items):
        emitted: list[tuple[int, int]] = []
        for left_index, key in items:
            self._left.setdefault(key, []).append(left_index)
            self._left_keys[left_index] = key
            if self._right is not None:
                for right_index in self._right.get(key, ()):
                    self.stats.comparisons += 1
                    self._emit(left_index, right_index, emitted)
        return emitted

    def add_right(self, items):
        emitted: list[tuple[int, int]] = []
        for right_index, key in items:
            self.stats.probes += 1
            self.stats.comparisons += 1
            if self._right is not None:
                self._right.setdefault(key, []).append(right_index)
                self._right_keys[right_index] = key
            for left_index in self._left.get(key, ()):
                self.stats.comparisons += 1
                self._emit(left_index, right_index, emitted)
        return emitted

    def _retract(
        self,
        indices: Iterable[int],
        keys: dict[int, Hashable],
        buckets: dict[Hashable, list[int]] | None,
        position: int,
    ) -> list[tuple[int, int]]:
        removed = set(indices)
        for index in removed:
            key = keys.pop(index, None)
            if key is None or buckets is None:
                continue
            bucket = buckets.get(key)
            if bucket is not None:
                try:
                    bucket.remove(index)
                except ValueError:
                    pass
                if not bucket:
                    del buckets[key]
        return self._drop_pairs(removed, position)

    def retract_left(self, indices):
        return self._retract(indices, self._left_keys, self._left, 0)

    def retract_right(self, indices):
        return self._retract(indices, self._right_keys, self._right, 1)


class NestedMatcher(IncrementalMatcher):
    """Incremental nested loop: every cross pair compared exactly once.

    Kept for the Hahn et al. ablation — its comparison count is the
    quadratic blow-up the Section 6.5 comparison relies on.
    """

    name = "nested"

    def __init__(self) -> None:
        super().__init__()
        self._left: list[tuple[int, Hashable]] = []
        self._right: list[tuple[int, Hashable]] = []

    def add_left(self, items):
        emitted: list[tuple[int, int]] = []
        for left_index, key in items:
            self._left.append((left_index, key))
            for right_index, right_key in self._right:
                self.stats.comparisons += 1
                if key == right_key:
                    self._emit(left_index, right_index, emitted)
        return emitted

    def add_right(self, items):
        emitted: list[tuple[int, int]] = []
        for right_index, key in items:
            self._right.append((right_index, key))
            for left_index, left_key in self._left:
                self.stats.comparisons += 1
                if key == left_key:
                    self._emit(left_index, right_index, emitted)
        return emitted

    def retract_left(self, indices):
        removed = set(indices)
        self._left = [
            item for item in self._left if item[0] not in removed
        ]
        return self._drop_pairs(removed, 0)

    def retract_right(self, indices):
        removed = set(indices)
        self._right = [
            item for item in self._right if item[0] not in removed
        ]
        return self._drop_pairs(removed, 1)


MATCHER_NAMES = (HashMatcher.name, NestedMatcher.name)


def get_matcher(algorithm: str) -> IncrementalMatcher:
    """A fresh matcher instance for ``"hash"`` or ``"nested"``."""
    if algorithm == HashMatcher.name:
        return HashMatcher()
    if algorithm == NestedMatcher.name:
        return NestedMatcher()
    raise ValueError(
        f"unknown match algorithm {algorithm!r}; use one of {MATCHER_NAMES}"
    )
