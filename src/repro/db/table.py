"""In-memory relational tables."""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence

from repro.db.predicate import Predicate, TruePredicate
from repro.db.schema import Schema
from repro.errors import SchemaError

Row = tuple


class Table:
    """A named table: a schema plus an ordered list of rows.

    Rows are plain tuples in schema order.  The table validates rows on
    insertion so downstream code never sees schema violations.
    """

    def __init__(self, name: str, schema: Schema, rows: Iterable[Row] = ()):
        if not name:
            raise SchemaError("table name must be non-empty")
        self.name = name
        self.schema = schema
        self._rows: list[Row] = []
        for row in rows:
            self.insert(row)

    # -- construction ----------------------------------------------------
    @staticmethod
    def from_dicts(
        name: str, schema: Schema, records: Iterable[Mapping[str, object]]
    ) -> "Table":
        """Build a table from dict records keyed by column names."""
        table = Table(name, schema)
        names = schema.names()
        for record in records:
            unknown = set(record) - set(names)
            if unknown:
                raise SchemaError(f"unknown columns in record: {sorted(unknown)}")
            table.insert(tuple(record.get(n) for n in names))
        return table

    def insert(self, row: Sequence) -> None:
        row = tuple(row)
        self.schema.validate_row(row)
        self._rows.append(row)

    def insert_many(self, rows: Iterable[Sequence]) -> None:
        for row in rows:
            self.insert(row)

    # -- access ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __getitem__(self, index: int) -> Row:
        return self._rows[index]

    def rows(self) -> list[Row]:
        """A copy of the row list (mutating it does not affect the table)."""
        return list(self._rows)

    def column_values(self, column: str) -> list:
        """All values of one column, in row order."""
        index = self.schema.index_of(column)
        return [row[index] for row in self._rows]

    def value(self, row_index: int, column: str):
        return self._rows[row_index][self.schema.index_of(column)]

    # -- operators -----------------------------------------------------------
    def filter(self, predicate: Predicate) -> "Table":
        """A new table containing only rows matching the predicate."""
        result = Table(self.name, self.schema)
        for row in self._rows:
            if predicate.evaluate(row, self.schema):
                result._rows.append(row)
        return result

    def matching_indices(self, predicate: Predicate | None = None) -> list[int]:
        """Indices of rows matching the predicate (all rows if None)."""
        if predicate is None:
            predicate = TruePredicate()
        return [
            i
            for i, row in enumerate(self._rows)
            if predicate.evaluate(row, self.schema)
        ]

    def project(self, columns: Sequence[str]) -> "Table":
        """A new table with only the given columns."""
        indices = [self.schema.index_of(c) for c in columns]
        schema = Schema(tuple(self.schema.columns[i] for i in indices))
        result = Table(self.name, schema)
        for row in self._rows:
            result._rows.append(tuple(row[i] for i in indices))
        return result

    def rename(self, name: str) -> "Table":
        """Shallow copy with a different name (rows shared)."""
        copy = Table(name, self.schema)
        copy._rows = self._rows
        return copy

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {len(self)} rows, {self.schema.names()})"

    def pretty(self, limit: int = 10) -> str:
        """A printable grid of up to ``limit`` rows (for the examples)."""
        names = self.schema.names()
        shown = self._rows[:limit]
        cells = [list(map(str, names))] + [
            [str(v) for v in row] for row in shown
        ]
        widths = [max(len(r[c]) for r in cells) for c in range(len(names))]
        lines = []
        for i, row in enumerate(cells):
            lines.append(
                " | ".join(cell.ljust(w) for cell, w in zip(row, widths))
            )
            if i == 0:
                lines.append("-+-".join("-" * w for w in widths))
        if len(self._rows) > limit:
            lines.append(f"... ({len(self._rows) - limit} more rows)")
        return "\n".join(lines)
