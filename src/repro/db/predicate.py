"""Row predicates for selections.

Predicates evaluate against a row *and its schema*, so they are written
with column names and stay valid across projections.  The paper's
queries only need ``IN`` (and implicitly ``=``, a one-element ``IN``),
but the engine supports the usual boolean combinators so the substrate
is a complete little query processor.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

from repro.db.schema import Schema


class Predicate(ABC):
    """A boolean condition on a row."""

    @abstractmethod
    def evaluate(self, row: tuple, schema: Schema) -> bool:
        """Whether the row satisfies the predicate."""

    @abstractmethod
    def referenced_columns(self) -> frozenset[str]:
        """Column names this predicate reads (for validation/planning)."""

    def __and__(self, other: "Predicate") -> "Predicate":
        return AndPredicate(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return OrPredicate(self, other)

    def __invert__(self) -> "Predicate":
        return NotPredicate(self)


class TruePredicate(Predicate):
    """Matches every row (the empty WHERE clause)."""

    def evaluate(self, row: tuple, schema: Schema) -> bool:
        return True

    def referenced_columns(self) -> frozenset[str]:
        return frozenset()

    def __repr__(self) -> str:
        return "TRUE"


class EqPredicate(Predicate):
    """``column = value``."""

    def __init__(self, column: str, value):
        self.column = column
        self.value = value

    def evaluate(self, row: tuple, schema: Schema) -> bool:
        return row[schema.index_of(self.column)] == self.value

    def referenced_columns(self) -> frozenset[str]:
        return frozenset({self.column})

    def __repr__(self) -> str:
        return f"{self.column} = {self.value!r}"


class InPredicate(Predicate):
    """``column IN (v1, ..., vt)`` — the paper's selection shape."""

    def __init__(self, column: str, values: Sequence):
        self.column = column
        self.values = tuple(values)
        self._value_set = set(self.values)

    def evaluate(self, row: tuple, schema: Schema) -> bool:
        return row[schema.index_of(self.column)] in self._value_set

    def referenced_columns(self) -> frozenset[str]:
        return frozenset({self.column})

    def __repr__(self) -> str:
        return f"{self.column} IN {self.values!r}"


class AndPredicate(Predicate):
    def __init__(self, *parts: Predicate):
        self.parts = tuple(parts)

    def evaluate(self, row: tuple, schema: Schema) -> bool:
        return all(part.evaluate(row, schema) for part in self.parts)

    def referenced_columns(self) -> frozenset[str]:
        return frozenset().union(*(p.referenced_columns() for p in self.parts))

    def __repr__(self) -> str:
        return "(" + " AND ".join(map(repr, self.parts)) + ")"


class OrPredicate(Predicate):
    def __init__(self, *parts: Predicate):
        self.parts = tuple(parts)

    def evaluate(self, row: tuple, schema: Schema) -> bool:
        return any(part.evaluate(row, schema) for part in self.parts)

    def referenced_columns(self) -> frozenset[str]:
        return frozenset().union(*(p.referenced_columns() for p in self.parts))

    def __repr__(self) -> str:
        return "(" + " OR ".join(map(repr, self.parts)) + ")"


class NotPredicate(Predicate):
    def __init__(self, inner: Predicate):
        self.inner = inner

    def evaluate(self, row: tuple, schema: Schema) -> bool:
        return not self.inner.evaluate(row, schema)

    def referenced_columns(self) -> frozenset[str]:
        return self.inner.referenced_columns()

    def __repr__(self) -> str:
        return f"NOT ({self.inner!r})"
