"""Plaintext equi-join algorithms.

These serve two purposes in the reproduction:

1. *Ground truth* — the encrypted join's output is checked against the
   plaintext hash join on the same data and query.
2. *Cost model baselines* — the paper contrasts its ``O(n)`` hash join
   with the ``O(n^2)`` nested-loop join forced by Hahn et al.'s scheme,
   so both algorithms are implemented and instrumented.

The actual matching kernels live in :mod:`repro.db.matcher` — the same
incremental matchers the encrypted server's streaming pipeline feeds
chunk by chunk; here they are fed fully materialized sides.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.matcher import HashMatcher, NestedMatcher
from repro.db.predicate import Predicate, TruePredicate
from repro.db.schema import Column, Schema
from repro.db.table import Row, Table


@dataclass
class JoinStats:
    """Operation counts, for complexity assertions and benchmarks."""

    probes: int = 0
    comparisons: int = 0
    output_rows: int = 0


@dataclass
class JoinResult:
    """A joined table plus the matched row-index pairs and statistics."""

    table: Table
    index_pairs: list[tuple[int, int]] = field(default_factory=list)
    stats: JoinStats = field(default_factory=JoinStats)


def joined_prefixes(
    left_name: str,
    right_name: str,
    left_columns: set[str],
    right_columns: set[str],
) -> tuple[str, str]:
    """Column prefixes for a join result: empty when nothing collides,
    table names on collisions, numbered table names for self-joins."""
    if not (left_columns & right_columns):
        return "", ""
    if left_name == right_name:
        return f"{left_name}.1.", f"{right_name}.2."
    return f"{left_name}.", f"{right_name}."


def chain_prefixes(
    names: "list[str] | tuple[str, ...]",
    column_sets: "list[set[str]]",
) -> tuple[str, ...]:
    """Column prefixes for an n-way chain result.

    The n-way generalization of :func:`joined_prefixes` — and the rule
    the encrypted client's chain decryption shares, so plaintext
    reference and decrypted output carry byte-identical schemas: no
    prefixes while every table's columns are pairwise disjoint, else
    table-name prefixes, with occurrence numbers on repeated tables.
    """
    seen: set[str] = set()
    disjoint = True
    for columns in column_sets:
        if seen & columns:
            disjoint = False
            break
        seen |= columns
    if disjoint:
        return tuple("" for _ in names)
    repeats = {name for name in names if names.count(name) > 1}
    occurrence: dict[str, int] = {}
    prefixes = []
    for name in names:
        if name in repeats:
            occurrence[name] = occurrence.get(name, 0) + 1
            prefixes.append(f"{name}.{occurrence[name]}.")
        else:
            prefixes.append(f"{name}.")
    return tuple(prefixes)


def chain_schema(names, schemas) -> Schema:
    """Concatenated schema of an n-way chain result."""
    prefixes = chain_prefixes(
        list(names), [set(s.names()) for s in schemas]
    )
    columns = []
    for prefix, schema in zip(prefixes, schemas):
        for column in schema.columns:
            columns.append(Column(prefix + column.name, column.type))
    return Schema(tuple(columns))


def _joined_schema(left: Table, right: Table) -> Schema:
    """Concatenated schema with table-name prefixes on collisions."""
    prefix_left, prefix_right = joined_prefixes(
        left.name, right.name,
        set(left.schema.names()), set(right.schema.names()),
    )
    return left.schema.concat(
        right.schema, prefix_self=prefix_left, prefix_other=prefix_right
    )


def hash_join(
    left: Table,
    right: Table,
    left_column: str,
    right_column: str,
    left_predicate: Predicate | None = None,
    right_predicate: Predicate | None = None,
) -> JoinResult:
    """Equi-join with an expected ``O(|left| + |right|)`` hash join.

    Selection predicates are applied before the join (selection pushdown),
    mirroring how the encrypted scheme only matches rows that satisfy
    the selection criterion.
    """
    left_predicate = left_predicate or TruePredicate()
    right_predicate = right_predicate or TruePredicate()
    left_key = left.schema.index_of(left_column)
    right_key = right.schema.index_of(right_column)

    left_rows = list(left)
    right_rows = list(right)
    # Build-then-probe: the left side is complete before the first
    # probe, so the symmetric right-side bookkeeping is dead weight.
    matcher = HashMatcher(symmetric=False)
    matcher.add_left(
        (i, row[left_key])
        for i, row in enumerate(left_rows)
        if left_predicate.evaluate(row, left.schema)
    )
    matcher.add_right(
        (j, row[right_key])
        for j, row in enumerate(right_rows)
        if right_predicate.evaluate(row, right.schema)
    )
    pairs = matcher.finish()

    result = Table("join", _joined_schema(left, right))
    for i, j in pairs:
        result.insert(left_rows[i] + right_rows[j])
    stats = JoinStats(
        probes=matcher.stats.probes,
        comparisons=matcher.stats.comparisons,
        output_rows=len(pairs),
    )
    return JoinResult(result, pairs, stats)


def nested_loop_join(
    left: Table,
    right: Table,
    left_column: str,
    right_column: str,
    left_predicate: Predicate | None = None,
    right_predicate: Predicate | None = None,
) -> JoinResult:
    """The ``O(|left| * |right|)`` nested-loop equi-join.

    Produces exactly the same rows as :func:`hash_join` (up to order);
    its instrumented comparison count is what the Section 6.5 comparison
    against Hahn et al. relies on.
    """
    left_predicate = left_predicate or TruePredicate()
    right_predicate = right_predicate or TruePredicate()
    left_key = left.schema.index_of(left_column)
    right_key = right.schema.index_of(right_column)

    left_rows = list(left)
    right_rows = list(right)
    matcher = NestedMatcher()
    matcher.add_left(
        (i, row[left_key])
        for i, row in enumerate(left_rows)
        if left_predicate.evaluate(row, left.schema)
    )
    matcher.add_right(
        (j, row[right_key])
        for j, row in enumerate(right_rows)
        if right_predicate.evaluate(row, right.schema)
    )
    pairs = matcher.finish()

    result = Table("join", _joined_schema(left, right))
    for i, j in pairs:
        result.insert(left_rows[i] + right_rows[j])
    stats = JoinStats(
        probes=matcher.stats.probes,
        comparisons=matcher.stats.comparisons,
        output_rows=len(pairs),
    )
    return JoinResult(result, pairs, stats)


@dataclass
class ChainJoinResult:
    """An n-way chain join result: joined table + row-index tuples."""

    table: Table
    index_tuples: list[tuple[int, ...]] = field(default_factory=list)
    stats: JoinStats = field(default_factory=JoinStats)


def chain_join(
    tables: "list[Table]",
    columns: "list[str]",
    predicates: "list[Predicate | None] | None" = None,
) -> ChainJoinResult:
    """Ground-truth n-way chain equi-join.

    Each table carries one join column, so the chain is transitive: a
    result tuple picks one (predicate-surviving) row per position, all
    sharing the same join value — exactly the n-way handle-equality
    class the encrypted :class:`~repro.plan.executor.ChainExecutor`
    computes.  ``index_tuples`` come out sorted lexicographically, the
    same canonical order the executor's ``finish`` uses, so encrypted
    and plaintext outputs compare byte-for-byte.
    """
    if len(tables) < 2 or len(tables) != len(columns):
        raise ValueError("chain_join needs matching tables and columns, n >= 2")
    if predicates is None:
        predicates = [None] * len(tables)
    all_rows = [list(table) for table in tables]
    # Bucket each position's surviving rows by join value, then walk
    # the value classes common to every position.
    buckets: list[dict[object, list[int]]] = []
    probes = 0
    for table, column, predicate, rows in zip(
        tables, columns, predicates, all_rows
    ):
        predicate = predicate or TruePredicate()
        key = table.schema.index_of(column)
        bucket: dict[object, list[int]] = {}
        for i, row in enumerate(rows):
            if predicate.evaluate(row, table.schema):
                bucket.setdefault(row[key], []).append(i)
                probes += 1
        buckets.append(bucket)
    common = set(buckets[0])
    for bucket in buckets[1:]:
        common &= set(bucket)

    index_tuples: list[tuple[int, ...]] = []
    for value in common:
        partial: list[tuple[int, ...]] = [()]
        for bucket in buckets:
            partial = [
                prefix + (i,) for prefix in partial for i in bucket[value]
            ]
        index_tuples.extend(partial)
    index_tuples.sort()

    result = Table(
        "join",
        chain_schema(
            [t.name for t in tables], [t.schema for t in tables]
        ),
    )
    for combo in index_tuples:
        joined: tuple = ()
        for position, i in enumerate(combo):
            joined = joined + tuple(all_rows[position][i])
        result.insert(joined)
    stats = JoinStats(
        probes=probes,
        comparisons=probes,
        output_rows=len(index_tuples),
    )
    return ChainJoinResult(result, index_tuples, stats)
