"""Plaintext equi-join algorithms.

These serve two purposes in the reproduction:

1. *Ground truth* — the encrypted join's output is checked against the
   plaintext hash join on the same data and query.
2. *Cost model baselines* — the paper contrasts its ``O(n)`` hash join
   with the ``O(n^2)`` nested-loop join forced by Hahn et al.'s scheme,
   so both algorithms are implemented and instrumented.

The actual matching kernels live in :mod:`repro.db.matcher` — the same
incremental matchers the encrypted server's streaming pipeline feeds
chunk by chunk; here they are fed fully materialized sides.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.matcher import HashMatcher, NestedMatcher
from repro.db.predicate import Predicate, TruePredicate
from repro.db.schema import Schema
from repro.db.table import Row, Table


@dataclass
class JoinStats:
    """Operation counts, for complexity assertions and benchmarks."""

    probes: int = 0
    comparisons: int = 0
    output_rows: int = 0


@dataclass
class JoinResult:
    """A joined table plus the matched row-index pairs and statistics."""

    table: Table
    index_pairs: list[tuple[int, int]] = field(default_factory=list)
    stats: JoinStats = field(default_factory=JoinStats)


def joined_prefixes(
    left_name: str,
    right_name: str,
    left_columns: set[str],
    right_columns: set[str],
) -> tuple[str, str]:
    """Column prefixes for a join result: empty when nothing collides,
    table names on collisions, numbered table names for self-joins."""
    if not (left_columns & right_columns):
        return "", ""
    if left_name == right_name:
        return f"{left_name}.1.", f"{right_name}.2."
    return f"{left_name}.", f"{right_name}."


def _joined_schema(left: Table, right: Table) -> Schema:
    """Concatenated schema with table-name prefixes on collisions."""
    prefix_left, prefix_right = joined_prefixes(
        left.name, right.name,
        set(left.schema.names()), set(right.schema.names()),
    )
    return left.schema.concat(
        right.schema, prefix_self=prefix_left, prefix_other=prefix_right
    )


def hash_join(
    left: Table,
    right: Table,
    left_column: str,
    right_column: str,
    left_predicate: Predicate | None = None,
    right_predicate: Predicate | None = None,
) -> JoinResult:
    """Equi-join with an expected ``O(|left| + |right|)`` hash join.

    Selection predicates are applied before the join (selection pushdown),
    mirroring how the encrypted scheme only matches rows that satisfy
    the selection criterion.
    """
    left_predicate = left_predicate or TruePredicate()
    right_predicate = right_predicate or TruePredicate()
    left_key = left.schema.index_of(left_column)
    right_key = right.schema.index_of(right_column)

    left_rows = list(left)
    right_rows = list(right)
    # Build-then-probe: the left side is complete before the first
    # probe, so the symmetric right-side bookkeeping is dead weight.
    matcher = HashMatcher(symmetric=False)
    matcher.add_left(
        (i, row[left_key])
        for i, row in enumerate(left_rows)
        if left_predicate.evaluate(row, left.schema)
    )
    matcher.add_right(
        (j, row[right_key])
        for j, row in enumerate(right_rows)
        if right_predicate.evaluate(row, right.schema)
    )
    pairs = matcher.finish()

    result = Table("join", _joined_schema(left, right))
    for i, j in pairs:
        result.insert(left_rows[i] + right_rows[j])
    stats = JoinStats(
        probes=matcher.stats.probes,
        comparisons=matcher.stats.comparisons,
        output_rows=len(pairs),
    )
    return JoinResult(result, pairs, stats)


def nested_loop_join(
    left: Table,
    right: Table,
    left_column: str,
    right_column: str,
    left_predicate: Predicate | None = None,
    right_predicate: Predicate | None = None,
) -> JoinResult:
    """The ``O(|left| * |right|)`` nested-loop equi-join.

    Produces exactly the same rows as :func:`hash_join` (up to order);
    its instrumented comparison count is what the Section 6.5 comparison
    against Hahn et al. relies on.
    """
    left_predicate = left_predicate or TruePredicate()
    right_predicate = right_predicate or TruePredicate()
    left_key = left.schema.index_of(left_column)
    right_key = right.schema.index_of(right_column)

    left_rows = list(left)
    right_rows = list(right)
    matcher = NestedMatcher()
    matcher.add_left(
        (i, row[left_key])
        for i, row in enumerate(left_rows)
        if left_predicate.evaluate(row, left.schema)
    )
    matcher.add_right(
        (j, row[right_key])
        for j, row in enumerate(right_rows)
        if right_predicate.evaluate(row, right.schema)
    )
    pairs = matcher.finish()

    result = Table("join", _joined_schema(left, right))
    for i, j in pairs:
        result.insert(left_rows[i] + right_rows[j])
    stats = JoinStats(
        probes=matcher.stats.probes,
        comparisons=matcher.stats.comparisons,
        output_rows=len(pairs),
    )
    return JoinResult(result, pairs, stats)
