"""The equi-join query model.

A :class:`JoinQuery` captures exactly the query shape of the paper
(Example 4.1)::

    SELECT * FROM T_A JOIN T_B ON A0 = B0
    WHERE A_i IN Phi_i AND ... AND B_j IN Psi_j AND ...

Each table contributes a join column and a *selection*: a mapping from
attribute names to the tuple of allowed values (the ``IN`` clause).
An empty selection means "no restriction" (the zero polynomial in the
encrypted encoding).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.db.predicate import AndPredicate, InPredicate, Predicate, TruePredicate
from repro.db.schema import Schema
from repro.errors import QueryError


def _frozen_selection(
    selection: Mapping[str, Sequence] | None,
) -> tuple[tuple[str, tuple], ...]:
    if not selection:
        return ()
    items = []
    for column, values in selection.items():
        values = tuple(values)
        if not values:
            raise QueryError(f"IN clause for {column!r} must be non-empty")
        items.append((column, values))
    return tuple(sorted(items))


@dataclass(frozen=True)
class TableSelection:
    """The WHERE-clause restrictions on a single table."""

    in_clauses: tuple[tuple[str, tuple], ...] = ()

    @staticmethod
    def of(selection: Mapping[str, Sequence] | None) -> "TableSelection":
        return TableSelection(_frozen_selection(selection))

    @property
    def is_empty(self) -> bool:
        return not self.in_clauses

    def as_dict(self) -> dict[str, tuple]:
        return dict(self.in_clauses)

    def max_in_size(self) -> int:
        """Size of the largest IN clause (must be <= the scheme's t)."""
        return max((len(v) for _, v in self.in_clauses), default=0)

    def to_predicate(self) -> Predicate:
        """The equivalent plaintext predicate."""
        if not self.in_clauses:
            return TruePredicate()
        parts = [InPredicate(c, v) for c, v in self.in_clauses]
        if len(parts) == 1:
            return parts[0]
        return AndPredicate(*parts)

    def validate(self, schema: Schema, join_column: str) -> None:
        for column, _ in self.in_clauses:
            if column not in schema:
                raise QueryError(
                    f"selection column {column!r} not in schema {schema.names()}"
                )
            if column == join_column:
                raise QueryError(
                    f"selection on the join column {column!r} is not supported"
                )


@dataclass(frozen=True)
class JoinQuery:
    """``SELECT * FROM left JOIN right ON ... WHERE ... IN ...``."""

    left_table: str
    right_table: str
    left_join_column: str
    right_join_column: str
    left_selection: TableSelection = field(default_factory=TableSelection)
    right_selection: TableSelection = field(default_factory=TableSelection)

    @staticmethod
    def build(
        left_table: str,
        right_table: str,
        on: tuple[str, str],
        where_left: Mapping[str, Sequence] | None = None,
        where_right: Mapping[str, Sequence] | None = None,
    ) -> "JoinQuery":
        """Convenience constructor with dict-shaped selections."""
        return JoinQuery(
            left_table=left_table,
            right_table=right_table,
            left_join_column=on[0],
            right_join_column=on[1],
            left_selection=TableSelection.of(where_left),
            right_selection=TableSelection.of(where_right),
        )

    def max_in_size(self) -> int:
        return max(
            self.left_selection.max_in_size(),
            self.right_selection.max_in_size(),
        )

    def __str__(self) -> str:
        clauses = []
        for table, sel in (
            (self.left_table, self.left_selection),
            (self.right_table, self.right_selection),
        ):
            for column, values in sel.in_clauses:
                rendered = ", ".join(repr(v) for v in values)
                clauses.append(f"{table}.{column} IN ({rendered})")
        where = (" WHERE " + " AND ".join(clauses)) if clauses else ""
        return (
            f"SELECT * FROM {self.left_table} JOIN {self.right_table} "
            f"ON {self.left_join_column} = {self.right_join_column}{where}"
        )


@dataclass(frozen=True)
class ChainQuery:
    """A multi-way chain of equi-joins over one value class.

    Every table in the scheme carries a single join column, so a chain
    ``T0 ⋈ T1 ⋈ ... ⋈ Tn-1`` is necessarily *transitive*: a result
    tuple picks one row per position, all sharing the same join value.
    Positions are the chain order the client wrote; the server's
    planner is free to evaluate them in any contiguous left-deep order
    without changing the result.
    """

    tables: tuple[str, ...]
    join_columns: tuple[str, ...]
    selections: tuple[TableSelection, ...]

    def __post_init__(self):
        n = len(self.tables)
        if n < 2:
            raise QueryError("a chain query needs at least two tables")
        if len(self.join_columns) != n or len(self.selections) != n:
            raise QueryError(
                "chain query tables, join columns and selections must "
                "have the same length"
            )

    @staticmethod
    def build(
        chain: Sequence[tuple[str, str]],
        where: Sequence[Mapping[str, Sequence] | None] | None = None,
    ) -> "ChainQuery":
        """Build from ``[(table, join_column), ...]`` plus positional
        dict-shaped selections."""
        chain = list(chain)
        if where is None:
            where = [None] * len(chain)
        if len(where) != len(chain):
            raise QueryError(
                f"chain has {len(chain)} positions but {len(where)} "
                "selections were given"
            )
        return ChainQuery(
            tables=tuple(table for table, _ in chain),
            join_columns=tuple(column for _, column in chain),
            selections=tuple(TableSelection.of(w) for w in where),
        )

    def max_in_size(self) -> int:
        return max(sel.max_in_size() for sel in self.selections)

    def __str__(self) -> str:
        clauses = []
        for table, sel in zip(self.tables, self.selections):
            for column, values in sel.in_clauses:
                rendered = ", ".join(repr(v) for v in values)
                clauses.append(f"{table}.{column} IN ({rendered})")
        where = (" WHERE " + " AND ".join(clauses)) if clauses else ""
        joins = " JOIN ".join(self.tables)
        on = " = ".join(
            f"{table}.{column}"
            for table, column in zip(self.tables, self.join_columns)
        )
        return f"SELECT * FROM {joins} ON {on}{where}"
