"""A small relational engine: the plaintext substrate of the reproduction.

This package provides schemas, in-memory tables, predicates, plaintext
hash/nested-loop equi-joins (the ground truth the encrypted join is
checked against) and a restricted SQL front end matching the paper's
query shape::

    SELECT * FROM A JOIN B ON A.x = B.y
    WHERE A.c IN (v1, v2) AND B.d IN (w1)
"""

from repro.db.database import Database
from repro.db.join import hash_join, nested_loop_join
from repro.db.query import JoinQuery, TableSelection
from repro.db.predicate import (
    AndPredicate,
    EqPredicate,
    InPredicate,
    NotPredicate,
    OrPredicate,
    Predicate,
    TruePredicate,
)
from repro.db.schema import Column, Schema
from repro.db.sql import parse_join_query
from repro.db.table import Row, Table

__all__ = [
    "AndPredicate",
    "Column",
    "Database",
    "EqPredicate",
    "InPredicate",
    "JoinQuery",
    "TableSelection",
    "NotPredicate",
    "OrPredicate",
    "Predicate",
    "Row",
    "Schema",
    "Table",
    "TruePredicate",
    "hash_join",
    "nested_loop_join",
    "parse_join_query",
]
