"""A plaintext database: named tables plus join-query execution.

This is the reference implementation the encrypted path is validated
against: ``Database.execute(query)`` runs the selection-then-join
pipeline entirely in plaintext.
"""

from __future__ import annotations

from repro.db.join import JoinResult, hash_join, nested_loop_join
from repro.db.query import JoinQuery
from repro.db.table import Table
from repro.errors import QueryError


class Database:
    """A named collection of tables with equi-join execution."""

    def __init__(self):
        self._tables: dict[str, Table] = {}

    def add_table(self, table: Table) -> None:
        if table.name in self._tables:
            raise QueryError(f"table {table.name!r} already exists")
        self._tables[table.name] = table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise QueryError(
                f"unknown table {name!r}; have {sorted(self._tables)}"
            ) from None

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def execute(self, query: JoinQuery, algorithm: str = "hash") -> JoinResult:
        """Run an equi-join query; ``algorithm`` is ``"hash"`` or ``"nested"``."""
        left = self.table(query.left_table)
        right = self.table(query.right_table)
        query.left_selection.validate(left.schema, query.left_join_column)
        query.right_selection.validate(right.schema, query.right_join_column)
        if query.left_join_column not in left.schema:
            raise QueryError(
                f"join column {query.left_join_column!r} not in "
                f"{query.left_table!r}"
            )
        if query.right_join_column not in right.schema:
            raise QueryError(
                f"join column {query.right_join_column!r} not in "
                f"{query.right_table!r}"
            )
        join = {"hash": hash_join, "nested": nested_loop_join}.get(algorithm)
        if join is None:
            raise QueryError(f"unknown join algorithm {algorithm!r}")
        return join(
            left,
            right,
            query.left_join_column,
            query.right_join_column,
            query.left_selection.to_predicate(),
            query.right_selection.to_predicate(),
        )
