"""Relational schemas: columns, types and row validation."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError

# The cell types the engine supports, named as in SQL.
COLUMN_TYPES = {"int", "str", "float", "bool"}

_PYTHON_TYPES = {
    "int": int,
    "str": str,
    "float": (int, float),
    "bool": bool,
}


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    type: str = "str"

    def __post_init__(self):
        if not self.name:
            raise SchemaError("column name must be non-empty")
        if self.type not in COLUMN_TYPES:
            raise SchemaError(
                f"unknown column type {self.type!r}; expected one of {sorted(COLUMN_TYPES)}"
            )

    def accepts(self, value) -> bool:
        """Whether ``value`` is a legal cell for this column (None = NULL)."""
        if value is None:
            return True
        expected = _PYTHON_TYPES[self.type]
        if self.type != "bool" and isinstance(value, bool):
            return False
        return isinstance(value, expected)


@dataclass(frozen=True)
class Schema:
    """An ordered collection of columns with name-based lookup."""

    columns: tuple[Column, ...]
    _index: dict = field(init=False, repr=False, compare=False, hash=False)

    def __post_init__(self):
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in schema: {names}")
        object.__setattr__(
            self, "_index", {c.name: i for i, c in enumerate(self.columns)}
        )

    @staticmethod
    def of(*specs: tuple[str, str] | str) -> "Schema":
        """Build a schema from ``("name", "type")`` pairs or bare names."""
        columns = []
        for spec in specs:
            if isinstance(spec, str):
                columns.append(Column(spec))
            else:
                name, column_type = spec
                columns.append(Column(name, column_type))
        return Schema(tuple(columns))

    def __len__(self) -> int:
        return len(self.columns)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def index_of(self, name: str) -> int:
        """Position of a column; raises :class:`SchemaError` if unknown."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"unknown column {name!r}; schema has {self.names()}"
            ) from None

    def column(self, name: str) -> Column:
        return self.columns[self.index_of(name)]

    def validate_row(self, row: tuple) -> None:
        """Raise :class:`SchemaError` unless the row fits this schema."""
        if len(row) != len(self.columns):
            raise SchemaError(
                f"row arity {len(row)} != schema arity {len(self.columns)}"
            )
        for value, column in zip(row, self.columns):
            if not column.accepts(value):
                raise SchemaError(
                    f"value {value!r} is not a {column.type} "
                    f"(column {column.name!r})"
                )

    def concat(self, other: "Schema", prefix_self: str = "", prefix_other: str = "") -> "Schema":
        """Schema of a joined table, with optional disambiguating prefixes."""
        columns = [
            Column(prefix_self + c.name, c.type) for c in self.columns
        ] + [
            Column(prefix_other + c.name, c.type) for c in other.columns
        ]
        return Schema(tuple(columns))
