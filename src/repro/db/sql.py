"""A tiny SQL front end for the paper's query shape.

Grammar (case-insensitive keywords)::

    query  := SELECT '*' FROM ident JOIN ident ON operand '=' operand
              [ WHERE cond (AND cond)* ]
    cond   := operand IN '(' literal (',' literal)* ')'
            | operand '=' literal
    operand := ident | ident '.' ident
    literal := integer | float | 'string' | "string"

Only the features the paper's Secure Join supports are accepted; anything
else raises :class:`~repro.errors.QueryError` with a pointed message.
"""

from __future__ import annotations

import re

from repro.db.query import JoinQuery, TableSelection
from repro.db.schema import Schema
from repro.errors import QueryError

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<string>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
      | (?P<number>-?\d+\.\d+|-?\d+)
      | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
      | (?P<punct>[*().,=])
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {"select", "from", "join", "on", "where", "and", "in"}


class _Token:
    __slots__ = ("kind", "value")

    def __init__(self, kind: str, value):
        self.kind = kind
        self.value = value

    def __repr__(self) -> str:
        return f"{self.kind}:{self.value!r}"


def _tokenize(sql: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(sql):
        if sql[position].isspace():
            position += 1
            continue
        match = _TOKEN_RE.match(sql, position)
        if not match or match.start() != position:
            raise QueryError(f"cannot tokenize SQL at ...{sql[position:position + 20]!r}")
        position = match.end()
        if match.lastgroup == "string":
            raw = match.group("string")
            body = raw[1:-1].replace("\\'", "'").replace('\\"', '"')
            tokens.append(_Token("literal", body))
        elif match.lastgroup == "number":
            raw = match.group("number")
            tokens.append(_Token("literal", float(raw) if "." in raw else int(raw)))
        elif match.lastgroup == "ident":
            word = match.group("ident")
            if word.lower() in _KEYWORDS:
                tokens.append(_Token("keyword", word.lower()))
            else:
                tokens.append(_Token("ident", word))
        else:
            tokens.append(_Token("punct", match.group("punct")))
    return tokens


class _Parser:
    def __init__(self, tokens: list[_Token]):
        self._tokens = tokens
        self._pos = 0

    def _peek(self) -> _Token | None:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise QueryError("unexpected end of SQL")
        self._pos += 1
        return token

    def _expect_keyword(self, word: str) -> None:
        token = self._next()
        if token.kind != "keyword" or token.value != word:
            raise QueryError(f"expected {word.upper()}, got {token!r}")

    def _expect_punct(self, punct: str) -> None:
        token = self._next()
        if token.kind != "punct" or token.value != punct:
            raise QueryError(f"expected {punct!r}, got {token!r}")

    def _expect_ident(self) -> str:
        token = self._next()
        if token.kind != "ident":
            raise QueryError(f"expected identifier, got {token!r}")
        return token.value

    def _operand(self) -> tuple[str | None, str]:
        """An optionally table-qualified column: returns (table, column)."""
        first = self._expect_ident()
        if self._peek() and self._peek().kind == "punct" and self._peek().value == ".":
            self._next()
            return first, self._expect_ident()
        return None, first

    def _literal(self):
        token = self._next()
        if token.kind != "literal":
            raise QueryError(f"expected a literal, got {token!r}")
        return token.value

    def parse(self) -> "_ParsedQuery":
        self._expect_keyword("select")
        self._expect_punct("*")
        self._expect_keyword("from")
        left_table = self._expect_ident()
        self._expect_keyword("join")
        right_table = self._expect_ident()
        self._expect_keyword("on")
        on_left = self._operand()
        self._expect_punct("=")
        on_right = self._operand()
        conditions: list[tuple[tuple[str | None, str], tuple]] = []
        if self._peek() is not None:
            self._expect_keyword("where")
            while True:
                conditions.append(self._condition())
                token = self._peek()
                if token is None:
                    break
                if token.kind == "keyword" and token.value == "and":
                    self._next()
                    continue
                raise QueryError(f"unexpected trailing token {token!r}")
        return _ParsedQuery(left_table, right_table, on_left, on_right, conditions)

    def _condition(self) -> tuple[tuple[str | None, str], tuple]:
        operand = self._operand()
        token = self._next()
        if token.kind == "keyword" and token.value == "in":
            self._expect_punct("(")
            values = [self._literal()]
            while self._peek() and self._peek().value == ",":
                self._next()
                values.append(self._literal())
            self._expect_punct(")")
            return operand, tuple(values)
        if token.kind == "punct" and token.value == "=":
            return operand, (self._literal(),)
        raise QueryError(f"expected IN or =, got {token!r}")


class _ParsedQuery:
    def __init__(self, left_table, right_table, on_left, on_right, conditions):
        self.left_table = left_table
        self.right_table = right_table
        self.on_left = on_left
        self.on_right = on_right
        self.conditions = conditions


def _resolve_side(
    operand: tuple[str | None, str],
    left_table: str,
    right_table: str,
    left_schema: Schema | None,
    right_schema: Schema | None,
) -> str:
    """Decide which table a (possibly unqualified) column belongs to."""
    table, column = operand
    if table is not None:
        if table == left_table:
            return "left"
        if table == right_table:
            return "right"
        raise QueryError(f"unknown table qualifier {table!r}")
    in_left = left_schema is not None and column in left_schema
    in_right = right_schema is not None and column in right_schema
    if in_left and in_right:
        raise QueryError(
            f"column {column!r} is ambiguous; qualify it with a table name"
        )
    if in_left:
        return "left"
    if in_right:
        return "right"
    if left_schema is None and right_schema is None:
        raise QueryError(
            f"cannot resolve unqualified column {column!r} without schemas"
        )
    raise QueryError(f"column {column!r} not found in either table")


def parse_join_query(
    sql: str,
    left_schema: Schema | None = None,
    right_schema: Schema | None = None,
) -> JoinQuery:
    """Parse restricted SQL into a :class:`~repro.db.query.JoinQuery`.

    Unqualified WHERE/ON columns are resolved against the optional
    schemas; without schemas, every column must be table-qualified.
    """
    parsed = _Parser(_tokenize(sql)).parse()

    def side_of(operand):
        return _resolve_side(
            operand, parsed.left_table, parsed.right_table, left_schema, right_schema
        )

    on_sides = side_of(parsed.on_left), side_of(parsed.on_right)
    if on_sides == ("left", "right"):
        left_join, right_join = parsed.on_left[1], parsed.on_right[1]
    elif on_sides == ("right", "left"):
        left_join, right_join = parsed.on_right[1], parsed.on_left[1]
    else:
        raise QueryError("ON clause must reference one column from each table")

    left_where: dict[str, tuple] = {}
    right_where: dict[str, tuple] = {}
    for operand, values in parsed.conditions:
        side = side_of(operand)
        target = left_where if side == "left" else right_where
        column = operand[1]
        if column in target:
            raise QueryError(f"duplicate condition on column {column!r}")
        target[column] = values

    return JoinQuery(
        left_table=parsed.left_table,
        right_table=parsed.right_table,
        left_join_column=left_join,
        right_join_column=right_join,
        left_selection=TableSelection.of(left_where),
        right_selection=TableSelection.of(right_where),
    )
