"""repro — reproduction of "Equi-Joins over Encrypted Data for Series of
Queries" (Shafieinejad et al., ICDE 2022).

Quickstart::

    from repro import SecureJoinClient, SecureJoinServer, JoinQuery, Table, Schema

    schema = Schema.of(("key", "int"), ("name", "str"))
    teams = Table("Teams", schema, [(1, "Web Application"), (2, "Database")])
    ...
    client = SecureJoinClient.for_tables([(teams, "key"), (employees, "team")])
    server = SecureJoinServer(client.params)
    server.store(client.encrypt_table(teams, "key"))
    server.store(client.encrypt_table(employees, "team"))
    query = JoinQuery.build("Teams", "Employees", on=("key", "team"),
                            where_left={"name": ["Web Application"]},
                            where_right={"role": ["Tester"]})
    result = client.decrypt_result(server.execute_join(client.create_query(query)))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.core.client import (
    DecryptedChainResult,
    DecryptedJoinResult,
    EncryptedChainQuery,
    EncryptedJoinQuery,
    EncryptedTable,
    SecureJoinClient,
)
from repro.core.scheme import (
    SecureJoinParams,
    SecureJoinScheme,
    SJMasterKey,
    SJRowCiphertext,
    SJToken,
)
from repro.core.server import (
    ChainMatchBatch,
    EncryptedChainResult,
    EncryptedJoinResult,
    QueryObservation,
    SecureJoinServer,
    ServerStats,
)
from repro.crypto.backend import get_backend
from repro.db.database import Database
from repro.db.join import chain_join
from repro.db.query import ChainQuery, JoinQuery, TableSelection
from repro.db.schema import Column, Schema
from repro.db.sql import parse_join_query
from repro.db.table import Table
from repro.plan import JoinPlan, KeyedHandleStore, compile_plan

__version__ = "1.0.0"

__all__ = [
    "ChainMatchBatch",
    "ChainQuery",
    "Column",
    "Database",
    "DecryptedChainResult",
    "DecryptedJoinResult",
    "EncryptedChainQuery",
    "EncryptedChainResult",
    "EncryptedJoinQuery",
    "EncryptedJoinResult",
    "EncryptedTable",
    "JoinPlan",
    "JoinQuery",
    "KeyedHandleStore",
    "QueryObservation",
    "Schema",
    "SecureJoinClient",
    "SecureJoinParams",
    "SecureJoinScheme",
    "SecureJoinServer",
    "ServerStats",
    "SJMasterKey",
    "SJRowCiphertext",
    "SJToken",
    "Table",
    "TableSelection",
    "chain_join",
    "compile_plan",
    "get_backend",
    "parse_join_query",
    "__version__",
]
