"""repro — reproduction of "Equi-Joins over Encrypted Data for Series of
Queries" (Shafieinejad et al., ICDE 2022).

Quickstart::

    from repro import SecureJoinClient, SecureJoinServer, JoinQuery, Table, Schema

    schema = Schema.of(("key", "int"), ("name", "str"))
    teams = Table("Teams", schema, [(1, "Web Application"), (2, "Database")])
    ...
    client = SecureJoinClient.for_tables([(teams, "key"), (employees, "team")])
    server = SecureJoinServer(client.params)
    server.store(client.encrypt_table(teams, "key"))
    server.store(client.encrypt_table(employees, "team"))
    query = JoinQuery.build("Teams", "Employees", on=("key", "team"),
                            where_left={"name": ["Web Application"]},
                            where_right={"role": ["Tester"]})
    result = client.decrypt_result(server.execute_join(client.create_query(query)))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.core.client import (
    DecryptedJoinResult,
    EncryptedJoinQuery,
    EncryptedTable,
    SecureJoinClient,
)
from repro.core.scheme import (
    SecureJoinParams,
    SecureJoinScheme,
    SJMasterKey,
    SJRowCiphertext,
    SJToken,
)
from repro.core.server import (
    EncryptedJoinResult,
    QueryObservation,
    SecureJoinServer,
    ServerStats,
)
from repro.crypto.backend import get_backend
from repro.db.database import Database
from repro.db.query import JoinQuery, TableSelection
from repro.db.schema import Column, Schema
from repro.db.sql import parse_join_query
from repro.db.table import Table

__version__ = "1.0.0"

__all__ = [
    "Column",
    "Database",
    "DecryptedJoinResult",
    "EncryptedJoinQuery",
    "EncryptedJoinResult",
    "EncryptedTable",
    "JoinQuery",
    "QueryObservation",
    "Schema",
    "SecureJoinClient",
    "SecureJoinParams",
    "SecureJoinScheme",
    "SecureJoinServer",
    "ServerStats",
    "SJMasterKey",
    "SJRowCiphertext",
    "SJToken",
    "Table",
    "TableSelection",
    "get_backend",
    "parse_join_query",
    "__version__",
]
