"""Multi-way join plans: left-deep chains over encrypted tables.

The paper's workload is a *series* of equi-joins, and real analytic
chains touch three or more tables.  This package turns an n-way chain
spec into a priced, pipelined plan:

- :mod:`repro.plan.planner` — compiles a chain of candidate
  cardinalities into a left-deep join order via the cost model's
  prefilter-posting estimates (:func:`~repro.bench.costmodel.choose_join_order`);
- :mod:`repro.plan.executor` — the pipelined executor: each node's
  match increments cascade directly into the next node's incremental
  matcher, so there is no materialization barrier and the first full
  chain tuple surfaces while SJ.Dec is still streaming;
- :mod:`repro.plan.handles` — the per-query handle pool (each
  (table, token) side decrypted exactly once, however many chain
  positions consume it) and the cross-series
  :class:`~repro.plan.handles.KeyedHandleStore` that lets a cold
  series over a warm table reuse retained handles.
"""

from repro.plan.executor import (
    ChainExecutor,
    ChainPipelineResult,
    ChainSideSource,
    run_chain_pipeline,
)
from repro.plan.handles import (
    DEFAULT_HANDLE_STORE_BUDGET,
    KeyedHandleStore,
    SideGroup,
    group_chain_sides,
    token_digest,
)
from repro.plan.planner import (
    MAX_CHAIN_TABLES,
    JoinPlan,
    PlanNode,
    compile_plan,
)

__all__ = [
    "ChainExecutor",
    "ChainPipelineResult",
    "ChainSideSource",
    "DEFAULT_HANDLE_STORE_BUDGET",
    "JoinPlan",
    "KeyedHandleStore",
    "MAX_CHAIN_TABLES",
    "PlanNode",
    "SideGroup",
    "compile_plan",
    "group_chain_sides",
    "run_chain_pipeline",
    "token_digest",
]
