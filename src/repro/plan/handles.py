"""Decrypted handles as a reusable asset — within a query and across series.

Two mechanisms, one invariant: **a (table, token) side is never
decrypted twice while its handles are still reachable.**

- :func:`group_chain_sides` is the per-query *handle pool*: chain
  positions naming the same table under byte-identical tokens collapse
  into one :class:`SideGroup`, so a self-join chain opens one decrypt
  stream and fans its handles out to every consuming position.
  Handles are a deterministic function of (row, token), so the fan-out
  is sound by construction.
- :class:`KeyedHandleStore` is the *cross-series* store: a byte-
  budgeted LRU keyed by ``(table, epoch, token digest)`` retaining raw
  ``row -> handle`` maps.  When the heavyweight series cache has
  evicted a query's entry (matcher state is expensive) the handles are
  often still here — a cold series over a warm table then reuses them
  and decrypts only what the store never saw.  Keying includes the
  token digest because handles are unlinkable across query keys (the
  scheme's privacy property): reuse is only ever possible for a
  literally re-presented token, so serving it reveals nothing new.

Epoch semantics: the store key carries the table's store generation,
so a wholesale re-store orphans every retained map (and
``invalidate_table`` reclaims the bytes eagerly).  Versions need no
key: inserted rows are simply absent (decrypted on demand) and deleted
rows are dropped via ``forget_rows`` / filtered by the caller's live
candidate set.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

#: Default byte budget for retained cross-series handles (16 MiB).
#: Handle maps are far lighter than full series entries (no matcher,
#: no pairs), so this holds many more sides than the series cache.
DEFAULT_HANDLE_STORE_BUDGET = 16 * 1024 * 1024

#: Accounting overhead per retained handle beyond its bytes.
_HANDLE_OVERHEAD = 96
_ENTRY_OVERHEAD = 256


def token_digest(token, backend) -> bytes:
    """A 32-byte digest of one SJ token's encoded G1 elements.

    Byte-identical tokens — and only those — collide; the digest is the
    identity under which handles may be shared.
    """
    digest = hashlib.blake2b(digest_size=32)
    for element in token.elements:
        digest.update(backend.encode_g1(element))
    return digest.digest()


@dataclass
class SideGroup:
    """One distinct (table, token) side and the chain positions it feeds."""

    table: str
    digest: bytes
    token: object
    prefilters: "list[dict | None]" = field(default_factory=list)
    positions: list[int] = field(default_factory=list)


def group_chain_sides(query, backend) -> list[SideGroup]:
    """The per-query handle pool: distinct sides of a chain query.

    Positions sharing ``(table, token bytes)`` land in one group — one
    decrypt stream serves them all.  The pool's hit count is
    ``total positions - len(groups)``.
    """
    groups: "OrderedDict[tuple[str, bytes], SideGroup]" = OrderedDict()
    for position, (table, token) in enumerate(
        zip(query.tables, query.tokens)
    ):
        key = (table, token_digest(token, backend))
        group = groups.get(key)
        if group is None:
            group = SideGroup(table=table, digest=key[1], token=token)
            groups[key] = group
        group.positions.append(position)
        group.prefilters.append(query.prefilters[position])
    return list(groups.values())


@dataclass
class HandleStoreStats:
    """Cumulative store behavior counters (diagnostics / tests)."""

    hits: int = 0
    misses: int = 0
    reused_rows: int = 0
    evictions: int = 0
    invalidations: int = 0


class _StoreEntry:
    __slots__ = ("key", "table", "handles", "byte_size")

    def __init__(self, key: tuple, table: str):
        self.key = key
        self.table = table
        self.handles: dict[int, bytes] = {}
        self.byte_size = _ENTRY_OVERHEAD


class KeyedHandleStore:
    """A byte-budgeted LRU of ``(table, epoch, token digest) -> handles``."""

    def __init__(self, budget_bytes: int = DEFAULT_HANDLE_STORE_BUDGET):
        if budget_bytes < 0:
            raise ValueError("handle store budget must be >= 0")
        self.budget_bytes = budget_bytes
        self._entries: "OrderedDict[tuple, _StoreEntry]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.stats = HandleStoreStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def lookup(
        self, table: str, epoch: int, digest: bytes
    ) -> dict[int, bytes]:
        """A *copy* of the retained ``row -> handle`` map (empty on miss).

        Copying keeps the store's accounting authoritative: callers
        filter and merge freely without aliasing retained state.
        """
        with self._lock:
            entry = self._entries.get((table, epoch, digest))
            if entry is None:
                self.stats.misses += 1
                return {}
            self._entries.move_to_end(entry.key)
            self.stats.hits += 1
            self.stats.reused_rows += len(entry.handles)
            return dict(entry.handles)

    def record(
        self,
        table: str,
        epoch: int,
        digest: bytes,
        items,
    ) -> None:
        """Retain freshly decrypted ``(row, handle)`` pairs for the side."""
        if self.budget_bytes == 0:
            return
        key = (table, epoch, digest)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = _StoreEntry(key, table)
                self._entries[key] = entry
                self._bytes += entry.byte_size
            self._bytes -= entry.byte_size
            for row, handle in items:
                if row not in entry.handles:
                    entry.byte_size += len(handle) + _HANDLE_OVERHEAD
                entry.handles[row] = handle
            self._bytes += entry.byte_size
            self._entries.move_to_end(key)
            while self._bytes > self.budget_bytes and self._entries:
                oldest = next(iter(self._entries))
                if oldest == key and len(self._entries) > 1:
                    self._entries.move_to_end(oldest)
                    oldest = next(iter(self._entries))
                self._evict(oldest)

    def forget_rows(self, table: str, rows) -> None:
        """Drop deleted rows' handles from every entry of ``table``."""
        doomed = set(rows)
        if not doomed:
            return
        with self._lock:
            for entry in self._entries.values():
                if entry.table != table:
                    continue
                for row in doomed:
                    handle = entry.handles.pop(row, None)
                    if handle is not None:
                        delta = len(handle) + _HANDLE_OVERHEAD
                        entry.byte_size -= delta
                        self._bytes -= delta

    def invalidate_table(self, table: str) -> int:
        """Drop every entry of ``table`` (the wholesale re-store path)."""
        with self._lock:
            doomed = [
                key
                for key, entry in self._entries.items()
                if entry.table == table
            ]
            for key in doomed:
                self._evict(key, invalidation=True)
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            for key in list(self._entries):
                self._evict(key)

    def _evict(self, key: tuple, invalidation: bool = False) -> None:
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        self._bytes -= entry.byte_size
        if invalidation:
            self.stats.invalidations += 1
        else:
            self.stats.evictions += 1
