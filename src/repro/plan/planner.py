"""Compiling a chain spec into a priced left-deep :class:`JoinPlan`.

A chain query names tables at positions ``0..n-1``; under one query
key every position's handles are mutually comparable, so a full chain
match is an n-way handle-equality class and any *contiguous* left-deep
order computes it without cross products.  The planner enumerates those
orders (``n * 2^(n-2)`` of them — tiny for the n <= 8 chains the wire
accepts), prices each with the engine cost model's matcher constants
and the prefilter-posting cardinality/distinct estimates, and picks the
cheapest.  SJ.Dec cost is excluded from the comparison on purpose: the
handle pool decrypts every (table, token) side exactly once regardless
of order, so orders compete on match-stage work alone.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError

#: Chain length bound shared with the wire codec: past this the
#: exhaustive order enumeration stops being free and the query header
#: stops being trustworthy.
MAX_CHAIN_TABLES = 8


@dataclass(frozen=True)
class PlanNode:
    """One left-deep node: the running interval joined with one side.

    ``build`` is the set of chain positions already folded in (always a
    contiguous chain interval), ``probe`` the position streamed into
    this node.  ``estimated_build`` / ``estimated_matches`` are the
    planner's intermediate-size chain — diagnostics for the planner
    record, not execution inputs.
    """

    node: int
    build: tuple[int, ...]
    probe: int
    estimated_build: int
    estimated_matches: int


@dataclass(frozen=True)
class JoinPlan:
    """A compiled chain plan: the chosen order and its node sequence."""

    order: tuple[int, ...]
    nodes: tuple[PlanNode, ...]
    #: Per-order match-stage seconds, keyed by comma-joined positions —
    #: the full decision surface, JSON-ready for planner records.
    estimates: dict[str, float]

    @property
    def cost(self) -> float:
        return self.estimates[",".join(map(str, self.order))]

    def record(self) -> dict:
        """The auditable ``stage: "plan"`` planner record."""
        return {
            "stage": "plan",
            "order": list(self.order),
            "nodes": [
                {
                    "build": list(node.build),
                    "probe": node.probe,
                    "estimated_build": node.estimated_build,
                    "estimated_matches": node.estimated_matches,
                }
                for node in self.nodes
            ],
            "estimates": {
                key: float(sec) for key, sec in self.estimates.items()
            },
        }


def compile_plan(
    model,
    cardinalities: "list[int] | tuple[int, ...]",
    distincts: "list[int | None] | None" = None,
) -> JoinPlan:
    """Choose the join order for a chain and lay out its nodes.

    ``model`` is an :class:`~repro.bench.costmodel.EngineCostModel`;
    ``cardinalities[i]`` is position ``i``'s candidate row count after
    pre-filtering; ``distincts[i]`` the estimated distinct join values
    on that side (``None`` → assume all-distinct).
    """
    # Imported lazily: repro.bench pulls in workload builders that
    # import the server, which imports this package.
    from repro.bench.costmodel import (
        choose_join_order,
        estimate_expected_matches,
    )

    n = len(cardinalities)
    if not 2 <= n <= MAX_CHAIN_TABLES:
        raise QueryError(
            f"a chain plan needs 2..{MAX_CHAIN_TABLES} tables, got {n}"
        )
    order, estimates = choose_join_order(model, cardinalities, distincts)
    if distincts is None:
        distincts = [None] * n
    nodes: list[PlanNode] = []
    inter_rows = int(cardinalities[order[0]])
    inter_distinct = distincts[order[0]]
    for j, probe in enumerate(order[1:]):
        expected = estimate_expected_matches(
            inter_rows,
            int(cardinalities[probe]),
            inter_distinct,
            distincts[probe],
        )
        nodes.append(
            PlanNode(
                node=j,
                build=tuple(order[: j + 1]),
                probe=probe,
                estimated_build=inter_rows,
                estimated_matches=expected,
            )
        )
        inter_rows = expected
        if distincts[probe] is not None:
            inter_distinct = (
                distincts[probe]
                if inter_distinct is None
                else min(inter_distinct, distincts[probe])
            )
    return JoinPlan(order=order, nodes=tuple(nodes), estimates=estimates)
