"""The pipelined left-deep chain executor.

Under one query key every chain position's handles are mutually
comparable, so an n-way chain match is a handle-equality class across
all n tables.  The executor still runs it as a left-deep pipeline of
incremental two-way matchers — that is what keeps time-to-first-match
early and what the planner's order choice optimizes:

- node 0 pairs the first two positions of the chosen order, keyed by
  handle;
- every pair a node emits becomes a *tuple id* whose partial tuple and
  handle cascade immediately into the next node's ``add_left`` — no
  materialization barrier, so one decrypted chunk can complete full
  n-way tuples while every other side is still streaming;
- the final node's tuple ids are complete chain tuples.

Because matcher retraction returns the dropped pairs
(:meth:`~repro.db.matcher.IncrementalMatcher.retract_left`), deletes
cascade the same way in reverse: a retracted base row dooms its pairs,
the doomed tuple ids are retracted from the next node, and so on until
the completed set is clean — which is what makes a retained executor
delta-repairable for the series cache.

Canonical output: :meth:`ChainExecutor.finish` returns the completed
tuples — one row index per *chain position*, positions in chain order —
sorted lexicographically, so streamed and materialized runs (and any
shard layout feeding global indices) agree byte-for-byte.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.db.matcher import HashMatcher
from repro.errors import QueryError


class ChainExecutor:
    """Incremental n-way chain matcher over a left-deep node order."""

    def __init__(self, order: Sequence[int]):
        order = tuple(order)
        n = len(order)
        if n < 2:
            raise QueryError("a chain needs at least two positions")
        if sorted(order) != list(range(n)):
            raise QueryError(
                f"order {order!r} is not a permutation of 0..{n - 1}"
            )
        lo = hi = order[0]
        for position in order[1:]:
            if position == lo - 1:
                lo = position
            elif position == hi + 1:
                hi = position
            else:
                raise QueryError(
                    f"order {order!r} is not a contiguous left-deep "
                    "extension of the chain"
                )
        self.order = order
        self.arity = n
        self.matchers = [HashMatcher() for _ in range(n - 1)]
        #: chain position -> (node index, feeds-left?).  ``order[0]``
        #: is the only position feeding a left input; every other
        #: position is the right (probe) input of exactly one node.
        self._roles: dict[int, tuple[int, bool]] = {order[0]: (0, True)}
        for j, position in enumerate(order[1:]):
            self._roles[position] = (j, False)
        #: position -> {row -> handle}: every base item ever fed and
        #: not since retracted (the series cache's retained handles).
        self.handles: list[dict[int, bytes]] = [{} for _ in range(n)]
        self._tuples: dict[int, dict[int, int]] = {}
        self._tuple_handle: dict[int, bytes] = {}
        self._pair_tid: list[dict[tuple[int, int], int]] = [
            {} for _ in range(n - 1)
        ]
        self._completed: dict[int, tuple[int, ...]] = {}
        self._next_tid = 0

    # -- feeding ----------------------------------------------------------
    def feed(
        self, position: int, items: Sequence[tuple[int, bytes]]
    ) -> list[tuple[int, ...]]:
        """Feed ``(row, handle)`` items into one chain position.

        Returns the chain tuples *newly completed* by this delivery, in
        discovery order.  Accepts increments at any time — late chunks,
        delta-repair inserts — exactly like the two-way matchers.
        """
        node, is_left = self._role(position)
        side_handles = self.handles[position]
        for row, handle in items:
            side_handles[row] = handle
        if is_left:
            emitted = self.matchers[0].add_left(items)
        else:
            emitted = self.matchers[node].add_right(items)
        return self._cascade(node, emitted)

    def retract(self, position: int, rows) -> list[tuple[int, ...]]:
        """Withdraw base rows from one position; cascade the damage.

        Returns the completed chain tuples that were removed (the
        delta-repair delete path).
        """
        rows = [row for row in rows if row in self.handles[position]]
        if not rows:
            return []
        node, is_left = self._role(position)
        for row in rows:
            del self.handles[position][row]
        if is_left:
            dropped = self.matchers[0].retract_left(rows)
        else:
            dropped = self.matchers[node].retract_right(rows)
        return self._cascade_retract(node, dropped)

    def _role(self, position: int) -> tuple[int, bool]:
        try:
            return self._roles[position]
        except KeyError:
            raise QueryError(
                f"chain position {position} out of range for arity "
                f"{self.arity}"
            ) from None

    def _cascade(self, node: int, pairs) -> list[tuple[int, ...]]:
        completed: list[tuple[int, ...]] = []
        last = len(self.matchers) - 1
        for pair in pairs:
            left_id, row = pair
            if node == 0:
                rows = {self.order[0]: left_id, self.order[1]: row}
                handle = self.handles[self.order[0]][left_id]
            else:
                rows = dict(self._tuples[left_id])
                rows[self.order[node + 1]] = row
                handle = self._tuple_handle[left_id]
            tid = self._next_tid
            self._next_tid += 1
            self._pair_tid[node][pair] = tid
            if node == last:
                full = tuple(rows[p] for p in range(self.arity))
                self._completed[tid] = full
                completed.append(full)
            else:
                self._tuples[tid] = rows
                self._tuple_handle[tid] = handle
                emitted = self.matchers[node + 1].add_left([(tid, handle)])
                completed.extend(self._cascade(node + 1, emitted))
        return completed

    def _cascade_retract(self, node: int, dropped) -> list[tuple[int, ...]]:
        removed: list[tuple[int, ...]] = []
        pair_tid = self._pair_tid[node]
        tids = [
            pair_tid.pop(pair) for pair in dropped if pair in pair_tid
        ]
        if not tids:
            return removed
        if node == len(self.matchers) - 1:
            for tid in tids:
                full = self._completed.pop(tid, None)
                if full is not None:
                    removed.append(full)
            return removed
        for tid in tids:
            self._tuples.pop(tid, None)
            self._tuple_handle.pop(tid, None)
        dropped_next = self.matchers[node + 1].retract_left(tids)
        return self._cascade_retract(node + 1, dropped_next)

    # -- results ----------------------------------------------------------
    def finish(self) -> list[tuple[int, ...]]:
        """All completed chain tuples, sorted lexicographically.

        Idempotent and re-callable — a retained executor is finished
        once per replay, after any delta feeding/retraction between.
        """
        return sorted(self._completed.values())

    @property
    def matches(self) -> int:
        return len(self._completed)

    @property
    def probes(self) -> int:
        return sum(m.stats.probes for m in self.matchers)

    @property
    def comparisons(self) -> int:
        return sum(m.stats.comparisons for m in self.matchers)

    def reused_handles(self) -> int:
        return sum(len(side) for side in self.handles)

    def retained_bytes(self) -> int:
        """Accounting for the series cache: handles + tuple state."""
        total = 0
        for side in self.handles:
            for handle in side.values():
                total += len(handle) + 96
        total += (len(self._tuples) + len(self._completed)) * (
            80 + 24 * self.arity
        )
        total += sum(m.stats.matches for m in self.matchers) * 80
        return total


class ChainSideSource:
    """One decrypt stream fanned out to the positions sharing its side.

    The streaming face of the handle pool: iteration yields
    ``(positions, items)`` per decrypted chunk — ``items`` being
    ``(row, handle)`` or ``(row, handle, payload)`` tuples with chunk
    offsets translated through ``rows`` (local indices on the single
    store, *global* indices from a shard) — and every position in
    ``positions`` consumes the same items.  ``outcome`` is the
    stream's :class:`~repro.core.engine.EngineReport` once exhausted.
    """

    def __init__(
        self,
        positions: Sequence[int],
        stream,
        rows: Sequence[int],
        payloads: Sequence[bytes] | None = None,
    ):
        self.positions = tuple(positions)
        self.stream = stream
        self.rows = rows
        self.payloads = payloads
        self.outcome = None

    def __iter__(self) -> "ChainSideSource":
        return self

    def __next__(self):
        try:
            chunk = next(self.stream)
        except StopIteration:
            self.outcome = self.stream.report
            raise
        rows = self.rows
        if self.payloads is None:
            items = [
                (rows[chunk.start + offset], handle)
                for offset, handle in enumerate(chunk.handles)
            ]
        else:
            payloads = self.payloads
            items = [
                (
                    rows[chunk.start + offset],
                    handle,
                    payloads[chunk.start + offset],
                )
                for offset, handle in enumerate(chunk.handles)
            ]
        return self.positions, items

    def close(self) -> None:
        self.stream.close()


@dataclass
class ChainPipelineResult:
    """What one chain pipeline run produced."""

    tuples: list[tuple[int, ...]] = field(default_factory=list)
    outcomes: list = field(default_factory=list)
    time_to_first_match: float = 0.0
    decrypt_seconds: float = 0.0
    match_seconds: float = 0.0
    total_seconds: float = 0.0


def run_chain_pipeline(
    sources: Sequence[ChainSideSource],
    executor: ChainExecutor,
    position_rows: Sequence,
    on_items: Callable[[tuple[int, ...], list], None] | None = None,
):
    """Merge chain side sources into ``executor``; a generator.

    ``position_rows[p]`` is the set of candidate rows of chain position
    ``p`` — a pooled source may cover the *union* of several positions'
    candidates (one decrypt stream per distinct side), so each position
    feeds only its own subset.  Yields lists of newly completed chain
    tuples in discovery order; returns a :class:`ChainPipelineResult`
    with the canonical sorted tuples.  Every source is closed on every
    exit path, so pooled sides always release their admissions.
    """
    started = time.perf_counter()
    result = ChainPipelineResult()
    first_match_at: float | None = None
    active = list(sources)
    try:
        turn = 0
        while active:
            source = active[turn % len(active)]
            waited = time.perf_counter()
            try:
                positions, items = next(source)
            except StopIteration:
                result.decrypt_seconds += time.perf_counter() - waited
                active.remove(source)
                continue
            result.decrypt_seconds += time.perf_counter() - waited
            if on_items is not None:
                on_items(positions, items)
            matched_at = time.perf_counter()
            completed: list[tuple[int, ...]] = []
            for position in positions:
                allowed = position_rows[position]
                fed = [
                    (item[0], item[1])
                    for item in items
                    if item[0] in allowed
                ]
                if fed:
                    completed.extend(executor.feed(position, fed))
            result.match_seconds += time.perf_counter() - matched_at
            if completed:
                if first_match_at is None:
                    first_match_at = time.perf_counter()
                    result.time_to_first_match = first_match_at - started
                yield completed
            turn += 1
    finally:
        for source in sources:
            source.close()
    finish_at = time.perf_counter()
    result.tuples = executor.finish()
    result.match_seconds += time.perf_counter() - finish_at
    result.total_seconds = time.perf_counter() - started
    result.outcomes = [getattr(source, "outcome", None) for source in sources]
    return result
