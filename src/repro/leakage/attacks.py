"""Frequency-analysis attacks on join-column leakage.

The paper motivates its leakage reduction with Naveed et al.'s result:
frequency information over deterministically encrypted columns breaks
them.  This module implements the classic frequency-matching attack and
runs it against the adversary view each scheme exposes, so the security
difference becomes *measurable* rather than asserted:

- against deterministic encryption the attacker sees the full equality
  structure of the join column at upload time and recovers most values
  of a skewed (e.g. Zipfian) column;
- against Secure Join the attacker only sees per-query equivalence
  classes among selected rows under fresh keys, so frequency matching
  has almost nothing to latch onto.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import networkx as nx

from repro.baselines.api import Pair, RowRef
from repro.db.table import Table


@dataclass
class AttackResult:
    """Outcome of one frequency-matching attack."""

    guesses: dict[RowRef, object] = field(default_factory=dict)
    correct: int = 0
    total: int = 0

    @property
    def recovery_rate(self) -> float:
        """Fraction of all rows whose join value the attacker recovered."""
        return self.correct / self.total if self.total else 0.0


def equivalence_classes(
    pairs: set[Pair], universe: list[RowRef]
) -> list[list[RowRef]]:
    """Group rows into classes implied by the revealed equality pairs.

    Rows not appearing in any pair form singleton classes — the attacker
    knows nothing links them, but they still count toward the total.
    """
    graph = nx.Graph()
    graph.add_nodes_from(universe)
    for pair in pairs:
        a, b = tuple(pair)
        graph.add_edge(a, b)
    return [sorted(component) for component in nx.connected_components(graph)]


def frequency_attack(
    classes: list[list[RowRef]],
    auxiliary_histogram: dict[object, int],
) -> dict[RowRef, object]:
    """Match equivalence classes to plaintext values by frequency rank.

    ``auxiliary_histogram`` is the attacker's background knowledge: the
    (approximate) multiplicity of each join value in the database — the
    standard auxiliary-data assumption of inference attacks.  Classes
    are sorted by size, values by count, and paired off greedily.
    """
    ranked_classes = sorted(classes, key=len, reverse=True)
    ranked_values = [
        value
        for value, _ in sorted(
            auxiliary_histogram.items(),
            key=lambda item: (-item[1], repr(item[0])),
        )
    ]
    guesses: dict[RowRef, object] = {}
    for cls, value in zip(ranked_classes, ranked_values):
        for ref in cls:
            guesses[ref] = value
    return guesses


def score_attack(
    guesses: dict[RowRef, object],
    truth: dict[RowRef, object],
) -> AttackResult:
    """Count how many of the attacker's guesses are correct."""
    result = AttackResult(guesses=guesses, total=len(truth))
    for ref, true_value in truth.items():
        if guesses.get(ref) == true_value:
            result.correct += 1
    return result


def join_column_truth(tables: list[tuple[Table, str]]) -> dict[RowRef, object]:
    """The ground-truth join value of every row (the attack target)."""
    truth: dict[RowRef, object] = {}
    for table, join_column in tables:
        index = table.schema.index_of(join_column)
        for i, row in enumerate(table):
            truth[(table.name, i)] = row[index]
    return truth


def auxiliary_from_tables(tables: list[tuple[Table, str]]) -> dict[object, int]:
    """Perfect auxiliary knowledge: the exact join-value histogram.

    This is the attacker's best case; real attacks use census-style
    approximations, so recovery rates here upper-bound reality.
    """
    counter: Counter = Counter()
    for table, join_column in tables:
        counter.update(table.column_values(join_column))
    return dict(counter)


def attack_scheme_view(
    revealed_pairs: set[Pair],
    tables: list[tuple[Table, str]],
) -> AttackResult:
    """Run the full attack pipeline against one scheme's adversary view."""
    truth = join_column_truth(tables)
    classes = equivalence_classes(revealed_pairs, list(truth.keys()))
    guesses = frequency_attack(classes, auxiliary_from_tables(tables))
    return score_attack(guesses, truth)
