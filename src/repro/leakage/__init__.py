"""Leakage analysis for join-encryption schemes.

- :mod:`repro.leakage.pairs` — ground-truth equality pairs, per-query
  minimal leakage, and transitive closure,
- :mod:`repro.leakage.analyzer` — replay a query series against several
  schemes and build the t0/t1/t2/... leakage timeline of Section 2.1,
- :mod:`repro.leakage.simulator` — the SIM-security simulator of
  Definition 5.2, used to test that the real scheme's adversary view is
  reproducible from the trace alone.
"""

from repro.leakage.analyzer import LeakageTimeline, SchemeTrace, analyze_schemes
from repro.leakage.attacks import (
    AttackResult,
    attack_scheme_view,
    equivalence_classes,
    frequency_attack,
    score_attack,
)
from repro.leakage.pairs import (
    all_true_pairs,
    minimal_query_leakage,
    transitive_closure,
)
from repro.leakage.simulator import SimulatedView, TraceSimulator

__all__ = [
    "AttackResult",
    "LeakageTimeline",
    "attack_scheme_view",
    "equivalence_classes",
    "frequency_attack",
    "score_attack",
    "SchemeTrace",
    "SimulatedView",
    "TraceSimulator",
    "all_true_pairs",
    "analyze_schemes",
    "minimal_query_leakage",
    "transitive_closure",
]
