"""Replay a query series against several schemes and compare leakage.

This module mechanizes the analysis of Section 2.1: run the same upload
(time t0) and query sequence (t1, t2, ...) against each scheme, record
the cumulative revealed equality pairs after every step, and line the
timelines up against the information-theoretic floor (the transitive
closure of the union of per-query minimal leakages).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.api import JoinScheme, Pair
from repro.db.query import JoinQuery
from repro.db.table import Table
from repro.leakage.pairs import minimal_query_leakage, transitive_closure


@dataclass
class SchemeTrace:
    """One scheme's leakage timeline.

    ``revealed[i]`` is the cumulative pair set after time ``t_i``
    (``revealed[0]`` is the post-upload state t0).
    """

    scheme_name: str
    revealed: list[set[Pair]] = field(default_factory=list)
    answers: list = field(default_factory=list)

    def counts(self) -> list[int]:
        return [len(pairs) for pairs in self.revealed]

    def is_super_additive(self, floor: list[set[Pair]]) -> bool:
        """Whether any step leaks beyond the floor timeline."""
        return any(
            not observed <= allowed
            for observed, allowed in zip(self.revealed, floor)
        )


@dataclass
class LeakageTimeline:
    """The full comparison: per-scheme traces plus the minimal floor."""

    tables: list[tuple[Table, str]]
    queries: list[JoinQuery]
    traces: dict[str, SchemeTrace]
    floor: list[set[Pair]]

    def summary(self) -> dict[str, list[int]]:
        """Scheme name -> pair counts at [t0, t1, ...]."""
        result = {name: trace.counts() for name, trace in self.traces.items()}
        result["minimum (closure of union)"] = [len(p) for p in self.floor]
        return result

    def format_table(self) -> str:
        """A printable grid matching the paper's Section 2.1 narrative."""
        times = [f"t{i}" for i in range(len(self.queries) + 1)]
        names = list(self.summary().keys())
        width = max(len(n) for n in names) + 2
        lines = ["scheme".ljust(width) + " ".join(t.rjust(6) for t in times)]
        for name, counts in self.summary().items():
            lines.append(
                name.ljust(width) + " ".join(str(c).rjust(6) for c in counts)
            )
        return "\n".join(lines)


def minimal_floor(
    tables: list[tuple[Table, str]], queries: list[JoinQuery]
) -> list[set[Pair]]:
    """The lower-bound timeline: closure of the union of per-query leakage."""
    floor: list[set[Pair]] = [set()]
    union: set[Pair] = set()
    for query in queries:
        union = union | minimal_query_leakage(tables, query)
        floor.append(transitive_closure(union))
    return floor


def analyze_schemes(
    schemes: list[JoinScheme],
    tables: list[tuple[Table, str]],
    queries: list[JoinQuery],
) -> LeakageTimeline:
    """Upload + replay the queries on every scheme; collect the timelines."""
    traces: dict[str, SchemeTrace] = {}
    for scheme in schemes:
        trace = SchemeTrace(scheme.name)
        scheme.upload(tables)
        trace.revealed.append(set(scheme.revealed_pairs()))
        for query in queries:
            trace.answers.append(scheme.run_query(query))
            trace.revealed.append(set(scheme.revealed_pairs()))
        traces[scheme.name] = trace
    return LeakageTimeline(
        tables=tables,
        queries=queries,
        traces=traces,
        floor=minimal_floor(tables, queries),
    )
