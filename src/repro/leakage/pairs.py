"""Equality-pair arithmetic: ground truth, per-query leakage, closure.

Terminology follows Section 2.1 of the paper:

- a *true equality pair* is an unordered pair of rows (possibly from the
  same table) whose join-column values are equal;
- the *minimal leakage of a query* is the set of true pairs among rows
  that match the query's selection criterion — no non-interactive
  single-server scheme can reveal less and still compute the join;
- the *transitive closure* of a pair set adds every pair derivable by
  chaining equalities (if a=b and b=c then a=c).
"""

from __future__ import annotations

from itertools import combinations

import networkx as nx

from repro.baselines.api import Pair, RowRef, make_pair
from repro.db.query import JoinQuery
from repro.db.table import Table


def _pairs_of_groups(groups: dict[object, list[RowRef]]) -> set[Pair]:
    pairs: set[Pair] = set()
    for refs in groups.values():
        for a, b in combinations(refs, 2):
            pairs.add(make_pair(a, b))
    return pairs


def all_true_pairs(tables: list[tuple[Table, str]]) -> set[Pair]:
    """Every true equality pair across (and within) the given tables."""
    groups: dict[object, list[RowRef]] = {}
    for table, join_column in tables:
        index = table.schema.index_of(join_column)
        for i, row in enumerate(table):
            groups.setdefault(row[index], []).append((table.name, i))
    return _pairs_of_groups(groups)


def minimal_query_leakage(
    tables: list[tuple[Table, str]],
    query: JoinQuery,
) -> set[Pair]:
    """The minimal leakage of one query: true pairs among selected rows.

    Rows are "selected" when they satisfy their table's WHERE clause of
    this query; the pair set includes within-table pairs among selected
    rows (the adversary sees those equalities too — they are part of the
    transitive closure the paper's Example 2.1 counts).
    """
    by_name = {table.name: (table, join_column) for table, join_column in tables}
    groups: dict[object, list[RowRef]] = {}
    for table_name, selection in (
        (query.left_table, query.left_selection),
        (query.right_table, query.right_selection),
    ):
        table, join_column = by_name[table_name]
        predicate = selection.to_predicate()
        join_index = table.schema.index_of(join_column)
        for i in table.matching_indices(predicate):
            groups.setdefault(table[i][join_index], []).append((table_name, i))
    return _pairs_of_groups(groups)


def transitive_closure(pairs: set[Pair]) -> set[Pair]:
    """Close a pair set under transitivity of equality."""
    graph = nx.Graph()
    for pair in pairs:
        a, b = tuple(pair)
        graph.add_edge(a, b)
    closed: set[Pair] = set()
    for component in nx.connected_components(graph):
        for a, b in combinations(sorted(component), 2):
            closed.add(make_pair(a, b))
    return closed


def is_super_additive(
    revealed: set[Pair], per_query_leakages: list[set[Pair]]
) -> bool:
    """Whether ``revealed`` exceeds the closure of the union of per-query sets.

    The paper calls a scheme's leakage *super-additive* when a series of
    queries reveals strictly more than the transitive closure of the sum
    of the individual queries' leakages.
    """
    budget = transitive_closure(set().union(*per_query_leakages, set()))
    return not revealed <= budget
