"""The SIM-security simulator of Definition 5.2.

Theorem 5.2's proof constructs a simulator that, given only the trace
``tau(H) = (n, m, sigma(q_1), ..., sigma(q_mu))`` — table sizes and the
per-query equality-pair sets — produces an adversary view that is
computationally indistinguishable from the real server's.  This module
implements that simulator concretely: it fabricates per-query handles
whose equality pattern is exactly the one prescribed by the trace, with
everything else uniformly random.

The accompanying test (`tests/test_simulator.py`) checks the central
consequence: the *match structure* of the simulated view equals the
match structure of the real scheme's view on every query series — i.e.
the real scheme leaks nothing beyond the trace.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import networkx as nx

from repro.baselines.api import Pair, RowRef


@dataclass
class SimulatedView:
    """The simulator's output for one query: rowref -> handle bytes."""

    query_id: int
    handles: dict[RowRef, bytes] = field(default_factory=dict)

    def match_classes(self) -> set[frozenset[RowRef]]:
        """Equivalence classes of rows with equal handles (size >= 2)."""
        groups: dict[bytes, list[RowRef]] = {}
        for ref, handle in self.handles.items():
            groups.setdefault(handle, []).append(ref)
        return {
            frozenset(refs) for refs in groups.values() if len(refs) >= 2
        }


class TraceSimulator:
    """Build adversary views from a trace alone (no plaintext access).

    For each query the simulator receives the decrypted row set and the
    equality pairs ``sigma(q_i)`` among them.  It groups rows into
    equality classes (connected components of the pair graph), assigns
    one fresh random handle per class, and fresh random handles to all
    unpaired rows.  Handles are never reused across queries — mirroring
    the fresh query key k of the real scheme.
    """

    def __init__(self, handle_bytes: int = 32, rng: random.Random | None = None):
        self._handle_bytes = handle_bytes
        self._rng = rng if rng is not None else random.Random()
        self._used: set[bytes] = set()

    def _fresh_handle(self) -> bytes:
        while True:
            handle = self._rng.getrandbits(8 * self._handle_bytes).to_bytes(
                self._handle_bytes, "big"
            )
            if handle not in self._used:
                self._used.add(handle)
                return handle

    def simulate_query(
        self,
        query_id: int,
        decrypted_rows: list[RowRef],
        equality_pairs: set[Pair],
    ) -> SimulatedView:
        """One query's simulated view from ``sigma(q_i)``."""
        graph = nx.Graph()
        graph.add_nodes_from(decrypted_rows)
        for pair in equality_pairs:
            a, b = tuple(pair)
            graph.add_edge(a, b)
        view = SimulatedView(query_id)
        for component in nx.connected_components(graph):
            handle = self._fresh_handle()
            for ref in component:
                view.handles[ref] = handle
        return view

    def simulate_series(
        self,
        per_query_rows: list[list[RowRef]],
        per_query_pairs: list[set[Pair]],
    ) -> list[SimulatedView]:
        """Simulate a whole query series from the trace."""
        return [
            self.simulate_query(i + 1, rows, pairs)
            for i, (rows, pairs) in enumerate(
                zip(per_query_rows, per_query_pairs)
            )
        ]
