"""The Hahn et al. baseline (ICDE 2019): KP-ABE-gated join ciphertexts.

Each row's join ciphertext is wrapped under key-policy attribute-based
encryption whose attributes are the row's selection-attribute values.  A
query token carries a KP-ABE key for its WHERE clause: rows *matching
the selection* unwrap to searchable join ciphertexts; non-matching rows
stay opaque.  Per query the leakage is minimal (only matching rows are
comparable), which was the state of the art the paper improves on.

Two structural properties matter for the reproduction:

1. **Super-additive leakage** — an unwrapped row stays unwrapped:
   ciphertexts exposed by *different* queries are mutually comparable,
   so the adversary's knowledge is the set of true pairs among the
   *union* of all unwrapped rows (Section 2.1's t2 state).
2. **Nested-loop joins, PK/FK only** — the unwrapped searchable
   ciphertexts support pairwise trial matching, not hashing, and the
   construction requires the left join column to be a primary key.

KP-ABE itself is modeled by its observable behaviour (a keyed gate on
the selection attributes); see DESIGN.md §4 for the substitution note.
"""

from __future__ import annotations

import os

from repro.baselines.api import JoinScheme, Pair, RowRef, SchemeAnswer, make_pair
from repro.crypto.hashing import derive_key, keyed_tag
from repro.db.query import JoinQuery, TableSelection
from repro.db.table import Table
from repro.errors import QueryError


class HahnScheme(JoinScheme):
    """Selection-gated unwrapping with permanent cross-query comparability."""

    name = "hahn"

    def __init__(self, master_secret: bytes | None = None):
        self._master = master_secret if master_secret is not None else os.urandom(32)
        self._join_key = derive_key(self._master, "hahn.join")
        self._tables: dict[str, Table] = {}
        self._join_columns: dict[str, str] = {}
        # Searchable join tags, revealed row by row as queries unwrap them.
        self._join_tags: dict[str, list[bytes]] = {}
        self._unwrapped: set[RowRef] = set()
        self.comparisons = 0  # nested-loop cost counter (Section 6.5)

    def upload(self, tables: list[tuple[Table, str]]) -> None:
        for table, join_column in tables:
            self._tables[table.name] = table
            self._join_columns[table.name] = join_column
            join_index = table.schema.index_of(join_column)
            self._join_tags[table.name] = [
                keyed_tag(self._join_key, row[join_index]) for row in table
            ]

    def _require_primary_key(self, table_name: str) -> None:
        """Hahn et al. supports only PK/FK joins: the left column must be unique."""
        table = self._tables[table_name]
        column = self._join_columns[table_name]
        values = table.column_values(column)
        if len(set(values)) != len(values):
            raise QueryError(
                f"HahnScheme requires a primary-key join: column "
                f"{column!r} of {table_name!r} has duplicate values"
            )

    def _unwrap_matching(self, table_name: str, selection: TableSelection) -> list[int]:
        """KP-ABE decryption: rows whose attributes satisfy the policy unwrap."""
        table = self._tables[table_name]
        predicate = selection.to_predicate()
        matching = table.matching_indices(predicate)
        for index in matching:
            self._unwrapped.add((table_name, index))
        return matching

    def run_query(self, query: JoinQuery) -> SchemeAnswer:
        if query.left_table not in self._tables or query.right_table not in self._tables:
            raise QueryError("query references a table that was not uploaded")
        self._require_primary_key(query.left_table)
        left = self._tables[query.left_table]
        right = self._tables[query.right_table]
        left_indices = self._unwrap_matching(query.left_table, query.left_selection)
        right_indices = self._unwrap_matching(query.right_table, query.right_selection)
        left_tags = self._join_tags[query.left_table]
        right_tags = self._join_tags[query.right_table]
        answer = SchemeAnswer()
        # Nested loop: the searchable ciphertexts only support trial matching.
        for j in right_indices:
            for i in left_indices:
                self.comparisons += 1
                if left_tags[i] == right_tags[j]:
                    answer.index_pairs.append((i, j))
                    answer.rows.append(left[i] + right[j])
        return answer

    def revealed_pairs(self) -> set[Pair]:
        """True pairs among the union of every row any query unwrapped."""
        by_tag: dict[bytes, list[RowRef]] = {}
        for table_name, index in self._unwrapped:
            tag = self._join_tags[table_name][index]
            by_tag.setdefault(tag, []).append((table_name, index))
        pairs: set[Pair] = set()
        for refs in by_tag.values():
            for a in range(len(refs)):
                for b in range(a + 1, len(refs)):
                    pairs.add(make_pair(refs[a], refs[b]))
        return pairs
