"""The deterministic-encryption baseline (Hacigümüş et al., SIGMOD 2002).

Every cell is encrypted deterministically (modeled with keyed tags —
exactly the equality structure deterministic encryption exposes), so the
server can join and select by ciphertext equality.  The price: *all*
equality pairs of the join columns are revealed the moment the data is
uploaded, before any query runs.  Naveed et al.'s frequency attacks make
this leakage fatal in practice, which is the paper's motivation.
"""

from __future__ import annotations

import os

from repro.baselines.api import JoinScheme, Pair, RowRef, SchemeAnswer, make_pair
from repro.crypto.hashing import derive_key, keyed_tag
from repro.db.query import JoinQuery
from repro.db.table import Table
from repro.errors import QueryError


class DeterministicScheme(JoinScheme):
    """Join + selection via deterministic tags; maximal leakage at t0."""

    name = "deterministic"

    def __init__(self, master_secret: bytes | None = None):
        self._master = master_secret if master_secret is not None else os.urandom(32)
        # Join tags share ONE key across tables so the server can compare
        # them — that is the design of the scheme, and its weakness.
        self._join_key = derive_key(self._master, "det.join")
        self._tables: dict[str, Table] = {}
        self._join_columns: dict[str, str] = {}
        self._join_tags: dict[str, list[bytes]] = {}
        self._attr_tags: dict[str, dict[str, list[bytes]]] = {}

    # -- protocol ------------------------------------------------------------
    def upload(self, tables: list[tuple[Table, str]]) -> None:
        for table, join_column in tables:
            self._tables[table.name] = table
            self._join_columns[table.name] = join_column
            join_index = table.schema.index_of(join_column)
            self._join_tags[table.name] = [
                keyed_tag(self._join_key, row[join_index]) for row in table
            ]
            per_column: dict[str, list[bytes]] = {}
            for column in table.schema.names():
                if column == join_column:
                    continue
                key = derive_key(self._master, f"det.attr.{table.name}.{column}")
                index = table.schema.index_of(column)
                per_column[column] = [
                    keyed_tag(key, row[index]) for row in table
                ]
            self._attr_tags[table.name] = per_column

    def _selection_indices(self, table_name: str, selection) -> list[int]:
        """Server-side selection purely by tag equality."""
        table = self._tables[table_name]
        indices = list(range(len(table)))
        for column, values in selection.in_clauses:
            key = derive_key(self._master, f"det.attr.{table_name}.{column}")
            allowed = {keyed_tag(key, v) for v in values}
            tags = self._attr_tags[table_name][column]
            indices = [i for i in indices if tags[i] in allowed]
        return indices

    def run_query(self, query: JoinQuery) -> SchemeAnswer:
        if query.left_table not in self._tables or query.right_table not in self._tables:
            raise QueryError("query references a table that was not uploaded")
        left = self._tables[query.left_table]
        right = self._tables[query.right_table]
        left_indices = self._selection_indices(query.left_table, query.left_selection)
        right_indices = self._selection_indices(query.right_table, query.right_selection)
        left_tags = self._join_tags[query.left_table]
        right_tags = self._join_tags[query.right_table]
        buckets: dict[bytes, list[int]] = {}
        for i in left_indices:
            buckets.setdefault(left_tags[i], []).append(i)
        answer = SchemeAnswer()
        for j in right_indices:
            for i in buckets.get(right_tags[j], ()):
                answer.index_pairs.append((i, j))
                answer.rows.append(left[i] + right[j])
        return answer

    # -- adversary view -----------------------------------------------------
    def revealed_pairs(self) -> set[Pair]:
        """All true equality pairs — visible from the upload alone."""
        by_tag: dict[bytes, list[RowRef]] = {}
        for table_name, tags in self._join_tags.items():
            for index, tag in enumerate(tags):
                by_tag.setdefault(tag, []).append((table_name, index))
        pairs: set[Pair] = set()
        for refs in by_tag.values():
            for a in range(len(refs)):
                for b in range(a + 1, len(refs)):
                    pairs.add(make_pair(refs[a], refs[b]))
        return pairs
