"""The CryptDB onion-encryption baseline (Popa et al., SOSP 2011).

The join column carries a deterministic (JOIN-onion) ciphertext wrapped
in a probabilistic (RND) layer.  At rest nothing is comparable; when a
join touches a pair of columns, the server receives the onion key,
strips the RND layer from *every row of both columns*, and joins on the
inner deterministic ciphertexts (re-encrypted to a common key — modeled
here by a shared post-peel tag key, which is what proxy re-encryption
produces).

Leakage timeline: nothing at t0, but the *first* join query reveals all
equality pairs of the touched columns (t1 in the paper's example), and
the exposure is permanent.
"""

from __future__ import annotations

import os

from repro.baselines.api import JoinScheme, Pair, RowRef, SchemeAnswer, make_pair
from repro.crypto.hashing import derive_key, keyed_tag
from repro.crypto.symmetric import SymmetricCipher
from repro.db.query import JoinQuery
from repro.db.table import Table
from repro.errors import QueryError


class CryptDBScheme(JoinScheme):
    """RND-wrapped deterministic join tags with whole-column peeling."""

    name = "cryptdb"

    def __init__(self, master_secret: bytes | None = None):
        self._master = master_secret if master_secret is not None else os.urandom(32)
        self._join_key = derive_key(self._master, "cryptdb.join")
        self._tables: dict[str, Table] = {}
        self._join_columns: dict[str, str] = {}
        # The stored (wrapped) ciphertexts: RND(DET(join value)).
        self._wrapped: dict[str, list[bytes]] = {}
        # Columns whose RND layer has been stripped, with the exposed tags.
        self._peeled: dict[str, list[bytes]] = {}
        self._attr_tags: dict[str, dict[str, list[bytes]]] = {}

    def upload(self, tables: list[tuple[Table, str]]) -> None:
        for table, join_column in tables:
            self._tables[table.name] = table
            self._join_columns[table.name] = join_column
            join_index = table.schema.index_of(join_column)
            rnd = SymmetricCipher(
                derive_key(self._master, f"cryptdb.rnd.{table.name}")
            )
            self._wrapped[table.name] = [
                rnd.encrypt(keyed_tag(self._join_key, row[join_index]))
                for row in table
            ]
            per_column: dict[str, list[bytes]] = {}
            for column in table.schema.names():
                if column == join_column:
                    continue
                key = derive_key(
                    self._master, f"cryptdb.attr.{table.name}.{column}"
                )
                index = table.schema.index_of(column)
                per_column[column] = [keyed_tag(key, row[index]) for row in table]
            self._attr_tags[table.name] = per_column

    def _peel(self, table_name: str) -> list[bytes]:
        """Strip the RND layer of a whole join column (idempotent)."""
        if table_name not in self._peeled:
            rnd = SymmetricCipher(
                derive_key(self._master, f"cryptdb.rnd.{table_name}")
            )
            self._peeled[table_name] = [
                rnd.decrypt(blob) for blob in self._wrapped[table_name]
            ]
        return self._peeled[table_name]

    def _selection_indices(self, table_name: str, selection) -> list[int]:
        indices = list(range(len(self._tables[table_name])))
        for column, values in selection.in_clauses:
            key = derive_key(self._master, f"cryptdb.attr.{table_name}.{column}")
            allowed = {keyed_tag(key, v) for v in values}
            tags = self._attr_tags[table_name][column]
            indices = [i for i in indices if tags[i] in allowed]
        return indices

    def run_query(self, query: JoinQuery) -> SchemeAnswer:
        if query.left_table not in self._tables or query.right_table not in self._tables:
            raise QueryError("query references a table that was not uploaded")
        left = self._tables[query.left_table]
        right = self._tables[query.right_table]
        left_tags = self._peel(query.left_table)
        right_tags = self._peel(query.right_table)
        left_indices = self._selection_indices(query.left_table, query.left_selection)
        right_indices = self._selection_indices(query.right_table, query.right_selection)
        buckets: dict[bytes, list[int]] = {}
        for i in left_indices:
            buckets.setdefault(left_tags[i], []).append(i)
        answer = SchemeAnswer()
        for j in right_indices:
            for i in buckets.get(right_tags[j], ()):
                answer.index_pairs.append((i, j))
                answer.rows.append(left[i] + right[j])
        return answer

    def revealed_pairs(self) -> set[Pair]:
        """True pairs among all rows of every *peeled* column."""
        by_tag: dict[bytes, list[RowRef]] = {}
        for table_name, tags in self._peeled.items():
            for index, tag in enumerate(tags):
                by_tag.setdefault(tag, []).append((table_name, index))
        pairs: set[Pair] = set()
        for refs in by_tag.values():
            for a in range(len(refs)):
                for b in range(a + 1, len(refs)):
                    pairs.add(make_pair(refs[a], refs[b]))
        return pairs
