"""The paper's Secure Join scheme behind the common baseline interface.

The adapter wires a :class:`~repro.core.client.SecureJoinClient` and
:class:`~repro.core.server.SecureJoinServer` together and derives the
adversary's knowledge from the server's recorded query observations:
handles that coincide *within* a query are directly observed equalities,
and the transitive closure over all observations is everything a
computationally bounded adversary can infer (Corollaries 5.2.1/5.2.2).
"""

from __future__ import annotations

import random

import networkx as nx

from repro.baselines.api import JoinScheme, Pair, RowRef, SchemeAnswer, make_pair
from repro.core.client import SecureJoinClient
from repro.core.server import SecureJoinServer
from repro.db.query import JoinQuery
from repro.db.table import Table


class SecureJoinAdapter(JoinScheme):
    """Secure Join as a leakage-analyzable scheme."""

    name = "securejoin"

    def __init__(
        self,
        in_clause_limit: int = 4,
        rng: random.Random | None = None,
    ):
        self._in_clause_limit = in_clause_limit
        self._rng = rng
        self._client: SecureJoinClient | None = None
        self._server: SecureJoinServer | None = None

    def upload(self, tables: list[tuple[Table, str]]) -> None:
        self._client = SecureJoinClient.for_tables(
            tables, in_clause_limit=self._in_clause_limit, rng=self._rng
        )
        self._server = SecureJoinServer(self._client.params)
        for table, join_column in tables:
            self._server.store(self._client.encrypt_table(table, join_column))

    def run_query(self, query: JoinQuery) -> SchemeAnswer:
        encrypted_query = self._client.create_query(query)
        result = self._server.execute_join(encrypted_query)
        decrypted = self._client.decrypt_result(result)
        return SchemeAnswer(
            rows=decrypted.table.rows(),
            index_pairs=list(result.index_pairs),
        )

    def revealed_pairs(self) -> set[Pair]:
        """Transitive closure of the per-query observed equalities.

        Within one query, rows with equal handles form observed
        equivalence groups; across queries the adversary chains groups
        that share a row.  Connected components of that graph are
        exactly the transitive closure of the union of per-query
        leakages — the paper's claimed (and minimal) leakage.
        """
        graph = nx.Graph()
        for observation in self._server.observations:
            by_handle: dict[bytes, list[RowRef]] = {}
            for ref, handle in observation.handles.items():
                by_handle.setdefault(handle, []).append(ref)
            for refs in by_handle.values():
                if len(refs) < 2:
                    continue
                anchor = refs[0]
                graph.add_node(anchor)
                for other in refs[1:]:
                    graph.add_edge(anchor, other)
        pairs: set[Pair] = set()
        for component in nx.connected_components(graph):
            members = sorted(component)
            for a in range(len(members)):
                for b in range(a + 1, len(members)):
                    pairs.add(make_pair(members[a], members[b]))
        return pairs
