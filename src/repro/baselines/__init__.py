"""Baseline join-encryption schemes from the paper's Section 2 analysis.

Each baseline implements the common :class:`~repro.baselines.api.JoinScheme`
interface so the leakage analyzer can replay the same query series against
every scheme and compare the equality pairs each one reveals:

- :class:`~repro.baselines.deterministic.DeterministicScheme` —
  Hacigümüş et al. [15]: deterministic join-column encryption; reveals
  every equality pair at upload time (t0).
- :class:`~repro.baselines.cryptdb.CryptDBScheme` — Popa et al. [33]:
  onion encryption; reveals nothing at t0 but strips the probabilistic
  layer of the whole column pair at the first join (t1).
- :class:`~repro.baselines.hahn.HahnScheme` — Hahn et al. [16]:
  KP-ABE-gated unwrapping; per-query leakage is minimal, but unwrapped
  rows stay comparable across queries (super-additive leakage), joins
  are nested-loop, and only primary-key/foreign-key joins are supported.
- :class:`~repro.baselines.securejoin_adapter.SecureJoinAdapter` — the
  paper's scheme behind the same interface.
"""

from repro.baselines.api import JoinScheme, SchemeAnswer
from repro.baselines.cryptdb import CryptDBScheme
from repro.baselines.deterministic import DeterministicScheme
from repro.baselines.hahn import HahnScheme
from repro.baselines.securejoin_adapter import SecureJoinAdapter

__all__ = [
    "CryptDBScheme",
    "DeterministicScheme",
    "HahnScheme",
    "JoinScheme",
    "SchemeAnswer",
    "SecureJoinAdapter",
]
