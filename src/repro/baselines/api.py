"""The common interface all join-encryption schemes implement.

The leakage analyzer replays a series of queries against a scheme and,
after every step, asks for the set of *revealed equality pairs*: pairs
of row references whose join-value equality the DBMS-side adversary can
now test (and which are in fact equal).  This is precisely the metric
the paper's Section 2.1 uses to compare schemes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.db.query import JoinQuery
from repro.db.table import Table

# A row reference: (table name, row index).
RowRef = tuple[str, int]
# An unordered equality pair of row references.
Pair = frozenset


def make_pair(a: RowRef, b: RowRef) -> Pair:
    """An unordered pair (self-pairs are meaningless and rejected)."""
    if a == b:
        raise ValueError("an equality pair needs two distinct rows")
    return frozenset((a, b))


@dataclass
class SchemeAnswer:
    """What a scheme returns for one query: the joined rows it computed."""

    rows: list[tuple] = field(default_factory=list)
    index_pairs: list[tuple[int, int]] = field(default_factory=list)


class JoinScheme(ABC):
    """A join-over-encrypted-data scheme under leakage analysis.

    Lifecycle: construct, :meth:`upload` the tables once (time t0), then
    :meth:`run_query` repeatedly (times t1, t2, ...).  After any step,
    :meth:`revealed_pairs` reports the adversary's cumulative knowledge.
    """

    name: str = "abstract"

    @abstractmethod
    def upload(self, tables: list[tuple[Table, str]]) -> None:
        """Encrypt and upload ``(table, join_column)`` pairs (time t0)."""

    @abstractmethod
    def run_query(self, query: JoinQuery) -> SchemeAnswer:
        """Execute one equi-join query on the encrypted data."""

    @abstractmethod
    def revealed_pairs(self) -> set[Pair]:
        """All *true* equality pairs the adversary can currently verify.

        Pairs may span the two tables or live within one table; the
        paper's Example 2.1 counts both kinds.
        """
