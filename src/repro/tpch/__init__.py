"""A deterministic TPC-H-style data generator.

The official ``dbgen`` tool is unavailable offline, so this package
generates the two tables the paper's evaluation uses — ``Customers``
and ``Orders`` — with the TPC-H schemas, TPC-H row-count scaling
(Customers ``150000 x SF``, Orders ``1500000 x SF``), plausible value
distributions, and the paper's extra ``selectivity`` column (Section
6.1): each selectivity value ``s`` in ``{1/12.5, 1/25, 1/50, 1/100}``
is assigned to exactly ``s * n`` rows of each table.
"""

from repro.tpch.generator import (
    SELECTIVITY_LABELS,
    SELECTIVITY_VALUES,
    TPCHGenerator,
    selectivity_label,
)
from repro.tpch.tables import CUSTOMERS_SCHEMA, ORDERS_SCHEMA

__all__ = [
    "CUSTOMERS_SCHEMA",
    "ORDERS_SCHEMA",
    "SELECTIVITY_LABELS",
    "SELECTIVITY_VALUES",
    "TPCHGenerator",
    "selectivity_label",
]
