"""Deterministic generator for the Customers and Orders tables.

Generation is fully determined by ``(scale_factor, seed)`` so every
benchmark run sees identical data.  Row counts follow TPC-H:
``|Customers| = 150000 * SF`` and ``|Orders| = 1500000 * SF``; each
order's ``custkey`` references a generated customer.

The ``selectivity`` column reproduces the paper's setup: the label of
selectivity ``s`` is assigned to exactly ``round(s * n)`` rows, so a
query ``WHERE selectivity IN (label)`` selects an ``s`` fraction of the
table.  Remaining rows get the ``"-"`` filler label that no experiment
queries.  Labels are deterministically interleaved through the table so
selected rows are spread uniformly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.db.table import Table
from repro.errors import BenchmarkError
from repro.tpch.tables import (
    COMMENT_WORDS,
    CUSTOMERS_SCHEMA,
    MKT_SEGMENTS,
    NATION_COUNT,
    ORDER_PRIORITIES,
    ORDER_STATUSES,
    ORDERS_SCHEMA,
)

# The paper's four selectivity values and their column labels.
SELECTIVITY_VALUES = (1 / 12.5, 1 / 25, 1 / 50, 1 / 100)
SELECTIVITY_LABELS = ("1/12.5", "1/25", "1/50", "1/100")

_CUSTOMERS_PER_SF = 150_000
_ORDERS_PER_SF = 1_500_000

_FILLER_LABEL = "-"


def selectivity_label(value: float) -> str:
    """Map a selectivity value to its column label."""
    for candidate, label in zip(SELECTIVITY_VALUES, SELECTIVITY_LABELS):
        if abs(candidate - value) < 1e-12:
            return label
    raise BenchmarkError(
        f"unknown selectivity {value}; expected one of {SELECTIVITY_VALUES}"
    )


def _selectivity_column(n: int, rng: random.Random) -> list[str]:
    """Assign each selectivity label to round(s*n) rows, spread uniformly."""
    labels = [_FILLER_LABEL] * n
    positions = list(range(n))
    rng.shuffle(positions)
    cursor = 0
    for value, label in zip(SELECTIVITY_VALUES, SELECTIVITY_LABELS):
        count = round(value * n)
        for position in positions[cursor:cursor + count]:
            labels[position] = label
        cursor += count
    return labels


def _comment(rng: random.Random) -> str:
    return " ".join(rng.choice(COMMENT_WORDS) for _ in range(rng.randrange(4, 9)))


def _phone(rng: random.Random) -> str:
    return (
        f"{rng.randrange(10, 35)}-{rng.randrange(100, 1000)}-"
        f"{rng.randrange(100, 1000)}-{rng.randrange(1000, 10000)}"
    )


def _order_date(rng: random.Random) -> str:
    year = rng.randrange(1992, 1999)
    month = rng.randrange(1, 13)
    day = rng.randrange(1, 29)
    return f"{year:04d}-{month:02d}-{day:02d}"


@dataclass(frozen=True)
class TPCHGenerator:
    """Deterministic Customers/Orders generator for one scale factor."""

    scale_factor: float
    seed: int = 20220310

    def __post_init__(self):
        if self.scale_factor <= 0:
            raise BenchmarkError("scale factor must be positive")

    @property
    def num_customers(self) -> int:
        return max(1, round(_CUSTOMERS_PER_SF * self.scale_factor))

    @property
    def num_orders(self) -> int:
        return max(1, round(_ORDERS_PER_SF * self.scale_factor))

    def customers(self) -> Table:
        """The Customers table (join key: custkey)."""
        rng = random.Random((self.seed, "customers", self.scale_factor).__repr__())
        n = self.num_customers
        selectivity = _selectivity_column(n, rng)
        table = Table("Customers", CUSTOMERS_SCHEMA)
        for custkey in range(1, n + 1):
            table.insert((
                custkey,
                f"Customer#{custkey:09d}",
                f"{rng.randrange(1, 9999)} {rng.choice(COMMENT_WORDS)} st.",
                rng.randrange(NATION_COUNT),
                _phone(rng),
                round(rng.uniform(-999.99, 9999.99), 2),
                rng.choice(MKT_SEGMENTS),
                _comment(rng),
                selectivity[custkey - 1],
            ))
        return table

    def orders(self) -> Table:
        """The Orders table (join key: custkey, foreign key to Customers)."""
        rng = random.Random((self.seed, "orders", self.scale_factor).__repr__())
        n = self.num_orders
        num_customers = self.num_customers
        selectivity = _selectivity_column(n, rng)
        table = Table("Orders", ORDERS_SCHEMA)
        for orderkey in range(1, n + 1):
            table.insert((
                orderkey,
                rng.randrange(1, num_customers + 1),
                rng.choice(ORDER_STATUSES),
                round(rng.uniform(850.0, 560000.0), 2),
                _order_date(rng),
                rng.choice(ORDER_PRIORITIES),
                f"Clerk#{rng.randrange(1, 1001):09d}",
                0,
                _comment(rng),
                selectivity[orderkey - 1],
            ))
        return table

    def both(self) -> tuple[Table, Table]:
        """``(customers, orders)`` in one call."""
        return self.customers(), self.orders()
