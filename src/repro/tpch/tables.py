"""TPC-H schemas for the two tables of the paper's evaluation.

Column names and types follow the TPC-H specification (prefixes
dropped); both tables carry the paper's additional ``selectivity``
column (Section 6.1).
"""

from __future__ import annotations

from repro.db.schema import Schema

# Customers: custkey, name, address, nationkey, phone, acctbal,
# mktsegment, comment  (8 attributes, as the paper states) + selectivity.
CUSTOMERS_SCHEMA = Schema.of(
    ("custkey", "int"),
    ("name", "str"),
    ("address", "str"),
    ("nationkey", "int"),
    ("phone", "str"),
    ("acctbal", "float"),
    ("mktsegment", "str"),
    ("comment", "str"),
    ("selectivity", "str"),
)

# Orders: orderkey, custkey, orderstatus, totalprice, orderdate,
# orderpriority, clerk, shippriority, comment (9 attributes) + selectivity.
ORDERS_SCHEMA = Schema.of(
    ("orderkey", "int"),
    ("custkey", "int"),
    ("orderstatus", "str"),
    ("totalprice", "float"),
    ("orderdate", "str"),
    ("orderpriority", "str"),
    ("clerk", "str"),
    ("shippriority", "int"),
    ("comment", "str"),
    ("selectivity", "str"),
)

MKT_SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY")

ORDER_PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")

ORDER_STATUSES = ("O", "F", "P")

NATION_COUNT = 25

COMMENT_WORDS = (
    "carefully", "quickly", "furiously", "slyly", "blithely", "ironic",
    "final", "special", "pending", "regular", "express", "bold", "even",
    "silent", "unusual", "accounts", "packages", "deposits", "requests",
    "instructions", "foxes", "theodolites", "platelets", "pinto", "beans",
    "asymptotes", "dependencies", "excuses", "ideas", "sleep", "nag",
    "haggle", "wake", "cajole", "detect", "integrate", "boost", "engage",
)
