"""BN254 elliptic-curve groups G1 and G2.

``G1`` lives on ``y^2 = x^3 + 3`` over Fp; ``G2`` lives on the sextic
D-twist ``y^2 = x^3 + 3/xi`` over Fp2.  Points are immutable affine
points; the point at infinity is represented by ``x is None``.

The module also provides the *untwist* map sending a G2 point into the
curve over Fp12, which the pairing's line functions operate on.
"""

from __future__ import annotations

from repro.crypto.field import XI, Fp2, Fp6, Fp12
from repro.crypto.numtheory import mod_inverse, naf_digits
from repro.crypto.params import (
    CURVE_B,
    CURVE_ORDER,
    FIELD_MODULUS,
    G1_GENERATOR,
    G2_GENERATOR_X,
    G2_GENERATOR_Y,
)
from repro.errors import CurveError

P = FIELD_MODULUS

# Twist coefficient b' = 3 / xi in Fp2.
TWIST_B = Fp2(CURVE_B) * XI.inverse()


class G1Point:
    """An affine point on the BN254 curve over Fp."""

    __slots__ = ("x", "y")

    def __init__(self, x: int | None, y: int | None, check: bool = True):
        if x is None:
            self.x = None
            self.y = None
            return
        self.x = x % P
        self.y = y % P
        if check and not self._on_curve():
            raise CurveError(f"({x}, {y}) is not on the BN254 G1 curve")

    # -- constructors -------------------------------------------------
    @staticmethod
    def infinity() -> "G1Point":
        return G1Point(None, None)

    @staticmethod
    def generator() -> "G1Point":
        return G1Point(*G1_GENERATOR)

    # -- predicates ----------------------------------------------------
    def is_infinity(self) -> bool:
        return self.x is None

    def _on_curve(self) -> bool:
        return (self.y * self.y - self.x * self.x * self.x - CURVE_B) % P == 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, G1Point):
            return NotImplemented
        return self.x == other.x and self.y == other.y

    def __hash__(self) -> int:
        return hash(("G1", self.x, self.y))

    # -- group law -----------------------------------------------------
    def __neg__(self) -> "G1Point":
        if self.is_infinity():
            return self
        return G1Point(self.x, -self.y, check=False)

    def __add__(self, other: "G1Point") -> "G1Point":
        if self.is_infinity():
            return other
        if other.is_infinity():
            return self
        if self.x == other.x:
            if (self.y + other.y) % P == 0:
                return G1Point.infinity()
            return self.double()
        slope = (other.y - self.y) * mod_inverse(other.x - self.x, P) % P
        x3 = (slope * slope - self.x - other.x) % P
        y3 = (slope * (self.x - x3) - self.y) % P
        return G1Point(x3, y3, check=False)

    def double(self) -> "G1Point":
        if self.is_infinity() or self.y == 0:
            return G1Point.infinity()
        slope = 3 * self.x * self.x * mod_inverse(2 * self.y, P) % P
        x3 = (slope * slope - 2 * self.x) % P
        y3 = (slope * (self.x - x3) - self.y) % P
        return G1Point(x3, y3, check=False)

    def scalar_mul(self, k: int) -> "G1Point":
        # NAF double-and-add: negation is one sign flip, so recoding to
        # signed digits cuts expected additions from k.bit_length()/2 to
        # k.bit_length()/3 for the same number of doublings.
        k %= CURVE_ORDER
        negated = -self
        result = G1Point.infinity()
        for digit in reversed(naf_digits(k)):
            result = result.double()
            if digit == 1:
                result = result + self
            elif digit == -1:
                result = result + negated
        return result

    def __mul__(self, k: int) -> "G1Point":
        return self.scalar_mul(k)

    def __rmul__(self, k: int) -> "G1Point":
        return self.scalar_mul(k)

    def __repr__(self) -> str:
        if self.is_infinity():
            return "G1Point(infinity)"
        return f"G1Point({self.x}, {self.y})"

    def to_bytes(self) -> bytes:
        if self.is_infinity():
            return b"\x00" * 64
        return self.x.to_bytes(32, "big") + self.y.to_bytes(32, "big")

    @staticmethod
    def from_bytes(data: bytes) -> "G1Point":
        """Inverse of :meth:`to_bytes`; validates the curve equation."""
        if len(data) != 64:
            raise CurveError(f"G1 point needs 64 bytes, got {len(data)}")
        if data == b"\x00" * 64:
            return G1Point.infinity()
        x = int.from_bytes(data[:32], "big")
        y = int.from_bytes(data[32:], "big")
        return G1Point(x, y)


class G2Point:
    """An affine point on the BN254 sextic twist over Fp2."""

    __slots__ = ("x", "y")

    def __init__(self, x: Fp2 | None, y: Fp2 | None, check: bool = True):
        self.x = x
        self.y = y
        if x is not None and check and not self._on_curve():
            raise CurveError("point is not on the BN254 twist curve")

    @staticmethod
    def infinity() -> "G2Point":
        return G2Point(None, None)

    @staticmethod
    def generator() -> "G2Point":
        return G2Point(Fp2(*G2_GENERATOR_X), Fp2(*G2_GENERATOR_Y))

    def is_infinity(self) -> bool:
        return self.x is None

    def _on_curve(self) -> bool:
        lhs = self.y.square()
        rhs = self.x.square() * self.x + TWIST_B
        return lhs == rhs

    def is_in_subgroup(self) -> bool:
        """Check membership in the order-r subgroup (r * Q == infinity)."""
        return self.scalar_mul(CURVE_ORDER).is_infinity()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, G2Point):
            return NotImplemented
        return self.x == other.x and self.y == other.y

    def __hash__(self) -> int:
        if self.is_infinity():
            return hash(("G2", None))
        return hash(("G2", self.x.to_tuple(), self.y.to_tuple()))

    def __neg__(self) -> "G2Point":
        if self.is_infinity():
            return self
        return G2Point(self.x, -self.y, check=False)

    def __add__(self, other: "G2Point") -> "G2Point":
        if self.is_infinity():
            return other
        if other.is_infinity():
            return self
        if self.x == other.x:
            if (self.y + other.y).is_zero():
                return G2Point.infinity()
            return self.double()
        slope = (other.y - self.y) * (other.x - self.x).inverse()
        x3 = slope.square() - self.x - other.x
        y3 = slope * (self.x - x3) - self.y
        return G2Point(x3, y3, check=False)

    def double(self) -> "G2Point":
        if self.is_infinity() or self.y.is_zero():
            return G2Point.infinity()
        slope = self.x.square().mul_scalar(3) * (self.y + self.y).inverse()
        x3 = slope.square() - self.x - self.x
        y3 = slope * (self.x - x3) - self.y
        return G2Point(x3, y3, check=False)

    def scalar_mul(self, k: int) -> "G2Point":
        # Same NAF ladder as G1; the saved additions matter more here
        # because every Fp2 inversion costs an Fp inversion plus
        # multiplications.
        k %= CURVE_ORDER
        negated = -self
        result = G2Point.infinity()
        for digit in reversed(naf_digits(k)):
            result = result.double()
            if digit == 1:
                result = result + self
            elif digit == -1:
                result = result + negated
        return result

    def __mul__(self, k: int) -> "G2Point":
        return self.scalar_mul(k)

    def __rmul__(self, k: int) -> "G2Point":
        return self.scalar_mul(k)

    def __repr__(self) -> str:
        if self.is_infinity():
            return "G2Point(infinity)"
        return f"G2Point({self.x!r}, {self.y!r})"

    def to_bytes(self) -> bytes:
        if self.is_infinity():
            return b"\x00" * 128
        return b"".join(
            c.to_bytes(32, "big")
            for c in (self.x.c0, self.x.c1, self.y.c0, self.y.c1)
        )

    @staticmethod
    def from_bytes(data: bytes) -> "G2Point":
        """Inverse of :meth:`to_bytes`; validates the twist equation."""
        if len(data) != 128:
            raise CurveError(f"G2 point needs 128 bytes, got {len(data)}")
        if data == b"\x00" * 128:
            return G2Point.infinity()
        coefficients = [
            int.from_bytes(data[i:i + 32], "big") for i in range(0, 128, 32)
        ]
        x = Fp2(coefficients[0], coefficients[1])
        y = Fp2(coefficients[2], coefficients[3])
        return G2Point(x, y)


def untwist(q: G2Point) -> tuple[Fp12, Fp12]:
    """Map a G2 point on the twist into the curve over Fp12.

    For the D-twist with ``w^6 = xi`` the map is
    ``(x', y') -> (x' * w^2, y' * w^3)``.  Since ``w^2 = v`` and
    ``w^3 = v*w``, the images are sparse Fp12 elements.
    """
    if q.is_infinity():
        raise CurveError("cannot untwist the point at infinity")
    x12 = Fp12(Fp6(Fp2.zero(), q.x, Fp2.zero()), Fp6.zero())
    y12 = Fp12(Fp6.zero(), Fp6(Fp2.zero(), q.y, Fp2.zero()))
    return x12, y12


def embed_g1(p: G1Point) -> tuple[Fp12, Fp12]:
    """Embed a G1 point into the curve over Fp12 (trivial inclusion)."""
    if p.is_infinity():
        raise CurveError("cannot embed the point at infinity")
    return Fp12.from_int(p.x), Fp12.from_int(p.y)
