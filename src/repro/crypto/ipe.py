"""Function-hiding inner-product encryption (Kim et al., SCN 2018).

Two schemes live here:

- :class:`IPEScheme` — the original construction Pi_ipe of Section 3.3:
  ``KeyGen`` outputs ``(K1, K2) = (g1^{a det(B)}, g1^{a v B})``,
  ``Encrypt`` outputs ``(C1, C2) = (g2^b, g2^{b w B*})`` and ``Decrypt``
  recovers ``<v, w>`` by searching the polynomial-size set S for z with
  ``e(K1, C1)^z == e(K2, C2)``.

- :class:`ModifiedIPEScheme` — the paper's variant (Section 4.2): the
  randomizers a, b are fixed to 1 (randomness moves into two extra vector
  slots managed by the caller), only the second components are kept, and
  decryption returns the raw GT handle
  ``D = e(g1, g2)^{det(B) <v, w>}`` without extracting the exponent.

Both schemes are generic over a :class:`~repro.crypto.backend.BilinearBackend`.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.crypto.backend import BilinearBackend, GTElement, get_backend
from repro.crypto.matrix import ZqMatrix
from repro.errors import IPEError


@dataclass(frozen=True)
class IPEMasterKey:
    """``msk = (B, B*)`` plus the cached determinant of B."""

    dimension: int
    b: ZqMatrix
    b_star: ZqMatrix
    det_b: int


@dataclass(frozen=True)
class IPESecretKey:
    """``sk = (K1, K2)`` — K2 is a vector of G1 elements."""

    k1: object
    k2: tuple


@dataclass(frozen=True)
class IPECiphertext:
    """``ct = (C1, C2)`` — C2 is a vector of G2 elements."""

    c1: object
    c2: tuple


class IPEScheme:
    """The original Kim et al. function-hiding IPE."""

    def __init__(
        self,
        dimension: int,
        backend: BilinearBackend | None = None,
        rng: random.Random | None = None,
    ):
        if dimension < 1:
            raise IPEError("dimension must be positive")
        self.dimension = dimension
        self.backend = backend if backend is not None else get_backend("fast")
        self.rng = rng if rng is not None else random.Random()

    # -- algorithms ------------------------------------------------------
    def setup(self) -> IPEMasterKey:
        """``IPE.Setup``: sample ``B <- GL_n(Z_q)`` and derive ``B*``."""
        b = ZqMatrix.random_invertible(self.dimension, self.backend.order, self.rng)
        return IPEMasterKey(self.dimension, b, b.dual(), b.det())

    def _check_vector(self, v: Sequence[int]) -> list[int]:
        if len(v) != self.dimension:
            raise IPEError(
                f"vector length {len(v)} != scheme dimension {self.dimension}"
            )
        q = self.backend.order
        return [x % q for x in v]

    def keygen(self, msk: IPEMasterKey, v: Sequence[int]) -> IPESecretKey:
        """``IPE.KeyGen(msk, v)``: ``(g1^{a det(B)}, g1^{a v B})``."""
        v = self._check_vector(v)
        q = self.backend.order
        alpha = self.rng.randrange(1, q)
        exponents = msk.b.vec_mat([x * alpha % q for x in v])
        k2 = tuple(self.backend.g1_powers(exponents))
        k1 = self.backend.g1_power(alpha * msk.det_b % q)
        return IPESecretKey(k1, k2)

    def encrypt(self, msk: IPEMasterKey, w: Sequence[int]) -> IPECiphertext:
        """``IPE.Encrypt(msk, w)``: ``(g2^b, g2^{b w B*})``."""
        w = self._check_vector(w)
        q = self.backend.order
        beta = self.rng.randrange(1, q)
        exponents = msk.b_star.vec_mat([x * beta % q for x in w])
        c2 = tuple(self.backend.g2_powers(exponents))
        c1 = self.backend.g2_power(beta)
        return IPECiphertext(c1, c2)

    def decrypt(
        self,
        sk: IPESecretKey,
        ct: IPECiphertext,
        search_space: Iterable[int],
    ) -> int | None:
        """``IPE.Decrypt``: return z in S with ``D1^z == D2``, else None.

        D1 = e(K1, C1) = gt^{a b det(B)}; D2 = e(K2, C2) = gt^{a b det(B) <v,w>}.
        """
        d1 = self.backend.pair(sk.k1, ct.c1)
        d2 = self.backend.pair_vectors(sk.k2, ct.c2)
        for z in search_space:
            if self.backend.gt_pow(d1, z) == d2:
                return z
        return None


class ModifiedIPEScheme:
    """The paper's modified FHIPE (Section 4.2).

    Callers supply full vectors (including the two randomness slots of
    the Secure Join construction); this class fixes ``a = b = 1``, keeps
    only the vector components, and returns raw GT handles from decryption.
    """

    def __init__(
        self,
        dimension: int,
        backend: BilinearBackend | None = None,
        rng: random.Random | None = None,
    ):
        if dimension < 1:
            raise IPEError("dimension must be positive")
        self.dimension = dimension
        self.backend = backend if backend is not None else get_backend("fast")
        self.rng = rng if rng is not None else random.Random()

    def setup(self) -> IPEMasterKey:
        b = ZqMatrix.random_invertible(self.dimension, self.backend.order, self.rng)
        return IPEMasterKey(self.dimension, b, b.dual(), b.det())

    def _check_vector(self, v: Sequence[int]) -> list[int]:
        if len(v) != self.dimension:
            raise IPEError(
                f"vector length {len(v)} != scheme dimension {self.dimension}"
            )
        q = self.backend.order
        return [x % q for x in v]

    def keygen(self, msk: IPEMasterKey, v: Sequence[int]) -> tuple:
        """``Tk = g1^{v B}`` (the join token)."""
        v = self._check_vector(v)
        return tuple(self.backend.g1_powers(msk.b.vec_mat(v)))

    def encrypt(self, msk: IPEMasterKey, w: Sequence[int]) -> tuple:
        """``C = g2^{w B*}`` (the row ciphertext)."""
        w = self._check_vector(w)
        return tuple(self.backend.g2_powers(msk.b_star.vec_mat(w)))

    def decrypt(self, token: Sequence, ciphertext: Sequence) -> GTElement:
        """``D = e(Tk, C) = e(g1, g2)^{det(B) <v, w>}`` — the match handle."""
        if len(token) != self.dimension or len(ciphertext) != self.dimension:
            raise IPEError("token/ciphertext dimension mismatch")
        return self.backend.pair_vectors(token, ciphertext)
