"""Extension-field tower for BN254: Fp2, Fp6 and Fp12.

The tower is the standard one for BN curves:

- ``Fp2  = Fp[u]  / (u^2 + 1)``
- ``Fp6  = Fp2[v] / (v^3 - xi)`` with ``xi = 9 + u``
- ``Fp12 = Fp6[w] / (w^2 - v)``

Elements are immutable; all operators return new objects.  Base-field
coefficients are plain Python ints reduced modulo ``FIELD_MODULUS``.

Frobenius endomorphisms use coefficients computed once at import time
(powers of ``xi``), so no magic constants are hard-coded.
"""

from __future__ import annotations

from repro.crypto.numtheory import mod_inverse
from repro.crypto.params import FIELD_MODULUS, XI_A0, XI_A1
from repro.errors import FieldError

P = FIELD_MODULUS

# Optional gmpy2 acceleration for base-field inversion (the one place
# the tower calls into extended-gcd arithmetic).  gmpy2 is never a
# required dependency: when it is absent the pure-Python mod_inverse is
# the active path and results are bit-identical either way.
try:  # pragma: no cover - exercised only where gmpy2 is installed
    from gmpy2 import invert as _gmpy2_invert
    from gmpy2 import mpz as _mpz

    def _field_inverse(value: int, modulus: int) -> int:
        return int(_gmpy2_invert(_mpz(value), _mpz(modulus)))

    GMPY2_ACCELERATED = True
except ImportError:
    _field_inverse = mod_inverse
    GMPY2_ACCELERATED = False


class Fp2:
    """An element ``c0 + c1*u`` of ``Fp2 = Fp[u]/(u^2+1)``."""

    __slots__ = ("c0", "c1")

    def __init__(self, c0: int, c1: int = 0):
        self.c0 = c0 % P
        self.c1 = c1 % P

    # -- constructors -------------------------------------------------
    @staticmethod
    def zero() -> "Fp2":
        return Fp2(0, 0)

    @staticmethod
    def one() -> "Fp2":
        return Fp2(1, 0)

    # -- predicates ----------------------------------------------------
    def is_zero(self) -> bool:
        return self.c0 == 0 and self.c1 == 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Fp2):
            return NotImplemented
        return self.c0 == other.c0 and self.c1 == other.c1

    def __hash__(self) -> int:
        return hash((self.c0, self.c1))

    # -- arithmetic ----------------------------------------------------
    def __add__(self, other: "Fp2") -> "Fp2":
        return Fp2(self.c0 + other.c0, self.c1 + other.c1)

    def __sub__(self, other: "Fp2") -> "Fp2":
        return Fp2(self.c0 - other.c0, self.c1 - other.c1)

    def __neg__(self) -> "Fp2":
        return Fp2(-self.c0, -self.c1)

    def __mul__(self, other: "Fp2") -> "Fp2":
        # Karatsuba over u^2 = -1.
        a0, a1 = self.c0, self.c1
        b0, b1 = other.c0, other.c1
        t0 = a0 * b0
        t1 = a1 * b1
        t2 = (a0 + a1) * (b0 + b1)
        return Fp2(t0 - t1, t2 - t0 - t1)

    def mul_scalar(self, k: int) -> "Fp2":
        return Fp2(self.c0 * k, self.c1 * k)

    def mul_int(self, k: int) -> "Fp2":
        """Alias of :meth:`mul_scalar` (symmetry with Fp6/Fp12)."""
        return self.mul_scalar(k)

    def square(self) -> "Fp2":
        # (a0 + a1 u)^2 = (a0+a1)(a0-a1) + 2 a0 a1 u.
        a0, a1 = self.c0, self.c1
        return Fp2((a0 + a1) * (a0 - a1), 2 * a0 * a1)

    def conjugate(self) -> "Fp2":
        """The Frobenius map on Fp2 (``u -> -u``)."""
        return Fp2(self.c0, -self.c1)

    def inverse(self) -> "Fp2":
        norm = (self.c0 * self.c0 + self.c1 * self.c1) % P
        if norm == 0:
            raise FieldError("cannot invert zero in Fp2")
        inv_norm = _field_inverse(norm, P)
        return Fp2(self.c0 * inv_norm, -self.c1 * inv_norm)

    def mul_by_xi(self) -> "Fp2":
        """Multiply by the tower non-residue ``xi = 9 + u``."""
        a0, a1 = self.c0, self.c1
        return Fp2(XI_A0 * a0 - XI_A1 * a1, XI_A0 * a1 + XI_A1 * a0)

    def pow(self, exponent: int) -> "Fp2":
        if exponent < 0:
            return self.inverse().pow(-exponent)
        result = Fp2.one()
        base = self
        e = exponent
        while e:
            if e & 1:
                result = result * base
            base = base.square()
            e >>= 1
        return result

    def __repr__(self) -> str:
        return f"Fp2({self.c0}, {self.c1})"

    def to_tuple(self) -> tuple[int, int]:
        return (self.c0, self.c1)


XI = Fp2(XI_A0, XI_A1)


class Fp6:
    """An element ``a0 + a1*v + a2*v^2`` of ``Fp6 = Fp2[v]/(v^3 - xi)``."""

    __slots__ = ("a0", "a1", "a2")

    def __init__(self, a0: Fp2, a1: Fp2, a2: Fp2):
        self.a0 = a0
        self.a1 = a1
        self.a2 = a2

    @staticmethod
    def zero() -> "Fp6":
        return Fp6(Fp2.zero(), Fp2.zero(), Fp2.zero())

    @staticmethod
    def one() -> "Fp6":
        return Fp6(Fp2.one(), Fp2.zero(), Fp2.zero())

    def is_zero(self) -> bool:
        return self.a0.is_zero() and self.a1.is_zero() and self.a2.is_zero()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Fp6):
            return NotImplemented
        return self.a0 == other.a0 and self.a1 == other.a1 and self.a2 == other.a2

    def __hash__(self) -> int:
        return hash((self.a0, self.a1, self.a2))

    def __add__(self, other: "Fp6") -> "Fp6":
        return Fp6(self.a0 + other.a0, self.a1 + other.a1, self.a2 + other.a2)

    def __sub__(self, other: "Fp6") -> "Fp6":
        return Fp6(self.a0 - other.a0, self.a1 - other.a1, self.a2 - other.a2)

    def __neg__(self) -> "Fp6":
        return Fp6(-self.a0, -self.a1, -self.a2)

    def __mul__(self, other: "Fp6") -> "Fp6":
        a0, a1, a2 = self.a0, self.a1, self.a2
        b0, b1, b2 = other.a0, other.a1, other.a2
        t00 = a0 * b0
        t11 = a1 * b1
        t22 = a2 * b2
        c0 = t00 + ((a1 * b2) + (a2 * b1)).mul_by_xi()
        c1 = (a0 * b1) + (a1 * b0) + t22.mul_by_xi()
        c2 = (a0 * b2) + t11 + (a2 * b0)
        return Fp6(c0, c1, c2)

    def mul_fp2(self, k: Fp2) -> "Fp6":
        """Multiply componentwise by an Fp2 scalar."""
        return Fp6(self.a0 * k, self.a1 * k, self.a2 * k)

    def mul_int(self, k: int) -> "Fp6":
        """Multiply componentwise by a base-field scalar."""
        return Fp6(
            self.a0.mul_scalar(k), self.a1.mul_scalar(k), self.a2.mul_scalar(k)
        )

    def mul_sparse01(self, b0: Fp2, b1: Fp2) -> "Fp6":
        """Multiply by the sparse element ``b0 + b1*v`` (b2 = 0).

        Six Fp2 multiplications instead of nine — used by the pairing's
        line-function updates.
        """
        a0, a1, a2 = self.a0, self.a1, self.a2
        return Fp6(
            (a0 * b0) + (a2 * b1).mul_by_xi(),
            (a0 * b1) + (a1 * b0),
            (a1 * b1) + (a2 * b0),
        )

    def square(self) -> "Fp6":
        return self * self

    def mul_by_v(self) -> "Fp6":
        """Multiply by the indeterminate ``v`` (``v^3 = xi``)."""
        return Fp6(self.a2.mul_by_xi(), self.a0, self.a1)

    def inverse(self) -> "Fp6":
        a0, a1, a2 = self.a0, self.a1, self.a2
        t0 = a0.square() - (a1 * a2).mul_by_xi()
        t1 = a2.square().mul_by_xi() - (a0 * a1)
        t2 = a1.square() - (a0 * a2)
        denom = (a0 * t0) + (a2 * t1).mul_by_xi() + (a1 * t2).mul_by_xi()
        inv = denom.inverse()
        return Fp6(t0 * inv, t1 * inv, t2 * inv)

    def frobenius(self) -> "Fp6":
        """The p-power Frobenius endomorphism on Fp6."""
        return Fp6(
            self.a0.conjugate(),
            self.a1.conjugate() * _GAMMA_6_1,
            self.a2.conjugate() * _GAMMA_6_2,
        )

    def __repr__(self) -> str:
        return f"Fp6({self.a0!r}, {self.a1!r}, {self.a2!r})"

    def to_tuple(self) -> tuple[tuple[int, int], ...]:
        return (self.a0.to_tuple(), self.a1.to_tuple(), self.a2.to_tuple())


class Fp12:
    """An element ``b0 + b1*w`` of ``Fp12 = Fp6[w]/(w^2 - v)``."""

    __slots__ = ("b0", "b1")

    def __init__(self, b0: Fp6, b1: Fp6):
        self.b0 = b0
        self.b1 = b1

    @staticmethod
    def zero() -> "Fp12":
        return Fp12(Fp6.zero(), Fp6.zero())

    @staticmethod
    def one() -> "Fp12":
        return Fp12(Fp6.one(), Fp6.zero())

    @staticmethod
    def from_int(value: int) -> "Fp12":
        return Fp12(Fp6(Fp2(value), Fp2.zero(), Fp2.zero()), Fp6.zero())

    def is_zero(self) -> bool:
        return self.b0.is_zero() and self.b1.is_zero()

    def is_one(self) -> bool:
        return self == Fp12.one()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Fp12):
            return NotImplemented
        return self.b0 == other.b0 and self.b1 == other.b1

    def __hash__(self) -> int:
        return hash((self.b0, self.b1))

    def __add__(self, other: "Fp12") -> "Fp12":
        return Fp12(self.b0 + other.b0, self.b1 + other.b1)

    def __sub__(self, other: "Fp12") -> "Fp12":
        return Fp12(self.b0 - other.b0, self.b1 - other.b1)

    def __neg__(self) -> "Fp12":
        return Fp12(-self.b0, -self.b1)

    def __mul__(self, other: "Fp12") -> "Fp12":
        # Karatsuba over w^2 = v.
        a0, a1 = self.b0, self.b1
        b0, b1 = other.b0, other.b1
        t0 = a0 * b0
        t1 = a1 * b1
        t2 = (a0 + a1) * (b0 + b1)
        return Fp12(t0 + t1.mul_by_v(), t2 - t0 - t1)

    def square(self) -> "Fp12":
        a0, a1 = self.b0, self.b1
        t0 = a0 * a1
        c0 = (a0 + a1) * (a0 + a1.mul_by_v()) - t0 - t0.mul_by_v()
        c1 = t0 + t0
        return Fp12(c0, c1)

    def conjugate(self) -> "Fp12":
        """The ``p^6``-power map (unitary conjugation)."""
        return Fp12(self.b0, -self.b1)

    def mul_by_line(self, a: int, b: Fp2, c: Fp2) -> "Fp12":
        """Multiply by the sparse line value ``a + b*w + c*(v*w)``.

        ``a`` lives in the base field (the G1 y-coordinate); ``b`` and
        ``c`` are the Fp2 line coefficients produced by the optimized
        Miller loop.  Costs ~15 Fp2 multiplications instead of ~27.
        """
        r0 = self.b0.mul_int(a) + self.b1.mul_sparse01(b, c).mul_by_v()
        r1 = self.b0.mul_sparse01(b, c) + self.b1.mul_int(a)
        return Fp12(r0, r1)

    def mul_by_vertical(self, a: int, b: Fp2) -> "Fp12":
        """Multiply by the sparse vertical-line value ``a + b*v``."""
        return Fp12(
            self.b0.mul_sparse01(Fp2(a), b),
            self.b1.mul_sparse01(Fp2(a), b),
        )

    def inverse(self) -> "Fp12":
        denom = self.b0.square() - self.b1.square().mul_by_v()
        inv = denom.inverse()
        return Fp12(self.b0 * inv, -(self.b1 * inv))

    def frobenius(self) -> "Fp12":
        """The p-power Frobenius endomorphism on Fp12."""
        return Fp12(
            self.b0.frobenius(),
            self.b1.frobenius().mul_fp2(_GAMMA_12),
        )

    def pow(self, exponent: int) -> "Fp12":
        if exponent < 0:
            return self.inverse().pow(-exponent)
        result = Fp12.one()
        base = self
        e = exponent
        while e:
            if e & 1:
                result = result * base
            base = base.square()
            e >>= 1
        return result

    def __pow__(self, exponent: int) -> "Fp12":
        return self.pow(exponent)

    def __repr__(self) -> str:
        return f"Fp12({self.b0!r}, {self.b1!r})"

    def to_tuple(self) -> tuple:
        return (self.b0.to_tuple(), self.b1.to_tuple())

    def to_bytes(self) -> bytes:
        """Canonical 384-byte serialization (12 coefficients, 32 bytes each)."""
        coeffs = []
        for fp6 in (self.b0, self.b1):
            for fp2 in (fp6.a0, fp6.a1, fp6.a2):
                coeffs.append(fp2.c0)
                coeffs.append(fp2.c1)
        return b"".join(c.to_bytes(32, "big") for c in coeffs)


# Frobenius coefficients, computed once from xi.  (p - 1) is divisible by 6
# for BN primes, so the exponents below are exact integers.
_GAMMA_12 = XI.pow((P - 1) // 6)      # w^(p-1)   = xi^((p-1)/6)
_GAMMA_6_1 = XI.pow((P - 1) // 3)     # v^(p-1)   = xi^((p-1)/3)
_GAMMA_6_2 = _GAMMA_6_1.square()      # v^(2(p-1))
