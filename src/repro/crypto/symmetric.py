"""Probabilistic symmetric encryption for row payloads.

The Secure Join ciphertexts only carry the *join/selection structure*;
the actual cell contents travel under ordinary probabilistic symmetric
encryption that the server never opens.  No AES implementation is
available offline, so we build a standard HMAC-SHA256-based stream
cipher (counter-mode keystream, random nonce, encrypt-then-MAC).  Its
role in the reproduction is purely functional; any IND-CPA cipher slots
in here.
"""

from __future__ import annotations

import hashlib
import hmac
import os

from repro.errors import CryptoError

_NONCE_LEN = 16
_MAC_LEN = 16
_BLOCK_LEN = 32


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    blocks = []
    for counter in range((length + _BLOCK_LEN - 1) // _BLOCK_LEN):
        blocks.append(
            hmac.new(
                key, nonce + counter.to_bytes(8, "big"), hashlib.sha256
            ).digest()
        )
    return b"".join(blocks)[:length]


class SymmetricCipher:
    """Encrypt-then-MAC stream cipher keyed by a 32-byte secret."""

    def __init__(self, key: bytes):
        if len(key) < 16:
            raise CryptoError("symmetric key must be at least 16 bytes")
        self._enc_key = hmac.new(key, b"enc", hashlib.sha256).digest()
        self._mac_key = hmac.new(key, b"mac", hashlib.sha256).digest()

    def encrypt(self, plaintext: bytes, nonce: bytes | None = None) -> bytes:
        """Return ``nonce || ciphertext || mac`` (fresh random nonce)."""
        if nonce is None:
            nonce = os.urandom(_NONCE_LEN)
        if len(nonce) != _NONCE_LEN:
            raise CryptoError(f"nonce must be {_NONCE_LEN} bytes")
        stream = _keystream(self._enc_key, nonce, len(plaintext))
        body = bytes(p ^ s for p, s in zip(plaintext, stream))
        mac = hmac.new(self._mac_key, nonce + body, hashlib.sha256).digest()
        return nonce + body + mac[:_MAC_LEN]

    def decrypt(self, blob: bytes) -> bytes:
        """Verify the MAC and return the plaintext."""
        if len(blob) < _NONCE_LEN + _MAC_LEN:
            raise CryptoError("ciphertext too short")
        nonce = blob[:_NONCE_LEN]
        body = blob[_NONCE_LEN:-_MAC_LEN]
        mac = blob[-_MAC_LEN:]
        expected = hmac.new(self._mac_key, nonce + body, hashlib.sha256).digest()
        if not hmac.compare_digest(mac, expected[:_MAC_LEN]):
            raise CryptoError("MAC verification failed")
        stream = _keystream(self._enc_key, nonce, len(body))
        return bytes(c ^ s for c, s in zip(body, stream))
