"""BN254 (alt_bn128) curve parameters.

These are the standard parameters of the Barreto-Naehrig curve used by
Ethereum's precompiles and by the charm/FHIPE prototype the paper builds
on.  The curve is ``y^2 = x^3 + 3`` over ``F_p``; its sextic D-twist is
``y^2 = x^3 + 3/(9+u)`` over ``F_{p^2} = F_p[u]/(u^2+1)``.
"""

from __future__ import annotations

# Base field modulus p (254 bits).
FIELD_MODULUS = (
    21888242871839275222246405745257275088696311157297823662689037894645226208583
)

# Prime order r of G1, G2 and GT (the "q" of the paper's Z_q).
CURVE_ORDER = (
    21888242871839275222246405745257275088548364400416034343698204186575808495617
)

# BN parameter x with p = 36x^4 + 36x^3 + 24x^2 + 6x + 1.
BN_X = 4965661367192848881

# Optimal-ate Miller loop length: 6x + 2.
ATE_LOOP_COUNT = 6 * BN_X + 2

# Curve coefficient b for G1: y^2 = x^3 + 3.
CURVE_B = 3

# Non-residue xi = 9 + u defining the sextic twist and the Fp6/Fp12 tower.
XI_A0 = 9
XI_A1 = 1

# Standard generators.
G1_GENERATOR = (1, 2)

G2_GENERATOR_X = (
    10857046999023057135944570762232829481370756359578518086990519993285655852781,
    11559732032986387107991004021392285783925812861821192530917403151452391805634,
)
G2_GENERATOR_Y = (
    8495653923123431417604973247489272438418190587263600148770280649306958101930,
    4082367875863433681332203403145435568316851327593401208105741076214120093531,
)

# Cofactor of G2 on the twist: #E'(Fp2) = r * G2_COFACTOR.
G2_COFACTOR = (
    21888242871839275222246405745257275088844257914179612981679871602714643921549
)
