"""Bilinear-group backends.

The Secure Join scheme only needs four group operations:

1. raise the G1 generator to vectors of exponents (tokens),
2. raise the G2 generator to vectors of exponents (ciphertexts),
3. pair two vectors (a product of pairings / one multi-pairing), and
4. compare / hash the resulting GT elements.

:class:`BN254Backend` implements these on the real BN254 pairing built in
this package.  :class:`FastBackend` implements them in the exponent group
(elements are represented by their discrete logarithms), which is
*insecure by construction* — an adversary holding such values can read
the exponents — but is functionally identical: two GT handles are equal
exactly when the corresponding BN254 elements would be.  The fast backend
exists so the paper's table-scale experiments (hundreds of thousands of
rows) run in reasonable time in pure Python; see DESIGN.md §4.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections.abc import Sequence

from repro.crypto.curve import G1Point, G2Point
from repro.crypto.field import Fp12
from repro.crypto.numtheory import is_probable_prime
from repro.crypto.pairing import multi_pairing, pairing
from repro.crypto.pairing_fast import multi_pairing_fast, pairing_fast
from repro.crypto.params import CURVE_ORDER
from repro.errors import CryptoError


class GTElement(ABC):
    """An element of the target group, usable as a hash-join key."""

    @abstractmethod
    def to_bytes(self) -> bytes:
        """Canonical serialization (the hash-join bucket key)."""

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GTElement):
            return NotImplemented
        return self.to_bytes() == other.to_bytes()

    def __hash__(self) -> int:
        return hash(self.to_bytes())


class BN254GT(GTElement):
    """A GT element backed by an Fp12 value."""

    __slots__ = ("value", "_bytes")

    def __init__(self, value: Fp12):
        self.value = value
        self._bytes: bytes | None = None

    def to_bytes(self) -> bytes:
        if self._bytes is None:
            self._bytes = self.value.to_bytes()
        return self._bytes

    def __repr__(self) -> str:
        return f"BN254GT({self.to_bytes()[:8].hex()}...)"


class FastGT(GTElement):
    """A GT element represented by its discrete logarithm."""

    __slots__ = ("value", "modulus")

    def __init__(self, value: int, modulus: int):
        self.value = value % modulus
        self.modulus = modulus

    def to_bytes(self) -> bytes:
        return self.value.to_bytes((self.modulus.bit_length() + 7) // 8, "big")

    def __repr__(self) -> str:
        return f"FastGT({self.value})"


class BilinearBackend(ABC):
    """The group-operation interface the Secure Join scheme is generic over."""

    name: str

    @property
    @abstractmethod
    def order(self) -> int:
        """The prime order q of G1, G2 and GT."""

    @abstractmethod
    def g1_powers(self, exponents: Sequence[int]) -> list:
        """``[g1^e for e in exponents]``."""

    @abstractmethod
    def g2_powers(self, exponents: Sequence[int]) -> list:
        """``[g2^e for e in exponents]``."""

    @abstractmethod
    def pair_vectors(self, g1_vector: Sequence, g2_vector: Sequence) -> GTElement:
        """``prod_i e(g1_vector[i], g2_vector[i])`` (a multi-pairing)."""

    @abstractmethod
    def gt_generator_power(self, exponent: int) -> GTElement:
        """``e(g1, g2)^exponent`` — used by tests and the simulator."""

    @abstractmethod
    def gt_pow(self, element: GTElement, exponent: int) -> GTElement:
        """Raise a GT element to a power (used by IPE discrete-log search)."""

    @abstractmethod
    def encode_g1(self, element) -> bytes:
        """Serialize one G1 element (for the persistence layer)."""

    @abstractmethod
    def decode_g1(self, data: bytes):
        """Inverse of :meth:`encode_g1` (validating)."""

    @abstractmethod
    def encode_g2(self, element) -> bytes:
        """Serialize one G2 element."""

    @abstractmethod
    def decode_g2(self, data: bytes):
        """Inverse of :meth:`encode_g2` (validating)."""

    @property
    @abstractmethod
    def g1_element_size(self) -> int:
        """Byte length of one encoded G1 element."""

    @property
    @abstractmethod
    def g2_element_size(self) -> int:
        """Byte length of one encoded G2 element."""

    def g1_power(self, exponent: int):
        return self.g1_powers([exponent])[0]

    def g2_power(self, exponent: int):
        return self.g2_powers([exponent])[0]

    def pair(self, g1_element, g2_element) -> GTElement:
        return self.pair_vectors([g1_element], [g2_element])


class _FixedBaseTable:
    """Precomputed powers-of-two of a fixed base point for fast fixed-base
    scalar multiplication (halves the work of double-and-add)."""

    def __init__(self, base, order: int):
        self._table = []
        current = base
        for _ in range(order.bit_length()):
            self._table.append(current)
            current = current.double()
        self._infinity = type(base).infinity()
        self._order = order

    def power(self, exponent: int):
        exponent %= self._order
        result = self._infinity
        index = 0
        while exponent:
            if exponent & 1:
                result = result + self._table[index]
            exponent >>= 1
            index += 1
        return result


class BN254Backend(BilinearBackend):
    """The real pairing backend (BN254 optimal ate).

    ``use_fast_pairing`` selects the optimized Miller loop / final
    exponentiation (:mod:`repro.crypto.pairing_fast`); the reference
    implementation stays available for the correctness ablation.
    """

    name = "bn254"

    def __init__(self, use_fast_pairing: bool = True):
        self._g1_table: _FixedBaseTable | None = None
        self._g2_table: _FixedBaseTable | None = None
        self.use_fast_pairing = use_fast_pairing

    @property
    def order(self) -> int:
        return CURVE_ORDER

    def _g1(self) -> _FixedBaseTable:
        if self._g1_table is None:
            self._g1_table = _FixedBaseTable(G1Point.generator(), CURVE_ORDER)
        return self._g1_table

    def _g2(self) -> _FixedBaseTable:
        if self._g2_table is None:
            self._g2_table = _FixedBaseTable(G2Point.generator(), CURVE_ORDER)
        return self._g2_table

    def g1_powers(self, exponents: Sequence[int]) -> list[G1Point]:
        table = self._g1()
        return [table.power(e) for e in exponents]

    def g2_powers(self, exponents: Sequence[int]) -> list[G2Point]:
        table = self._g2()
        return [table.power(e) for e in exponents]

    def pair_vectors(
        self, g1_vector: Sequence[G1Point], g2_vector: Sequence[G2Point]
    ) -> BN254GT:
        if len(g1_vector) != len(g2_vector):
            raise CryptoError("pairing vectors must have the same length")
        multi = multi_pairing_fast if self.use_fast_pairing else multi_pairing
        return BN254GT(multi(list(zip(g1_vector, g2_vector))))

    def gt_generator_power(self, exponent: int) -> BN254GT:
        pair = pairing_fast if self.use_fast_pairing else pairing
        base = pair(G1Point.generator(), G2Point.generator())
        return BN254GT(base.pow(exponent % CURVE_ORDER))

    def gt_pow(self, element: BN254GT, exponent: int) -> BN254GT:
        return BN254GT(element.value.pow(exponent % CURVE_ORDER))

    def encode_g1(self, element: G1Point) -> bytes:
        return element.to_bytes()

    def decode_g1(self, data: bytes) -> G1Point:
        return G1Point.from_bytes(data)

    def encode_g2(self, element: G2Point) -> bytes:
        return element.to_bytes()

    def decode_g2(self, data: bytes) -> G2Point:
        return G2Point.from_bytes(data)

    @property
    def g1_element_size(self) -> int:
        return 64

    @property
    def g2_element_size(self) -> int:
        return 128


class FastBackend(BilinearBackend):
    """Insecure-fast backend: group elements are their discrete logs.

    ``g^e`` is stored as ``e mod q`` and the pairing is multiplication
    mod q, so equality of handles matches the real backend exactly while
    every operation is a handful of modular multiplications.
    """

    name = "fast"

    def __init__(self, modulus: int = CURVE_ORDER):
        if not is_probable_prime(modulus):
            raise CryptoError("FastBackend modulus must be prime")
        self._modulus = modulus

    @property
    def order(self) -> int:
        return self._modulus

    def g1_powers(self, exponents: Sequence[int]) -> list[int]:
        q = self._modulus
        return [e % q for e in exponents]

    def g2_powers(self, exponents: Sequence[int]) -> list[int]:
        q = self._modulus
        return [e % q for e in exponents]

    def pair_vectors(
        self, g1_vector: Sequence[int], g2_vector: Sequence[int]
    ) -> FastGT:
        if len(g1_vector) != len(g2_vector):
            raise CryptoError("pairing vectors must have the same length")
        q = self._modulus
        total = 0
        for a, b in zip(g1_vector, g2_vector):
            total += a * b
        return FastGT(total % q, q)

    def gt_generator_power(self, exponent: int) -> FastGT:
        return FastGT(exponent, self._modulus)

    def gt_pow(self, element: FastGT, exponent: int) -> FastGT:
        return FastGT(element.value * (exponent % self._modulus), self._modulus)

    @property
    def _element_size(self) -> int:
        return (self._modulus.bit_length() + 7) // 8

    def encode_g1(self, element: int) -> bytes:
        return (element % self._modulus).to_bytes(self._element_size, "big")

    def decode_g1(self, data: bytes) -> int:
        if len(data) != self._element_size:
            raise CryptoError(
                f"fast-backend element needs {self._element_size} bytes"
            )
        return int.from_bytes(data, "big") % self._modulus

    def encode_g2(self, element: int) -> bytes:
        return self.encode_g1(element)

    def decode_g2(self, data: bytes) -> int:
        return self.decode_g1(data)

    @property
    def g1_element_size(self) -> int:
        return self._element_size

    @property
    def g2_element_size(self) -> int:
        return self._element_size


_BACKENDS: dict[str, BilinearBackend] = {}


def get_backend(name: str = "fast") -> BilinearBackend:
    """Return a (cached) backend by name: ``"fast"`` or ``"bn254"``."""
    if name not in ("fast", "bn254"):
        raise CryptoError(f"unknown backend {name!r}; use 'fast' or 'bn254'")
    if name not in _BACKENDS:
        _BACKENDS[name] = FastBackend() if name == "fast" else BN254Backend()
    return _BACKENDS[name]


def random_rng(seed: int | None = None) -> random.Random:
    """A seeded RNG; with ``seed=None`` uses OS entropy for the seed."""
    if seed is None:
        seed = random.SystemRandom().randrange(2**63)
    return random.Random(seed)
