"""Bilinear-group backends.

The Secure Join scheme only needs four group operations:

1. raise the G1 generator to vectors of exponents (tokens),
2. raise the G2 generator to vectors of exponents (ciphertexts),
3. pair two vectors (a product of pairings / one multi-pairing), and
4. compare / hash the resulting GT elements.

:class:`BN254Backend` implements these on the real BN254 pairing built in
this package.  :class:`FastBackend` implements them in the exponent group
(elements are represented by their discrete logarithms), which is
*insecure by construction* — an adversary holding such values can read
the exponents — but is functionally identical: two GT handles are equal
exactly when the corresponding BN254 elements would be.  The fast backend
exists so the paper's table-scale experiments (hundreds of thousands of
rows) run in reasonable time in pure Python; see DESIGN.md §4.
"""

from __future__ import annotations

import random
import threading
from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass

from repro.crypto.curve import G1Point, G2Point
from repro.crypto.field import Fp12
from repro.crypto.numtheory import is_probable_prime
from repro.crypto.pairing import multi_pairing, pairing
from repro.crypto.pairing_fast import (
    PREPARED_ELEMENT_SIZE,
    G2Prepared,
    final_exponentiation_fast,
    miller_loop_fast,
    multi_miller_prepared,
    multi_pairing_fast,
    pairing_fast,
)
from repro.crypto.params import CURVE_ORDER
from repro.errors import CryptoError


class GTElement(ABC):
    """An element of the target group, usable as a hash-join key."""

    @abstractmethod
    def to_bytes(self) -> bytes:
        """Canonical serialization (the hash-join bucket key)."""

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GTElement):
            return NotImplemented
        return self.to_bytes() == other.to_bytes()

    def __hash__(self) -> int:
        return hash(self.to_bytes())


class BN254GT(GTElement):
    """A GT element backed by an Fp12 value."""

    __slots__ = ("value", "_bytes")

    def __init__(self, value: Fp12):
        self.value = value
        self._bytes: bytes | None = None

    def to_bytes(self) -> bytes:
        if self._bytes is None:
            self._bytes = self.value.to_bytes()
        return self._bytes

    def __repr__(self) -> str:
        return f"BN254GT({self.to_bytes()[:8].hex()}...)"


class FastGT(GTElement):
    """A GT element represented by its discrete logarithm."""

    __slots__ = ("value", "modulus")

    def __init__(self, value: int, modulus: int):
        self.value = value % modulus
        self.modulus = modulus

    def to_bytes(self) -> bytes:
        return self.value.to_bytes((self.modulus.bit_length() + 7) // 8, "big")

    def __repr__(self) -> str:
        return f"FastGT({self.value})"


@dataclass
class PairingOpCounter:
    """Pairing work performed through a backend's decryption entry points.

    ``miller_loops`` and ``final_exponentiations`` count what the BN254
    pairing actually executes for the observed call pattern; the fast
    backend reports the *same* counts for the same calls (it is the
    documented cost-model stand-in for BN254, see DESIGN.md §4), so
    engine ablations measured on either backend agree.

    ``prepared_miller_loops`` counts Miller loops served by replaying a
    stored row's precomputation (:class:`~repro.crypto.pairing_fast.G2Prepared`)
    instead of running full twist arithmetic — the distinction the
    planner's prepared-row constant is calibrated on.  ``preparations``
    counts trajectory builds (paid once per stored element), and
    ``gt_exponentiations`` counts GT exponentiations (``gt_pow`` /
    ``gt_generator_power``), which previously did pairing-scale work
    without touching the counter at all.
    """

    miller_loops: int = 0
    final_exponentiations: int = 0
    prepared_miller_loops: int = 0
    preparations: int = 0
    gt_exponentiations: int = 0

    def snapshot(self) -> tuple[int, int, int, int, int]:
        return (
            self.miller_loops,
            self.final_exponentiations,
            self.prepared_miller_loops,
            self.preparations,
            self.gt_exponentiations,
        )

    def since(
        self, snapshot: tuple[int, int, int, int, int]
    ) -> "PairingOpCounter":
        """The operations performed after ``snapshot`` was taken."""
        return PairingOpCounter(
            miller_loops=self.miller_loops - snapshot[0],
            final_exponentiations=self.final_exponentiations - snapshot[1],
            prepared_miller_loops=self.prepared_miller_loops - snapshot[2],
            preparations=self.preparations - snapshot[3],
            gt_exponentiations=self.gt_exponentiations - snapshot[4],
        )

    def add(self, other: "PairingOpCounter") -> None:
        self.miller_loops += other.miller_loops
        self.final_exponentiations += other.final_exponentiations
        self.prepared_miller_loops += other.prepared_miller_loops
        self.preparations += other.preparations
        self.gt_exponentiations += other.gt_exponentiations

    def reset(self) -> None:
        self.miller_loops = 0
        self.final_exponentiations = 0
        self.prepared_miller_loops = 0
        self.preparations = 0
        self.gt_exponentiations = 0


class FastPrepared:
    """The fast backend's stand-in for a prepared G2 element.

    There is nothing to precompute in the exponent group, but the marker
    lets the fast backend *count* prepared work exactly as BN254 would
    for the same calls — keeping the DESIGN.md §4 same-counts contract
    intact on the prepared path.
    """

    __slots__ = ("value",)

    def __init__(self, value: int):
        self.value = value

    def is_infinity(self) -> bool:
        return not self.value


class PreparedRow(Sequence):
    """One stored row ciphertext together with its pairing precomputation.

    ``elements`` is the raw G2 vector (what transport and persistence
    serialize); iteration and indexing yield the *prepared* elements, so
    every engine path — including the serial one-pairing-at-a-time
    ablation — replays precomputation when handed a prepared row.
    """

    __slots__ = ("elements", "prepared")

    def __init__(self, elements: tuple, prepared: tuple):
        if len(elements) != len(prepared):
            raise CryptoError(
                "prepared row needs one precomputation per element"
            )
        self.elements = tuple(elements)
        self.prepared = tuple(prepared)

    def __len__(self) -> int:
        return len(self.prepared)

    def __getitem__(self, index):
        return self.prepared[index]


class BilinearBackend(ABC):
    """The group-operation interface the Secure Join scheme is generic over."""

    name: str

    def __init__(self):
        self.ops = PairingOpCounter()

    @property
    @abstractmethod
    def order(self) -> int:
        """The prime order q of G1, G2 and GT."""

    @abstractmethod
    def g1_powers(self, exponents: Sequence[int]) -> list:
        """``[g1^e for e in exponents]``."""

    @abstractmethod
    def g2_powers(self, exponents: Sequence[int]) -> list:
        """``[g2^e for e in exponents]``."""

    @abstractmethod
    def pair_vectors(self, g1_vector: Sequence, g2_vector: Sequence) -> GTElement:
        """``prod_i e(g1_vector[i], g2_vector[i])`` (a multi-pairing)."""

    @abstractmethod
    def gt_identity(self) -> GTElement:
        """The identity of GT (the empty product of pairings)."""

    @abstractmethod
    def gt_mul(self, a: GTElement, b: GTElement) -> GTElement:
        """The GT group operation (product of two pairing outputs)."""

    @abstractmethod
    def gt_generator_power(self, exponent: int) -> GTElement:
        """``e(g1, g2)^exponent`` — used by tests and the simulator."""

    @abstractmethod
    def gt_pow(self, element: GTElement, exponent: int) -> GTElement:
        """Raise a GT element to a power (used by IPE discrete-log search)."""

    @abstractmethod
    def encode_g1(self, element) -> bytes:
        """Serialize one G1 element (for the persistence layer)."""

    @abstractmethod
    def decode_g1(self, data: bytes):
        """Inverse of :meth:`encode_g1` (validating)."""

    @abstractmethod
    def encode_g2(self, element) -> bytes:
        """Serialize one G2 element."""

    @abstractmethod
    def decode_g2(self, data: bytes):
        """Inverse of :meth:`encode_g2` (validating)."""

    @property
    @abstractmethod
    def g1_element_size(self) -> int:
        """Byte length of one encoded G1 element."""

    @property
    @abstractmethod
    def g2_element_size(self) -> int:
        """Byte length of one encoded G2 element."""

    def g1_power(self, exponent: int):
        return self.g1_powers([exponent])[0]

    def g2_power(self, exponent: int):
        return self.g2_powers([exponent])[0]

    def pair(self, g1_element, g2_element) -> GTElement:
        return self.pair_vectors([g1_element], [g2_element])

    # -- prepared rows (ciphertext-side Miller-loop precomputation) ------
    @abstractmethod
    def prepare_row(self, g2_vector: Sequence) -> PreparedRow:
        """Precompute the pairing trajectory of one stored row.

        The precomputation depends only on the G2 vector (the row
        ciphertext), never on a token, so it is built once per stored
        row and replayed against every future query.
        """

    @property
    @abstractmethod
    def prepared_element_size(self) -> int:
        """Byte length of one encoded prepared element."""

    @abstractmethod
    def encode_prepared(self, element) -> bytes:
        """Serialize one prepared element (for the persistence layer)."""

    @abstractmethod
    def decode_prepared(self, data: bytes):
        """Inverse of :meth:`encode_prepared` (validating)."""

    def pair_vectors_batch(
        self, g1_vector: Sequence, g2_vectors: Sequence[Sequence]
    ) -> list[GTElement]:
        """One multi-pairing of ``g1_vector`` against *each* G2 vector.

        This is the batched SJ.Dec entry point: the fixed vector is the
        query token, each G2 vector is one row ciphertext, and every row
        costs d Miller loops plus a *single* shared final exponentiation
        (versus d full pairings on the naive per-pair path).  The default
        loops over :meth:`pair_vectors`, so any backend works; subclasses
        may vectorize.
        """
        return [self.pair_vectors(g1_vector, g2) for g2 in g2_vectors]


class _FixedBaseTable:
    """Windowed precomputation of a fixed base point.

    For 4-bit windows the table holds every multiple ``d * (base << 4i)``
    with ``1 <= d < 16``, so a scalar multiplication is one point
    addition per *non-zero window digit* (~60 on average for 254-bit
    scalars) with no doublings at all — versus a doubling plus half an
    addition per bit for plain double-and-add.  Built once per base per
    process; pooled workers rebuild lazily rather than shipping it.
    """

    WINDOW = 4

    def __init__(self, base, order: int):
        self._infinity = type(base).infinity()
        self._order = order
        digits = (1 << self.WINDOW) - 1
        self._table = []
        current = base
        for _ in range((order.bit_length() + self.WINDOW - 1) // self.WINDOW):
            row = [self._infinity, current]
            accumulator = current
            for _ in range(digits - 1):
                accumulator = accumulator + current
                row.append(accumulator)
            self._table.append(row)
            # accumulator == digits * current, so one more addition
            # shifts the window base: (digits + 1) * current.
            current = accumulator + current

    def power(self, exponent: int):
        exponent %= self._order
        result = self._infinity
        index = 0
        mask = (1 << self.WINDOW) - 1
        while exponent:
            digit = exponent & mask
            if digit:
                result = result + self._table[index][digit]
            exponent >>= self.WINDOW
            index += 1
        return result


class BN254Backend(BilinearBackend):
    """The real pairing backend (BN254 optimal ate).

    ``use_fast_pairing`` selects the optimized Miller loop / final
    exponentiation (:mod:`repro.crypto.pairing_fast`); the reference
    implementation stays available for the correctness ablation.
    """

    name = "bn254"

    def __init__(self, use_fast_pairing: bool = True):
        super().__init__()
        self._g1_table: _FixedBaseTable | None = None
        self._g2_table: _FixedBaseTable | None = None
        self._gt_base: Fp12 | None = None
        self._build_lock = threading.Lock()
        self.use_fast_pairing = use_fast_pairing

    def __getstate__(self):
        # The fixed-base tables and the GT base are pure caches and
        # dominate the pickled size (hundreds of curve points).  The
        # execution service ships the backend to each pooled worker once
        # at spawn; dropping the caches keeps that message small and
        # workers rebuild lazily.  The build lock is unpicklable anyway;
        # __setstate__ gives the clone a fresh one.
        state = self.__dict__.copy()
        state["_g1_table"] = None
        state["_g2_table"] = None
        state["_gt_base"] = None
        del state["_build_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._build_lock = threading.Lock()

    @property
    def order(self) -> int:
        return CURVE_ORDER

    def _g1(self) -> _FixedBaseTable:
        # Double-checked build-once: concurrent consumer threads (the
        # admission scheduler runs several) must not each pay the
        # table construction, nor observe a half-built one.
        table = self._g1_table
        if table is None:
            with self._build_lock:
                table = self._g1_table
                if table is None:
                    table = _FixedBaseTable(G1Point.generator(), CURVE_ORDER)
                    self._g1_table = table
        return table

    def _g2(self) -> _FixedBaseTable:
        table = self._g2_table
        if table is None:
            with self._build_lock:
                table = self._g2_table
                if table is None:
                    table = _FixedBaseTable(G2Point.generator(), CURVE_ORDER)
                    self._g2_table = table
        return table

    def _gt_generator(self) -> Fp12:
        """The cached base ``e(g1, g2)`` — one pairing per backend
        lifetime, not one per :meth:`gt_generator_power` call."""
        base = self._gt_base
        if base is None:
            with self._build_lock:
                base = self._gt_base
                if base is None:
                    self.ops.miller_loops += 1
                    self.ops.final_exponentiations += 1
                    pair = pairing_fast if self.use_fast_pairing else pairing
                    base = pair(G1Point.generator(), G2Point.generator())
                    self._gt_base = base
        return base

    def g1_powers(self, exponents: Sequence[int]) -> list[G1Point]:
        table = self._g1()
        return [table.power(e) for e in exponents]

    def g2_powers(self, exponents: Sequence[int]) -> list[G2Point]:
        table = self._g2()
        return [table.power(e) for e in exponents]

    def pair_vectors(
        self, g1_vector: Sequence[G1Point], g2_vector: Sequence
    ) -> BN254GT:
        """Multi-pairing over raw G2 points, prepared elements, or a mix.

        Prepared elements skip the twist arithmetic via replay (and all
        prepared pairs of one call share a simultaneous Miller loop);
        raw leftovers run the ordinary loop.  The accumulated product is
        the same field element either way, so handles stay
        byte-identical across paths.
        """
        if len(g1_vector) != len(g2_vector):
            raise CryptoError("pairing vectors must have the same length")
        raw: list[tuple] = []
        prepared: list[tuple] = []
        for p, q in zip(g1_vector, g2_vector):
            if p.is_infinity() or q.is_infinity():
                continue
            (prepared if isinstance(q, G2Prepared) else raw).append((p, q))
        self.ops.miller_loops += len(raw)
        self.ops.prepared_miller_loops += len(prepared)
        if prepared:
            self.ops.final_exponentiations += 1
            accumulator = multi_miller_prepared(prepared)
            for p, q in raw:
                accumulator = accumulator * miller_loop_fast(q, p)
            return BN254GT(final_exponentiation_fast(accumulator))
        if raw:
            self.ops.final_exponentiations += 1
        multi = multi_pairing_fast if self.use_fast_pairing else multi_pairing
        return BN254GT(multi(raw))

    def prepare_row(self, g2_vector: Sequence) -> PreparedRow:
        elements = tuple(g2_vector)
        self.ops.preparations += sum(
            1 for q in elements if not q.is_infinity()
        )
        return PreparedRow(
            elements,
            tuple(G2Prepared.from_point(q) for q in elements),
        )

    @property
    def prepared_element_size(self) -> int:
        return PREPARED_ELEMENT_SIZE

    def encode_prepared(self, element: G2Prepared) -> bytes:
        return element.to_bytes()

    def decode_prepared(self, data: bytes) -> G2Prepared:
        return G2Prepared.from_bytes(data)

    def gt_identity(self) -> BN254GT:
        return BN254GT(Fp12.one())

    def gt_mul(self, a: BN254GT, b: BN254GT) -> BN254GT:
        return BN254GT(a.value * b.value)

    def gt_generator_power(self, exponent: int) -> BN254GT:
        base = self._gt_generator()
        self.ops.gt_exponentiations += 1
        return BN254GT(base.pow(exponent % CURVE_ORDER))

    def gt_pow(self, element: BN254GT, exponent: int) -> BN254GT:
        self.ops.gt_exponentiations += 1
        return BN254GT(element.value.pow(exponent % CURVE_ORDER))

    def encode_g1(self, element: G1Point) -> bytes:
        return element.to_bytes()

    def decode_g1(self, data: bytes) -> G1Point:
        return G1Point.from_bytes(data)

    def encode_g2(self, element: G2Point) -> bytes:
        return element.to_bytes()

    def decode_g2(self, data: bytes) -> G2Point:
        return G2Point.from_bytes(data)

    @property
    def g1_element_size(self) -> int:
        return 64

    @property
    def g2_element_size(self) -> int:
        return 128


class FastBackend(BilinearBackend):
    """Insecure-fast backend: group elements are their discrete logs.

    ``g^e`` is stored as ``e mod q`` and the pairing is multiplication
    mod q, so equality of handles matches the real backend exactly while
    every operation is a handful of modular multiplications.
    """

    name = "fast"

    def __init__(self, modulus: int = CURVE_ORDER):
        super().__init__()
        if not is_probable_prime(modulus):
            raise CryptoError("FastBackend modulus must be prime")
        self._modulus = modulus
        # Mirrors BN254's lazily cached e(g1, g2): the first
        # gt_generator_power pays (and counts) one pairing, the rest
        # only a GT exponentiation — same counts for the same calls.
        self._gt_base_counted = False

    @property
    def order(self) -> int:
        return self._modulus

    def g1_powers(self, exponents: Sequence[int]) -> list[int]:
        q = self._modulus
        return [e % q for e in exponents]

    def g2_powers(self, exponents: Sequence[int]) -> list[int]:
        q = self._modulus
        return [e % q for e in exponents]

    def pair_vectors(
        self, g1_vector: Sequence[int], g2_vector: Sequence
    ) -> FastGT:
        if len(g1_vector) != len(g2_vector):
            raise CryptoError("pairing vectors must have the same length")
        # Model the op counts of the equivalent BN254 call: d Miller
        # loops sharing one final exponentiation (a 0 exponent stands
        # for the identity, which the real pairing would skip), with
        # prepared elements counted on the replay counter like BN254.
        q = self._modulus
        total = 0
        raw = prepared = 0
        for a, b in zip(g1_vector, g2_vector):
            if isinstance(b, FastPrepared):
                value = b.value
                if a and value:
                    prepared += 1
            else:
                value = b
                if a and value:
                    raw += 1
            total += a * value
        self.ops.miller_loops += raw
        self.ops.prepared_miller_loops += prepared
        if raw or prepared:
            self.ops.final_exponentiations += 1
        return FastGT(total % q, q)

    def pair_vectors_batch(
        self, g1_vector: Sequence[int], g2_vectors: Sequence[Sequence]
    ) -> list[FastGT]:
        return [
            self.pair_vectors(g1_vector, g2_vector)
            for g2_vector in g2_vectors
        ]

    def prepare_row(self, g2_vector: Sequence) -> PreparedRow:
        elements = tuple(g2_vector)
        self.ops.preparations += sum(1 for value in elements if value)
        return PreparedRow(
            elements, tuple(FastPrepared(value) for value in elements)
        )

    @property
    def prepared_element_size(self) -> int:
        return self._element_size

    def encode_prepared(self, element: FastPrepared) -> bytes:
        return self.encode_g1(element.value)

    def decode_prepared(self, data: bytes) -> FastPrepared:
        return FastPrepared(self.decode_g1(data))

    def gt_identity(self) -> FastGT:
        return FastGT(0, self._modulus)

    def gt_mul(self, a: FastGT, b: FastGT) -> FastGT:
        return FastGT(a.value + b.value, self._modulus)

    def gt_generator_power(self, exponent: int) -> FastGT:
        if not self._gt_base_counted:
            self._gt_base_counted = True
            self.ops.miller_loops += 1
            self.ops.final_exponentiations += 1
        self.ops.gt_exponentiations += 1
        return FastGT(exponent, self._modulus)

    def gt_pow(self, element: FastGT, exponent: int) -> FastGT:
        self.ops.gt_exponentiations += 1
        return FastGT(element.value * (exponent % self._modulus), self._modulus)

    @property
    def _element_size(self) -> int:
        return (self._modulus.bit_length() + 7) // 8

    def encode_g1(self, element: int) -> bytes:
        return (element % self._modulus).to_bytes(self._element_size, "big")

    def decode_g1(self, data: bytes) -> int:
        if len(data) != self._element_size:
            raise CryptoError(
                f"fast-backend element needs {self._element_size} bytes"
            )
        return int.from_bytes(data, "big") % self._modulus

    def encode_g2(self, element: int) -> bytes:
        return self.encode_g1(element)

    def decode_g2(self, data: bytes) -> int:
        return self.decode_g1(data)

    @property
    def g1_element_size(self) -> int:
        return self._element_size

    @property
    def g2_element_size(self) -> int:
        return self._element_size


_BACKENDS: dict[str, BilinearBackend] = {}


def get_backend(name: str = "fast") -> BilinearBackend:
    """Return a (cached) backend by name: ``"fast"`` or ``"bn254"``."""
    if name not in ("fast", "bn254"):
        raise CryptoError(f"unknown backend {name!r}; use 'fast' or 'bn254'")
    if name not in _BACKENDS:
        _BACKENDS[name] = FastBackend() if name == "fast" else BN254Backend()
    return _BACKENDS[name]


def random_rng(seed: int | None = None) -> random.Random:
    """A seeded RNG; with ``seed=None`` uses OS entropy for the seed."""
    if seed is None:
        seed = random.SystemRandom().randrange(2**63)
    return random.Random(seed)
