"""Bilinear-group backends.

The Secure Join scheme only needs four group operations:

1. raise the G1 generator to vectors of exponents (tokens),
2. raise the G2 generator to vectors of exponents (ciphertexts),
3. pair two vectors (a product of pairings / one multi-pairing), and
4. compare / hash the resulting GT elements.

:class:`BN254Backend` implements these on the real BN254 pairing built in
this package.  :class:`FastBackend` implements them in the exponent group
(elements are represented by their discrete logarithms), which is
*insecure by construction* — an adversary holding such values can read
the exponents — but is functionally identical: two GT handles are equal
exactly when the corresponding BN254 elements would be.  The fast backend
exists so the paper's table-scale experiments (hundreds of thousands of
rows) run in reasonable time in pure Python; see DESIGN.md §4.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass

from repro.crypto.curve import G1Point, G2Point
from repro.crypto.field import Fp12
from repro.crypto.numtheory import is_probable_prime
from repro.crypto.pairing import multi_pairing, pairing
from repro.crypto.pairing_fast import multi_pairing_fast, pairing_fast
from repro.crypto.params import CURVE_ORDER
from repro.errors import CryptoError


class GTElement(ABC):
    """An element of the target group, usable as a hash-join key."""

    @abstractmethod
    def to_bytes(self) -> bytes:
        """Canonical serialization (the hash-join bucket key)."""

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GTElement):
            return NotImplemented
        return self.to_bytes() == other.to_bytes()

    def __hash__(self) -> int:
        return hash(self.to_bytes())


class BN254GT(GTElement):
    """A GT element backed by an Fp12 value."""

    __slots__ = ("value", "_bytes")

    def __init__(self, value: Fp12):
        self.value = value
        self._bytes: bytes | None = None

    def to_bytes(self) -> bytes:
        if self._bytes is None:
            self._bytes = self.value.to_bytes()
        return self._bytes

    def __repr__(self) -> str:
        return f"BN254GT({self.to_bytes()[:8].hex()}...)"


class FastGT(GTElement):
    """A GT element represented by its discrete logarithm."""

    __slots__ = ("value", "modulus")

    def __init__(self, value: int, modulus: int):
        self.value = value % modulus
        self.modulus = modulus

    def to_bytes(self) -> bytes:
        return self.value.to_bytes((self.modulus.bit_length() + 7) // 8, "big")

    def __repr__(self) -> str:
        return f"FastGT({self.value})"


@dataclass
class PairingOpCounter:
    """Pairing work performed through a backend's decryption entry points.

    ``miller_loops`` and ``final_exponentiations`` count what the BN254
    pairing actually executes for the observed call pattern; the fast
    backend reports the *same* counts for the same calls (it is the
    documented cost-model stand-in for BN254, see DESIGN.md §4), so
    engine ablations measured on either backend agree.
    """

    miller_loops: int = 0
    final_exponentiations: int = 0

    def snapshot(self) -> tuple[int, int]:
        return (self.miller_loops, self.final_exponentiations)

    def since(self, snapshot: tuple[int, int]) -> "PairingOpCounter":
        """The operations performed after ``snapshot`` was taken."""
        return PairingOpCounter(
            miller_loops=self.miller_loops - snapshot[0],
            final_exponentiations=self.final_exponentiations - snapshot[1],
        )

    def add(self, other: "PairingOpCounter") -> None:
        self.miller_loops += other.miller_loops
        self.final_exponentiations += other.final_exponentiations

    def reset(self) -> None:
        self.miller_loops = 0
        self.final_exponentiations = 0


class BilinearBackend(ABC):
    """The group-operation interface the Secure Join scheme is generic over."""

    name: str

    def __init__(self):
        self.ops = PairingOpCounter()

    @property
    @abstractmethod
    def order(self) -> int:
        """The prime order q of G1, G2 and GT."""

    @abstractmethod
    def g1_powers(self, exponents: Sequence[int]) -> list:
        """``[g1^e for e in exponents]``."""

    @abstractmethod
    def g2_powers(self, exponents: Sequence[int]) -> list:
        """``[g2^e for e in exponents]``."""

    @abstractmethod
    def pair_vectors(self, g1_vector: Sequence, g2_vector: Sequence) -> GTElement:
        """``prod_i e(g1_vector[i], g2_vector[i])`` (a multi-pairing)."""

    @abstractmethod
    def gt_identity(self) -> GTElement:
        """The identity of GT (the empty product of pairings)."""

    @abstractmethod
    def gt_mul(self, a: GTElement, b: GTElement) -> GTElement:
        """The GT group operation (product of two pairing outputs)."""

    @abstractmethod
    def gt_generator_power(self, exponent: int) -> GTElement:
        """``e(g1, g2)^exponent`` — used by tests and the simulator."""

    @abstractmethod
    def gt_pow(self, element: GTElement, exponent: int) -> GTElement:
        """Raise a GT element to a power (used by IPE discrete-log search)."""

    @abstractmethod
    def encode_g1(self, element) -> bytes:
        """Serialize one G1 element (for the persistence layer)."""

    @abstractmethod
    def decode_g1(self, data: bytes):
        """Inverse of :meth:`encode_g1` (validating)."""

    @abstractmethod
    def encode_g2(self, element) -> bytes:
        """Serialize one G2 element."""

    @abstractmethod
    def decode_g2(self, data: bytes):
        """Inverse of :meth:`encode_g2` (validating)."""

    @property
    @abstractmethod
    def g1_element_size(self) -> int:
        """Byte length of one encoded G1 element."""

    @property
    @abstractmethod
    def g2_element_size(self) -> int:
        """Byte length of one encoded G2 element."""

    def g1_power(self, exponent: int):
        return self.g1_powers([exponent])[0]

    def g2_power(self, exponent: int):
        return self.g2_powers([exponent])[0]

    def pair(self, g1_element, g2_element) -> GTElement:
        return self.pair_vectors([g1_element], [g2_element])

    def pair_vectors_batch(
        self, g1_vector: Sequence, g2_vectors: Sequence[Sequence]
    ) -> list[GTElement]:
        """One multi-pairing of ``g1_vector`` against *each* G2 vector.

        This is the batched SJ.Dec entry point: the fixed vector is the
        query token, each G2 vector is one row ciphertext, and every row
        costs d Miller loops plus a *single* shared final exponentiation
        (versus d full pairings on the naive per-pair path).  The default
        loops over :meth:`pair_vectors`, so any backend works; subclasses
        may vectorize.
        """
        return [self.pair_vectors(g1_vector, g2) for g2 in g2_vectors]


class _FixedBaseTable:
    """Precomputed powers-of-two of a fixed base point for fast fixed-base
    scalar multiplication (halves the work of double-and-add)."""

    def __init__(self, base, order: int):
        self._table = []
        current = base
        for _ in range(order.bit_length()):
            self._table.append(current)
            current = current.double()
        self._infinity = type(base).infinity()
        self._order = order

    def power(self, exponent: int):
        exponent %= self._order
        result = self._infinity
        index = 0
        while exponent:
            if exponent & 1:
                result = result + self._table[index]
            exponent >>= 1
            index += 1
        return result


class BN254Backend(BilinearBackend):
    """The real pairing backend (BN254 optimal ate).

    ``use_fast_pairing`` selects the optimized Miller loop / final
    exponentiation (:mod:`repro.crypto.pairing_fast`); the reference
    implementation stays available for the correctness ablation.
    """

    name = "bn254"

    def __init__(self, use_fast_pairing: bool = True):
        super().__init__()
        self._g1_table: _FixedBaseTable | None = None
        self._g2_table: _FixedBaseTable | None = None
        self.use_fast_pairing = use_fast_pairing

    def __getstate__(self):
        # The fixed-base tables are pure caches and dominate the pickled
        # size (hundreds of curve points).  The execution service ships
        # the backend to each pooled worker once at spawn; dropping the
        # tables keeps that message small and workers rebuild lazily.
        state = self.__dict__.copy()
        state["_g1_table"] = None
        state["_g2_table"] = None
        return state

    @property
    def order(self) -> int:
        return CURVE_ORDER

    def _g1(self) -> _FixedBaseTable:
        if self._g1_table is None:
            self._g1_table = _FixedBaseTable(G1Point.generator(), CURVE_ORDER)
        return self._g1_table

    def _g2(self) -> _FixedBaseTable:
        if self._g2_table is None:
            self._g2_table = _FixedBaseTable(G2Point.generator(), CURVE_ORDER)
        return self._g2_table

    def g1_powers(self, exponents: Sequence[int]) -> list[G1Point]:
        table = self._g1()
        return [table.power(e) for e in exponents]

    def g2_powers(self, exponents: Sequence[int]) -> list[G2Point]:
        table = self._g2()
        return [table.power(e) for e in exponents]

    def pair_vectors(
        self, g1_vector: Sequence[G1Point], g2_vector: Sequence[G2Point]
    ) -> BN254GT:
        if len(g1_vector) != len(g2_vector):
            raise CryptoError("pairing vectors must have the same length")
        pairs = [
            (p, q)
            for p, q in zip(g1_vector, g2_vector)
            if not (p.is_infinity() or q.is_infinity())
        ]
        self.ops.miller_loops += len(pairs)
        if pairs:
            self.ops.final_exponentiations += 1
        multi = multi_pairing_fast if self.use_fast_pairing else multi_pairing
        return BN254GT(multi(pairs))

    def gt_identity(self) -> BN254GT:
        return BN254GT(Fp12.one())

    def gt_mul(self, a: BN254GT, b: BN254GT) -> BN254GT:
        return BN254GT(a.value * b.value)

    def gt_generator_power(self, exponent: int) -> BN254GT:
        pair = pairing_fast if self.use_fast_pairing else pairing
        base = pair(G1Point.generator(), G2Point.generator())
        return BN254GT(base.pow(exponent % CURVE_ORDER))

    def gt_pow(self, element: BN254GT, exponent: int) -> BN254GT:
        return BN254GT(element.value.pow(exponent % CURVE_ORDER))

    def encode_g1(self, element: G1Point) -> bytes:
        return element.to_bytes()

    def decode_g1(self, data: bytes) -> G1Point:
        return G1Point.from_bytes(data)

    def encode_g2(self, element: G2Point) -> bytes:
        return element.to_bytes()

    def decode_g2(self, data: bytes) -> G2Point:
        return G2Point.from_bytes(data)

    @property
    def g1_element_size(self) -> int:
        return 64

    @property
    def g2_element_size(self) -> int:
        return 128


class FastBackend(BilinearBackend):
    """Insecure-fast backend: group elements are their discrete logs.

    ``g^e`` is stored as ``e mod q`` and the pairing is multiplication
    mod q, so equality of handles matches the real backend exactly while
    every operation is a handful of modular multiplications.
    """

    name = "fast"

    def __init__(self, modulus: int = CURVE_ORDER):
        super().__init__()
        if not is_probable_prime(modulus):
            raise CryptoError("FastBackend modulus must be prime")
        self._modulus = modulus

    @property
    def order(self) -> int:
        return self._modulus

    def g1_powers(self, exponents: Sequence[int]) -> list[int]:
        q = self._modulus
        return [e % q for e in exponents]

    def g2_powers(self, exponents: Sequence[int]) -> list[int]:
        q = self._modulus
        return [e % q for e in exponents]

    def pair_vectors(
        self, g1_vector: Sequence[int], g2_vector: Sequence[int]
    ) -> FastGT:
        if len(g1_vector) != len(g2_vector):
            raise CryptoError("pairing vectors must have the same length")
        # Model the op counts of the equivalent BN254 call: d Miller
        # loops sharing one final exponentiation (a 0 exponent stands
        # for the identity, which the real pairing would skip).
        nontrivial = sum(1 for a, b in zip(g1_vector, g2_vector) if a and b)
        self.ops.miller_loops += nontrivial
        if nontrivial:
            self.ops.final_exponentiations += 1
        q = self._modulus
        total = 0
        for a, b in zip(g1_vector, g2_vector):
            total += a * b
        return FastGT(total % q, q)

    def pair_vectors_batch(
        self, g1_vector: Sequence[int], g2_vectors: Sequence[Sequence[int]]
    ) -> list[FastGT]:
        q = self._modulus
        handles = []
        for g2_vector in g2_vectors:
            if len(g1_vector) != len(g2_vector):
                raise CryptoError("pairing vectors must have the same length")
            nontrivial = sum(
                1 for a, b in zip(g1_vector, g2_vector) if a and b
            )
            self.ops.miller_loops += nontrivial
            if nontrivial:
                self.ops.final_exponentiations += 1
            handles.append(
                FastGT(sum(a * b for a, b in zip(g1_vector, g2_vector)) % q, q)
            )
        return handles

    def gt_identity(self) -> FastGT:
        return FastGT(0, self._modulus)

    def gt_mul(self, a: FastGT, b: FastGT) -> FastGT:
        return FastGT(a.value + b.value, self._modulus)

    def gt_generator_power(self, exponent: int) -> FastGT:
        return FastGT(exponent, self._modulus)

    def gt_pow(self, element: FastGT, exponent: int) -> FastGT:
        return FastGT(element.value * (exponent % self._modulus), self._modulus)

    @property
    def _element_size(self) -> int:
        return (self._modulus.bit_length() + 7) // 8

    def encode_g1(self, element: int) -> bytes:
        return (element % self._modulus).to_bytes(self._element_size, "big")

    def decode_g1(self, data: bytes) -> int:
        if len(data) != self._element_size:
            raise CryptoError(
                f"fast-backend element needs {self._element_size} bytes"
            )
        return int.from_bytes(data, "big") % self._modulus

    def encode_g2(self, element: int) -> bytes:
        return self.encode_g1(element)

    def decode_g2(self, data: bytes) -> int:
        return self.decode_g1(data)

    @property
    def g1_element_size(self) -> int:
        return self._element_size

    @property
    def g2_element_size(self) -> int:
        return self._element_size


_BACKENDS: dict[str, BilinearBackend] = {}


def get_backend(name: str = "fast") -> BilinearBackend:
    """Return a (cached) backend by name: ``"fast"`` or ``"bn254"``."""
    if name not in ("fast", "bn254"):
        raise CryptoError(f"unknown backend {name!r}; use 'fast' or 'bn254'")
    if name not in _BACKENDS:
        _BACKENDS[name] = FastBackend() if name == "fast" else BN254Backend()
    return _BACKENDS[name]


def random_rng(seed: int | None = None) -> random.Random:
    """A seeded RNG; with ``seed=None`` uses OS entropy for the seed."""
    if seed is None:
        seed = random.SystemRandom().randrange(2**63)
    return random.Random(seed)
