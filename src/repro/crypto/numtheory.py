"""Number-theoretic primitives used throughout the crypto substrate.

All functions operate on plain Python integers so they work at any size,
including the 254-bit BN254 field and group orders.
"""

from __future__ import annotations

import random

from repro.errors import FieldError

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113,
)


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclid: return ``(g, x, y)`` with ``a*x + b*y == g``."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_s, s = s, old_s - quotient * s
        old_t, t = t, old_t - quotient * t
    return old_r, old_s, old_t


def mod_inverse(a: int, modulus: int) -> int:
    """Return the inverse of ``a`` modulo ``modulus``.

    Raises :class:`FieldError` if ``a`` is not invertible.
    """
    a %= modulus
    if a == 0:
        raise FieldError("0 has no modular inverse")
    g, x, _ = egcd(a, modulus)
    if g != 1:
        raise FieldError(f"{a} is not invertible modulo {modulus}")
    return x % modulus


def naf_digits(k: int) -> list[int]:
    """Non-adjacent form of ``k >= 0``: digits in ``{-1, 0, 1}``, LSB first.

    ``k == sum(d * 2**i for i, d in enumerate(digits))`` and no two
    consecutive digits are nonzero, so the expected nonzero-digit density
    drops from 1/2 (binary) to 1/3 — fewer group additions in a
    double-and-add ladder, at the price of needing cheap negation.
    """
    if k < 0:
        raise FieldError("NAF recoding expects a non-negative scalar")
    digits = []
    while k:
        if k & 1:
            digit = 2 - (k & 3)
            k -= digit
        else:
            digit = 0
        digits.append(digit)
        k >>= 1
    return digits


def is_probable_prime(n: int, rounds: int = 40) -> bool:
    """Miller-Rabin primality test with ``rounds`` random bases.

    Deterministic-looking in practice: the failure probability is at most
    ``4**-rounds`` per call.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # Write n - 1 = d * 2**r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    rng = random.Random(0xC0FFEE ^ n)
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def legendre_symbol(a: int, p: int) -> int:
    """Return the Legendre symbol ``(a|p)`` for odd prime ``p``."""
    a %= p
    if a == 0:
        return 0
    result = pow(a, (p - 1) // 2, p)
    return -1 if result == p - 1 else result


def tonelli_shanks(a: int, p: int) -> int:
    """Return a square root of ``a`` modulo the odd prime ``p``.

    Raises :class:`FieldError` if ``a`` is a quadratic non-residue.
    """
    a %= p
    if a == 0:
        return 0
    if legendre_symbol(a, p) != 1:
        raise FieldError(f"{a} is not a quadratic residue modulo {p}")
    if p % 4 == 3:
        return pow(a, (p + 1) // 4, p)
    # Factor p - 1 = q * 2**s with q odd.
    q = p - 1
    s = 0
    while q % 2 == 0:
        q //= 2
        s += 1
    # Find a non-residue z.
    z = 2
    while legendre_symbol(z, p) != -1:
        z += 1
    m = s
    c = pow(z, q, p)
    t = pow(a, q, p)
    r = pow(a, (q + 1) // 2, p)
    while t != 1:
        # Find least i with t^(2^i) == 1.
        i = 0
        t2i = t
        while t2i != 1:
            t2i = (t2i * t2i) % p
            i += 1
            if i == m:
                raise FieldError("Tonelli-Shanks failed (input not a residue)")
        b = pow(c, 1 << (m - i - 1), p)
        m = i
        c = (b * b) % p
        t = (t * c) % p
        r = (r * b) % p
    return r


def crt_pair(r1: int, m1: int, r2: int, m2: int) -> tuple[int, int]:
    """Combine ``x ≡ r1 (mod m1)`` and ``x ≡ r2 (mod m2)`` for coprime moduli.

    Returns ``(x, m1*m2)``.
    """
    g, p, _ = egcd(m1, m2)
    if g != 1:
        raise FieldError("CRT moduli must be coprime")
    lcm = m1 * m2
    x = (r1 + (r2 - r1) * p % m2 * m1) % lcm
    return x, lcm


def random_zq(modulus: int, rng: random.Random) -> int:
    """Sample a uniform element of ``Z_modulus`` from ``rng``."""
    return rng.randrange(modulus)


def random_zq_nonzero(modulus: int, rng: random.Random) -> int:
    """Sample a uniform element of ``Z_modulus \\ {0}`` from ``rng``."""
    return rng.randrange(1, modulus)
