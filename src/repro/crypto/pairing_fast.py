"""Optimized optimal-ate pairing: the production code path.

Three standard optimizations over :mod:`repro.crypto.pairing` (the
reference implementation both are tested against):

1. **Miller loop on the twist.** Point arithmetic stays in affine Fp2
   coordinates on the twist curve; only the *line values* enter Fp12,
   as sparse elements ``a + b*w + c*(v*w)`` — one cheap Fp2 inversion
   per step instead of a full Fp12 inversion.
2. **Sparse line multiplication.** ``Fp12.mul_by_line`` multiplies by
   the 3-of-12 sparse line value at roughly half the cost of a generic
   Fp12 multiplication.
3. **Addition-chain hard part.** The final exponentiation's hard part
   ``(p^4 - p^2 + 1)/r`` uses the Scott et al. addition chain (three
   63-bit exponentiations by the BN parameter x plus Frobenius maps)
   instead of a 1020-bit square-and-multiply.

The derivation of the line coefficients for the D-twist untwisting
``psi(x', y') = (x' w^2, y' w^3)``:

- slope through untwisted points is ``lambda' * w`` with ``lambda'``
  the Fp2 slope on the twist, so the line through ``psi(T)`` evaluated
  at ``P = (xP, yP)`` is
  ``yP  -  (lambda' xP) * w  +  (lambda' xT - yT) * (v w)``;
- the vertical line is ``xP - xT * v``.

**Prepared points.**  Every line above is determined by the G2
trajectory alone: the slope and the constant ``c = lambda' xT - yT``
never touch the G1 argument, which only enters through the cheap sparse
multiplication ``f.mul_by_line(yP, -(slope * xP), c)``.
:class:`G2Prepared` precomputes the ``(slope, c)`` sequence of one G2
point once (all the twist point arithmetic and Fp2 inversions), and
:func:`miller_loop_prepared` replays it against any G1 point.
:func:`multi_pairing_prepared` goes further: a *simultaneous* Miller
loop over all pairs sharing a single ``f.square()`` per iteration — the
accumulator invariant ``F = prod_i f_i`` is preserved because
``(prod f_i)^2 * prod l_i = prod (f_i^2 l_i)``, so the result is the
exact field element the independent loops would produce (and therefore
byte-identical after the final exponentiation).
"""

from __future__ import annotations

from repro.crypto.curve import G1Point, G2Point
from repro.crypto.field import XI, Fp2, Fp12
from repro.crypto.numtheory import naf_digits
from repro.crypto.params import ATE_LOOP_COUNT, BN_X, FIELD_MODULUS
from repro.errors import PairingError

P = FIELD_MODULUS

# Twisted Frobenius constants: pi(psi(x, y)) = psi(conj(x)*FROB_X, conj(y)*FROB_Y).
_FROB_X = XI.pow((P - 1) // 3)
_FROB_Y = XI.pow((P - 1) // 2)

_TwistPoint = tuple[Fp2, Fp2]


def _twist_frobenius(point: _TwistPoint) -> _TwistPoint:
    """The p-power Frobenius endomorphism expressed on twist coordinates."""
    x, y = point
    return x.conjugate() * _FROB_X, y.conjugate() * _FROB_Y


_LineCoeffs = tuple[Fp2, Fp2]


def _line_double(t: _TwistPoint) -> tuple[Fp2, Fp2, _TwistPoint]:
    """Line through ``T, T``: ``(slope, c, 2T)`` — all point math in Fp2."""
    x1, y1 = t
    slope = x1.square().mul_scalar(3) * (y1 + y1).inverse()
    x3 = slope.square() - x1 - x1
    y3 = slope * (x1 - x3) - y1
    return slope, slope * x1 - y1, (x3, y3)


def _line_add(
    t: _TwistPoint, q: _TwistPoint
) -> tuple[Fp2, Fp2, _TwistPoint]:
    """Line through ``T, Q``: ``(slope, c, T+Q)`` (handles tangency)."""
    x1, y1 = t
    x2, y2 = q
    if x1 == x2:
        if y1 == y2:
            return _line_double(t)
        # Vertical line: x_P - x_T * v;  T + (-T) = infinity should never
        # occur inside the optimal-ate loop for subgroup inputs.
        raise PairingError("degenerate addition in Miller loop")
    slope = (y2 - y1) * (x2 - x1).inverse()
    x3 = slope.square() - x1 - x2
    y3 = slope * (x1 - x3) - y1
    return slope, slope * x1 - y1, (x3, y3)


def _double_step(
    f: Fp12, t: _TwistPoint, xp: int, yp: int
) -> tuple[Fp12, _TwistPoint]:
    """``f *= line_{T,T}(P); T = 2T``."""
    slope, c, t = _line_double(t)
    return f.mul_by_line(yp, -(slope.mul_scalar(xp)), c), t


def _add_step(
    f: Fp12, t: _TwistPoint, q: _TwistPoint, xp: int, yp: int
) -> tuple[Fp12, _TwistPoint]:
    """``f *= line_{T,Q}(P); T = T + Q``."""
    slope, c, t = _line_add(t, q)
    return f.mul_by_line(yp, -(slope.mul_scalar(xp)), c), t


def _ate_coefficients(q_affine: _TwistPoint):
    """Yield the ``(slope, c)`` line coefficients of ``Q``'s optimal-ate
    trajectory, in exactly the order the Miller loop consumes them.

    This is the single source of truth for the trajectory: the raw loop,
    the preparation builder and the replay schedule all derive from it,
    so prepared replay is *structurally* guaranteed to consume the same
    coefficients in the same order as the raw loop computes them.
    """
    t = q_affine
    for i in range(ATE_LOOP_COUNT.bit_length() - 2, -1, -1):
        slope, c, t = _line_double(t)
        yield slope, c
        if (ATE_LOOP_COUNT >> i) & 1:
            slope, c, t = _line_add(t, q_affine)
            yield slope, c
    # Frobenius correction steps: T += pi(Q); T += -pi^2(Q).
    q1 = _twist_frobenius(q_affine)
    q2 = _twist_frobenius(q1)
    slope, c, t = _line_add(t, q1)
    yield slope, c
    slope, c, _ = _line_add(t, (q2[0], -q2[1]))
    yield slope, c


def _replay_schedule() -> tuple[bool, ...]:
    """Per-coefficient flags: True where the loop squares ``f`` first.

    Depends only on the (fixed) ate loop count, so one module-level
    schedule serves every prepared point.
    """
    flags = []
    for i in range(ATE_LOOP_COUNT.bit_length() - 2, -1, -1):
        flags.append(True)
        if (ATE_LOOP_COUNT >> i) & 1:
            flags.append(False)
    flags.extend((False, False))
    return tuple(flags)


_REPLAY_SQUARES = _replay_schedule()

#: Line coefficients per prepared G2 point (fixed by the ate loop count).
PREPARED_COEFF_COUNT = len(_REPLAY_SQUARES)

#: Serialized size of one :class:`G2Prepared`: an infinity flag byte
#: plus four 32-byte Fp coordinates per coefficient pair.
PREPARED_ELEMENT_SIZE = 1 + PREPARED_COEFF_COUNT * 128


class G2Prepared:
    """The Miller-loop precomputation of one G2 point.

    Holds the ``(slope, c)`` line coefficients of the point's full
    optimal-ate trajectory — everything about the loop that does *not*
    depend on the G1 argument.  Replaying them against a G1 point skips
    all twist point arithmetic and every Fp2 inversion of the raw loop.
    Instances are immutable and reusable across any number of pairings.
    """

    __slots__ = ("coeffs",)

    def __init__(self, coeffs: tuple[_LineCoeffs, ...]):
        if coeffs and len(coeffs) != PREPARED_COEFF_COUNT:
            raise PairingError(
                f"prepared point has {len(coeffs)} line coefficients; "
                f"the ate trajectory needs {PREPARED_COEFF_COUNT}"
            )
        self.coeffs = coeffs

    @classmethod
    def from_point(cls, q: G2Point) -> "G2Prepared":
        """Precompute ``Q``'s trajectory (the point at infinity prepares
        to an empty trajectory, matching the raw loop's early return)."""
        if q.is_infinity():
            return cls(())
        return cls(tuple(_ate_coefficients((q.x, q.y))))

    def is_infinity(self) -> bool:
        return not self.coeffs

    def to_bytes(self) -> bytes:
        """Fixed-size canonical serialization (store/transport)."""
        if self.is_infinity():
            return b"\x01" + b"\x00" * (PREPARED_ELEMENT_SIZE - 1)
        parts = [b"\x00"]
        for slope, c in self.coeffs:
            for value in (slope.c0, slope.c1, c.c0, c.c1):
                parts.append(value.to_bytes(32, "big"))
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "G2Prepared":
        """Inverse of :meth:`to_bytes` (validating)."""
        if len(data) != PREPARED_ELEMENT_SIZE:
            raise PairingError(
                f"prepared element needs {PREPARED_ELEMENT_SIZE} bytes, "
                f"got {len(data)}"
            )
        if data[0] == 1:
            return cls(())
        if data[0] != 0:
            raise PairingError(f"bad prepared-element flag {data[0]}")
        coeffs = []
        for offset in range(1, len(data), 128):
            values = [
                int.from_bytes(data[offset + i * 32:offset + (i + 1) * 32],
                               "big")
                for i in range(4)
            ]
            if any(v >= P for v in values):
                raise PairingError(
                    "prepared-element coordinate out of field range"
                )
            coeffs.append((Fp2(values[0], values[1]),
                           Fp2(values[2], values[3])))
        return cls(tuple(coeffs))


def miller_loop_fast(q: G2Point, p: G1Point) -> Fp12:
    """The optimal-ate Miller loop with twist-native arithmetic."""
    if q.is_infinity() or p.is_infinity():
        return Fp12.one()
    xp, yp = p.x, p.y
    f = Fp12.one()
    for squares, (slope, c) in zip(
        _REPLAY_SQUARES, _ate_coefficients((q.x, q.y))
    ):
        if squares:
            f = f.square()
        f = f.mul_by_line(yp, -(slope.mul_scalar(xp)), c)
    return f


def miller_loop_prepared(prepared: G2Prepared, p: G1Point) -> Fp12:
    """Replay a prepared trajectory against ``P`` — no point arithmetic,
    no inversions; exactly the value :func:`miller_loop_fast` computes."""
    if prepared.is_infinity() or p.is_infinity():
        return Fp12.one()
    xp, yp = p.x, p.y
    f = Fp12.one()
    for squares, (slope, c) in zip(_REPLAY_SQUARES, prepared.coeffs):
        if squares:
            f = f.square()
        f = f.mul_by_line(yp, -(slope.mul_scalar(xp)), c)
    return f


#: NAF recoding of the BN parameter x, MSB first.  Fixed for the curve,
#: so recode once at import instead of per exponentiation.
_BN_X_NAF = tuple(reversed(naf_digits(BN_X)))


def _pow_by_x(f: Fp12) -> Fp12:
    """``f^x`` for the 63-bit BN parameter x, via a signed-digit ladder.

    Only called on cyclotomic-subgroup elements (the easy part of the
    final exponentiation runs first), where ``conjugate`` computes the
    inverse — so the NAF's -1 digits cost a conjugation (sign flips)
    instead of a full Fp12 inversion, and the ladder does fewer
    multiplications than the plain binary ``pow``.
    """
    inverse = f.conjugate()
    result = Fp12.one()
    for digit in _BN_X_NAF:
        result = result.square()
        if digit == 1:
            result = result * f
        elif digit == -1:
            result = result * inverse
    return result


def final_exponentiation_fast(f: Fp12) -> Fp12:
    """``f^((p^12 - 1)/r)`` via the easy part + Scott et al. hard part."""
    if f.is_zero():
        raise PairingError("final exponentiation of zero (degenerate input)")
    # Easy part: f^((p^6 - 1)(p^2 + 1)).  The result is in the cyclotomic
    # subgroup, where conjugation computes inverses.
    t = f.conjugate() * f.inverse()
    t = t.frobenius().frobenius() * t

    # Hard part: t^((p^4 - p^2 + 1)/r), addition chain of Scott et al.
    fp = t.frobenius()
    fp2 = fp.frobenius()
    fp3 = fp2.frobenius()
    fu = _pow_by_x(t)
    fu2 = _pow_by_x(fu)
    fu3 = _pow_by_x(fu2)
    y3 = fu.frobenius()
    fu2p = fu2.frobenius()
    fu3p = fu3.frobenius()
    y2 = fu2.frobenius().frobenius()
    y0 = fp * fp2 * fp3
    y1 = t.conjugate()
    y5 = fu2.conjugate()
    y3 = y3.conjugate()
    y4 = (fu * fu2p).conjugate()
    y6 = (fu3 * fu3p).conjugate()
    t0 = y6.square() * y4 * y5
    t1 = y3 * y5 * t0
    t0 = t0 * y2
    t1 = (t1.square() * t0).square()
    t0 = t1 * y1
    t1 = t1 * y0
    t0 = t0.square()
    return t1 * t0


def pairing_fast(p: G1Point, q: G2Point) -> Fp12:
    """The optimized optimal-ate pairing; agrees with the reference exactly."""
    if p.is_infinity() or q.is_infinity():
        return Fp12.one()
    return final_exponentiation_fast(miller_loop_fast(q, p))


def multi_pairing_fast(pairs: list[tuple[G1Point, G2Point]]) -> Fp12:
    """``prod_i e(P_i, Q_i)`` with one shared final exponentiation."""
    accumulator = Fp12.one()
    nontrivial = False
    for p, q in pairs:
        if p.is_infinity() or q.is_infinity():
            continue
        accumulator = accumulator * miller_loop_fast(q, p)
        nontrivial = True
    if not nontrivial:
        return Fp12.one()
    return final_exponentiation_fast(accumulator)


def pairing_prepared(p: G1Point, prepared: G2Prepared) -> Fp12:
    """One full pairing from a prepared G2 point; agrees with
    :func:`pairing_fast` exactly."""
    if p.is_infinity() or prepared.is_infinity():
        return Fp12.one()
    return final_exponentiation_fast(miller_loop_prepared(prepared, p))


def multi_miller_prepared(
    pairs: list[tuple[G1Point, G2Prepared]]
) -> Fp12:
    """``prod_i miller(Q_i, P_i)`` as a *simultaneous* prepared loop.

    One shared ``f.square()`` per ate iteration covers every pair —
    ``(prod f_i)^2 = prod f_i^2`` keeps the accumulator equal to the
    product of the independent Miller values at every step, so the
    result is the identical field element at a fraction of the Fp12
    squaring work.  Infinity pairs must be filtered by the caller.
    """
    points = [(p.x, p.y, prepared.coeffs) for p, prepared in pairs]
    f = Fp12.one()
    for index, squares in enumerate(_REPLAY_SQUARES):
        if squares:
            f = f.square()
        for xp, yp, coeffs in points:
            slope, c = coeffs[index]
            f = f.mul_by_line(yp, -(slope.mul_scalar(xp)), c)
    return f


def multi_pairing_prepared(
    pairs: list[tuple[G1Point, G2Prepared]]
) -> Fp12:
    """``prod_i e(P_i, Q_i)`` over prepared points: simultaneous Miller
    loop plus one shared final exponentiation.  Byte-identical to
    :func:`multi_pairing_fast` (and the reference) on the same inputs."""
    live = [
        (p, prepared)
        for p, prepared in pairs
        if not (p.is_infinity() or prepared.is_infinity())
    ]
    if not live:
        return Fp12.one()
    return final_exponentiation_fast(multi_miller_prepared(live))
