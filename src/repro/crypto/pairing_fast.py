"""Optimized optimal-ate pairing: the production code path.

Three standard optimizations over :mod:`repro.crypto.pairing` (the
reference implementation both are tested against):

1. **Miller loop on the twist.** Point arithmetic stays in affine Fp2
   coordinates on the twist curve; only the *line values* enter Fp12,
   as sparse elements ``a + b*w + c*(v*w)`` — one cheap Fp2 inversion
   per step instead of a full Fp12 inversion.
2. **Sparse line multiplication.** ``Fp12.mul_by_line`` multiplies by
   the 3-of-12 sparse line value at roughly half the cost of a generic
   Fp12 multiplication.
3. **Addition-chain hard part.** The final exponentiation's hard part
   ``(p^4 - p^2 + 1)/r`` uses the Scott et al. addition chain (three
   63-bit exponentiations by the BN parameter x plus Frobenius maps)
   instead of a 1020-bit square-and-multiply.

The derivation of the line coefficients for the D-twist untwisting
``psi(x', y') = (x' w^2, y' w^3)``:

- slope through untwisted points is ``lambda' * w`` with ``lambda'``
  the Fp2 slope on the twist, so the line through ``psi(T)`` evaluated
  at ``P = (xP, yP)`` is
  ``yP  -  (lambda' xP) * w  +  (lambda' xT - yT) * (v w)``;
- the vertical line is ``xP - xT * v``.
"""

from __future__ import annotations

from repro.crypto.curve import G1Point, G2Point
from repro.crypto.field import XI, Fp2, Fp12
from repro.crypto.params import ATE_LOOP_COUNT, BN_X, FIELD_MODULUS
from repro.errors import PairingError

P = FIELD_MODULUS

# Twisted Frobenius constants: pi(psi(x, y)) = psi(conj(x)*FROB_X, conj(y)*FROB_Y).
_FROB_X = XI.pow((P - 1) // 3)
_FROB_Y = XI.pow((P - 1) // 2)

_TwistPoint = tuple[Fp2, Fp2]


def _twist_frobenius(point: _TwistPoint) -> _TwistPoint:
    """The p-power Frobenius endomorphism expressed on twist coordinates."""
    x, y = point
    return x.conjugate() * _FROB_X, y.conjugate() * _FROB_Y


def _double_step(
    f: Fp12, t: _TwistPoint, xp: int, yp: int
) -> tuple[Fp12, _TwistPoint]:
    """``f *= line_{T,T}(P); T = 2T`` — all point math in Fp2."""
    x1, y1 = t
    slope = x1.square().mul_scalar(3) * (y1 + y1).inverse()
    x3 = slope.square() - x1 - x1
    y3 = slope * (x1 - x3) - y1
    b = -(slope.mul_scalar(xp))
    c = slope * x1 - y1
    return f.mul_by_line(yp, b, c), (x3, y3)


def _add_step(
    f: Fp12, t: _TwistPoint, q: _TwistPoint, xp: int, yp: int
) -> tuple[Fp12, _TwistPoint]:
    """``f *= line_{T,Q}(P); T = T + Q`` (handles the vertical case)."""
    x1, y1 = t
    x2, y2 = q
    if x1 == x2:
        if y1 == y2:
            return _double_step(f, t, xp, yp)
        # Vertical line: x_P - x_T * v;  T + (-T) = infinity should never
        # occur inside the optimal-ate loop for subgroup inputs.
        raise PairingError("degenerate addition in Miller loop")
    slope = (y2 - y1) * (x2 - x1).inverse()
    x3 = slope.square() - x1 - x2
    y3 = slope * (x1 - x3) - y1
    b = -(slope.mul_scalar(xp))
    c = slope * x1 - y1
    return f.mul_by_line(yp, b, c), (x3, y3)


def miller_loop_fast(q: G2Point, p: G1Point) -> Fp12:
    """The optimal-ate Miller loop with twist-native arithmetic."""
    if q.is_infinity() or p.is_infinity():
        return Fp12.one()
    xp, yp = p.x, p.y
    q_affine: _TwistPoint = (q.x, q.y)
    t = q_affine
    f = Fp12.one()
    for i in range(ATE_LOOP_COUNT.bit_length() - 2, -1, -1):
        f = f.square()
        f, t = _double_step(f, t, xp, yp)
        if (ATE_LOOP_COUNT >> i) & 1:
            f, t = _add_step(f, t, q_affine, xp, yp)
    # Frobenius correction steps: T += pi(Q); T += -pi^2(Q).
    q1 = _twist_frobenius(q_affine)
    q2 = _twist_frobenius(q1)
    nq2 = (q2[0], -q2[1])
    f, t = _add_step(f, t, q1, xp, yp)
    f, _ = _add_step(f, t, nq2, xp, yp)
    return f


def _pow_by_x(f: Fp12) -> Fp12:
    """``f^x`` for the 63-bit BN parameter x."""
    return f.pow(BN_X)


def final_exponentiation_fast(f: Fp12) -> Fp12:
    """``f^((p^12 - 1)/r)`` via the easy part + Scott et al. hard part."""
    if f.is_zero():
        raise PairingError("final exponentiation of zero (degenerate input)")
    # Easy part: f^((p^6 - 1)(p^2 + 1)).  The result is in the cyclotomic
    # subgroup, where conjugation computes inverses.
    t = f.conjugate() * f.inverse()
    t = t.frobenius().frobenius() * t

    # Hard part: t^((p^4 - p^2 + 1)/r), addition chain of Scott et al.
    fp = t.frobenius()
    fp2 = fp.frobenius()
    fp3 = fp2.frobenius()
    fu = _pow_by_x(t)
    fu2 = _pow_by_x(fu)
    fu3 = _pow_by_x(fu2)
    y3 = fu.frobenius()
    fu2p = fu2.frobenius()
    fu3p = fu3.frobenius()
    y2 = fu2.frobenius().frobenius()
    y0 = fp * fp2 * fp3
    y1 = t.conjugate()
    y5 = fu2.conjugate()
    y3 = y3.conjugate()
    y4 = (fu * fu2p).conjugate()
    y6 = (fu3 * fu3p).conjugate()
    t0 = y6.square() * y4 * y5
    t1 = y3 * y5 * t0
    t0 = t0 * y2
    t1 = (t1.square() * t0).square()
    t0 = t1 * y1
    t1 = t1 * y0
    t0 = t0.square()
    return t1 * t0


def pairing_fast(p: G1Point, q: G2Point) -> Fp12:
    """The optimized optimal-ate pairing; agrees with the reference exactly."""
    if p.is_infinity() or q.is_infinity():
        return Fp12.one()
    return final_exponentiation_fast(miller_loop_fast(q, p))


def multi_pairing_fast(pairs: list[tuple[G1Point, G2Point]]) -> Fp12:
    """``prod_i e(P_i, Q_i)`` with one shared final exponentiation."""
    accumulator = Fp12.one()
    nontrivial = False
    for p, q in pairs:
        if p.is_infinity() or q.is_infinity():
            continue
        accumulator = accumulator * miller_loop_fast(q, p)
        nontrivial = True
    if not nontrivial:
        return Fp12.one()
    return final_exponentiation_fast(accumulator)
