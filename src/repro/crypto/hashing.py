"""Hashing, value embedding and keyed tags.

The paper assumes "an efficient and injective embedding from the attribute
values ... to Z_q which generates elements in Z_q uniformly at random"
realized with a cryptographic hash function.  :func:`hash_to_zq` is that
embedding (SHA-512 reduced modulo q; the 512-bit digest makes the modular
bias negligible for a 254-bit q).

:func:`keyed_tag` provides the HMAC-style deterministic tags used by the
searchable-encryption pre-filter and by the deterministic-encryption /
CryptDB / Hahn baselines.
"""

from __future__ import annotations

import hashlib
import hmac
import struct

Value = str | int | float | bytes | bool | None


def encode_value(value: Value) -> bytes:
    """Canonical, type-tagged byte encoding of a cell value.

    Type tags keep the embedding injective across types
    (``1`` the int never collides with ``"1"`` the string).
    """
    if value is None:
        return b"N:"
    if isinstance(value, bool):
        return b"B:" + (b"1" if value else b"0")
    if isinstance(value, int):
        return b"I:" + str(value).encode("ascii")
    if isinstance(value, float):
        return b"F:" + struct.pack(">d", value)
    if isinstance(value, bytes):
        return b"Y:" + value
    if isinstance(value, str):
        return b"S:" + value.encode("utf-8")
    raise TypeError(f"unsupported cell value type: {type(value).__name__}")


def hash_to_zq(value: Value, q: int, domain: bytes = b"repro.H") -> int:
    """The paper's ``H(.)``: embed a cell value into Z_q.

    Uses SHA-512 over a domain-separated canonical encoding, reduced mod q.
    """
    digest = hashlib.sha512(domain + b"|" + encode_value(value)).digest()
    return int.from_bytes(digest, "big") % q


def hash_bytes_to_zq(data: bytes, q: int, domain: bytes = b"repro.Hb") -> int:
    """Embed raw bytes into Z_q (used for key derivation)."""
    digest = hashlib.sha512(domain + b"|" + data).digest()
    return int.from_bytes(digest, "big") % q


def keyed_tag(key: bytes, value: Value, domain: bytes = b"repro.tag") -> bytes:
    """Deterministic keyed tag of a cell value (HMAC-SHA256).

    Two equal values under the same key produce equal tags; under
    different keys the tags are unlinkable.  This realizes both the
    searchable-encryption pre-filter and the deterministic-encryption
    baseline.
    """
    return hmac.new(key, domain + b"|" + encode_value(value), hashlib.sha256).digest()


def derive_key(master: bytes, label: str) -> bytes:
    """Derive an independent subkey from a master secret (HKDF-like)."""
    return hmac.new(master, b"repro.derive|" + label.encode("utf-8"), hashlib.sha256).digest()
