"""Matrices over the prime field Z_q.

The Secure Join scheme needs uniformly random invertible matrices
``B <- GL_n(Z_q)`` and their *duals* ``B* = det(B) * (B^{-1})^T``, which
satisfy ``B @ (B*)^T = det(B) * I`` — the identity that makes the
inner-product encryption decrypt to ``det(B) * <v, w>``.

Matrices are immutable; all arithmetic uses plain Python ints so any
modulus size works (the BN254 group order is 254 bits).
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.crypto.numtheory import mod_inverse
from repro.errors import MatrixError


class ZqMatrix:
    """An immutable matrix over Z_q."""

    __slots__ = ("q", "_rows", "_det")

    def __init__(self, rows: Sequence[Sequence[int]], q: int):
        if q < 2:
            raise MatrixError("modulus must be at least 2")
        if not rows:
            raise MatrixError("matrix must have at least one row")
        width = len(rows[0])
        if any(len(row) != width for row in rows):
            raise MatrixError("all rows must have the same length")
        self.q = q
        self._rows = tuple(tuple(x % q for x in row) for row in rows)
        self._det: int | None = None

    # -- constructors -------------------------------------------------
    @staticmethod
    def identity(n: int, q: int) -> "ZqMatrix":
        return ZqMatrix(
            [[1 if i == j else 0 for j in range(n)] for i in range(n)], q
        )

    @staticmethod
    def random(n: int, q: int, rng: random.Random) -> "ZqMatrix":
        """A uniformly random ``n x n`` matrix over Z_q."""
        return ZqMatrix(
            [[rng.randrange(q) for _ in range(n)] for _ in range(n)], q
        )

    @staticmethod
    def random_invertible(n: int, q: int, rng: random.Random) -> "ZqMatrix":
        """A uniformly random element of ``GL_n(Z_q)`` (rejection sampling).

        For cryptographic-size q a random matrix is invertible with
        probability ``1 - O(1/q)``, so this almost never loops.
        """
        while True:
            candidate = ZqMatrix.random(n, q, rng)
            if candidate.det() != 0:
                return candidate

    # -- shape ----------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return len(self._rows)

    @property
    def n_cols(self) -> int:
        return len(self._rows[0])

    @property
    def is_square(self) -> bool:
        return self.n_rows == self.n_cols

    def row(self, i: int) -> tuple[int, ...]:
        return self._rows[i]

    def rows(self) -> tuple[tuple[int, ...], ...]:
        return self._rows

    def __getitem__(self, index: tuple[int, int]) -> int:
        i, j = index
        return self._rows[i][j]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ZqMatrix):
            return NotImplemented
        return self.q == other.q and self._rows == other._rows

    def __hash__(self) -> int:
        return hash((self.q, self._rows))

    def __repr__(self) -> str:
        return f"ZqMatrix({self.n_rows}x{self.n_cols} mod {self.q})"

    # -- elimination core ------------------------------------------------
    def _eliminate(self) -> tuple[int, list[list[int]] | None]:
        """Gauss-Jordan on ``[self | I]``; return ``(det, inverse_rows)``.

        ``inverse_rows`` is ``None`` when the matrix is singular.
        """
        if not self.is_square:
            raise MatrixError("determinant/inverse require a square matrix")
        n = self.n_rows
        q = self.q
        work = [list(row) for row in self._rows]
        aug = [[1 if i == j else 0 for j in range(n)] for i in range(n)]
        det = 1
        for col in range(n):
            pivot_row = next(
                (r for r in range(col, n) if work[r][col] != 0), None
            )
            if pivot_row is None:
                return 0, None
            if pivot_row != col:
                work[col], work[pivot_row] = work[pivot_row], work[col]
                aug[col], aug[pivot_row] = aug[pivot_row], aug[col]
                det = -det % q
            pivot = work[col][col]
            det = det * pivot % q
            inv_pivot = mod_inverse(pivot, q)
            work[col] = [x * inv_pivot % q for x in work[col]]
            aug[col] = [x * inv_pivot % q for x in aug[col]]
            for r in range(n):
                if r == col or work[r][col] == 0:
                    continue
                factor = work[r][col]
                work[r] = [
                    (a - factor * b) % q for a, b in zip(work[r], work[col])
                ]
                aug[r] = [
                    (a - factor * b) % q for a, b in zip(aug[r], aug[col])
                ]
        return det, aug

    def det(self) -> int:
        """The determinant modulo q (cached)."""
        if self._det is None:
            self._det, _ = self._eliminate()
        return self._det

    def inverse(self) -> "ZqMatrix":
        """The inverse matrix; raises :class:`MatrixError` if singular."""
        det, inverse_rows = self._eliminate()
        self._det = det
        if inverse_rows is None:
            raise MatrixError("matrix is singular modulo q")
        return ZqMatrix(inverse_rows, self.q)

    def transpose(self) -> "ZqMatrix":
        return ZqMatrix(
            [
                [self._rows[r][c] for r in range(self.n_rows)]
                for c in range(self.n_cols)
            ],
            self.q,
        )

    def dual(self) -> "ZqMatrix":
        """``B* = det(B) * (B^{-1})^T`` — the paper's dual basis matrix."""
        det = self.det()
        if det == 0:
            raise MatrixError("singular matrix has no dual")
        inv_t = self.inverse().transpose()
        return inv_t.scale(det)

    def scale(self, k: int) -> "ZqMatrix":
        k %= self.q
        return ZqMatrix(
            [[x * k % self.q for x in row] for row in self._rows], self.q
        )

    # -- products ----------------------------------------------------------
    def __mul__(self, other: "ZqMatrix") -> "ZqMatrix":
        if not isinstance(other, ZqMatrix):
            return NotImplemented
        if self.q != other.q:
            raise MatrixError("cannot multiply matrices over different moduli")
        if self.n_cols != other.n_rows:
            raise MatrixError("matrix shape mismatch")
        other_t = other.transpose()
        q = self.q
        return ZqMatrix(
            [
                [
                    sum(a * b for a, b in zip(row, col)) % q
                    for col in other_t._rows
                ]
                for row in self._rows
            ],
            self.q,
        )

    def vec_mat(self, vector: Sequence[int]) -> list[int]:
        """Row-vector times matrix: ``v @ B`` over Z_q."""
        if len(vector) != self.n_rows:
            raise MatrixError(
                f"vector length {len(vector)} != matrix rows {self.n_rows}"
            )
        q = self.q
        result = [0] * self.n_cols
        for vi, row in zip(vector, self._rows):
            if vi == 0:
                continue
            vi %= q
            for j, bij in enumerate(row):
                result[j] += vi * bij
        return [x % q for x in result]

    def mat_vec(self, vector: Sequence[int]) -> list[int]:
        """Matrix times column-vector: ``B @ v`` over Z_q."""
        if len(vector) != self.n_cols:
            raise MatrixError(
                f"vector length {len(vector)} != matrix cols {self.n_cols}"
            )
        q = self.q
        return [
            sum(a * b for a, b in zip(row, vector)) % q for row in self._rows
        ]


def inner_product(u: Sequence[int], v: Sequence[int], q: int) -> int:
    """``<u, v>`` over Z_q."""
    if len(u) != len(v):
        raise MatrixError("inner product of different-length vectors")
    return sum(a * b for a, b in zip(u, v)) % q
