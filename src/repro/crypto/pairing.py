"""Optimal-ate pairing on BN254.

The implementation follows the textbook optimal-ate construction:

1. Untwist the G2 argument into the curve over Fp12.
2. Run the Miller loop over ``6x + 2`` with affine line functions.
3. Apply the two Frobenius correction steps (``+pi(Q)``, ``-pi^2(Q)``).
4. Final exponentiation ``(p^12 - 1) / r`` split into the easy part
   (conjugation / inversion / Frobenius) and the hard part
   ``(p^4 - p^2 + 1) / r`` (square-and-multiply).

A *multi-pairing* entry point shares the final exponentiation across
several Miller loops, which is what makes the Secure Join decryption
(one pairing per vector coordinate) practical.
"""

from __future__ import annotations

from repro.crypto.curve import G1Point, G2Point, embed_g1, untwist
from repro.crypto.field import Fp12
from repro.crypto.params import ATE_LOOP_COUNT, CURVE_ORDER, FIELD_MODULUS
from repro.errors import PairingError

P = FIELD_MODULUS

# Exponent of the "hard part" of the final exponentiation.
_HARD_EXPONENT = (P**4 - P**2 + 1) // CURVE_ORDER

_Fp12Point = tuple[Fp12, Fp12]


def _line(p1: _Fp12Point, p2: _Fp12Point, at: _Fp12Point) -> Fp12:
    """Evaluate the line through ``p1`` and ``p2`` at the point ``at``.

    All points are affine points of the curve over Fp12.  When
    ``p1 == p2`` the tangent line is used; when the points are mirror
    images the vertical line is used.
    """
    x1, y1 = p1
    x2, y2 = p2
    xt, yt = at
    if x1 != x2:
        slope = (y2 - y1) * (x2 - x1).inverse()
        return slope * (xt - x1) - (yt - y1)
    if y1 == y2:
        slope = (x1.square() * Fp12.from_int(3)) * (y1 + y1).inverse()
        return slope * (xt - x1) - (yt - y1)
    return xt - x1


def _add(p1: _Fp12Point, p2: _Fp12Point) -> _Fp12Point:
    """Affine addition on the curve over Fp12 (inputs assumed distinct-safe)."""
    x1, y1 = p1
    x2, y2 = p2
    if x1 == x2 and y1 == y2:
        return _double(p1)
    slope = (y2 - y1) * (x2 - x1).inverse()
    x3 = slope.square() - x1 - x2
    y3 = slope * (x1 - x3) - y1
    return x3, y3


def _double(p1: _Fp12Point) -> _Fp12Point:
    x1, y1 = p1
    slope = (x1.square() * Fp12.from_int(3)) * (y1 + y1).inverse()
    x3 = slope.square() - x1 - x1
    y3 = slope * (x1 - x3) - y1
    return x3, y3


def _frobenius_point(p: _Fp12Point) -> _Fp12Point:
    """Apply the p-power Frobenius coordinate-wise."""
    return p[0].frobenius(), p[1].frobenius()


def miller_loop(q: G2Point, p: G1Point) -> Fp12:
    """Run the optimal-ate Miller loop; the result is *not* final-exponentiated."""
    if q.is_infinity() or p.is_infinity():
        return Fp12.one()
    q12 = untwist(q)
    p12 = embed_g1(p)
    r = q12
    f = Fp12.one()
    for i in range(ATE_LOOP_COUNT.bit_length() - 2, -1, -1):
        f = f * f * _line(r, r, p12)
        r = _double(r)
        if (ATE_LOOP_COUNT >> i) & 1:
            f = f * _line(r, q12, p12)
            r = _add(r, q12)
    # Frobenius correction steps of the optimal-ate pairing.
    q1 = _frobenius_point(q12)
    nq2 = _frobenius_point(q1)
    nq2 = (nq2[0], -nq2[1])
    f = f * _line(r, q1, p12)
    r = _add(r, q1)
    f = f * _line(r, nq2, p12)
    return f


def final_exponentiation(f: Fp12) -> Fp12:
    """Raise a Miller-loop output to ``(p^12 - 1) / r``."""
    if f.is_zero():
        raise PairingError("final exponentiation of zero (degenerate input)")
    # Easy part: f^((p^6 - 1)(p^2 + 1)).
    t = f.conjugate() * f.inverse()
    t = t.frobenius().frobenius() * t
    # Hard part: t^((p^4 - p^2 + 1) / r).
    return t.pow(_HARD_EXPONENT)


def pairing(p: G1Point, q: G2Point) -> Fp12:
    """The optimal-ate pairing ``e(P, Q)`` with ``P`` in G1 and ``Q`` in G2."""
    if p.is_infinity() or q.is_infinity():
        return Fp12.one()
    return final_exponentiation(miller_loop(q, p))


def multi_pairing(pairs: list[tuple[G1Point, G2Point]]) -> Fp12:
    """Compute ``prod_i e(P_i, Q_i)`` with a single final exponentiation.

    This is the workhorse of Secure Join decryption: the per-row pairing of
    the token vector with the ciphertext vector is a product of pairings,
    so sharing the final exponentiation turns ``d`` full pairings into
    ``d`` Miller loops plus one exponentiation.
    """
    accumulator = Fp12.one()
    nontrivial = False
    for p, q in pairs:
        if p.is_infinity() or q.is_infinity():
            continue
        accumulator = accumulator * miller_loop(q, p)
        nontrivial = True
    if not nontrivial:
        return Fp12.one()
    return final_exponentiation(accumulator)
