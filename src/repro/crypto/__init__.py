"""Cryptographic substrate for the Secure Join reproduction.

This package implements, from scratch, every cryptographic building block
the paper depends on:

- modular/number-theoretic primitives (:mod:`repro.crypto.numtheory`),
- the BN254 extension-field tower (:mod:`repro.crypto.field`),
- the BN254 groups G1/G2 (:mod:`repro.crypto.curve`),
- the optimal-ate pairing (:mod:`repro.crypto.pairing`),
- a backend abstraction exposing one bilinear-group API with a real
  (BN254) and an insecure-fast implementation
  (:mod:`repro.crypto.backend`),
- matrices over Z_q (:mod:`repro.crypto.matrix`),
- hashing/PRF utilities (:mod:`repro.crypto.hashing`), and
- the function-hiding inner-product encryption of Kim et al. with the
  paper's modifications (:mod:`repro.crypto.ipe`).
"""

from repro.crypto.backend import (
    BilinearBackend,
    BN254Backend,
    FastBackend,
    GTElement,
    get_backend,
)
from repro.crypto.ipe import (
    IPECiphertext,
    IPEMasterKey,
    IPEScheme,
    IPESecretKey,
    ModifiedIPEScheme,
)
from repro.crypto.matrix import ZqMatrix, inner_product

__all__ = [
    "BilinearBackend",
    "BN254Backend",
    "FastBackend",
    "GTElement",
    "get_backend",
    "IPECiphertext",
    "IPEMasterKey",
    "IPEScheme",
    "IPESecretKey",
    "ModifiedIPEScheme",
    "ZqMatrix",
    "inner_product",
]
