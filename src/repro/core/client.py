"""The client side of the outsourced-database protocol.

The client owns every secret: the IPE matrices (via the scheme master
key), the payload encryption keys and the pre-filter tag keys.  It
encrypts tables for upload, turns :class:`~repro.db.query.JoinQuery`
objects into tokens, and decrypts join results returned by the server.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field

from repro.core.engine import ENGINE_NAMES
from repro.core.scheme import (
    SecureJoinParams,
    SecureJoinScheme,
    SJMasterKey,
    SJRowCiphertext,
    SJToken,
)
from repro.crypto.backend import BilinearBackend
from repro.crypto.hashing import derive_key, keyed_tag
from repro.crypto.symmetric import SymmetricCipher
from repro.db.join import chain_schema, joined_prefixes
from repro.db.query import ChainQuery, JoinQuery, TableSelection
from repro.db.schema import Schema
from repro.db.table import Table
from repro.errors import QueryError, SchemeError


@dataclass
class EncryptedTable:
    """Everything the server stores for one uploaded table.

    The schema and column names are treated as public metadata (as in
    the paper's system model); cell contents live only inside the SJ
    ciphertexts (join/selection structure) and the symmetric payloads.
    """

    name: str
    schema: Schema
    join_column: str
    attribute_columns: tuple[str, ...]
    ciphertexts: list[SJRowCiphertext]
    payloads: list[bytes]
    prefilter_tags: dict[str, list[bytes]] | None = None
    #: Per-row pairing precomputation
    #: (:class:`~repro.crypto.backend.PreparedRow`), built server-side
    #: by ``prepare_table`` / at ``save_encrypted_table`` time.  Purely
    #: derived from the ciphertexts — never secret material.
    prepared_rows: list | None = None
    #: Set when this table is one shard of a hash-partitioned table: a
    #: :class:`~repro.shard.partition.ShardDescriptor` mapping local
    #: rows back to global indices and pinning the layout (shard count
    #: and partitioner seed) the split was made under.  ``None`` for an
    #: unsharded table.
    shard: "object | None" = None

    def __len__(self) -> int:
        return len(self.ciphertexts)


@dataclass(frozen=True)
class EncryptedJoinQuery:
    """The query-phase message from client to server.

    ``engine_hint`` is an optional request for a server execution engine
    (``"serial"``, ``"batched"``, ``"parallel"`` or ``"auto"`` — the
    server-side cost-model planner); the server may override it, so it
    carries no security weight.

    ``priority`` and ``deadline`` are the query's scheduling QoS
    (wire v4): higher-priority queries get dispatch preference when
    concurrent queries share the server's worker pool, and ``deadline``
    is a *relative* time budget in seconds — the server stamps it
    against its own clock at admission and cancels the query (releasing
    its pool admissions) once the budget is exhausted.  Both are
    advisory scheduling inputs, not security boundaries.
    """

    query_id: int
    left_table: str
    right_table: str
    left_token: SJToken
    right_token: SJToken
    left_prefilter: dict[str, frozenset[bytes]] | None = None
    right_prefilter: dict[str, frozenset[bytes]] | None = None
    engine_hint: str | None = None
    priority: int = 0
    deadline: float | None = None


@dataclass(frozen=True)
class EncryptedChainQuery:
    """The query-phase message for a multi-way chain join (wire v7).

    One token per chain position, all under a *single* query key —
    that is what makes every position's handles mutually comparable
    and lets the server's handle pool decrypt each distinct
    ``(table, token)`` side exactly once, however many positions share
    it.  ``prefilters`` are positional (``None`` = no pre-filter).
    """

    query_id: int
    tables: tuple[str, ...]
    tokens: tuple[SJToken, ...]
    prefilters: "tuple[dict[str, frozenset[bytes]] | None, ...]"
    engine_hint: str | None = None
    priority: int = 0
    deadline: float | None = None


@dataclass
class DecryptedJoinResult:
    """The client-side plaintext view of a join result."""

    table: Table
    index_pairs: list[tuple[int, int]] = field(default_factory=list)


@dataclass
class DecryptedChainResult:
    """The client-side plaintext view of a chain join result."""

    table: Table
    index_tuples: list[tuple[int, ...]] = field(default_factory=list)


class SecureJoinClient:
    """Client: table encryption, token generation, result decryption."""

    def __init__(
        self,
        num_attributes: int,
        in_clause_limit: int = 10,
        backend: BilinearBackend | None = None,
        master_secret: bytes | None = None,
        rng: random.Random | None = None,
        enable_prefilter: bool = False,
        prefilter_columns: tuple[str, ...] | None = None,
    ):
        self.params = SecureJoinParams(
            num_attributes=num_attributes,
            in_clause_limit=in_clause_limit,
            backend_name=backend.name if backend is not None else "fast",
        )
        self.scheme = SecureJoinScheme(self.params, backend, rng)
        self.msk: SJMasterKey = self.scheme.setup()
        self._master_secret = (
            master_secret if master_secret is not None else os.urandom(32)
        )
        self.enable_prefilter = enable_prefilter
        # None means "tag every attribute column"; otherwise only the
        # listed columns get searchable tags (smaller upload, less leakage).
        self.prefilter_columns = prefilter_columns
        self._query_counter = 0
        self._tables: dict[str, EncryptedTable] = {}

    # -- helpers -----------------------------------------------------------
    @staticmethod
    def for_tables(
        tables: list[tuple[Table, str]],
        in_clause_limit: int = 10,
        backend: BilinearBackend | None = None,
        rng: random.Random | None = None,
        enable_prefilter: bool = False,
        prefilter_columns: tuple[str, ...] | None = None,
    ) -> "SecureJoinClient":
        """Build a client sized for a set of ``(table, join_column)`` pairs.

        The scheme's m must cover the widest table; narrower tables are
        padded transparently.
        """
        if not tables:
            raise SchemeError("need at least one table")
        num_attributes = max(len(t.schema) - 1 for t, _ in tables)
        return SecureJoinClient(
            num_attributes=num_attributes,
            in_clause_limit=in_clause_limit,
            backend=backend,
            rng=rng,
            enable_prefilter=enable_prefilter,
            prefilter_columns=prefilter_columns,
        )

    def _payload_cipher(self, table_name: str) -> SymmetricCipher:
        return SymmetricCipher(derive_key(self._master_secret, f"payload.{table_name}"))

    def _prefilter_key(self, table_name: str, column: str) -> bytes:
        return derive_key(self._master_secret, f"prefilter.{table_name}.{column}")

    # -- upload phase -------------------------------------------------------
    def encrypt_table(self, table: Table, join_column: str) -> EncryptedTable:
        """Encrypt a plaintext table for upload (SJ.Enc on every row)."""
        join_index = table.schema.index_of(join_column)
        attribute_columns = tuple(
            c for c in table.schema.names() if c != join_column
        )
        if len(attribute_columns) > self.params.num_attributes:
            raise SchemeError(
                f"table {table.name!r} has {len(attribute_columns)} non-join "
                f"attributes but the scheme supports m="
                f"{self.params.num_attributes}"
            )
        attribute_indices = [
            table.schema.index_of(c) for c in attribute_columns
        ]
        cipher = self._payload_cipher(table.name)
        ciphertexts: list[SJRowCiphertext] = []
        payloads: list[bytes] = []
        for row in table:
            join_value = row[join_index]
            attributes = [row[i] for i in attribute_indices]
            ciphertexts.append(
                self.scheme.encrypt_row(self.msk, join_value, attributes)
            )
            payloads.append(cipher.encrypt(json.dumps(list(row)).encode("utf-8")))
        prefilter = None
        if self.enable_prefilter:
            prefilter = {}
            for column, index in zip(attribute_columns, attribute_indices):
                if (
                    self.prefilter_columns is not None
                    and column not in self.prefilter_columns
                ):
                    continue
                key = self._prefilter_key(table.name, column)
                prefilter[column] = [keyed_tag(key, row[index]) for row in table]
        encrypted = EncryptedTable(
            name=table.name,
            schema=table.schema,
            join_column=join_column,
            attribute_columns=attribute_columns,
            ciphertexts=ciphertexts,
            payloads=payloads,
            prefilter_tags=prefilter,
        )
        self._tables[table.name] = encrypted
        return encrypted

    def encrypt_row_for(
        self, table_name: str, row: tuple
    ) -> tuple[SJRowCiphertext, bytes, dict[str, bytes] | None]:
        """Encrypt one new row for a previously encrypted table.

        Returns ``(ciphertext, payload, prefilter_tags)`` ready for
        :meth:`~repro.core.server.SecureJoinServer.insert_row` — the
        dynamic-update path: the scheme is row-wise, so inserts need no
        re-encryption of existing data.
        """
        encrypted = self._table(table_name)
        encrypted.schema.validate_row(tuple(row))
        join_index = encrypted.schema.index_of(encrypted.join_column)
        attribute_indices = [
            encrypted.schema.index_of(c) for c in encrypted.attribute_columns
        ]
        ciphertext = self.scheme.encrypt_row(
            self.msk, row[join_index], [row[i] for i in attribute_indices]
        )
        payload = self._payload_cipher(table_name).encrypt(
            json.dumps(list(row)).encode("utf-8")
        )
        tags = None
        if encrypted.prefilter_tags is not None:
            tags = {}
            for column in encrypted.prefilter_tags:
                key = self._prefilter_key(table_name, column)
                tags[column] = keyed_tag(
                    key, row[encrypted.schema.index_of(column)]
                )
        return ciphertext, payload, tags

    # -- query phase -----------------------------------------------------
    def _table(self, name: str) -> EncryptedTable:
        try:
            return self._tables[name]
        except KeyError:
            raise QueryError(f"table {name!r} was not encrypted by this client") from None

    def _selection_by_position(
        self, encrypted: EncryptedTable, selection: TableSelection
    ) -> dict[int, tuple]:
        positions = {c: i for i, c in enumerate(encrypted.attribute_columns)}
        result: dict[int, tuple] = {}
        for column, values in selection.in_clauses:
            if column == encrypted.join_column:
                raise QueryError(
                    f"selection on join column {column!r} is not supported"
                )
            if column not in positions:
                raise QueryError(
                    f"unknown selection column {column!r} in table "
                    f"{encrypted.name!r}"
                )
            result[positions[column]] = values
        return result

    def _prefilter_tokens(
        self, encrypted: EncryptedTable, selection: TableSelection
    ) -> dict[str, frozenset[bytes]] | None:
        if not self.enable_prefilter or selection.is_empty:
            return None
        tokens: dict[str, frozenset[bytes]] = {}
        for column, values in selection.in_clauses:
            if (
                self.prefilter_columns is not None
                and column not in self.prefilter_columns
            ):
                # The column carries no searchable tags; the polynomial
                # encoding in the SJ token still enforces the selection.
                continue
            key = self._prefilter_key(encrypted.name, column)
            tokens[column] = frozenset(keyed_tag(key, v) for v in values)
        return tokens or None

    @staticmethod
    def _validate_qos(
        engine: str | None, priority: int, deadline: float | None
    ) -> None:
        if engine is not None and engine not in ENGINE_NAMES:
            raise QueryError(
                f"unknown execution engine {engine!r}; "
                f"use one of {ENGINE_NAMES}"
            )
        if isinstance(priority, bool) or not isinstance(priority, int):
            raise QueryError("priority must be an integer")
        if deadline is not None and (
            not isinstance(deadline, (int, float)) or deadline <= 0
        ):
            raise QueryError(
                "deadline must be a positive number of seconds (or None)"
            )

    def create_query(
        self,
        query: JoinQuery,
        engine: str | None = None,
        priority: int = 0,
        deadline: float | None = None,
    ) -> EncryptedJoinQuery:
        """SJ.TokenGen for both tables under one fresh query key.

        ``engine`` attaches an execution-engine hint for the server —
        one of ``"serial"``, ``"batched"``, ``"parallel"`` or ``"auto"``
        (validated here so typos fail on the client side; the server
        honors it only if its ``hint_engines`` allowlist permits).

        ``priority`` (higher runs sooner under contention) and
        ``deadline`` (a relative time budget in seconds; the server
        cancels the query when it is exhausted) are the query's
        scheduling QoS — validated here so malformed values fail on the
        client side instead of as a server-side decode error.
        """
        self._validate_qos(engine, priority, deadline)
        left = self._table(query.left_table)
        right = self._table(query.right_table)
        if query.left_join_column != left.join_column:
            raise QueryError(
                f"table {left.name!r} was encrypted with join column "
                f"{left.join_column!r}, not {query.left_join_column!r}"
            )
        if query.right_join_column != right.join_column:
            raise QueryError(
                f"table {right.name!r} was encrypted with join column "
                f"{right.join_column!r}, not {query.right_join_column!r}"
            )
        if query.max_in_size() > self.params.in_clause_limit:
            raise QueryError(
                f"IN clause of size {query.max_in_size()} exceeds the "
                f"scheme bound t={self.params.in_clause_limit}"
            )
        query_key = self.scheme.new_query_key()
        left_token = self.scheme.token(
            self.msk,
            self._selection_by_position(left, query.left_selection),
            query_key,
        )
        right_token = self.scheme.token(
            self.msk,
            self._selection_by_position(right, query.right_selection),
            query_key,
        )
        self._query_counter += 1
        return EncryptedJoinQuery(
            query_id=self._query_counter,
            left_table=left.name,
            right_table=right.name,
            left_token=left_token,
            right_token=right_token,
            left_prefilter=self._prefilter_tokens(left, query.left_selection),
            right_prefilter=self._prefilter_tokens(right, query.right_selection),
            engine_hint=engine,
            priority=priority,
            deadline=float(deadline) if deadline is not None else None,
        )

    def create_chain_query(
        self,
        query: ChainQuery,
        engine: str | None = None,
        priority: int = 0,
        deadline: float | None = None,
    ) -> EncryptedChainQuery:
        """SJ.TokenGen for every chain position under *one* query key.

        A single query key makes every position's handles mutually
        comparable — the property the server's multi-way planner and
        handle pool build on.  Within one chain, repeated
        ``(table, selection)`` positions reuse the *same* token object
        (token generation is randomized, so regenerating would defeat
        the server's byte-level side dedup without changing semantics).
        """
        self._validate_qos(engine, priority, deadline)
        if query.max_in_size() > self.params.in_clause_limit:
            raise QueryError(
                f"IN clause of size {query.max_in_size()} exceeds the "
                f"scheme bound t={self.params.in_clause_limit}"
            )
        encrypted_tables = []
        for table_name, join_column in zip(query.tables, query.join_columns):
            encrypted = self._table(table_name)
            if join_column != encrypted.join_column:
                raise QueryError(
                    f"table {encrypted.name!r} was encrypted with join "
                    f"column {encrypted.join_column!r}, not {join_column!r}"
                )
            encrypted_tables.append(encrypted)
        query_key = self.scheme.new_query_key()
        token_cache: dict[tuple, SJToken] = {}
        tokens: list[SJToken] = []
        prefilters: list[dict[str, frozenset[bytes]] | None] = []
        for encrypted, selection in zip(encrypted_tables, query.selections):
            cache_key = (encrypted.name, selection.in_clauses)
            token = token_cache.get(cache_key)
            if token is None:
                token = self.scheme.token(
                    self.msk,
                    self._selection_by_position(encrypted, selection),
                    query_key,
                )
                token_cache[cache_key] = token
            tokens.append(token)
            prefilters.append(self._prefilter_tokens(encrypted, selection))
        self._query_counter += 1
        return EncryptedChainQuery(
            query_id=self._query_counter,
            tables=tuple(query.tables),
            tokens=tuple(tokens),
            prefilters=tuple(prefilters),
            engine_hint=engine,
            priority=priority,
            deadline=float(deadline) if deadline is not None else None,
        )

    # -- result phase -----------------------------------------------------
    def _joined_schema(self, left: EncryptedTable, right: EncryptedTable):
        prefix_left, prefix_right = joined_prefixes(
            left.name, right.name,
            set(left.schema.names()), set(right.schema.names()),
        )
        return left.schema.concat(
            right.schema, prefix_self=prefix_left, prefix_other=prefix_right
        )

    def decrypt_match_batch(
        self, left_table: str, right_table: str, batch
    ) -> list[tuple]:
        """Decrypt one streamed :class:`~repro.core.server.MatchBatch`.

        The incremental counterpart of :meth:`decrypt_result`: the
        server's :meth:`~repro.core.server.SecureJoinServer.stream_join`
        yields match batches while pairing is still running, and this
        turns each into plaintext joined rows immediately — the client
        sees first results before the join finishes.
        """
        left = self._table(left_table)
        right = self._table(right_table)
        left_cipher = self._payload_cipher(left.name)
        right_cipher = self._payload_cipher(right.name)
        return [
            _decode_row(left_cipher.decrypt(left_payload))
            + _decode_row(right_cipher.decrypt(right_payload))
            for left_payload, right_payload in zip(
                batch.left_payloads, batch.right_payloads
            )
        ]

    def stream_decrypt(self, left_table: str, right_table: str, batches):
        """Decrypt an iterable of streamed match batches lazily.

        Yields ``(index_pairs, rows)`` per batch; wrap around
        ``server.stream_join(...)`` for an end-to-end streaming join
        whose first rows arrive while the server is still decrypting.
        The wrapped generator's return value (for ``stream_join``, the
        final :class:`~repro.core.server.EncryptedJoinResult` with its
        stats) is passed through as this generator's return value.
        """
        iterator = iter(batches)
        try:
            while True:
                try:
                    batch = next(iterator)
                except StopIteration as stop:
                    return stop.value
                yield list(batch.index_pairs), self.decrypt_match_batch(
                    left_table, right_table, batch
                )
        finally:
            # Abandoning this wrapper must deterministically close the
            # wrapped stream (server-side: releases pool admissions).
            close = getattr(iterator, "close", None)
            if close is not None:
                close()

    def decrypt_result(self, result) -> DecryptedJoinResult:
        """Decrypt an :class:`~repro.core.server.EncryptedJoinResult`."""
        left = self._table(result.left_table)
        right = self._table(result.right_table)
        left_cipher = self._payload_cipher(left.name)
        right_cipher = self._payload_cipher(right.name)
        table = Table("join", self._joined_schema(left, right))
        for left_payload, right_payload in zip(
            result.left_payloads, result.right_payloads
        ):
            left_row = _decode_row(left_cipher.decrypt(left_payload))
            right_row = _decode_row(right_cipher.decrypt(right_payload))
            table.insert(left_row + right_row)
        return DecryptedJoinResult(table, list(result.index_pairs))

    def decrypt_chain_batch(
        self, tables: "tuple[str, ...] | list[str]", batch
    ) -> list[tuple]:
        """Decrypt one streamed chain match batch into joined rows.

        ``batch.payloads`` carries one payload tuple per completed
        chain tuple, in chain-position order; repeated tables share
        their payload cipher by name.
        """
        ciphers = [self._payload_cipher(self._table(t).name) for t in tables]
        rows: list[tuple] = []
        for payload_tuple in batch.payloads:
            joined: tuple = ()
            for cipher, payload in zip(ciphers, payload_tuple):
                joined = joined + _decode_row(cipher.decrypt(payload))
            rows.append(joined)
        return rows

    def stream_decrypt_chain(self, tables, batches):
        """Decrypt an iterable of streamed chain batches lazily.

        Yields ``(index_tuples, rows)`` per batch; passes through the
        wrapped generator's return value (the final encrypted chain
        result) like :meth:`stream_decrypt`.
        """
        iterator = iter(batches)
        try:
            while True:
                try:
                    batch = next(iterator)
                except StopIteration as stop:
                    return stop.value
                yield list(batch.tuples), self.decrypt_chain_batch(
                    tables, batch
                )
        finally:
            close = getattr(iterator, "close", None)
            if close is not None:
                close()

    def decrypt_chain_result(self, result) -> DecryptedChainResult:
        """Decrypt an encrypted chain result into a joined table.

        The schema follows the same prefix rule as the plaintext
        :func:`~repro.db.join.chain_join` reference, so both sides of a
        correctness check compare byte-for-byte.
        """
        encrypted = [self._table(name) for name in result.tables]
        schema = chain_schema(
            [t.name for t in encrypted], [t.schema for t in encrypted]
        )
        ciphers = [self._payload_cipher(t.name) for t in encrypted]
        table = Table("join", schema)
        for payload_tuple in result.payloads:
            joined: tuple = ()
            for cipher, payload in zip(ciphers, payload_tuple):
                joined = joined + _decode_row(cipher.decrypt(payload))
            table.insert(joined)
        return DecryptedChainResult(table, list(result.tuples))


def _decode_row(blob: bytes) -> tuple:
    return tuple(json.loads(blob.decode("utf-8")))
