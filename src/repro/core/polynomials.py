"""Polynomials over Z_q and the selection-predicate encoding.

Section 4.1 of the paper encodes an ``IN`` clause with at most ``t``
values as a degree-``t`` polynomial vanishing exactly on (the Z_q
embeddings of) those values.  Attributes without a restriction are
encoded as the zero polynomial, which contributes nothing to the
decryption exponent.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence

from repro.errors import SchemeError


class ZqPolynomial:
    """An immutable polynomial ``sum_j c_j x^j`` over Z_q.

    Coefficients are stored little-endian (``coefficients[j]`` multiplies
    ``x^j``); trailing zero coefficients are kept if constructed with a
    fixed length so vectors line up with the scheme dimension.
    """

    __slots__ = ("q", "coefficients")

    def __init__(self, coefficients: Sequence[int], q: int):
        if q < 2:
            raise SchemeError("modulus must be at least 2")
        self.q = q
        self.coefficients = tuple(c % q for c in coefficients)

    # -- constructors ------------------------------------------------------
    @staticmethod
    def zero(length: int, q: int) -> "ZqPolynomial":
        """The zero polynomial padded to ``length`` coefficients."""
        return ZqPolynomial([0] * length, q)

    @staticmethod
    def from_roots(
        roots: Iterable[int],
        degree: int,
        q: int,
        rng: random.Random,
    ) -> "ZqPolynomial":
        """A random polynomial of degree exactly ``degree`` vanishing on ``roots``.

        The polynomial is ``R(x) * prod_i (x - root_i)`` where ``R`` is a
        uniformly random polynomial of the complementary degree with a
        non-zero leading coefficient — one of the ">= q candidate
        polynomials" the paper requires, so tokens do not repeat across
        queries even for identical IN clauses.
        """
        roots = list(roots)
        if len(roots) > degree:
            raise SchemeError(
                f"{len(roots)} roots exceed the polynomial degree {degree}"
            )
        base = [1]
        for root in roots:
            root %= q
            # Multiply base by (x - root).
            extended = [0] * (len(base) + 1)
            for j, c in enumerate(base):
                extended[j + 1] = (extended[j + 1] + c) % q
                extended[j] = (extended[j] - c * root) % q
            base = extended
        blind_degree = degree - len(roots)
        blind = [rng.randrange(q) for _ in range(blind_degree)]
        blind.append(rng.randrange(1, q))  # non-zero leading coefficient
        product = [0] * (degree + 1)
        for i, bc in enumerate(blind):
            if bc == 0:
                continue
            for j, c in enumerate(base):
                product[i + j] = (product[i + j] + bc * c) % q
        return ZqPolynomial(product, q)

    # -- queries ---------------------------------------------------------
    @property
    def is_zero(self) -> bool:
        return all(c == 0 for c in self.coefficients)

    def degree(self) -> int:
        """The degree, or -1 for the zero polynomial."""
        for j in range(len(self.coefficients) - 1, -1, -1):
            if self.coefficients[j] != 0:
                return j
        return -1

    def evaluate(self, x: int) -> int:
        """Horner evaluation at ``x`` over Z_q."""
        result = 0
        for c in reversed(self.coefficients):
            result = (result * x + c) % self.q
        return result

    def padded(self, length: int) -> tuple[int, ...]:
        """Coefficients padded with zeros to exactly ``length`` entries."""
        if len(self.coefficients) > length:
            if any(c != 0 for c in self.coefficients[length:]):
                raise SchemeError(
                    f"polynomial of degree {self.degree()} cannot be packed "
                    f"into {length} coefficients"
                )
            return self.coefficients[:length]
        return self.coefficients + (0,) * (length - len(self.coefficients))

    # -- dunder ------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ZqPolynomial):
            return NotImplemented
        length = max(len(self.coefficients), len(other.coefficients))
        return self.q == other.q and self.padded(length) == other.padded(length)

    def __hash__(self) -> int:
        # Normalize away trailing zeros so equal polynomials hash equally.
        coefficients = self.coefficients[: self.degree() + 1]
        return hash((self.q, coefficients))

    def __repr__(self) -> str:
        return f"ZqPolynomial(deg={self.degree()}, mod {self.q})"


def power_vector(value: int, t: int, q: int) -> list[int]:
    """``(value^0, value^1, ..., value^t)`` over Z_q.

    These are the pre-stored attribute powers of Section 4.2 (Example 4.2)
    that the server's inner product pairs with polynomial coefficients.
    """
    powers = [1]
    value %= q
    for _ in range(t):
        powers.append(powers[-1] * value % q)
    return powers
