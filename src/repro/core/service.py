"""A persistent parallel execution service with multi-query admission.

PR 2's service owned a long-lived worker pool but admitted **one side
of one query at a time**: ``run_side`` monopolized the pool until the
side was fully decrypted.  This module turns it into an admission
scheduler feeding a streaming pipeline:

- **Chunk streams, not materialized sides.**  :meth:`admit_side`
  registers a side and :meth:`stream_chunks` yields decrypted chunks
  *as workers complete them* (out of order, with their row offsets), so
  the matcher can start pairing while SJ.Dec is still running.
- **Multi-query admission.**  Any number of sides — the two sides of
  one join, or sides of concurrent queries from different threads — may
  be admitted at once.  Chunk dispatch round-robins across admitted
  sides at every worker-window refill, so concurrent queries interleave
  fairly on the shared warm pool instead of serializing.
- **Per-side contexts.**  Each side gets its own context id, token
  install, and shared-memory segment; workers hold many contexts at
  once (tokens still cached by digest), and a ``release`` message drops
  a context the moment its side is done.  Crash respawn re-installs
  every *active* side on the replacement worker, so one query's crash
  recovery never disturbs another's state.
- **Lazy, persistent workers** (unchanged): nothing is spawned at
  construction, the pool survives across queries (``pool_generation``
  only moves when the pool is actually (re)created), the backend ships
  once per worker lifetime, and ``close()`` is idempotent.
- **Shared-memory ciphertext transport** (unchanged): one segment per
  side, chunk messages carry ``(start, count)`` offsets; where POSIX
  shared memory is unavailable each chunk ships as one contiguous
  ``bytes`` buffer.

Thread model: consumers drive progress cooperatively.  Whichever
consumer thread needs results next becomes the *poller* (guarded by
``_polling``), waits on the worker pipes once, distributes everything
that arrived to the owning sides' queues, refills worker windows
round-robin, and wakes the other consumers.  All pipe sends happen
under the service lock, so concurrent admissions never interleave
messages on one pipe.

The service is *owned* by :class:`~repro.core.server.SecureJoinServer`
(one service per server); engine instances used standalone lazily
create a process-wide default service.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import os
import threading
import time
import traceback
from collections import deque
from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from multiprocessing.connection import Connection, wait

from repro.crypto.backend import BilinearBackend, PreparedRow
from repro.errors import DeadlineError, QueryError

try:  # pragma: no cover - exercised indirectly via the transport choice
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - always present on CPython >= 3.8
    _shared_memory = None

#: How many chunks may sit in one worker's pipe before the scheduler
#: waits for a result (keeps workers busy without queueing a whole side
#: into one pipe, which would defeat work stealing and fairness).
_PREFETCH_PER_WORKER = 2

#: Decoded tokens cached per worker (FIFO-evicted).
_TOKEN_CACHE_SIZE = 32

#: Prepared rows rebuilt per worker, keyed by row-ciphertext digest
#: (FIFO-evicted).  Prepared coefficients are large (~13 KB/element on
#: BN254), so like the fixed-base tables they are *rebuilt lazily* in
#: each worker rather than shipped over the pipe; repeated queries over
#: the same warm table then hit the cache and replay coefficients.
_PREPARED_CACHE_SIZE = 256

#: How long one poll on the worker pipes blocks before re-checking
#: liveness and side state (seconds).
_POLL_TIMEOUT = 0.2

#: Forking a worker while any thread is inside shared-memory
#: bookkeeping is unsafe: ``SharedMemory`` create/unlink talk to the
#: process-wide resource tracker under a tracker-internal lock, and a
#: child forked at that moment inherits the lock *held* — its first
#: segment attach then deadlocks forever (the worker sits "alive" and
#: never serves a chunk).  Every fork and every tracker-touching
#: segment operation in this module serializes on this mutex; it is
#: process-global because several services (server-owned + the default
#: singleton) may fork and admit concurrently in one process.
_FORK_SAFETY_MUTEX = threading.Lock()


def default_worker_count() -> int:
    """The service's default pool size (matches the PR 1 parallel engine)."""
    return max(2, os.cpu_count() or 1)


@dataclass(frozen=True)
class QueryQoS:
    """Per-query scheduling inputs, threaded from the wire (v4) header.

    ``priority``: sides of higher-priority queries get dispatch
    preference at every worker-window refill; equal priorities
    round-robin as before.  ``deadline`` is *absolute* in
    ``time.monotonic()`` terms — the admitting layer stamps the query's
    relative wire budget against the local clock; once past it the side
    is cancelled (pending chunks dropped, context released) and its
    consumer receives a :class:`~repro.errors.DeadlineError`.
    """

    priority: int = 0
    deadline: float | None = None

    def expired(self, now: float | None = None) -> bool:
        if self.deadline is None:
            return False
        return (now if now is not None else time.monotonic()) > self.deadline


@dataclass
class SideReport:
    """What one admitted side did, for engine/stat accounting."""

    chunks: int = 0
    max_chunk: int = 0
    workers_used: int = 0
    miller_loops: int = 0
    final_exponentiations: int = 0
    prepared_miller_loops: int = 0
    preparations: int = 0
    pool_generation: int = 0
    worker_restarts: int = 0
    shared_memory: bool = False
    #: Peak number of sides admitted concurrently while this side ran
    #: (>= 2 means this side actually interleaved with another).
    concurrent_sides: int = 1


# -- worker side ----------------------------------------------------------


def _attach_shared_memory(name: str):
    """Attach to an existing segment without owning its lifetime.

    Under ``fork`` the worker shares the main process's resource
    tracker, where attach-registration is an idempotent set-add that the
    owner's ``unlink`` later removes — nothing to fix up.  Under other
    start methods the worker has its *own* tracker, which would unlink
    the (still in use) segment when the worker exits; undo the
    registration there.
    """
    segment = _shared_memory.SharedMemory(name=name)
    if multiprocessing.get_start_method() != "fork":
        try:  # pragma: no cover - depends on interpreter internals
            from multiprocessing import resource_tracker

            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:
            pass
    return segment


def _decode_rows(
    backend: BilinearBackend, buffer, start: int, count: int, dimension: int
) -> list[list]:
    """Decode ``count`` ciphertext rows from a flat encoded buffer."""
    element_size = backend.g2_element_size
    stride = dimension * element_size
    rows = []
    for row_index in range(start, start + count):
        base = row_index * stride
        rows.append([
            backend.decode_g2(
                bytes(buffer[base + i * element_size:
                             base + (i + 1) * element_size])
            )
            for i in range(dimension)
        ])
    return rows


def _prepared_rows(
    backend: BilinearBackend,
    cache: dict[bytes, PreparedRow],
    buffer,
    start: int,
    count: int,
    dimension: int,
) -> list[PreparedRow]:
    """Rebuild prepared rows for a chunk, keyed by row-ciphertext digest.

    The transport ships raw G2 ciphertexts (prepared coefficients are
    ~40x larger); workers rebuild the precomputation lazily and reuse it
    across chunks and queries through a digest-keyed FIFO cache, so only
    the first query over a table pays the preparation cost.
    """
    element_size = backend.g2_element_size
    stride = dimension * element_size
    rows = []
    for row_index in range(start, start + count):
        base = row_index * stride
        raw = bytes(buffer[base:base + stride])
        digest = hashlib.blake2b(raw, digest_size=16).digest()
        row = cache.get(digest)
        if row is None:
            decoded = [
                backend.decode_g2(
                    raw[i * element_size:(i + 1) * element_size]
                )
                for i in range(dimension)
            ]
            row = backend.prepare_row(decoded)
            if len(cache) >= _PREPARED_CACHE_SIZE:
                cache.pop(next(iter(cache)))
            cache[digest] = row
        rows.append(row)
    return rows


def _service_worker(conn: Connection, backend: BilinearBackend) -> None:
    """Worker main loop: install contexts, decrypt chunks, report results.

    Messages arrive on one FIFO pipe, so a ``ctx`` install is always
    processed before the chunks that reference it.  The worker holds
    *many* contexts at once — one per admitted side — each with its own
    shared-memory segment; ``release`` drops a context when its side
    finishes.  The backend lives for the worker's whole lifetime and
    decoded tokens are cached by digest, so repeated queries cost
    nothing but the chunk descriptors.
    """
    backend.ops.reset()
    token_cache: dict[bytes, tuple] = {}
    prepared_cache: dict[bytes, PreparedRow] = {}
    # ctx_id -> (token, dimension, shared-memory segment | None, prepared)
    contexts: dict[int, tuple] = {}
    try:
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "stop":
                return
            if kind == "ctx":
                (
                    _, ctx_id, digest, token_bytes, dimension, shm_name,
                    prepared,
                ) = message
                token = token_cache.get(digest)
                if token is None:
                    token = tuple(
                        backend.decode_g1(raw) for raw in token_bytes
                    )
                    if len(token_cache) >= _TOKEN_CACHE_SIZE:
                        token_cache.pop(next(iter(token_cache)))
                    token_cache[digest] = token
                segment = None
                if shm_name is not None:
                    # A vanished segment means the install is stale (the
                    # side it belonged to was already released); skip it —
                    # no chunk for this context will need serving.
                    try:
                        segment = _attach_shared_memory(shm_name)
                    except (FileNotFoundError, OSError):
                        continue
                contexts[ctx_id] = (token, dimension, segment, prepared)
                continue
            if kind == "release":
                _, ctx_id = message
                released = contexts.pop(ctx_id, None)
                if released is not None and released[2] is not None:
                    released[2].close()
                continue
            if kind == "chunk":
                _, ctx_id, start, count, payload = message
                try:
                    context = contexts.get(ctx_id)
                    if context is None:
                        raise QueryError(
                            f"chunk for unknown context {ctx_id}"
                        )
                    token, dimension, segment, prepared = context
                    if payload is not None:
                        buffer, offset = payload, 0
                    else:
                        buffer, offset = segment.buf, start
                    snapshot = backend.ops.snapshot()
                    if prepared:
                        rows = _prepared_rows(
                            backend, prepared_cache, buffer, offset,
                            count, dimension,
                        )
                    else:
                        rows = _decode_rows(
                            backend, buffer, offset, count, dimension
                        )
                    gts = backend.pair_vectors_batch(token, rows)
                    delta = backend.ops.since(snapshot)
                    conn.send((
                        "done", ctx_id, start,
                        [gt.to_bytes() for gt in gts],
                        delta.miller_loops, delta.final_exponentiations,
                        delta.prepared_miller_loops, delta.preparations,
                    ))
                except Exception:
                    conn.send((
                        "error", ctx_id, start, traceback.format_exc()
                    ))
    except (EOFError, KeyboardInterrupt, BrokenPipeError):
        pass
    finally:
        for context in contexts.values():
            if context[2] is not None:
                context[2].close()
        conn.close()


# -- main-process side ----------------------------------------------------


class _WorkerHandle:
    """One pooled worker: its process, pipe and outstanding chunks."""

    def __init__(self, index: int, process, conn: Connection):
        self.index = index
        self.process = process
        self.conn = conn
        # (ctx_id, start) -> (ctx_id, start, count) for crash requeue.
        self.outstanding: dict[tuple[int, int], tuple] = {}

    def alive(self) -> bool:
        return self.process.is_alive()


class _SideState:
    """One admitted side: its transport, chunk queues and progress."""

    def __init__(
        self,
        ctx_id: int,
        install: tuple,
        segment,
        encoded: bytes,
        stride: int,
        pending: deque,
        max_workers: int,
        allowed_workers: frozenset[int],
        rescue_budget: int,
        qos: QueryQoS,
    ):
        self.ctx_id = ctx_id
        self.install = install
        self.segment = segment
        self.encoded = encoded
        self.stride = stride
        self.pending = pending
        self.qos = qos
        #: Set when the side's deadline lapsed; consumers raise
        #: :class:`DeadlineError` instead of a generic failure.
        self.expired = False
        self.n_chunks = len(pending)
        self.max_workers = max_workers
        self.allowed_workers = allowed_workers
        self.rescue_budget = rescue_budget
        #: Chunks completed by workers, awaiting the consumer.
        self.completed: deque[tuple[int, list[bytes]]] = deque()
        self.seen_starts: set[int] = set()
        self.done_chunks = 0
        #: worker index -> number of this side's chunks it is holding.
        self.holding: dict[int, int] = {}
        self.workers_ever: set[int] = set()
        self.error: str | None = None
        self.released = False
        self.report = SideReport()

    @property
    def finished(self) -> bool:
        return self.done_chunks >= self.n_chunks


class ExecutionService:
    """A lazily-started persistent pool with a multi-side admission queue.

    One instance serves many queries: construct it freely (construction
    spawns nothing), admit sides with :meth:`admit_side` +
    :meth:`stream_chunks` (or the materializing :meth:`run_side`), and
    :meth:`close` when done — or use it as a context manager.  A closed
    service transparently restarts on next use (``generation`` then
    increments, which is how tests assert the pool was *not* recreated
    between queries).  Any number of sides may be in flight at once;
    they interleave chunk scheduling fairly on the shared pool.
    """

    def __init__(
        self,
        workers: int | None = None,
        use_shared_memory: bool | None = None,
        name: str | None = None,
    ):
        if workers is not None and workers < 1:
            raise QueryError("worker count must be at least 1")
        #: Optional label threaded into pool-death error messages — in a
        #: sharded deployment every shard owns a pool, and "the pool
        #: died" is not actionable without saying *whose*.
        self.name = name
        self.worker_target = (
            workers if workers is not None else default_worker_count()
        )
        if use_shared_memory is None:
            use_shared_memory = _shared_memory is not None
        self.use_shared_memory = use_shared_memory and _shared_memory is not None
        #: Incremented every time the pool is (re)started.
        self.generation = 0
        #: Cumulative count of workers respawned after a crash.
        self.worker_restarts = 0
        #: Sides admitted to the pool (not counting inline fallbacks).
        self.sides_executed = 0
        #: High-water mark of concurrently admitted sides.
        self.peak_concurrent_sides = 0
        self._workers: list[_WorkerHandle] = []
        self._backend: BilinearBackend | None = None
        self._ctx_counter = itertools.count(1)
        self._closed = False
        self._lock = threading.RLock()
        self._progress = threading.Condition(self._lock)
        self._active: dict[int, _SideState] = {}
        self._rr: deque[int] = deque()
        self._polling = False
        self._rescues_since_progress = 0
        self._admit_offset = 0

    # -- lifecycle --------------------------------------------------------
    @property
    def started(self) -> bool:
        return bool(self._workers)

    def warmth(self) -> tuple[bool, int]:
        """``(pool_started, worker_target)`` without spawning anything.

        The series delta planner prices a refresh with this: admitting
        a 3-row delta must never be the thing that wakes a cold pool,
        so the decision needs the pool's state *without* touching it
        (``ensure_started`` would fork workers as a side effect).
        """
        with self._lock:
            return bool(self._workers), self.worker_target

    @property
    def closed(self) -> bool:
        """True after :meth:`close` until the next (lazy) restart."""
        return self._closed

    @property
    def active_sides(self) -> int:
        """How many sides are currently admitted (diagnostics)."""
        with self._lock:
            return len(self._active)

    def worker_pids(self) -> list[int]:
        """PIDs of the live pool (for lifecycle tests and diagnostics)."""
        with self._lock:
            return [w.process.pid for w in self._workers if w.alive()]

    def _label(self) -> str:
        return f" {self.name!r}" if self.name else ""

    def _spawn_worker(self, index: int) -> _WorkerHandle:
        parent_conn, child_conn = multiprocessing.Pipe(duplex=True)
        process = multiprocessing.Process(
            target=_service_worker,
            args=(child_conn, self._backend),
            daemon=True,
            name=f"repro-sjdec-{self.generation}-{index}",
        )
        with _FORK_SAFETY_MUTEX:
            process.start()
        child_conn.close()
        return _WorkerHandle(index, process, parent_conn)

    @staticmethod
    def _backend_fingerprint(backend: BilinearBackend) -> tuple:
        """What must match for pooled workers to be reusable: semantics,
        not object identity (backends are stateless but for op counters,
        which are per-process anyway)."""
        return (
            type(backend).__qualname__,
            backend.name,
            backend.order,
            getattr(backend, "use_fast_pairing", None),
        )

    def ensure_started(self, backend: BilinearBackend) -> None:
        """Start (or restart) the pool bound to ``backend``.

        The backend is shipped once, as each worker's spawn argument;
        asking for a semantically different backend restarts the pool,
        since the per-worker caches would be poisoned otherwise — but
        never while other sides are still executing on the old one.
        """
        with self._lock:
            if self._workers and (
                self._backend_fingerprint(self._backend)
                != self._backend_fingerprint(backend)
            ):
                if self._active:
                    raise QueryError(
                        "cannot switch the pool to a different backend "
                        f"while {len(self._active)} side(s) are active"
                    )
                self._stop_workers()
            if not self._workers:
                self._backend = backend
                self.generation += 1
                self._closed = False
                if self.use_shared_memory:
                    # Start the resource tracker *before* forking so
                    # workers inherit it instead of each spawning (and
                    # exiting with) a tracker of their own.
                    try:  # pragma: no cover - tracker internals
                        from multiprocessing import resource_tracker

                        resource_tracker.ensure_running()
                    except Exception:
                        pass
                self._workers = [
                    self._spawn_worker(i) for i in range(self.worker_target)
                ]
            else:
                self._respawn_dead_workers()

    def _respawn_dead_workers(self) -> None:
        """Replace workers that died while idle.  Replacements receive
        the installs of every active side, so in-flight queries keep
        working; their lost chunks are requeued by the poller."""
        for slot, worker in enumerate(self._workers):
            if not worker.alive():
                self._requeue_outstanding(worker)
                worker.conn.close()
                replacement = self._spawn_worker(worker.index)
                self._workers[slot] = replacement
                self.worker_restarts += 1
                self._install_active_sides(replacement)

    def _install_active_sides(self, worker: _WorkerHandle) -> None:
        for side in self._active.values():
            if side.released:
                continue
            try:
                worker.conn.send(side.install)
            except OSError:  # pragma: no cover - instant respawn death
                pass

    def close(self) -> None:
        """Stop the pool.  Idempotent; the service may be reused after."""
        with self._progress:
            if self._closed and not self._workers:
                return
            self._stop_workers()
            self._closed = True
            # Consumers blocked on in-flight sides must fail, not hang.
            for side in self._active.values():
                if not side.finished and side.error is None:
                    side.error = (
                        f"execution service{self._label()} was closed "
                        "mid-side"
                    )
            self._progress.notify_all()

    def _stop_workers(self) -> None:
        for worker in self._workers:
            try:
                worker.conn.send(("stop",))
            except (OSError, ValueError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            worker.conn.close()
            # Release the Process object's pidfd/sentinel immediately
            # rather than waiting for GC (keeps FD counts flat).
            if hasattr(worker.process, "close"):
                worker.process.close()
        self._workers = []

    def __enter__(self) -> "ExecutionService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- admission --------------------------------------------------------
    def admit_side(
        self,
        backend: BilinearBackend,
        token_elements: Sequence,
        ciphertext_vectors: Sequence[Sequence],
        batch_size: int,
        max_workers: int | None = None,
        qos: QueryQoS | None = None,
    ) -> _SideState:
        """Register one side with the scheduler and start dispatching.

        Returns a side handle to pass to :meth:`stream_chunks` (and, on
        abnormal exits, :meth:`release_side` — releasing is idempotent
        and also happens automatically when the stream is drained).
        ``max_workers`` caps how many pooled workers this side may use
        concurrently (an engine configured narrower than the pool stays
        narrower); other sides are free to use the rest.  ``qos``
        attaches the owning query's priority and absolute deadline (see
        :class:`QueryQoS`).
        """
        if batch_size < 1:
            raise QueryError("batch size must be at least 1")
        if qos is None:
            qos = QueryQoS()
        # Transport preparation touches only local data; doing the
        # per-element encode and the shared-memory copy outside the
        # lock keeps a large admission from stalling the queries
        # already running on the pool.
        dimension = len(token_elements)
        n_rows = len(ciphertext_vectors)
        # Prepared sides ship raw G2 ciphertexts (the precomputation is
        # ~40x larger than the ciphertext); workers rebuild coefficients
        # lazily, keyed by row digest, like the fixed-base tables.
        prepared = n_rows > 0 and all(
            isinstance(row, PreparedRow) for row in ciphertext_vectors
        )
        encoded = self._encode_rows(backend, ciphertext_vectors, dimension)
        segment = self._create_segment(encoded)
        token_bytes = [backend.encode_g1(e) for e in token_elements]
        digest = hashlib.blake2b(
            b"".join(token_bytes), digest_size=16
        ).digest()
        pending: deque[tuple[int, int]] = deque(
            (start, min(batch_size, n_rows - start))
            for start in range(0, n_rows, batch_size)
        )
        try:
            with self._progress:
                self.ensure_started(backend)
                self.sides_executed += 1
                # A fresh admission gets a fresh no-progress rescue
                # breaker: the breaker exists to stop runaway respawn
                # loops within one pumping episode, not to poison later
                # queries after the environment recovered.
                self._rescues_since_progress = 0
                ctx_id = next(self._ctx_counter)
                install = (
                    "ctx", ctx_id, digest, token_bytes, dimension,
                    segment.name if segment is not None else None,
                    prepared,
                )
                limit = min(
                    max_workers if max_workers is not None
                    else self.worker_target,
                    len(self._workers),
                )
                side = _SideState(
                    ctx_id=ctx_id,
                    install=install,
                    segment=segment,
                    # Once the rows live in the segment the flat copy is
                    # dead weight; chunk messages only slice it on the
                    # no-shared-memory fallback path.
                    encoded=b"" if segment is not None else encoded,
                    stride=dimension * backend.g2_element_size,
                    pending=pending,
                    max_workers=max(1, limit),
                    allowed_workers=self._assign_workers(max(1, limit)),
                    rescue_budget=3 * max(1, len(self._workers)) + 5,
                    qos=qos,
                )
                side.report = SideReport(
                    chunks=side.n_chunks,
                    max_chunk=max((count for _, count in pending), default=0),
                    pool_generation=self.generation,
                    shared_memory=segment is not None,
                )

                if not self._install_everywhere(side):
                    raise QueryError(
                        "execution service has no reachable workers "
                        "after a restart"
                    )
                self._active[ctx_id] = side
                self._rr.append(ctx_id)
                peak = len(self._active)
                self.peak_concurrent_sides = max(
                    self.peak_concurrent_sides, peak
                )
                for active in self._active.values():
                    active.report.concurrent_sides = max(
                        active.report.concurrent_sides, peak
                    )
                self._fill_windows_locked()
                self._progress.notify_all()
        except BaseException:
            # The side never registered; free the segment created
            # outside the lock (release_side will never see it).
            if segment is not None:
                with _FORK_SAFETY_MUTEX:
                    segment.close()
                    try:
                        segment.unlink()
                    except FileNotFoundError:  # pragma: no cover
                        pass
            raise
        return side

    def _assign_workers(self, limit: int) -> frozenset[int]:
        """The worker indices this side may occupy.  Narrower-than-pool
        sides get a rotating slice so concurrent narrow sides spread
        over different workers instead of all camping on worker 0."""
        indices = [worker.index for worker in self._workers]
        if limit >= len(indices):
            return frozenset(indices)
        offset = self._admit_offset % len(indices)
        self._admit_offset += limit
        rotated = indices[offset:] + indices[:offset]
        return frozenset(rotated[:limit])

    def _install_everywhere(self, side: _SideState) -> bool:
        """Install the side's context on every live worker.  Installing
        beyond the side's allowed workers is deliberate: crash rescue
        may respawn any slot, and installs are a few hundred bytes."""
        for attempt in range(2):
            sent = 0
            for worker in self._workers:
                if not worker.alive():
                    continue
                try:
                    worker.conn.send(side.install)
                    sent += 1
                except OSError:
                    continue
            if sent:
                return True
            if attempt == 0:
                # Every worker was dead or unreachable at once; replace
                # the dead and retry once.
                self._respawn_dead_workers()
        return False

    # -- streaming --------------------------------------------------------
    def stream_chunks(
        self, side: _SideState
    ) -> Iterator[tuple[int, list[bytes]]]:
        """Yield ``(start_offset, handles)`` chunks as workers finish.

        Chunks arrive in completion order, not row order — callers that
        need row order sort by the start offset (:meth:`run_side` does).
        Returns the side's :class:`SideReport` as the generator's value
        and releases the side's context on the way out.
        """
        try:
            while True:
                items, report = self._next_progress(side)
                for item in items:
                    yield item
                if report is not None:
                    return report
        finally:
            self.release_side(side)

    def _next_progress(
        self, side: _SideState
    ) -> tuple[list[tuple[int, list[bytes]]], SideReport | None]:
        """Block until ``side`` has new chunks, is finished, or failed.

        Exactly one consumer thread polls the worker pipes at a time
        (the ``_polling`` baton); everything it collects is routed to
        the owning sides, so the other consumers find their chunks
        ready the moment they re-check.
        """
        while True:
            with self._progress:
                if side.expired or side.qos.expired():
                    if not side.expired:
                        side.expired = True
                        side.pending.clear()
                    raise DeadlineError(
                        "query exceeded its deadline; side cancelled "
                        f"after {side.done_chunks}/{side.n_chunks} chunks"
                    )
                if side.error is not None:
                    raise QueryError(
                        f"pooled SJ.Dec side failed:\n{side.error}"
                    )
                if side.completed:
                    items = list(side.completed)
                    side.completed.clear()
                    return items, None
                if side.finished:
                    self._finalize_side_locked(side)
                    return [], side.report
                if not self._workers:
                    raise QueryError(
                        f"execution service{self._label()} was closed "
                        "while a side was executing"
                    )
                if self._polling:
                    self._progress.wait(timeout=0.1)
                    continue
                self._polling = True
                conns = [w.conn for w in self._workers if w.alive()]
            ready = []
            try:
                try:
                    ready = wait(conns, timeout=_POLL_TIMEOUT) if conns else []
                except (OSError, ValueError):
                    ready = []
            finally:
                with self._progress:
                    self._polling = False
                    try:
                        if ready:
                            self._process_ready_locked(ready)
                        else:
                            self._rescue_dead_locked()
                        self._fill_windows_locked()
                    finally:
                        self._progress.notify_all()

    def _finalize_side_locked(self, side: _SideState) -> None:
        side.report.workers_used = len(side.workers_ever)
        side.report.worker_restarts = self.worker_restarts

    def release_side(self, side: _SideState) -> None:
        """Retire a side: drop its context everywhere, free its segment.

        Idempotent, and safe mid-flight (abandoned sides simply stop
        being scheduled; results for released contexts are dropped).
        """
        with self._progress:
            if side.released:
                return
            side.released = True
            self._active.pop(side.ctx_id, None)
            try:
                self._rr.remove(side.ctx_id)
            except ValueError:
                pass
            for worker in self._workers:
                stale = [
                    key for key in worker.outstanding
                    if key[0] == side.ctx_id
                ]
                for key in stale:
                    worker.outstanding.pop(key, None)
                if worker.alive():
                    try:
                        worker.conn.send(("release", side.ctx_id))
                    except (OSError, ValueError):
                        pass
            self._cleanup_segment(side)
            side.report.worker_restarts = self.worker_restarts
            self._progress.notify_all()

    def _cleanup_segment(self, side: _SideState) -> None:
        if side.segment is not None:
            with _FORK_SAFETY_MUTEX:
                side.segment.close()
                try:
                    side.segment.unlink()
                except FileNotFoundError:  # pragma: no cover - double unlink
                    pass
            side.segment = None

    # -- materializing wrapper -------------------------------------------
    def run_side(
        self,
        backend: BilinearBackend,
        token_elements: Sequence,
        ciphertext_vectors: Sequence[Sequence],
        batch_size: int,
        max_workers: int | None = None,
    ) -> tuple[list[bytes], SideReport]:
        """Decrypt one side through the pool, fully materialized.

        Returns the handles in row order plus a :class:`SideReport` —
        the pre-streaming API, kept for callers that need the whole
        side at once.
        """
        side = self.admit_side(
            backend, token_elements, ciphertext_vectors, batch_size,
            max_workers=max_workers,
        )
        stream = self.stream_chunks(side)
        results: dict[int, list[bytes]] = {}
        report: SideReport | None = None
        try:
            while True:
                try:
                    start, handles = next(stream)
                except StopIteration as stop:
                    report = stop.value
                    break
                results[start] = handles
        finally:
            self.release_side(side)
        handles = [
            handle
            for start in sorted(results)
            for handle in results[start]
        ]
        return handles, report

    # -- scheduling internals (all require self._lock) --------------------
    def _encode_rows(self, backend, ciphertext_vectors, dimension) -> bytes:
        parts = []
        for row in ciphertext_vectors:
            if len(row) != dimension:
                raise QueryError(
                    f"ciphertext dimension {len(row)} != token dimension "
                    f"{dimension}"
                )
            # Prepared rows travel as their raw G2 elements; the worker
            # rebuilds (and caches) the precomputation on its side.
            elements = (
                row.elements if isinstance(row, PreparedRow) else row
            )
            for element in elements:
                parts.append(backend.encode_g2(element))
        return b"".join(parts)

    def _create_segment(self, encoded: bytes):
        if not self.use_shared_memory or not encoded:
            return None
        try:
            with _FORK_SAFETY_MUTEX:
                segment = _shared_memory.SharedMemory(
                    create=True, size=len(encoded)
                )
        except (OSError, ValueError):  # pragma: no cover - no /dev/shm
            self.use_shared_memory = False
            return None
        segment.buf[: len(encoded)] = encoded
        return segment

    def _chunk_message(self, side: _SideState, start: int, count: int):
        if side.segment is not None:
            payload = None
        else:
            # Zero-copy-ish fallback: one contiguous bytes slice per
            # chunk (pickled as a single buffer, not element by element).
            payload = side.encoded[
                start * side.stride:(start + count) * side.stride
            ]
        return ("chunk", side.ctx_id, start, count, payload)

    def _pick_side_locked(self, worker: _WorkerHandle) -> _SideState | None:
        """The next side whose chunk this worker should run: the
        highest-priority admitted side with pending work, round-robin
        within equal priorities, honoring per-side worker caps (a side
        may occupy a new worker only from its allowed set and only
        below its cap).  The chosen side moves to the back of the
        rotation so equal-priority sides keep interleaving fairly."""
        best: _SideState | None = None
        for _ in range(len(self._rr)):
            ctx_id = self._rr[0]
            self._rr.rotate(-1)
            side = self._active.get(ctx_id)
            if side is None or side.released or not side.pending:
                continue
            if side.error is not None or side.expired:
                continue
            eligible = worker.index in side.holding or (
                worker.index in side.allowed_workers
                and len(side.holding) < side.max_workers
            )
            if not eligible:
                continue
            if best is None or side.qos.priority > best.qos.priority:
                best = side
        if best is not None:
            # The full scan left the rotation where it started; demote
            # the winner explicitly so its equal-priority peers get the
            # next pick.
            try:
                self._rr.remove(best.ctx_id)
            except ValueError:  # pragma: no cover - released concurrently
                pass
            else:
                self._rr.append(best.ctx_id)
        return best

    def _cancel_expired_locked(self) -> None:
        """Cancel sides whose deadline lapsed: drop their pending chunks
        so no further work is dispatched, and wake their consumers (who
        then raise :class:`DeadlineError` and release the side)."""
        now = time.monotonic()
        expired_any = False
        for side in self._active.values():
            if side.expired or side.error is not None:
                continue
            if side.qos.expired(now):
                side.expired = True
                side.pending.clear()
                expired_any = True
        if expired_any:
            self._progress.notify_all()

    def _fill_windows_locked(self) -> None:
        if not self._active:
            return
        self._cancel_expired_locked()
        for worker in self._workers:
            if not worker.alive():
                continue
            while len(worker.outstanding) < _PREFETCH_PER_WORKER:
                side = self._pick_side_locked(worker)
                if side is None:
                    break
                start, count = side.pending.popleft()
                try:
                    worker.conn.send(self._chunk_message(side, start, count))
                except (OSError, ValueError):
                    side.pending.appendleft((start, count))
                    break
                worker.outstanding[(side.ctx_id, start)] = (
                    side.ctx_id, start, count,
                )
                side.holding[worker.index] = (
                    side.holding.get(worker.index, 0) + 1
                )
                side.workers_ever.add(worker.index)

    def _release_holding(self, side: _SideState, worker_index: int) -> None:
        count = side.holding.get(worker_index, 0) - 1
        if count > 0:
            side.holding[worker_index] = count
        else:
            side.holding.pop(worker_index, None)

    def _process_ready_locked(self, ready) -> None:
        for conn in ready:
            worker = next(
                (w for w in self._workers if w.conn is conn), None
            )
            if worker is None:
                continue
            try:
                message = conn.recv()
            except (EOFError, OSError):
                self._rescue_worker_locked(worker)
                continue
            kind = message[0]
            if kind == "done":
                (
                    _, ctx_id, start, handles, millers, fexps,
                    prepared_millers, preparations,
                ) = message
                if worker.outstanding.pop((ctx_id, start), None) is not None:
                    self._rescues_since_progress = 0
                side = self._active.get(ctx_id)
                if side is None or side.released:
                    continue
                self._release_holding(side, worker.index)
                if start in side.seen_starts:
                    # A rescue recomputed a chunk the original worker
                    # had already delivered; keep the first result.
                    continue
                side.seen_starts.add(start)
                side.done_chunks += 1
                side.completed.append((start, handles))
                side.report.miller_loops += millers
                side.report.final_exponentiations += fexps
                side.report.prepared_miller_loops += prepared_millers
                side.report.preparations += preparations
            elif kind == "error":
                _, ctx_id, start, trace = message
                worker.outstanding.pop((ctx_id, start), None)
                side = self._active.get(ctx_id)
                if side is None or side.released:
                    continue
                self._release_holding(side, worker.index)
                side.error = trace

    def _rescue_dead_locked(self) -> None:
        for worker in list(self._workers):
            if not worker.alive():
                self._rescue_worker_locked(worker)

    def _requeue_outstanding(self, worker: _WorkerHandle) -> set:
        """Requeue a dead worker's chunks to their sides; returns the
        sides affected."""
        affected = set()
        for ctx_id, start, count in list(worker.outstanding.values()):
            side = self._active.get(ctx_id)
            if side is None or side.released:
                continue
            self._release_holding(side, worker.index)
            if start not in side.seen_starts:
                side.pending.appendleft((start, count))
            affected.add(side)
        worker.outstanding.clear()
        return affected

    def _rescue_worker_locked(self, worker: _WorkerHandle) -> None:
        """Replace a dead worker, requeue its chunks, reinstall every
        active side's context on the replacement."""
        affected = self._requeue_outstanding(worker)
        for side in affected:
            side.rescue_budget -= 1
            if side.rescue_budget < 0 and side.error is None:
                side.error = (
                    f"execution-service{self._label()} workers keep dying "
                    f"(restarted {self.worker_restarts} total); "
                    "refusing to respawn further for this side"
                )
        # A worker dying with no chunks decrements no side budget; the
        # progress-free rescue counter stops deterministic spawn deaths
        # (bad environment, unpicklable backend) from forking forever.
        self._rescues_since_progress += 1
        if self._rescues_since_progress > 3 * self.worker_target + 5:
            for side in self._active.values():
                if side.error is None:
                    side.error = (
                        "execution-service workers keep dying before "
                        "making progress; refusing to respawn further"
                    )
            # No replacement: leave the slot dead (the next admission's
            # ensure_started respawns it) but release its pipe now.
            worker.conn.close()
            return
        worker.conn.close()
        slot = self._workers.index(worker)
        replacement = self._spawn_worker(worker.index)
        self._workers[slot] = replacement
        self.worker_restarts += 1
        self._install_active_sides(replacement)


_DEFAULT_SERVICE: ExecutionService | None = None
_DEFAULT_SERVICE_LOCK = threading.Lock()


def get_default_service() -> ExecutionService:
    """The process-wide fallback service for engines used standalone.

    Engines resolved by a :class:`~repro.core.server.SecureJoinServer`
    are bound to the server's own service; a bare ``ParallelEngine``
    (no server in sight) shares this singleton so ad-hoc uses still get
    a warm, persistent pool instead of one pool per engine instance.
    """
    global _DEFAULT_SERVICE
    with _DEFAULT_SERVICE_LOCK:
        if _DEFAULT_SERVICE is None:
            _DEFAULT_SERVICE = ExecutionService()
        return _DEFAULT_SERVICE


def peek_default_service() -> ExecutionService | None:
    """The process-wide service if one exists, without creating it.

    The planner uses this to price pool warmth for engines that would
    fall back to the default service — creating the (cheap but stateful)
    singleton as a side effect of *estimating* would be wrong.
    """
    return _DEFAULT_SERVICE


def shutdown_default_service() -> None:
    """Close the process-wide service (tests and explicit teardowns)."""
    global _DEFAULT_SERVICE
    with _DEFAULT_SERVICE_LOCK:
        if _DEFAULT_SERVICE is not None:
            _DEFAULT_SERVICE.close()
            _DEFAULT_SERVICE = None
