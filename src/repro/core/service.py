"""A persistent parallel execution service for SJ.Dec.

PR 1's :class:`~repro.core.engine.ParallelEngine` forked a
``multiprocessing.Pool`` *per query* and pickled every ciphertext chunk
into it — correct, but pool-overhead-bound: on the Figure 3 workload the
fork + pickle tax exceeded the pairing work it parallelized.  This
module replaces that with a long-lived service:

- **Lazy, persistent workers.**  Nothing is spawned at construction;
  the first large-enough side forks the workers, and they stay alive
  across queries (``pool_generation`` in ``ServerStats`` exposes this —
  it only increments when the pool is actually (re)created).
- **Per-worker caches that survive queries.**  The bilinear backend is
  shipped once per worker lifetime (as a spawn argument), and decoded
  query tokens are cached per worker keyed by token digest, so
  re-running a query ships and decodes nothing but chunk descriptors.
- **Shared-memory ciphertext transport.**  A side's ciphertext vectors
  are encoded once into a ``multiprocessing.shared_memory`` segment;
  chunk messages carry only ``(start, count)`` offsets into it.  Where
  POSIX shared memory is unavailable the service falls back to sending
  each chunk's encoded bytes as a single contiguous ``bytes`` object
  (one buffer per chunk, never per-element pickling).
- **Crash resilience.**  Each worker is reached over its own duplex
  pipe (no shared queue locks a dying worker could poison).  A worker
  that disappears mid-side is respawned, its outstanding chunks are
  redistributed, and ``worker_restarts`` records the event.
- **Clean lifecycle.**  ``close()`` is idempotent, the service is a
  context manager, and workers are daemonic so an unclosed service can
  never outlive the interpreter.

The service is *owned* by :class:`~repro.core.server.SecureJoinServer`
(one service per server, bound to the engines the server resolves);
engine instances used standalone lazily create a private service.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import os
import traceback
from collections import deque
from collections.abc import Sequence
from dataclasses import dataclass
from multiprocessing.connection import Connection, wait

from repro.crypto.backend import BilinearBackend
from repro.errors import QueryError

try:  # pragma: no cover - exercised indirectly via the transport choice
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - always present on CPython >= 3.8
    _shared_memory = None

#: How many chunks may sit in one worker's pipe before the scheduler
#: waits for a result (keeps workers busy without queueing a whole side
#: into one pipe, which would defeat work stealing).
_PREFETCH_PER_WORKER = 2

#: Decoded tokens cached per worker (FIFO-evicted).
_TOKEN_CACHE_SIZE = 32


def default_worker_count() -> int:
    """The service's default pool size (matches the PR 1 parallel engine)."""
    return max(2, os.cpu_count() or 1)


@dataclass
class SideReport:
    """What one ``run_side`` call did, for engine/stat accounting."""

    chunks: int = 0
    max_chunk: int = 0
    workers_used: int = 0
    miller_loops: int = 0
    final_exponentiations: int = 0
    pool_generation: int = 0
    worker_restarts: int = 0
    shared_memory: bool = False


# -- worker side ----------------------------------------------------------


def _attach_shared_memory(name: str):
    """Attach to an existing segment without owning its lifetime.

    Under ``fork`` the worker shares the main process's resource
    tracker, where attach-registration is an idempotent set-add that the
    owner's ``unlink`` later removes — nothing to fix up.  Under other
    start methods the worker has its *own* tracker, which would unlink
    the (still in use) segment when the worker exits; undo the
    registration there.
    """
    segment = _shared_memory.SharedMemory(name=name)
    if multiprocessing.get_start_method() != "fork":
        try:  # pragma: no cover - depends on interpreter internals
            from multiprocessing import resource_tracker

            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:
            pass
    return segment


def _decode_rows(
    backend: BilinearBackend, buffer, start: int, count: int, dimension: int
) -> list[list]:
    """Decode ``count`` ciphertext rows from a flat encoded buffer."""
    element_size = backend.g2_element_size
    stride = dimension * element_size
    rows = []
    for row_index in range(start, start + count):
        base = row_index * stride
        rows.append([
            backend.decode_g2(
                bytes(buffer[base + i * element_size:
                             base + (i + 1) * element_size])
            )
            for i in range(dimension)
        ])
    return rows


def _service_worker(conn: Connection, backend: BilinearBackend) -> None:
    """Worker main loop: install contexts, decrypt chunks, report results.

    Messages arrive on one FIFO pipe, so a ``ctx`` install is always
    processed before the chunks that reference it.  The worker keeps the
    backend for its whole lifetime and caches decoded tokens by digest,
    so repeated queries cost nothing but the chunk descriptors.
    """
    backend.ops.reset()
    token_cache: dict[bytes, tuple] = {}
    current_ctx = None  # (ctx_id, token_elements, dimension, shm, blob)
    segment = None
    try:
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "stop":
                return
            if kind == "ctx":
                _, ctx_id, digest, token_bytes, dimension, shm_name = message
                token = token_cache.get(digest)
                if token is None:
                    token = tuple(
                        backend.decode_g1(raw) for raw in token_bytes
                    )
                    if len(token_cache) >= _TOKEN_CACHE_SIZE:
                        token_cache.pop(next(iter(token_cache)))
                    token_cache[digest] = token
                if segment is not None:
                    segment.close()
                    segment = None
                if shm_name is not None:
                    # A vanished segment means the install is stale (the
                    # side it belonged to is over); exiting lets the
                    # service's liveness handling respawn us cleanly.
                    try:
                        segment = _attach_shared_memory(shm_name)
                    except (FileNotFoundError, OSError):
                        return
                current_ctx = (ctx_id, token, dimension)
                continue
            if kind == "chunk":
                _, ctx_id, start, count, payload = message
                try:
                    if current_ctx is None or current_ctx[0] != ctx_id:
                        raise QueryError(
                            f"chunk for unknown context {ctx_id}"
                        )
                    _, token, dimension = current_ctx
                    if payload is not None:
                        rows = _decode_rows(
                            backend, payload, 0, count, dimension
                        )
                    else:
                        rows = _decode_rows(
                            backend, segment.buf, start, count, dimension
                        )
                    snapshot = backend.ops.snapshot()
                    gts = backend.pair_vectors_batch(token, rows)
                    delta = backend.ops.since(snapshot)
                    conn.send((
                        "done", ctx_id, start,
                        [gt.to_bytes() for gt in gts],
                        delta.miller_loops, delta.final_exponentiations,
                    ))
                except Exception:
                    conn.send((
                        "error", ctx_id, start, traceback.format_exc()
                    ))
    except (EOFError, KeyboardInterrupt, BrokenPipeError):
        pass
    finally:
        if segment is not None:
            segment.close()
        conn.close()


# -- main-process side ----------------------------------------------------


class _WorkerHandle:
    """One pooled worker: its process, pipe and outstanding chunks."""

    def __init__(self, index: int, process, conn: Connection):
        self.index = index
        self.process = process
        self.conn = conn
        # start offset -> (start, count) for crash redistribution.
        self.outstanding: dict[int, tuple] = {}

    def alive(self) -> bool:
        return self.process.is_alive()


class ExecutionService:
    """A lazily-started, persistent pool of SJ.Dec workers.

    One instance serves many queries: construct it freely (construction
    spawns nothing), call :meth:`run_side` per candidate side, and
    :meth:`close` when done — or use it as a context manager.  A closed
    service transparently restarts on next use (``generation`` then
    increments, which is how tests assert the pool was *not* recreated
    between queries).
    """

    def __init__(
        self,
        workers: int | None = None,
        use_shared_memory: bool | None = None,
    ):
        if workers is not None and workers < 1:
            raise QueryError("worker count must be at least 1")
        self.worker_target = (
            workers if workers is not None else default_worker_count()
        )
        if use_shared_memory is None:
            use_shared_memory = _shared_memory is not None
        self.use_shared_memory = use_shared_memory and _shared_memory is not None
        #: Incremented every time the pool is (re)started.
        self.generation = 0
        #: Cumulative count of workers respawned after a crash.
        self.worker_restarts = 0
        #: Sides executed through the pool (not counting inline fallbacks).
        self.sides_executed = 0
        self._workers: list[_WorkerHandle] = []
        self._backend: BilinearBackend | None = None
        self._ctx_counter = itertools.count(1)
        self._closed = False

    # -- lifecycle --------------------------------------------------------
    @property
    def started(self) -> bool:
        return bool(self._workers)

    @property
    def closed(self) -> bool:
        """True after :meth:`close` until the next (lazy) restart."""
        return self._closed

    def worker_pids(self) -> list[int]:
        """PIDs of the live pool (for lifecycle tests and diagnostics)."""
        return [w.process.pid for w in self._workers if w.alive()]

    def _spawn_worker(self, index: int) -> _WorkerHandle:
        parent_conn, child_conn = multiprocessing.Pipe(duplex=True)
        process = multiprocessing.Process(
            target=_service_worker,
            args=(child_conn, self._backend),
            daemon=True,
            name=f"repro-sjdec-{self.generation}-{index}",
        )
        process.start()
        child_conn.close()
        return _WorkerHandle(index, process, parent_conn)

    @staticmethod
    def _backend_fingerprint(backend: BilinearBackend) -> tuple:
        """What must match for pooled workers to be reusable: semantics,
        not object identity (backends are stateless but for op counters,
        which are per-process anyway)."""
        return (
            type(backend).__qualname__,
            backend.name,
            backend.order,
            getattr(backend, "use_fast_pairing", None),
        )

    def ensure_started(self, backend: BilinearBackend) -> None:
        """Start (or restart) the pool bound to ``backend``.

        The backend is shipped once, as each worker's spawn argument;
        asking for a semantically different backend restarts the pool,
        since the per-worker caches would be poisoned otherwise.
        """
        if self._workers and (
            self._backend_fingerprint(self._backend)
            != self._backend_fingerprint(backend)
        ):
            self._stop_workers()
        if not self._workers:
            self._backend = backend
            self.generation += 1
            self._closed = False
            if self.use_shared_memory:
                # Start the resource tracker *before* forking so workers
                # inherit it instead of each spawning (and exiting with)
                # a tracker of their own.
                try:  # pragma: no cover - tracker internals
                    from multiprocessing import resource_tracker

                    resource_tracker.ensure_running()
                except Exception:
                    pass
            self._workers = [
                self._spawn_worker(i) for i in range(self.worker_target)
            ]
        else:
            self._respawn_dead_workers()

    def _respawn_dead_workers(self) -> None:
        """Replace workers that died between sides.  The replacement gets
        no context — the next ``run_side`` installs a fresh one before
        sending any chunk."""
        for slot, worker in enumerate(self._workers):
            if not worker.alive():
                worker.conn.close()
                self._workers[slot] = self._spawn_worker(worker.index)
                self.worker_restarts += 1

    def close(self) -> None:
        """Stop the pool.  Idempotent; the service may be reused after."""
        if self._closed and not self._workers:
            return
        self._stop_workers()
        self._closed = True

    def _stop_workers(self) -> None:
        for worker in self._workers:
            try:
                worker.conn.send(("stop",))
            except (OSError, ValueError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            worker.conn.close()
            # Release the Process object's pidfd/sentinel immediately
            # rather than waiting for GC (keeps FD counts flat).
            if hasattr(worker.process, "close"):
                worker.process.close()
        self._workers = []

    def __enter__(self) -> "ExecutionService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- execution --------------------------------------------------------
    def run_side(
        self,
        backend: BilinearBackend,
        token_elements: Sequence,
        ciphertext_vectors: Sequence[Sequence],
        batch_size: int,
        max_workers: int | None = None,
    ) -> tuple[list[bytes], SideReport]:
        """Decrypt one side's candidate rows through the pool.

        Returns the handles in row order plus a :class:`SideReport`.
        ``max_workers`` caps how many pooled workers this call may use
        (an engine configured narrower than the pool stays narrower).
        """
        if batch_size < 1:
            raise QueryError("batch size must be at least 1")
        self.ensure_started(backend)
        self.sides_executed += 1

        dimension = len(token_elements)
        n_rows = len(ciphertext_vectors)
        encoded = self._encode_rows(backend, ciphertext_vectors, dimension)
        segment = self._create_segment(encoded)
        ctx_id = next(self._ctx_counter)
        token_bytes = [backend.encode_g1(e) for e in token_elements]
        digest = hashlib.blake2b(
            b"".join(token_bytes), digest_size=16
        ).digest()
        install = (
            "ctx", ctx_id, digest, token_bytes, dimension,
            segment.name if segment is not None else None,
        )

        element_size = backend.g2_element_size
        stride = dimension * element_size
        pending: deque[tuple[int, int]] = deque(
            (start, min(batch_size, n_rows - start))
            for start in range(0, n_rows, batch_size)
        )
        n_chunks = len(pending)
        limit = min(
            max_workers if max_workers is not None else self.worker_target,
            len(self._workers),
        )
        report = SideReport(
            chunks=n_chunks,
            max_chunk=max((count for _, count in pending), default=0),
            pool_generation=self.generation,
            shared_memory=segment is not None,
        )

        try:
            active = self._broadcast_install(install, limit)
            results: dict[int, list[bytes]] = {}
            self._fill_windows(active, pending, ctx_id, encoded, stride)
            report.workers_used = sum(
                1 for w in active if w.outstanding
            )
            # Crash-rescue budget for this side: a worker that dies
            # *deterministically* (bad spawn environment, unpicklable
            # backend) must fail the query, not fork processes forever.
            rescue_budget = [3 * len(active) + 5]
            while len(results) < n_chunks:
                self._collect(
                    active, pending, results, report, ctx_id,
                    encoded, stride, install, rescue_budget,
                )
        finally:
            report.worker_restarts = self.worker_restarts
            if segment is not None:
                segment.close()
                segment.unlink()
        handles = [
            handle
            for start in sorted(results)
            for handle in results[start]
        ]
        return handles, report

    # -- scheduling internals --------------------------------------------
    def _encode_rows(self, backend, ciphertext_vectors, dimension) -> bytes:
        parts = []
        for row in ciphertext_vectors:
            if len(row) != dimension:
                raise QueryError(
                    f"ciphertext dimension {len(row)} != token dimension "
                    f"{dimension}"
                )
            for element in row:
                parts.append(backend.encode_g2(element))
        return b"".join(parts)

    def _create_segment(self, encoded: bytes):
        if not self.use_shared_memory or not encoded:
            return None
        try:
            segment = _shared_memory.SharedMemory(
                create=True, size=len(encoded)
            )
        except (OSError, ValueError):  # pragma: no cover - no /dev/shm
            self.use_shared_memory = False
            return None
        segment.buf[: len(encoded)] = encoded
        return segment

    def _broadcast_install(self, install, limit: int) -> list[_WorkerHandle]:
        """Install the side's context on the first ``limit`` live workers."""
        active = []
        for worker in self._workers:
            # Entries left by an aborted side are stale by definition
            # (sides run sequentially); a fresh window starts empty.
            worker.outstanding.clear()
        for attempt in range(2):
            for worker in self._workers:
                if len(active) == limit:
                    break
                if not worker.alive():
                    continue
                try:
                    worker.conn.send(install)
                    active.append(worker)
                except OSError:
                    continue
            if active:
                return active
            if attempt == 0:
                # Every worker was dead or unreachable at once; replace
                # the dead (a live one with a broken pipe stays skipped)
                # and retry.
                self._respawn_dead_workers()
        raise QueryError(
            "execution service has no reachable workers after a restart"
        )

    def _chunk_message(self, ctx_id, start, count, encoded, stride):
        if self.use_shared_memory:
            payload = None
        else:
            # Zero-copy-ish fallback: one contiguous bytes slice per
            # chunk (pickled as a single buffer, not element by element).
            payload = encoded[start * stride:(start + count) * stride]
        return ("chunk", ctx_id, start, count, payload)

    def _fill_windows(self, active, pending, ctx_id, encoded, stride) -> None:
        for _ in range(_PREFETCH_PER_WORKER):
            for worker in active:
                if not pending:
                    return
                if len(worker.outstanding) >= _PREFETCH_PER_WORKER:
                    continue
                start, count = pending.popleft()
                try:
                    worker.conn.send(
                        self._chunk_message(
                            ctx_id, start, count, encoded, stride
                        )
                    )
                    worker.outstanding[start] = (start, count)
                except OSError:
                    pending.appendleft((start, count))

    def _collect(
        self, active, pending, results, report, ctx_id, encoded, stride,
        install, rescue_budget,
    ) -> None:
        ready = wait([w.conn for w in active], timeout=0.25)
        if not ready:
            self._rescue_dead(active, pending, install, rescue_budget)
            self._fill_windows(active, pending, ctx_id, encoded, stride)
            return
        for conn in ready:
            worker = next(w for w in active if w.conn is conn)
            try:
                message = conn.recv()
            except (EOFError, OSError):
                self._rescue_worker(
                    worker, active, pending, install, rescue_budget
                )
                continue
            kind = message[0]
            if kind == "done":
                _, msg_ctx, start, handles, millers, fexps = message
                if msg_ctx != ctx_id:
                    # Stale result from an aborted side; its outstanding
                    # entry was already cleared at side start — popping
                    # here could drop a live chunk with the same offset.
                    continue
                worker.outstanding.pop(start, None)
                if start not in results:
                    results[start] = handles
                    report.miller_loops += millers
                    report.final_exponentiations += fexps
            elif kind == "error":
                _, msg_ctx, start, trace = message
                if msg_ctx != ctx_id:
                    continue
                worker.outstanding.pop(start, None)
                raise QueryError(f"pooled SJ.Dec worker failed:\n{trace}")
        self._fill_windows(active, pending, ctx_id, encoded, stride)

    def _rescue_dead(self, active, pending, install, rescue_budget) -> None:
        for worker in list(active):
            if not worker.alive():
                self._rescue_worker(
                    worker, active, pending, install, rescue_budget
                )

    def _rescue_worker(
        self, worker, active, pending, install, rescue_budget
    ) -> None:
        """Replace a dead worker and re-queue the chunks it was holding."""
        rescue_budget[0] -= 1
        if rescue_budget[0] < 0:
            raise QueryError(
                "execution-service workers keep dying "
                f"(restarted {self.worker_restarts} total); "
                "refusing to respawn further for this query"
            )
        for start, count in list(worker.outstanding.values()):
            pending.appendleft((start, count))
        worker.outstanding.clear()
        worker.conn.close()
        slot = self._workers.index(worker)
        position = active.index(worker)
        replacement = self._spawn_worker(worker.index)
        try:
            replacement.conn.send(install)
        except OSError:  # pragma: no cover - instant respawn death
            pass
        self._workers[slot] = replacement
        active[position] = replacement
        self.worker_restarts += 1


_DEFAULT_SERVICE: ExecutionService | None = None


def get_default_service() -> ExecutionService:
    """The process-wide fallback service for engines used standalone.

    Engines resolved by a :class:`~repro.core.server.SecureJoinServer`
    are bound to the server's own service; a bare ``ParallelEngine``
    (no server in sight) shares this singleton so ad-hoc uses still get
    a warm, persistent pool instead of one pool per engine instance.
    """
    global _DEFAULT_SERVICE
    if _DEFAULT_SERVICE is None:
        _DEFAULT_SERVICE = ExecutionService()
    return _DEFAULT_SERVICE


def peek_default_service() -> ExecutionService | None:
    """The process-wide service if one exists, without creating it.

    The planner uses this to price pool warmth for engines that would
    fall back to the default service — creating the (cheap but stateful)
    singleton as a side effect of *estimating* would be wrong.
    """
    return _DEFAULT_SERVICE


def shutdown_default_service() -> None:
    """Close the process-wide service (tests and explicit teardowns)."""
    global _DEFAULT_SERVICE
    if _DEFAULT_SERVICE is not None:
        _DEFAULT_SERVICE.close()
        _DEFAULT_SERVICE = None
