"""The staged streaming join pipeline: SJ.Dec chunk streams → SJ.Match.

This is the orchestration layer between the execution engines
(:mod:`repro.core.engine`, which emit decrypted handle chunks as they
complete) and the incremental matchers (:mod:`repro.db.matcher`, which
pair partial sides).  The pipeline:

1. opens both sides' :class:`~repro.core.engine.HandleStream`\\ s up
   front — pool-backed sides are thereby *admitted together*, so the
   execution service interleaves their chunk scheduling;
2. pulls chunks from the two streams alternately, translating chunk
   offsets back to candidate row indices and feeding the matcher — for
   inline engines the alternation itself interleaves the two sides'
   pairing work, for pooled engines the shared poller makes progress on
   both sides whichever stream is being waited on;
3. emits newly completed match pairs the moment they exist — first
   results appear while most of SJ.Dec is still running — and records
   the stage timings (time to first match, decrypt wait, match time);
4. returns the canonical right-major pairing plus both engine reports.

The canonical output guarantee: however chunks interleave, the final
pairing equals the fully materialized decrypt-then-match pass
byte-for-byte (the matcher sorts into right-major order at the end).
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.core.engine import EngineReport, HandleStream
from repro.db.matcher import IncrementalMatcher

LEFT = "left"
RIGHT = "right"


@dataclass
class PipelineTimings:
    """Wall-clock stage accounting for one streamed join.

    ``decrypt_seconds`` is the time spent waiting on the decrypt
    streams, ``match_seconds`` the time inside the matcher; they
    overlap the same wall-clock interval (that's the point of the
    pipeline).  ``time_to_first_match`` is measured from pipeline start
    and stays 0.0 for empty joins.
    """

    time_to_first_match: float = 0.0
    decrypt_seconds: float = 0.0
    match_seconds: float = 0.0
    total_seconds: float = 0.0


@dataclass
class PipelineResult:
    """What one pipeline run produced."""

    pairs: list[tuple[int, int]] = field(default_factory=list)
    left_report: EngineReport | None = None
    right_report: EngineReport | None = None
    timings: PipelineTimings = field(default_factory=PipelineTimings)


def run_pipeline(
    left_stream: HandleStream,
    right_stream: HandleStream,
    left_candidates: Sequence[int],
    right_candidates: Sequence[int],
    matcher: IncrementalMatcher,
    on_handles: Callable[[str, list[tuple[int, bytes]]], None] | None = None,
):
    """Drive two handle streams into ``matcher``; a generator.

    Yields lists of newly matched ``(left_index, right_index)`` pairs
    in discovery order as decrypted chunks arrive, and returns a
    :class:`PipelineResult` (canonical pairs, engine reports, timings)
    as the generator's value.  ``on_handles(side, items)`` — with
    ``items`` being ``(row_index, handle_bytes)`` — is invoked per
    chunk; the server uses it to record the adversary observation.

    Both streams are closed on every exit path, so pooled sides always
    release their admission state even when the consumer abandons the
    generator mid-join.
    """
    started = time.perf_counter()
    timings = PipelineTimings()
    first_match_at: float | None = None
    feeds = {LEFT: matcher.add_left, RIGHT: matcher.add_right}
    candidates = {LEFT: left_candidates, RIGHT: right_candidates}
    active: list[tuple[str, HandleStream]] = [
        (LEFT, left_stream), (RIGHT, right_stream),
    ]
    try:
        turn = 0
        while active:
            side, stream = active[turn % len(active)]
            waited = time.perf_counter()
            try:
                chunk = next(stream)
            except StopIteration:
                timings.decrypt_seconds += time.perf_counter() - waited
                active.remove((side, stream))
                continue
            timings.decrypt_seconds += time.perf_counter() - waited
            rows = candidates[side]
            items = [
                (rows[chunk.start + offset], handle)
                for offset, handle in enumerate(chunk.handles)
            ]
            if on_handles is not None:
                on_handles(side, items)
            matched_at = time.perf_counter()
            new_pairs = feeds[side](items)
            timings.match_seconds += time.perf_counter() - matched_at
            if new_pairs:
                if first_match_at is None:
                    first_match_at = time.perf_counter()
                    timings.time_to_first_match = first_match_at - started
                yield new_pairs
            turn += 1
    finally:
        left_stream.close()
        right_stream.close()
    finish_at = time.perf_counter()
    pairs = matcher.finish()
    timings.match_seconds += time.perf_counter() - finish_at
    timings.total_seconds = time.perf_counter() - started
    return PipelineResult(
        pairs=pairs,
        left_report=left_stream.report,
        right_report=right_stream.report,
        timings=timings,
    )
