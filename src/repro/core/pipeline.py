"""The staged streaming join pipeline: SJ.Dec chunk streams → SJ.Match.

This is the orchestration layer between the execution engines
(:mod:`repro.core.engine`, which emit decrypted handle chunks as they
complete) and the incremental matchers (:mod:`repro.db.matcher`, which
pair partial sides).  The pipeline:

1. opens both sides' :class:`~repro.core.engine.HandleStream`\\ s up
   front — pool-backed sides are thereby *admitted together*, so the
   execution service interleaves their chunk scheduling;
2. pulls chunks from the two streams alternately, translating chunk
   offsets back to candidate row indices and feeding the matcher — for
   inline engines the alternation itself interleaves the two sides'
   pairing work, for pooled engines the shared poller makes progress on
   both sides whichever stream is being waited on;
3. emits newly completed match pairs the moment they exist — first
   results appear while most of SJ.Dec is still running — and records
   the stage timings (time to first match, decrypt wait, match time);
4. returns the canonical right-major pairing plus both engine reports.

The canonical output guarantee: however chunks interleave, the final
pairing equals the fully materialized decrypt-then-match pass
byte-for-byte (the matcher sorts into right-major order at the end).
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.core.engine import EngineReport, HandleStream
from repro.db.matcher import IncrementalMatcher

LEFT = "left"
RIGHT = "right"


@dataclass
class PipelineTimings:
    """Wall-clock stage accounting for one streamed join.

    ``decrypt_seconds`` is the time spent waiting on the decrypt
    streams, ``match_seconds`` the time inside the matcher; they
    overlap the same wall-clock interval (that's the point of the
    pipeline).  ``time_to_first_match`` is measured from pipeline start
    and stays 0.0 for empty joins.
    """

    time_to_first_match: float = 0.0
    decrypt_seconds: float = 0.0
    match_seconds: float = 0.0
    total_seconds: float = 0.0


@dataclass
class PipelineResult:
    """What one pipeline run produced."""

    pairs: list[tuple[int, int]] = field(default_factory=list)
    left_report: EngineReport | None = None
    right_report: EngineReport | None = None
    timings: PipelineTimings = field(default_factory=PipelineTimings)


@dataclass
class ScatterPipelineResult:
    """What one N-source merge produced.

    ``outcomes`` holds each source's terminal value (for
    :class:`SideEventSource`, the side's :class:`EngineReport`) in the
    order the sources were passed.
    """

    pairs: list[tuple[int, int]] = field(default_factory=list)
    outcomes: list = field(default_factory=list)
    timings: PipelineTimings = field(default_factory=PipelineTimings)


class SideEventSource:
    """Adapt one side's :class:`HandleStream` to scatter events.

    Iteration yields ``(side, items)`` per decrypted chunk, with chunk
    offsets translated to the side's candidate row indices — the
    single-store pipeline uses local indices, a shard source passes its
    *global* indices, which is exactly what makes the merged matcher's
    output canonical.  With ``payloads`` (aligned with ``rows``) each
    item is ``(row, handle, payload)``; otherwise ``(row, handle)``.

    ``close()`` always closes the underlying stream — even when the
    merge never pulled from this source because a sibling failed first.
    ``outcome`` is the stream's :class:`EngineReport` once exhausted.
    """

    def __init__(
        self,
        side: str,
        stream: HandleStream,
        rows: Sequence[int],
        payloads: Sequence[bytes] | None = None,
    ):
        self.side = side
        self.stream = stream
        self.rows = rows
        self.payloads = payloads
        self.outcome: EngineReport | None = None

    def __iter__(self) -> "SideEventSource":
        return self

    def __next__(self) -> tuple[str, list]:
        try:
            chunk = next(self.stream)
        except StopIteration:
            self.outcome = self.stream.report
            raise
        rows = self.rows
        if self.payloads is None:
            items = [
                (rows[chunk.start + offset], handle)
                for offset, handle in enumerate(chunk.handles)
            ]
        else:
            payloads = self.payloads
            items = [
                (
                    rows[chunk.start + offset],
                    handle,
                    payloads[chunk.start + offset],
                )
                for offset, handle in enumerate(chunk.handles)
            ]
        return self.side, items

    def close(self) -> None:
        self.stream.close()


def run_scatter_pipeline(
    sources: Sequence,
    matcher: IncrementalMatcher,
    on_items: Callable[[str, list], None] | None = None,
):
    """Merge N side-event sources into ``matcher``; a generator.

    The N-source generalization of :func:`run_pipeline` (which is now
    its two-source wrapper): each source is an iterator of
    ``(side, items)`` events — ``items`` being ``(row_index, handle)``
    or ``(row_index, handle, payload)`` tuples — with a ``close()``
    method and an ``outcome`` attribute valid after exhaustion.  A
    sharded join contributes one or two sources per shard; because the
    matcher is fed *global* row indices and sorts canonically at
    ``finish()``, the merged result is byte-identical to a single-store
    join no matter how many sources there are or how their chunks
    interleave.

    Yields lists of newly matched pairs in discovery order; returns a
    :class:`ScatterPipelineResult`.  Every source is closed on every
    exit path (including a sibling source failing), so pooled shard
    sides always release their admissions.
    """
    started = time.perf_counter()
    timings = PipelineTimings()
    first_match_at: float | None = None
    feeds = {LEFT: matcher.add_left, RIGHT: matcher.add_right}
    active = list(sources)
    try:
        turn = 0
        while active:
            source = active[turn % len(active)]
            waited = time.perf_counter()
            try:
                side, items = next(source)
            except StopIteration:
                timings.decrypt_seconds += time.perf_counter() - waited
                active.remove(source)
                continue
            timings.decrypt_seconds += time.perf_counter() - waited
            if on_items is not None:
                on_items(side, items)
            matched_at = time.perf_counter()
            if items and len(items[0]) != 2:
                fed = [(item[0], item[1]) for item in items]
            else:
                fed = items
            new_pairs = feeds[side](fed)
            timings.match_seconds += time.perf_counter() - matched_at
            if new_pairs:
                if first_match_at is None:
                    first_match_at = time.perf_counter()
                    timings.time_to_first_match = first_match_at - started
                yield new_pairs
            turn += 1
    finally:
        for source in sources:
            source.close()
    finish_at = time.perf_counter()
    pairs = matcher.finish()
    timings.match_seconds += time.perf_counter() - finish_at
    timings.total_seconds = time.perf_counter() - started
    return ScatterPipelineResult(
        pairs=pairs,
        outcomes=[getattr(source, "outcome", None) for source in sources],
        timings=timings,
    )


def run_pipeline(
    left_stream: HandleStream,
    right_stream: HandleStream,
    left_candidates: Sequence[int],
    right_candidates: Sequence[int],
    matcher: IncrementalMatcher,
    on_handles: Callable[[str, list[tuple[int, bytes]]], None] | None = None,
):
    """Drive two handle streams into ``matcher``; a generator.

    Yields lists of newly matched ``(left_index, right_index)`` pairs
    in discovery order as decrypted chunks arrive, and returns a
    :class:`PipelineResult` (canonical pairs, engine reports, timings)
    as the generator's value.  ``on_handles(side, items)`` — with
    ``items`` being ``(row_index, handle_bytes)`` — is invoked per
    chunk; the server uses it to record the adversary observation.

    Both streams are closed on every exit path, so pooled sides always
    release their admission state even when the consumer abandons the
    generator mid-join.
    """
    sources = [
        SideEventSource(LEFT, left_stream, left_candidates),
        SideEventSource(RIGHT, right_stream, right_candidates),
    ]
    inner = run_scatter_pipeline(sources, matcher, on_items=on_handles)
    try:
        while True:
            try:
                new_pairs = next(inner)
            except StopIteration as stop:
                outcome = stop.value
                break
            yield new_pairs
    finally:
        inner.close()
        left_stream.close()
        right_stream.close()
    return PipelineResult(
        pairs=outcome.pairs,
        left_report=left_stream.report,
        right_report=right_stream.report,
        timings=outcome.timings,
    )
