"""The paper's contribution: the Secure Join encryption scheme.

- :mod:`repro.core.polynomials` — polynomials over Z_q built from roots
  (the selection-predicate encoding of Section 4.1),
- :mod:`repro.core.encoding` — row vectors ``w`` and token vectors ``v``,
- :mod:`repro.core.scheme` — the five algorithms SJ.Setup / SJ.Enc /
  SJ.TokenGen / SJ.Dec / SJ.Match (Section 4.3),
- :mod:`repro.core.client` / :mod:`repro.core.server` — the outsourced-
  database protocol built on the scheme (upload phase, query phase,
  hash-join matching).
"""

from repro.core.client import DecryptedJoinResult, SecureJoinClient
from repro.core.engine import (
    AutoEngine,
    BatchedEngine,
    ExecutionEngine,
    HandleChunk,
    HandleStream,
    ParallelEngine,
    SerialEngine,
    get_engine,
)
from repro.core.pipeline import PipelineResult, PipelineTimings, run_pipeline
from repro.core.service import ExecutionService
from repro.core.polynomials import ZqPolynomial
from repro.core.scheme import (
    SecureJoinParams,
    SecureJoinScheme,
    SJMasterKey,
    SJRowCiphertext,
    SJToken,
)
from repro.core.server import (
    EncryptedJoinResult,
    MatchBatch,
    SecureJoinServer,
    ServerStats,
)

__all__ = [
    "AutoEngine",
    "BatchedEngine",
    "DecryptedJoinResult",
    "EncryptedJoinResult",
    "ExecutionEngine",
    "ExecutionService",
    "HandleChunk",
    "HandleStream",
    "MatchBatch",
    "ParallelEngine",
    "PipelineResult",
    "PipelineTimings",
    "SecureJoinClient",
    "SecureJoinParams",
    "SecureJoinScheme",
    "SecureJoinServer",
    "SerialEngine",
    "ServerStats",
    "SJMasterKey",
    "SJRowCiphertext",
    "SJToken",
    "ZqPolynomial",
    "get_engine",
    "run_pipeline",
]
